"""Engine benchmark: dict vs kernel vs fused kernel on the F1/F2 sweep.

Not a paper claim — this measures the substrate itself.  The F1/F2
experiments sweep ``U ∘ SDR`` over rings from random initial
configurations; their wall time is pure simulator throughput, so this
script times exactly that workload on three execution configurations and
emits ``BENCH_core.json`` at the repo root:

* ``dict``   — the reference engine;
* ``kernel`` — the array backend stepping through the simulator's
  per-step loop (``fuse=False``), i.e. the PR 2 configuration;
* ``fused``  — the array backend with the fused run loop: vectorized
  daemons, array-native move/round accounting, no per-step Python
  boundary crossing;
* ``fused+probe`` — the fused loop with a vectorized
  :class:`repro.probes.StabilizationProbe` attached (the F1/F2
  measurement configuration): the probe evaluates the program's
  ``normal_mask`` every step *inside* the loop, and the run asserts the
  fused path stayed engaged — measurement must not kick execution off
  the fast path.
* ``fused+telemetry`` — the fused loop with
  :mod:`repro.telemetry.phases` tracing enabled (stride-sampled phase
  timers in the hot loop).  The report carries its phase breakdown, and
  ``--check`` bounds its overhead against plain ``fused``.
* ``fused+faults`` — the fused loop with a *never-firing*
  :class:`repro.faults.schedule.FaultSchedule` attached (one event at an
  unreachable step).  The schedule machinery's per-step cost — the
  due-occurrence check inside the loop — must stay within the same 2%
  budget as telemetry; ``--check`` bounds ``faults_vs_fused``.
* ``fused+churn`` — the fused loop with a *never-firing*
  :class:`repro.faults.churn.ChurnSchedule` attached (one crash at an
  unreachable step).  Churn adds a hoisted next-occurrence peek plus a
  liveness column to the loop; the same 2% budget applies and
  ``--check`` bounds ``churn_vs_fused``.

All seven produce identical executions (equal seeds ⇒ equal traces); the
report records steps/sec, moves/sec, per-size wall time, and the pairwise
speedups.  The tracked baseline keeps the perf trajectory honest; CI runs
a small-size smoke (``--check`` asserts fused ≥ fused+probe ≥ kernel ≥
dict, with measurement *and* telemetry overhead bounded).  ``--out``
also writes a provenance manifest sidecar (git SHA, package versions,
host, phase breakdown) next to the JSON report.

Usage::

    python benchmarks/bench_kernel.py                      # full sweep
    python benchmarks/bench_kernel.py --sizes 32,64 --steps 500 --check
    python benchmarks/bench_kernel.py --out BENCH_core.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from random import Random

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import Simulator, make_daemon  # noqa: E402
from repro.probes import StabilizationProbe  # noqa: E402
from repro.reset import SDR  # noqa: E402
from repro.telemetry import phases as telemetry  # noqa: E402
from repro.topology import ring  # noqa: E402
from repro.unison import Unison  # noqa: E402

#: The workload: F1/F2's algorithm and topology family.
DAEMONS = ("distributed-random", "synchronous")

#: Timed configurations:
#: ``(label, Simulator kwargs, attach probe, enable telemetry)``.
CONFIGS = (
    ("dict", {"backend": "dict"}, False, False),
    ("kernel", {"backend": "kernel", "fuse": False}, False, False),
    ("fused", {"backend": "kernel"}, False, False),
    ("fused+probe", {"backend": "kernel"}, True, False),
    ("fused+telemetry", {"backend": "kernel"}, False, True),
    # A schedule whose single event sits at an unreachable step: the
    # fused loop pays the per-step due-check but never injects, so the
    # execution is identical to plain ``fused``.
    ("fused+faults", {"backend": "kernel", "faults": "at=1000000000"},
     False, False),
    # Same idea for churn: one crash at an unreachable step.  The timed
    # workload never goes terminal (unison is non-silent), so the
    # occurrence is never pulled forward and the execution is identical
    # to plain ``fused`` — only the due-check and liveness mask cost.
    ("fused+churn", {"backend": "kernel", "churn": "at=1000000000,crash=1"},
     False, False),
)


def time_cell(
    n: int, daemon: str, steps: int, seed: int, repeats: int
) -> tuple[dict, dict | None]:
    """Best-of-``repeats`` timing of every configuration on one cell.

    The repeat loop is *outside* the configuration loop: each repeat
    times all configurations back to back, so a noisy co-tenant (CI
    runners, single-core containers) degrades every column of that
    repeat about equally instead of sinking whichever configuration it
    happened to overlap — the best-of ratios stay honest on contended
    hosts.  Returns ``(rows_by_label, phase_snapshot)``; the snapshot
    (fastest telemetry repeat's phase breakdown) only when a
    telemetry-enabled configuration ran.
    """
    network = ring(n)
    sdr = SDR(Unison(network))
    cfg = sdr.random_configuration(Random(seed))
    best: dict[str, float] = {}
    results: dict[str, object] = {}
    phase_snapshot = None
    for _ in range(repeats):
        for label, sim_kwargs, probe, trace in CONFIGS:
            sim = Simulator(
                sdr,
                make_daemon(daemon, network),
                config=cfg.copy(),
                seed=seed,
                **sim_kwargs,
            )
            if probe:
                # The F1/F2 measurement configuration: a vectorized
                # stabilization probe riding the run (stop=False so the
                # timed step count stays fixed across configurations).
                sim.add_probe(StabilizationProbe(
                    sdr.is_normal, mask="normal_mask", stop=False,
                ))
                if not sim.fusion_available:
                    raise SystemExit(
                        "FAIL: attaching a vectorized StabilizationProbe "
                        "disabled the fused loop"
                    )
            if trace:
                with telemetry.recording() as stats:
                    t0 = time.perf_counter()
                    result = sim.run(max_steps=steps)
                    elapsed = time.perf_counter() - t0
                if label not in best or elapsed < best[label]:
                    phase_snapshot = stats.snapshot()
            else:
                t0 = time.perf_counter()
                result = sim.run(max_steps=steps)
                elapsed = time.perf_counter() - t0
            if label not in best or elapsed < best[label]:
                best[label] = elapsed
                results[label] = result
    rows = {
        label: {
            "n": n,
            "daemon": daemon,
            "backend": label,
            "steps": results[label].steps,
            "moves": results[label].moves,
            "rounds": results[label].rounds,
            "wall_s": round(best[label], 6),
            "steps_per_s": round(results[label].steps / best[label], 1),
            "moves_per_s": round(results[label].moves / best[label], 1),
        }
        for label in best
    }
    return rows, phase_snapshot


def run_benchmark(sizes: list[int], steps: int, seed: int, repeats: int) -> dict:
    rows = []
    speedups = {}
    phase_snaps = []
    for daemon in DAEMONS:
        for n in sizes:
            cell, snap = time_cell(n, daemon, steps, seed, repeats)
            if snap is not None:
                phase_snaps.append(snap)
            for label, _, _, _ in CONFIGS:
                row = cell[label]
                rows.append(row)
                print(
                    f"  n={n:4d} {daemon:19s} {label:15s} "
                    f"{row['steps_per_s']:12,.0f} steps/s "
                    f"{row['moves_per_s']:14,.0f} moves/s "
                    f"{row['wall_s'] * 1000:9.1f} ms"
                )
            # Telemetry is write-only observation, and a never-firing
            # fault schedule never touches state: both runs must be the
            # same execution, not merely a similar one.
            for variant in ("fused+telemetry", "fused+faults", "fused+churn"):
                for field in ("steps", "moves", "rounds"):
                    if cell[variant][field] != cell["fused"][field]:
                        raise SystemExit(
                            f"FAIL: {variant} changed the execution — {field} "
                            f"{cell[variant][field]} != {cell['fused'][field]}"
                        )
            ratios = {
                "kernel_vs_dict": cell["kernel"]["steps_per_s"] / cell["dict"]["steps_per_s"],
                "fused_vs_kernel": cell["fused"]["steps_per_s"] / cell["kernel"]["steps_per_s"],
                "fused_vs_dict": cell["fused"]["steps_per_s"] / cell["dict"]["steps_per_s"],
                "fused_probe_vs_kernel": (
                    cell["fused+probe"]["steps_per_s"] / cell["kernel"]["steps_per_s"]
                ),
                "probe_overhead": (
                    cell["fused"]["steps_per_s"] / cell["fused+probe"]["steps_per_s"]
                ),
                # Throughput retained with phase tracing on (>= 1 means
                # free); the 2% budget + noise puts the --check floor at
                # 0.93.
                "telemetry_vs_fused": (
                    cell["fused+telemetry"]["steps_per_s"]
                    / cell["fused"]["steps_per_s"]
                ),
                # Throughput retained with a (never-firing) fault
                # schedule attached — same 2% budget + noise floor.
                "faults_vs_fused": (
                    cell["fused+faults"]["steps_per_s"]
                    / cell["fused"]["steps_per_s"]
                ),
                # Throughput retained with a (never-firing) churn
                # schedule attached — due-check + liveness mask cost.
                "churn_vs_fused": (
                    cell["fused+churn"]["steps_per_s"]
                    / cell["fused"]["steps_per_s"]
                ),
            }
            speedups[f"{daemon}/n={n}"] = {
                key: round(value, 2) for key, value in ratios.items()
            }
            print(
                f"  n={n:4d} {daemon:19s} speedup "
                f"kernel/dict {ratios['kernel_vs_dict']:.2f}x  "
                f"fused/kernel {ratios['fused_vs_kernel']:.2f}x  "
                f"fused/dict {ratios['fused_vs_dict']:.2f}x  "
                f"fused+probe/kernel {ratios['fused_probe_vs_kernel']:.2f}x  "
                f"telemetry/fused {ratios['telemetry_vs_fused']:.2f}x  "
                f"faults/fused {ratios['faults_vs_fused']:.2f}x  "
                f"churn/fused {ratios['churn_vs_fused']:.2f}x"
            )
    return {
        "benchmark": "F1/F2 ring unison sweep (U o SDR, random initial configs)",
        "tier": "engine-substrate",
        "workload": {
            "algorithm": "U o SDR",
            "topology": "ring",
            "scenario": "random",
            "daemons": list(DAEMONS),
            "backends": [label for label, _, _, _ in CONFIGS],
            "steps_per_run": steps,
            "seed": seed,
            "repeats": repeats,
        },
        "results": rows,
        "speedup_steps_per_s": speedups,
        "telemetry_phases": telemetry.merge_snapshots(*phase_snaps),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", default="16,64,128,256",
                        help="comma-separated ring sizes (default 16,64,128,256)")
    parser.add_argument("--steps", type=int, default=2000,
                        help="steps per timed run (default 2000)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--repeats", type=int, default=3,
                        help="repetitions per cell, best-of (default 3)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the JSON report here (e.g. BENCH_core.json)")
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero unless fused >= fused+probe >= "
                             "kernel >= dict throughput at every size")
    args = parser.parse_args(argv)

    sizes = [int(tok) for tok in args.sizes.split(",") if tok.strip()]
    report = run_benchmark(sizes, args.steps, args.seed, args.repeats)

    if args.out:
        out = pathlib.Path(args.out)
        out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nwrote {out}")
        from repro.telemetry.provenance import build_manifest, write_manifest

        manifest = build_manifest(
            phase_stats=report["telemetry_phases"],
            extra={"benchmark": report["benchmark"],
                   "workload": report["workload"]},
            cwd=REPO_ROOT,
        )
        write_manifest(out, manifest)
        print(f"wrote {out.with_name(out.stem + '.manifest.json')}")

    if args.check:
        breakdown = report["telemetry_phases"].get("phases", {})
        if breakdown:
            shares = "  ".join(
                f"{name} {entry['share'] * 100:.0f}%"
                for name, entry in sorted(
                    breakdown.items(), key=lambda kv: -kv[1]["share"]
                )
            )
            print(f"fused-loop phase breakdown (stride-sampled): {shares}")
        # probe_overhead (fused / fused+probe) gets a small noise
        # allowance: the two configurations differ only by the mask
        # evaluation, and short smoke runs jitter a few percent.
        slow = {
            cell: ratios
            for cell, ratios in report["speedup_steps_per_s"].items()
            if ratios["kernel_vs_dict"] < 1.0
            or ratios["fused_vs_kernel"] < 1.0
            or ratios["fused_probe_vs_kernel"] < 1.0
            or ratios["probe_overhead"] < 0.95
        }
        if slow:
            print("FAIL: backend ordering fused >= fused+probe >= kernel "
                  f">= dict violated at {slow}")
            return 1
        # Enabled phase tracing must retain >= 93% of fused throughput:
        # the 2% sampling budget plus the same jitter allowance.
        heavy = {
            cell: ratios["telemetry_vs_fused"]
            for cell, ratios in report["speedup_steps_per_s"].items()
            if ratios["telemetry_vs_fused"] < 0.93
        }
        if heavy:
            print("FAIL: phase telemetry slowed the fused loop beyond its "
                  f"2% budget (plus noise allowance) at {heavy}")
            return 1
        # An attached-but-idle fault schedule gets the same budget: the
        # per-step due-check must not kick the loop off its fast path.
        dragging = {
            cell: ratios["faults_vs_fused"]
            for cell, ratios in report["speedup_steps_per_s"].items()
            if ratios["faults_vs_fused"] < 0.93
        }
        if dragging:
            print("FAIL: the fault-schedule due-check slowed the fused loop "
                  f"beyond its 2% budget (plus noise allowance) at {dragging}")
            return 1
        # An attached-but-idle churn schedule too: the hoisted peek and
        # the liveness mask must not kick the loop off its fast path.
        churning = {
            cell: ratios["churn_vs_fused"]
            for cell, ratios in report["speedup_steps_per_s"].items()
            if ratios["churn_vs_fused"] < 0.93
        }
        if churning:
            print("FAIL: the churn-schedule due-check slowed the fused loop "
                  f"beyond its 2% budget (plus noise allowance) at {churning}")
            return 1
        print("OK: fused >= fused+probe >= kernel >= dict throughput at "
              "every size (stabilization measurement stays on the fused "
              "loop; phase telemetry, the fault-schedule due-check, and "
              "the churn-schedule due-check within their 2% budgets)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
