"""Engine micro-benchmarks: raw simulator throughput.

Not a paper claim — these measure the substrate itself (steps/second of
the composite-atomicity engine) so regressions in the hot path (guard
evaluation, incremental enabled-set maintenance) are visible.
"""

from random import Random

from repro.core import DistributedRandomDaemon, Simulator, SynchronousDaemon
from repro.reset import SDR
from repro.topology import grid, ring
from repro.unison import Unison


def test_synchronous_unison_steady_state(benchmark):
    """Post-stabilization unison ticking on a 10×10 grid (sync daemon)."""
    net = grid(10, 10)
    sdr = SDR(Unison(net))

    def run():
        sim = Simulator(sdr, SynchronousDaemon(), seed=0)
        sim.run(max_steps=100)
        return sim.move_count

    moves = benchmark(run)
    assert moves == 100 * net.n  # every process ticks every step


def test_stabilization_from_random_config(benchmark):
    """Full stabilization of U ∘ SDR on a 64-node ring."""
    net = ring(64)
    sdr = SDR(Unison(net))
    cfg = sdr.random_configuration(Random(5))

    def run():
        sim = Simulator(sdr, DistributedRandomDaemon(0.5), config=cfg.copy(), seed=5)
        sim.run(stop_when=lambda s: sdr.is_normal(s.cfg), max_steps=500_000)
        return sim.step_count

    steps = benchmark(run)
    assert steps > 0


def test_guard_evaluation_throughput(benchmark):
    """Enabled-set recomputation over a full 12×12 grid configuration."""
    net = grid(12, 12)
    sdr = SDR(Unison(net))
    cfg = sdr.random_configuration(Random(1))

    def scan():
        return sum(len(sdr.enabled_rules(cfg, u)) for u in net.processes())

    benchmark(scan)
