"""Engine benchmark: dict reference vs array kernel on the F1/F2 sweep.

Not a paper claim — this measures the substrate itself.  The F1/F2
experiments sweep ``U ∘ SDR`` over rings from random initial
configurations; their wall time is pure simulator throughput, so this
script times exactly that workload on both execution backends and emits
``BENCH_core.json`` at the repo root: steps/sec, moves/sec and per-size
wall time for ``backend="dict"`` vs ``backend="kernel"``, plus the
speedup per size.  The tracked baseline keeps the perf trajectory
honest; CI runs a small-size smoke (``--check`` asserts the kernel is
not slower than the reference).

Usage::

    python benchmarks/bench_kernel.py                      # full sweep
    python benchmarks/bench_kernel.py --sizes 32,64 --steps 500 --check
    python benchmarks/bench_kernel.py --out BENCH_core.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from random import Random

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import Simulator, make_daemon  # noqa: E402
from repro.reset import SDR  # noqa: E402
from repro.topology import ring  # noqa: E402
from repro.unison import Unison  # noqa: E402

#: The workload: F1/F2's algorithm and topology family.
DAEMONS = ("distributed-random", "synchronous")


def time_run(
    n: int, backend: str, daemon: str, steps: int, seed: int, repeats: int
) -> dict:
    """Best-of-``repeats`` timing of one fixed-step ring unison run."""
    network = ring(n)
    sdr = SDR(Unison(network))
    cfg = sdr.random_configuration(Random(seed))
    best = None
    result = None
    for _ in range(repeats):
        sim = Simulator(
            sdr,
            make_daemon(daemon, network),
            config=cfg.copy(),
            seed=seed,
            backend=backend,
        )
        t0 = time.perf_counter()
        result = sim.run(max_steps=steps)
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return {
        "n": n,
        "daemon": daemon,
        "backend": backend,
        "steps": result.steps,
        "moves": result.moves,
        "rounds": result.rounds,
        "wall_s": round(best, 6),
        "steps_per_s": round(result.steps / best, 1),
        "moves_per_s": round(result.moves / best, 1),
    }


def run_benchmark(sizes: list[int], steps: int, seed: int, repeats: int) -> dict:
    rows = []
    speedups = {}
    for daemon in DAEMONS:
        for n in sizes:
            pair = {}
            for backend in ("dict", "kernel"):
                row = time_run(n, backend, daemon, steps, seed, repeats)
                rows.append(row)
                pair[backend] = row
                print(
                    f"  n={n:4d} {daemon:19s} {backend:6s} "
                    f"{row['steps_per_s']:12,.0f} steps/s "
                    f"{row['moves_per_s']:14,.0f} moves/s "
                    f"{row['wall_s'] * 1000:9.1f} ms"
                )
            ratio = pair["kernel"]["steps_per_s"] / pair["dict"]["steps_per_s"]
            speedups[f"{daemon}/n={n}"] = round(ratio, 2)
            print(f"  n={n:4d} {daemon:19s} speedup {ratio:.2f}x")
    return {
        "benchmark": "F1/F2 ring unison sweep (U o SDR, random initial configs)",
        "tier": "engine-substrate",
        "workload": {
            "algorithm": "U o SDR",
            "topology": "ring",
            "scenario": "random",
            "daemons": list(DAEMONS),
            "steps_per_run": steps,
            "seed": seed,
            "repeats": repeats,
        },
        "results": rows,
        "speedup_steps_per_s": speedups,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", default="16,64,128,256",
                        help="comma-separated ring sizes (default 16,64,128,256)")
    parser.add_argument("--steps", type=int, default=2000,
                        help="steps per timed run (default 2000)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--repeats", type=int, default=3,
                        help="repetitions per cell, best-of (default 3)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the JSON report here (e.g. BENCH_core.json)")
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero unless the kernel is at least as "
                             "fast as the dict reference at every size")
    args = parser.parse_args(argv)

    sizes = [int(tok) for tok in args.sizes.split(",") if tok.strip()]
    report = run_benchmark(sizes, args.steps, args.seed, args.repeats)

    if args.out:
        out = pathlib.Path(args.out)
        out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nwrote {out}")

    if args.check:
        slow = {
            cell: ratio
            for cell, ratio in report["speedup_steps_per_s"].items()
            if ratio < 1.0
        }
        if slow:
            print(f"FAIL: kernel slower than dict reference at {slow}")
            return 1
        print("OK: kernel >= dict throughput at every size")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
