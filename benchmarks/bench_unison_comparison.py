"""Benchmark T5 — ``U ∘ SDR`` vs the Boulinier-style baseline (§5.3).

The paper claims the composition matches the baseline's O(n) rounds while
strictly improving moves (O(D·n²) vs O(D·n³ + α·n²)).  Head-to-head runs
start both algorithms from the same clock disorder on the same topology.
"""

from repro.harness import experiments

from conftest import run_once


def test_t5_head_to_head_moves_and_rounds(benchmark, save_report):
    result = run_once(
        benchmark,
        experiments.experiment_t5,
        sizes=(8, 12, 16, 20),
        topology="ring",
        trials=3,
        scenario="gradient",
    )
    save_report("T5_unison_comparison", result)
    assert result.ok
