"""Benchmarks T3/T4 — ``U ∘ SDR`` stabilization bounds (Theorems 6, 7).

Regenerates the per-topology/per-scenario table of worst-case measured
moves and rounds against the explicit theorem bounds
``(3D+3)n² + (3D+1)(n−1) + 1`` and ``3n``.
"""

from repro.harness import experiments

from conftest import run_once


def test_t3_unison_moves_and_t4_rounds(benchmark, save_report):
    result = run_once(
        benchmark,
        experiments.experiment_t3_t4,
        sizes=(8, 12, 16),
        topologies=("ring", "grid", "random"),
        trials=3,
        scenarios=("random", "gradient", "split"),
    )
    save_report("T3_T4_unison_bounds", result)
    assert result.ok
