"""Benchmarks T1/T2 and P1 — the SDR layer's own bounds.

* T1 (Corollary 4): every process executes at most ``3n + 3`` SDR moves in
  any execution of ``I ∘ SDR``.
* T2 (Corollary 5): a normal configuration is reached within ``3n`` rounds.
* P1 (Theorem 3, Remarks 4/5, Theorem 4): alive roots are never created,
  executions have at most ``n + 1`` segments, and per-segment SDR rule
  sequences match the language of Theorem 4.
"""

from repro.harness import experiments

from conftest import run_once


def test_t1_t2_sdr_moves_and_rounds(benchmark, save_report):
    result = run_once(
        benchmark,
        experiments.experiment_t1_t2,
        sizes=(8, 12, 16),
        topologies=("ring", "random", "tree"),
        trials=3,
        daemons=("distributed-random", "adversarial", "synchronous"),
    )
    save_report("T1_T2_sdr_bounds", result)
    assert result.ok


def test_p1_segments_and_roots(benchmark, save_report):
    result = run_once(
        benchmark,
        experiments.experiment_p1,
        sizes=(6, 8, 10),
        topologies=("ring", "random"),
        trials=3,
    )
    save_report("P1_structure", result)
    assert result.ok
