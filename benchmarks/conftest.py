"""Shared infrastructure for the benchmark suite.

Every benchmark regenerates one experiment from the per-claim registry
(DESIGN.md §4).  Timing comes from pytest-benchmark; the experiment's
table/figure report is printed and also written to ``benchmarks/reports/``
so EXPERIMENTS.md numbers can be refreshed from disk.
"""

from __future__ import annotations

import pathlib

import pytest

REPORT_DIR = pathlib.Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def report_dir() -> pathlib.Path:
    REPORT_DIR.mkdir(exist_ok=True)
    return REPORT_DIR


@pytest.fixture
def save_report(report_dir):
    """Persist an ExperimentResult's rendering under a stable name."""

    def _save(name: str, result) -> None:
        text = result.render()
        (report_dir / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return _save


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
