"""Benchmark T10 — minimal dominating set: FGA(1,0) ∘ SDR vs Turau-style MIS.

Both compute minimal dominating sets under the unfair daemon with
identifiers; the specialized baseline is cheaper in moves — the measured
price of FGA's generality (and of self-stabilizing the whole (f,g) family
through one reset layer).
"""

from repro.harness import experiments

from conftest import run_once


def test_t10_mds_head_to_head(benchmark, save_report):
    result = run_once(
        benchmark,
        experiments.experiment_t10,
        sizes=(8, 12, 16),
        topology="random",
        trials=3,
    )
    save_report("T10_mds_comparison", result)
    assert result.ok
