"""Benchmarks T6/T7/T8 — FGA bounds.

* T6 (Theorems 12/13): ``FGA ∘ SDR`` is silent; any execution takes at most
  ``(n+1)(16mΔ + 36m + 27n)`` moves, terminal alliances verified.
* T7 (Theorem 14): stabilization within ``8n + 4`` rounds.
* T8 (Corollaries 11/12, Lemma 25): standalone FGA from ``γ_init`` within
  ``16Δm + 36m + 24n`` total moves, ``8δΔ + 18δ + 24`` per process, and
  ``5n + 4`` rounds.
"""

from repro.harness import experiments

from conftest import run_once


def test_t6_t7_fga_sdr_bounds(benchmark, save_report):
    result = run_once(
        benchmark,
        experiments.experiment_t6_t7,
        sizes=(8, 12, 16),
        topologies=("random", "grid"),
        trials=3,
        scenarios=("random", "hollow"),
    )
    save_report("T6_T7_fga_sdr_bounds", result)
    assert result.ok


def test_t8_fga_standalone_bounds(benchmark, save_report):
    result = run_once(
        benchmark,
        experiments.experiment_t8,
        sizes=(8, 12, 16),
        topologies=("random", "ring"),
        trials=3,
    )
    save_report("T8_fga_standalone", result)
    assert result.ok
