"""Benchmarks F1–F6 — the figure experiments.

* F1/F2 — unison scaling: rounds vs n, and moves vs n on log-log axes with
  fitted growth exponents (ours ≈ n², baseline ≥ ours).  Runs through the
  ``repro.engine`` campaign engine; the ``_engine_parallel`` variant fans
  the same sweep out to two worker processes against a JSONL store.
* F3 — ablation: cooperative reset footprint vs number of faults.
* F4 — ``FGA ∘ SDR`` rounds vs n against the ``8n+4`` line.
* F5 — ablation: daemon sensitivity (synchronous / central / locally
  central / distributed-random / adversarial).
* F6 — cooperative multi-initiator SDR vs the mono-initiator reset wave.
"""

from repro.harness import experiments

from conftest import run_once


def test_f1_f2_unison_scaling(benchmark, save_report):
    result = run_once(
        benchmark,
        experiments.figure_f1_f2,
        sizes=(8, 12, 16, 24),
        topology="ring",
        trials=3,
        scenario="gradient",
    )
    save_report("F1_F2_unison_scaling", result)
    assert result.ok


def test_f1_f2_engine_parallel(benchmark, save_report, tmp_path):
    """The same F1/F2 sweep fanned out to 2 workers with a persistent store."""
    from repro.engine import ResultStore

    store = ResultStore(tmp_path / "f1_f2.jsonl")
    result = run_once(
        benchmark,
        experiments.figure_f1_f2,
        sizes=(8, 12, 16, 24),
        topology="ring",
        trials=3,
        scenario="gradient",
        workers=2,
        store=store,
    )
    save_report("F1_F2_unison_scaling_engine", result)
    assert result.ok
    assert len(store.keys()) == 2 * 4 * 3  # algorithms x sizes x trials


def test_f3_reset_footprint(benchmark, save_report):
    result = run_once(
        benchmark,
        experiments.figure_f3,
        n=24,
        topology="random",
        fault_counts=(1, 2, 4, 8),
        trials=4,
    )
    save_report("F3_reset_footprint", result)
    assert result.ok


def test_f4_fga_rounds_line(benchmark, save_report):
    result = run_once(
        benchmark,
        experiments.figure_f4,
        sizes=(8, 12, 16, 24),
        topology="random",
        trials=3,
    )
    save_report("F4_fga_rounds", result)
    assert result.ok


def test_f5_daemon_ablation(benchmark, save_report):
    result = run_once(
        benchmark,
        experiments.figure_f5,
        n=16,
        topology="random",
        trials=3,
    )
    save_report("F5_daemon_ablation", result)
    assert result.ok


def test_f6_mono_vs_cooperative(benchmark, save_report):
    result = run_once(
        benchmark,
        experiments.figure_f6,
        sizes=(8, 12, 16, 24),
        topology="random",
        trials=3,
        faults=2,
    )
    save_report("F6_mono_vs_sdr", result)
    assert result.ok
