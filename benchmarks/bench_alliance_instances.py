"""Benchmark T9 — the six classical (f,g)-alliance instances (§6.1).

Dominating set, k-domination, k-tuple domination, global offensive /
defensive / powerful alliances, all via ``FGA ∘ SDR`` from arbitrary
configurations.  1-minimality is asserted where Theorem 8's ``f > g``
hypothesis holds; the ``f ≤ g`` instances are checked against the
FGA-stability predicate (see the reproduction finding in DESIGN.md §6).
"""

from repro.harness import experiments

from conftest import run_once


def test_t9_instances(benchmark, save_report):
    result = run_once(
        benchmark,
        experiments.experiment_t9,
        n=12,
        topology="random",
        trials=2,
    )
    save_report("T9_instances", result)
    assert result.ok
