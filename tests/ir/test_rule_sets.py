"""Unit tests for the rule-set layer of :mod:`repro.ir`.

Conditional actions, fast paths, clean gating of input rule sets,
collateral merging, tiling refusal, declaration errors, and the
``python -m repro.ir check`` lint itself.
"""

from random import Random

import numpy as np
import pytest

from repro.core.configuration import Configuration
from repro.core.exceptions import AlgorithmError
from repro.core.kernel.schema import Schema, Var
from repro.ir import (
    Assign,
    FastPath,
    InputRuleSet,
    Rule,
    RuleSet,
    col,
    const,
    merge_rule_sets,
)
from repro.ir.check import check_algorithm, main, run_check
from repro.topology import ring

C, D = "c", "d"


def network():
    return ring(6)


def configuration(values_c, values_d=None):
    n = len(values_c)
    values_d = values_d or [0] * n
    return Configuration(
        [{C: c, D: d} for c, d in zip(values_c, values_d)]
    )


def schema():
    return Schema(Var.int(C), Var.int(D))


# ----------------------------------------------------------------------
# Conditional actions
# ----------------------------------------------------------------------

def test_conditional_assign_only_fires_where_condition_holds():
    net = network()
    rule_set = RuleSet(
        "cond", net, schema(),
        [Rule("r", col(C) == col(C),
              [Assign(C, 0, where=col(C) > 2), Assign(D, col(C) + 1)])],
    )
    cfg = configuration([0, 1, 2, 3, 4, 5])

    dict_program = rule_set.compile_dict()
    # Below the threshold the update omits C entirely (dict contract).
    assert dict_program.execute("r", cfg, 1) == {D: 2}
    assert dict_program.execute("r", cfg, 4) == {C: 0, D: 5}

    kernel = rule_set.compile_kernel()
    cols = kernel.schema.encode(cfg)
    write = {name: column.copy() for name, column in cols.items()}
    kernel.apply("r", np.arange(net.n), cols, write)
    assert list(write[C]) == [0, 1, 2, 0, 0, 0]
    assert list(write[D]) == [1, 2, 3, 4, 5, 6]


# ----------------------------------------------------------------------
# Fast path
# ----------------------------------------------------------------------

def _fast_path_rule_set(net):
    # Full guards and fast guards agree whenever the trigger holds
    # everywhere (the author's obligation, as in SDR's all-C attractor).
    full_r1 = (col(C) == 0) & (col(D) > 2)
    rules = [
        Rule("r1", full_r1, [Assign(D, col(D) - 1)]),
        Rule("r2", col(C) != 0, [Assign(C, 0)]),
    ]
    return RuleSet(
        "fast", net, schema(), rules,
        fast_path=FastPath(col(C) == 0, {"r1": col(D) > 2}),
    )


@pytest.mark.parametrize(
    "values_c", [[0] * 6, [0, 0, 1, 0, 0, 0]], ids=["trigger", "full"]
)
def test_fast_path_masks_match_dict_guards(values_c):
    net = network()
    rule_set = _fast_path_rule_set(net)
    cfg = configuration(values_c, [1, 2, 3, 4, 5, 6])
    dict_program = rule_set.compile_dict()
    kernel = rule_set.compile_kernel()
    masks = kernel.guard_masks(kernel.schema.encode(cfg))
    for label in rule_set.rule_labels:
        mask = masks.get(label)
        got = [False] * net.n if mask is None else [bool(v) for v in mask]
        want = [dict_program.guard(label, cfg, u) for u in net.processes()]
        assert got == want, label


def test_fast_path_omits_unlisted_rules_when_triggered():
    net = network()
    kernel = _fast_path_rule_set(net).compile_kernel()
    cols = kernel.schema.encode(configuration([0] * 6, [9] * 6))
    masks = kernel.guard_masks(cols)
    assert list(masks["r1"]) == [True] * net.n
    unlisted = masks.get("r2")
    assert unlisted is None or not unlisted.any()


# ----------------------------------------------------------------------
# Input rule sets: clean gating and the reset surface
# ----------------------------------------------------------------------

def _input_rule_set(net):
    return InputRuleSet(
        "toy-input", net, Schema(Var.int(C)),
        [
            Rule("step", col(C) < 5, [Assign(C, col(C) + 1)],
                 clean_gated=True),
            Rule("fix", col(C) > 10, [Assign(C, 0)]),
        ],
        icorrect=col(C) <= 10,
        reset=col(C) == 0,
        reset_action=[Assign(C, 0)],
    )


def test_clean_gating_ands_host_mask_onto_gated_rules_only():
    net = network()
    program = _input_rule_set(net).compile_input_kernel()
    cfg = Configuration([{C: v} for v in [0, 3, 7, 11, 4, 12]])
    cols = program.schema.encode(cfg)

    ungated = program.guard_masks(cols)
    assert list(ungated["step"]) == [True, True, False, False, True, False]
    assert list(ungated["fix"]) == [False, False, False, True, False, True]

    clean = np.array([True, False, True, True, False, True])
    gated = program.guard_masks(cols, clean)
    assert list(gated["step"]) == [True, False, False, False, False, False]
    # Ungated rules ignore the host's cleanliness mask.
    assert list(gated["fix"]) == list(ungated["fix"])


def test_input_predicates_and_reset_action_lower_identically():
    net = network()
    rule_set = _input_rule_set(net)
    cfg = Configuration([{C: v} for v in [0, 3, 7, 11, 4, 12]])
    dict_program = rule_set.compile_dict()
    program = rule_set.compile_input_kernel()
    cols = program.schema.encode(cfg)

    for name, mask in (
        ("icorrect", program.icorrect_mask(cols)),
        ("reset", program.reset_mask(cols)),
    ):
        assert [bool(v) for v in mask] == [
            dict_program.predicate(name, cfg, u) for u in net.processes()
        ]

    write = {name: column.copy() for name, column in cols.items()}
    program.apply_reset(np.array([2, 3]), cols, write)
    assert list(write[C]) == [0, 3, 0, 0, 4, 12]


# ----------------------------------------------------------------------
# Collateral merge
# ----------------------------------------------------------------------

def test_merge_rule_sets_prefixes_labels_and_concatenates_schemas():
    net = network()
    a = RuleSet("a", net, Schema(Var.int(C)),
                [Rule("inc", col(C) < 3, [Assign(C, col(C) + 1)])])
    b = RuleSet("b", net, Schema(Var.int(D)),
                [Rule("dec", col(D) > 0, [Assign(D, col(D) - 1)])])
    merged = merge_rule_sets("m", net, [("a", a), ("b", b)])
    assert merged.rule_labels == ("a:inc", "b:dec")
    assert merged.schema.names == (C, D)

    cfg = configuration([0, 1, 2, 3, 4, 5], [2, 0, 1, 0, 3, 0])
    dict_program = merged.compile_dict()
    masks = merged.compile_kernel().guard_masks(merged.schema.encode(cfg))
    for u in net.processes():
        assert dict_program.guard("a:inc", cfg, u) == (cfg[u][C] < 3)
        assert dict_program.guard("b:dec", cfg, u) == (cfg[u][D] > 0)
        assert bool(masks["a:inc"][u]) == (cfg[u][C] < 3)
        assert bool(masks["b:dec"][u]) == (cfg[u][D] > 0)


def test_merge_propagates_tile_checks():
    net = network()
    a = RuleSet("a", net, Schema(Var.int(C)),
                [Rule("inc", col(C) < 3, [Assign(C, col(C) + 1)])],
                tile_check=lambda copies: copies <= 2)
    b = RuleSet("b", net, Schema(Var.int(D)),
                [Rule("dec", col(D) > 0, [Assign(D, col(D) - 1)])])
    merged = merge_rule_sets("m", net, [("a", a), ("b", b)])
    kernel = merged.compile_kernel()
    assert kernel.tiled(2) is not None
    assert kernel.tiled(3) is None  # beyond the component's bound


# ----------------------------------------------------------------------
# Tiling refusal
# ----------------------------------------------------------------------

def test_tile_check_refuses_oversized_layouts():
    net = network()
    rule_set = RuleSet(
        "bounded", net, schema(),
        [Rule("r", col(C) > 0, [Assign(C, 0)])],
        # The check sees the total number of tiled copies (trials).
        tile_check=lambda copies: copies <= 4,
    )
    kernel = rule_set.compile_kernel()
    assert kernel.tiled(4) is not None
    assert kernel.tiled(5) is None
    # Tiling composes: a tiled program re-tiles against the *total*.
    twice = kernel.tiled(2)
    assert twice.tiled(2) is not None
    assert twice.tiled(3) is None


# ----------------------------------------------------------------------
# Declaration errors
# ----------------------------------------------------------------------

def test_duplicate_rule_labels_rejected():
    net = network()
    with pytest.raises(AlgorithmError, match="duplicate"):
        RuleSet("dup", net, schema(), [
            Rule("r", col(C) > 0, [Assign(C, 0)]),
            Rule("r", col(C) < 0, [Assign(C, 1)]),
        ])


def test_undeclared_assignment_target_rejected():
    net = network()
    with pytest.raises(AlgorithmError, match="undeclared"):
        RuleSet("stray", net, Schema(Var.int(C)),
                [Rule("r", col(C) > 0, [Assign("nope", const(1))])])


# ----------------------------------------------------------------------
# The check lint
# ----------------------------------------------------------------------

def test_run_check_passes_on_every_registered_rule_set():
    lines = []
    assert run_check(out=lines.append) == 0
    assert lines[-1].startswith("all registered rule sets")
    assert main(["check"]) == 0


def test_check_flags_missing_rule_set():
    from repro.baselines.bfs_tree import BfsTree
    from repro.topology import by_name

    class Unported(BfsTree):
        name = "bfs-tree-unported"

        def rule_set(self):
            return None

    problems = check_algorithm("unported", Unported(by_name("ring", 6)))
    assert problems and "no IR definition" in problems[0]


def test_check_flags_guard_drift():
    from repro.baselines.bfs_tree import BfsTree, DIST_VAR
    from repro.topology import by_name

    class Drifted(BfsTree):
        name = "bfs-tree-drifted"

        def rule_set(self):
            honest = super().rule_set()
            never = col(DIST_VAR) != col(DIST_VAR)
            return RuleSet(
                honest.name, honest.network, honest.schema,
                [Rule(r.label, never, r.action) for r in honest.rules],
            )

    problems = check_algorithm("drifted", Drifted(by_name("ring", 6)))
    assert problems and any("guard" in p for p in problems)
