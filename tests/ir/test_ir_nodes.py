"""Unit tests: every IR node lowers identically under both compilers.

Each test builds a one-rule :class:`~repro.ir.RuleSet` whose action
stores the expression under test, evaluates it per process with the dict
interpreter, with the generated kernel, and with the kernel's
``tiled()`` form (several identical trials), and asserts the lowerings
agree value for value.  Tile-variant nodes (``proc_index``, ``nprocs``,
neighbor indices, composite-key argmin indices) state their expected
per-trial offset explicitly — that offset *is* the globalization
contract the batched engine relies on.
"""

from random import Random

import numpy as np
import pytest

from repro.core.configuration import Configuration
from repro.core.kernel.schema import Schema, Var
from repro.ir import (
    Assign,
    Rule,
    RuleSet,
    absval,
    all_neighbors,
    any_neighbors,
    argmax_over_neighbors,
    argmin_over_neighbors,
    col,
    const,
    count_neighbors,
    gather,
    max_over_neighbors,
    maximum,
    min_over_neighbors,
    minimum,
    neigh,
    neigh_index,
    nprocs,
    own,
    param,
    proc_index,
    sign,
    where,
)
from repro.topology import random_connected

X, Y, PTR, OUT = "x", "y", "ptr", "out"
COPIES = 3


def network():
    # Irregular degrees exercise the CSR reductions harder than a ring.
    return random_connected(9, p=0.4, seed=3)


def configuration(net, seed=0):
    rng = Random(seed)
    n = net.n
    states = [
        {
            X: rng.randrange(-6, 12),
            Y: rng.random() < 0.5,
            PTR: rng.choice([None] + list(range(n))),
            OUT: 0,
        }
        for _ in range(n)
    ]
    states[0][PTR] = None  # at least one ⊥ pointer, whatever the seed
    return Configuration(states)


def lowerings(expr, *, seed=0, tiled_block=None):
    """Evaluate ``expr`` per process under all three lowerings.

    Returns the dict interpreter's values after asserting the flat
    kernel agrees exactly and every tiled block matches ``tiled_block``
    (a ``(base_vals, trial, n) -> expected`` map; identity by default).
    """
    net = network()
    cfg = configuration(net, seed)
    n = net.n
    schema = Schema(Var.int(X), Var.bool(Y), Var.opt_index(PTR), Var.int(OUT))
    rule_set = RuleSet(
        "node-test", net, schema,
        [Rule("r", col(X) == col(X), [Assign(OUT, expr)])],
    )

    dict_program = rule_set.compile_dict()
    dict_vals = [
        int(dict_program.execute("r", cfg, u)[OUT]) for u in net.processes()
    ]

    kernel = rule_set.compile_kernel()
    cols = kernel.schema.encode(cfg)
    write = {name: column.copy() for name, column in cols.items()}
    kernel.apply("r", np.arange(n), cols, write)
    kernel_vals = [int(v) for v in write[OUT]]
    assert kernel_vals == dict_vals, "kernel lowering diverges from dict"

    tiled = kernel.tiled(COPIES)
    tcols = kernel.schema.encode_tiled([cfg] * COPIES)
    twrite = {name: column.copy() for name, column in tcols.items()}
    tiled.apply("r", np.arange(n * COPIES), tcols, twrite)
    for t in range(COPIES):
        block = [int(v) for v in twrite[OUT][t * n:(t + 1) * n]]
        expected = (
            dict_vals if tiled_block is None else tiled_block(dict_vals, t, n)
        )
        assert block == expected, f"tiled block {t} diverges"
    return dict_vals


# ----------------------------------------------------------------------
# Process-space scalars
# ----------------------------------------------------------------------

def test_const_col_arithmetic():
    vals = lowerings(col(X) * 2 + const(7) - col(X) // 4)
    assert len(set(vals)) > 1  # the sample config actually varies


def test_mod_floordiv_match_numpy_on_negatives():
    # python // and % agree with numpy int64 on negative operands; the
    # dict interpreter leans on that (unison's congruence windows).
    lowerings(col(X) % 5)
    lowerings(col(X) // 3)


@pytest.mark.parametrize(
    "make",
    [
        lambda: col(X) == const(2),
        lambda: col(X) != const(2),
        lambda: col(X) < const(3),
        lambda: col(X) <= const(3),
        lambda: col(X) > const(3),
        lambda: col(X) >= const(3),
    ],
    ids=["eq", "ne", "lt", "le", "gt", "ge"],
)
def test_comparisons(make):
    vals = lowerings(where(make(), 1, 0))
    assert set(vals) <= {0, 1}


def test_boolean_connectives():
    flag = (col(X) > 0) & ~col(Y) | (col(X) % 2 == 0)
    lowerings(where(flag, 1, 0))


def test_unary_ops():
    lowerings(-col(X))
    lowerings(absval(col(X)))
    lowerings(sign(col(X)))


def test_min2_max2():
    lowerings(minimum(col(X), const(4)))
    lowerings(maximum(col(X), -col(X)))


def test_where_selects_per_process():
    vals = lowerings(where(col(Y), col(X), -col(X)))
    assert any(v < 0 for v in vals) and any(v > 0 for v in vals)


def test_param_is_per_process_and_tiles():
    net = network()
    values = tuple(range(10, 10 + net.n))
    lowerings(param(values, "ids") + col(X))


def test_proc_index_and_nprocs_are_global_under_tiling():
    # In a tiled layout process w of trial t occupies slot t·n + w and
    # nprocs() is the *runtime* total — exactly what composite keys and
    # globalized opt_index columns need.
    lowerings(
        proc_index() + nprocs(),
        tiled_block=lambda base, t, n: [
            v + t * n + (COPIES - 1) * n for v in base
        ],
    )


# ----------------------------------------------------------------------
# Edge space: neigh/own lifts and reductions
# ----------------------------------------------------------------------

def test_all_any_count_neighbors():
    lowerings(where(all_neighbors(neigh(col(X)) <= own(col(X))), 1, 0))
    lowerings(where(any_neighbors(neigh(col(Y)) & ~own(col(Y))), 1, 0))
    vals = lowerings(count_neighbors(neigh(col(Y))))
    assert max(vals) >= 1


def test_min_max_over_neighbors_with_filter_and_default():
    lowerings(min_over_neighbors(neigh(col(X)), where=neigh(col(Y)), default=99))
    lowerings(max_over_neighbors(neigh(col(X)) - own(col(X)), default=-99))


def test_neigh_index_is_global_under_tiling():
    vals = lowerings(
        min_over_neighbors(neigh_index(), default=-1),
        tiled_block=lambda base, t, n: [v + t * n for v in base],
    )
    assert all(v >= 0 for v in vals)


def test_gather_follows_pointers():
    vals = lowerings(where(col(PTR) >= 0, gather(col(PTR), col(X)), const(-77)))
    assert -77 in vals  # the sample config has at least one ⊥ pointer


def test_argmin_key_and_index():
    choice = argmin_over_neighbors(neigh(col(X)), sentinel=10**9)
    lowerings(choice.key)
    lowerings(where(choice.found, 1, 0))
    lowerings(
        choice.index,
        tiled_block=lambda base, t, n: [
            v if v < 0 else v + t * n for v in base
        ],
    )


def test_argmin_breaks_ties_toward_smallest_index():
    # Constant key → every neighbor ties → winner is the smallest index.
    choice = argmin_over_neighbors(neigh(const(5)), sentinel=10**9)
    net = network()
    vals = lowerings(
        choice.index,
        tiled_block=lambda base, t, n: [v + t * n for v in base],
    )
    assert vals == [min(net.neighbors(u)) for u in net.processes()]


def test_argmax_with_filter_reports_not_found():
    choice = argmax_over_neighbors(
        neigh(col(X)), where=neigh(col(Y)), sentinel=-1
    )
    vals = lowerings(
        choice.index,
        tiled_block=lambda base, t, n: [
            v if v < 0 else v + t * n for v in base
        ],
    )
    net = network()
    cfg = configuration(net)
    for u, got in zip(net.processes(), vals):
        candidates = [v for v in net.neighbors(u) if cfg[v][Y]]
        if not candidates:
            assert got == -1
        else:
            best = max(candidates, key=lambda v: (cfg[v][X], v))
            assert got == best


# ----------------------------------------------------------------------
# Guards: the mask path (not just actions) agrees per node too
# ----------------------------------------------------------------------

def test_guard_masks_match_dict_guards():
    net = network()
    cfg = configuration(net)
    schema = Schema(Var.int(X), Var.bool(Y), Var.opt_index(PTR), Var.int(OUT))
    guard = (col(X) % 3 == 0) | (col(Y) & any_neighbors(neigh(col(X)) > 5))
    rule_set = RuleSet(
        "guard-test", net, schema, [Rule("r", guard, [Assign(OUT, 1)])]
    )
    dict_program = rule_set.compile_dict()
    expected = [dict_program.guard("r", cfg, u) for u in net.processes()]

    kernel = rule_set.compile_kernel()
    cols = kernel.schema.encode(cfg)
    assert list(kernel.guard_masks(cols)["r"]) == expected

    n = net.n
    tiled = kernel.tiled(COPIES)
    tmask = tiled.guard_masks(kernel.schema.encode_tiled([cfg] * COPIES))["r"]
    for t in range(COPIES):
        assert list(tmask[t * n:(t + 1) * n]) == expected
