"""Unit tests for SDR's predicates and macros (Algorithm 1), on hand-built
configurations of ``U ∘ SDR`` over small graphs."""

import pytest

from repro.core import Configuration, Network
from repro.reset import C, RB, RF, SDR
from repro.unison import Unison

PATH = Network([(0, 1), (1, 2)])  # 0 - 1 - 2
TRIANGLE = Network([(0, 1), (1, 2), (0, 2)])


def make(net=PATH, period=None):
    return SDR(Unison(net, period=period))


def cfg_of(*triples):
    """Build a configuration from (st, d, c) per process."""
    return Configuration([{"st": st, "d": d, "c": c} for st, d, c in triples])


class TestPClean:
    def test_all_c_is_clean(self):
        sdr = make()
        cfg = cfg_of((C, 0, 0), (C, 0, 0), (C, 0, 0))
        assert all(sdr.p_clean(cfg, u) for u in range(3))

    def test_own_status_breaks_cleanliness(self):
        sdr = make()
        cfg = cfg_of((RB, 0, 0), (C, 0, 0), (C, 0, 0))
        assert not sdr.p_clean(cfg, 0)
        assert not sdr.p_clean(cfg, 1)  # neighbor of the RB process
        assert sdr.p_clean(cfg, 2)  # not adjacent to it


class TestPCorrect:
    def test_correct_when_not_c(self):
        sdr = make()
        # Clocks wildly wrong but status RB: P_Correct vacuous.
        cfg = cfg_of((RB, 0, 0), (C, 0, 2), (C, 0, 0))
        assert sdr.p_correct(cfg, 0)

    def test_incorrect_clock_with_status_c(self):
        sdr = make(period=5)
        cfg = cfg_of((C, 0, 0), (C, 0, 2), (C, 0, 2))
        assert not sdr.p_correct(cfg, 0)
        assert not sdr.p_correct(cfg, 1)
        assert sdr.p_correct(cfg, 2)


class TestPR1PR2:
    def test_p_r1_requires_rf_neighbor_and_unreset_state(self):
        sdr = make()
        cfg = cfg_of((C, 0, 3), (RF, 0, 0), (C, 0, 0))
        assert sdr.p_r1(cfg, 0)  # c=3 ≠ 0 and neighbor RF
        assert not sdr.p_r1(cfg, 2)  # c=0 satisfies P_reset

    def test_p_r1_false_without_rf_neighbor(self):
        sdr = make()
        cfg = cfg_of((C, 0, 3), (RB, 0, 0), (C, 0, 0))
        assert not sdr.p_r1(cfg, 0)

    def test_p_r2_detects_unreset_resetting_process(self):
        sdr = make()
        cfg = cfg_of((RB, 0, 3), (C, 0, 0), (RF, 0, 0))
        assert sdr.p_r2(cfg, 0)  # RB but c ≠ 0
        assert not sdr.p_r2(cfg, 1)  # status C
        assert not sdr.p_r2(cfg, 2)  # RF and c = 0


class TestPRB:
    def test_joins_broadcasting_neighbor(self):
        sdr = make()
        cfg = cfg_of((RB, 0, 0), (C, 0, 1), (C, 0, 2))
        assert sdr.p_rb(cfg, 1)
        assert not sdr.p_rb(cfg, 2)  # no RB neighbor
        assert not sdr.p_rb(cfg, 0)  # not status C


class TestPRF:
    def test_all_neighbors_covered(self):
        sdr = make()
        # 1 is RB at distance 1; neighbors: 0 RB d=0 (≤), 2 RF reset.
        cfg = cfg_of((RB, 0, 0), (RB, 1, 0), (RF, 2, 0))
        assert sdr.p_rf(cfg, 1)

    def test_blocked_by_deeper_broadcasting_neighbor(self):
        sdr = make()
        # 1's neighbor 2 is RB with greater distance: must wait.
        cfg = cfg_of((RB, 0, 0), (RB, 1, 0), (RB, 2, 0))
        assert not sdr.p_rf(cfg, 1)
        assert sdr.p_rf(cfg, 2)  # deepest process may feed back

    def test_blocked_by_c_neighbor(self):
        sdr = make()
        cfg = cfg_of((C, 0, 0), (RB, 1, 0), (RF, 2, 0))
        assert not sdr.p_rf(cfg, 1)

    def test_requires_own_reset_state(self):
        sdr = make()
        cfg = cfg_of((RB, 0, 0), (RB, 1, 5), (RF, 2, 0))
        assert not sdr.p_rf(cfg, 1)  # c=5: P_reset fails

    def test_rf_neighbor_must_be_reset(self):
        sdr = make()
        cfg = cfg_of((RB, 0, 0), (RB, 1, 0), (RF, 2, 3))
        assert not sdr.p_rf(cfg, 1)


class TestPC:
    def test_feedback_root_completes(self):
        sdr = make()
        # 0 is RF at distance 0, neighbor 1 RF with d ≥: can complete.
        cfg = cfg_of((RF, 0, 0), (RF, 1, 0), (RF, 2, 0))
        assert sdr.p_c(cfg, 0)
        assert not sdr.p_c(cfg, 1)  # neighbor 0 has smaller d and isn't C

    def test_complete_next_to_c_neighbors(self):
        sdr = make()
        cfg = cfg_of((C, 0, 0), (RF, 1, 0), (C, 0, 0))
        assert sdr.p_c(cfg, 1)

    def test_blocked_by_unreset_member(self):
        sdr = make()
        cfg = cfg_of((C, 0, 4), (RF, 1, 0), (C, 0, 0))
        assert not sdr.p_c(cfg, 1)  # neighbor 0 violates P_reset

    def test_blocked_by_rb_neighbor(self):
        sdr = make()
        cfg = cfg_of((RB, 2, 0), (RF, 1, 0), (C, 0, 0))
        assert not sdr.p_c(cfg, 1)


class TestPUp:
    def test_fires_on_locally_incorrect_clock(self):
        sdr = make(period=5)
        cfg = cfg_of((C, 0, 0), (C, 0, 2), (C, 0, 2))
        assert sdr.p_up(cfg, 0)
        assert sdr.p_up(cfg, 1)
        assert not sdr.p_up(cfg, 2)

    def test_rb_neighbor_suppresses_initiation(self):
        sdr = make(period=5)
        # 1 would initiate (incoherent with 0) but 0 broadcasts: join instead.
        cfg = cfg_of((RB, 0, 0), (C, 0, 2), (C, 0, 2))
        assert not sdr.p_up(cfg, 1)
        assert sdr.p_rb(cfg, 1)

    def test_fires_on_p_r2(self):
        sdr = make()
        cfg = cfg_of((RF, 0, 3), (C, 0, 0), (C, 0, 0))
        assert sdr.p_up(cfg, 0)


class TestRootsPredicates:
    def test_p_root(self):
        sdr = make()
        cfg = cfg_of((RB, 0, 0), (RB, 1, 0), (C, 0, 0))
        assert sdr.p_root(cfg, 0)
        assert not sdr.p_root(cfg, 1)

    def test_alive_root_includes_p_up(self):
        sdr = make(period=5)
        cfg = cfg_of((C, 0, 0), (C, 0, 2), (C, 0, 2))
        assert sdr.is_alive_root(cfg, 0)

    def test_dead_root(self):
        sdr = make()
        cfg = cfg_of((RF, 0, 0), (RF, 1, 0), (RF, 2, 0))
        assert sdr.is_dead_root(cfg, 0)
        assert not sdr.is_dead_root(cfg, 1)


class TestMacrosAndRules:
    def test_be_root_via_rule_r(self):
        sdr = make(period=5)
        cfg = cfg_of((C, 3, 4), (C, 0, 1), (C, 0, 1))
        updates = sdr.execute("rule_R", cfg, 0)
        assert updates == {"st": RB, "d": 0, "c": 0}

    def test_compute_joins_minimum_distance_plus_one(self):
        net = Network([(0, 1), (1, 2), (1, 3)])
        sdr = SDR(Unison(net))
        cfg = Configuration(
            [
                {"st": RB, "d": 4, "c": 0},
                {"st": C, "d": 0, "c": 2},
                {"st": RB, "d": 2, "c": 0},
                {"st": C, "d": 0, "c": 0},
            ]
        )
        updates = sdr.execute("rule_RB", cfg, 1)
        assert updates["st"] == RB
        assert updates["d"] == 3  # min(4, 2) + 1
        assert updates["c"] == 0  # reset applied

    def test_rule_rf_and_rule_c_only_touch_status(self):
        sdr = make()
        cfg = cfg_of((RB, 1, 0), (RF, 2, 0), (C, 0, 0))
        assert sdr.execute("rule_RF", cfg, 0) == {"st": RF}
        assert sdr.execute("rule_C", cfg, 1) == {"st": C}

    def test_input_rule_delegated(self):
        sdr = make(period=5)
        cfg = cfg_of((C, 0, 1), (C, 0, 1), (C, 0, 2))
        assert sdr.guard("rule_U", cfg, 0)
        assert sdr.execute("rule_U", cfg, 0) == {"c": 2}


class TestCompositionHygiene:
    def test_variable_collision_rejected(self):
        from repro.core import AlgorithmError
        from repro.reset.interface import InputAlgorithm

        class BadInput(Unison):
            def variables(self):
                return ("c", "st")

        with pytest.raises(AlgorithmError, match="SDR's variables"):
            SDR(BadInput(PATH))

    def test_rule_collision_rejected(self):
        from repro.core import AlgorithmError

        class BadInput(Unison):
            def rule_names(self):
                return ("rule_RB",)

        with pytest.raises(AlgorithmError, match="rule labels"):
            SDR(BadInput(PATH))

    def test_normal_configuration_characterization(self):
        sdr = make(period=5)
        assert sdr.is_normal(cfg_of((C, 0, 0), (C, 0, 1), (C, 0, 1)))
        assert not sdr.is_normal(cfg_of((C, 0, 0), (C, 0, 2), (C, 0, 2)))
        assert not sdr.is_normal(cfg_of((RB, 0, 0), (C, 0, 0), (C, 0, 0)))
