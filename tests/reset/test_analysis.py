"""Unit tests for the proof-artifact analyses (Section 4 machinery)."""

from random import Random

import pytest

from repro.analysis import bounds
from repro.core import (
    Configuration,
    DistributedRandomDaemon,
    Network,
    Simulator,
    Trace,
    measure_stabilization,
)
from repro.reset import C, RB, RF, SDR
from repro.reset.analysis import (
    alive_roots,
    attractor_level,
    attractor_p1,
    attractor_p4,
    dead_roots,
    max_branch_depth,
    reset_branches,
    reset_children,
    reset_parents,
    rparent,
    sdr_sequence_in_language,
    segment_rule_sequences_ok,
    split_segments,
)
from repro.topology import by_name, ring
from repro.unison import Unison

PATH = Network([(0, 1), (1, 2)])


def cfg_of(*triples):
    return Configuration([{"st": st, "d": d, "c": c} for st, d, c in triples])


def make(net=PATH, period=5):
    return SDR(Unison(net, period=period))


class TestResetParents:
    def test_rparent_holds_on_broadcast_chain(self):
        sdr = make()
        cfg = cfg_of((RB, 0, 0), (RB, 1, 0), (RB, 2, 0))
        assert rparent(sdr, cfg, 0, 1)
        assert rparent(sdr, cfg, 1, 2)
        assert not rparent(sdr, cfg, 1, 0)  # distances wrong way

    def test_rb_parent_covers_rf_child_but_not_reverse(self):
        sdr = make()
        cfg = cfg_of((RB, 0, 0), (RF, 1, 0), (RB, 2, 0))
        assert rparent(sdr, cfg, 0, 1)  # st_v = RB case
        assert not rparent(sdr, cfg, 1, 2)  # RF parent, RB child: st differ

    def test_unreset_child_is_not_in_a_branch(self):
        sdr = make()
        cfg = cfg_of((RB, 0, 0), (RB, 1, 3), (C, 0, 0))
        assert not rparent(sdr, cfg, 0, 1)  # c=3 violates P_reset

    def test_parents_and_children_views_agree(self):
        sdr = make()
        cfg = cfg_of((RB, 0, 0), (RB, 1, 0), (RB, 2, 0))
        assert reset_parents(sdr, cfg, 1) == [0]
        assert reset_children(sdr, cfg, 0) == [1]


class TestBranches:
    def test_branch_enumeration_on_chain(self):
        sdr = make()
        cfg = cfg_of((RB, 0, 0), (RB, 1, 0), (RB, 2, 0))
        assert reset_branches(sdr, cfg) == [[0, 1, 2]]

    def test_max_branch_depth(self):
        sdr = make()
        cfg = cfg_of((RB, 0, 0), (RB, 1, 0), (RB, 2, 0))
        assert max_branch_depth(sdr, cfg) == {0: 0, 1: 1, 2: 2}

    def test_branch_statuses_match_lemma7(self):
        """Lemma 7.2: along any branch the statuses are RB* RF*."""
        sdr = make()
        cfg = cfg_of((RB, 0, 0), (RB, 1, 0), (RF, 2, 0))
        for branch in reset_branches(sdr, cfg):
            statuses = [cfg[u]["st"] for u in branch]
            joined = "".join("B" if s == RB else "F" for s in statuses)
            assert "BF" not in joined[::-1]  # no RB after RF

    def test_normal_configuration_has_no_branches(self):
        sdr = make()
        cfg = cfg_of((C, 0, 0), (C, 0, 0), (C, 0, 1))
        assert reset_branches(sdr, cfg) == []
        assert alive_roots(sdr, cfg) == set()
        assert dead_roots(sdr, cfg) == set()


class TestRootSets:
    def test_alive_and_dead_roots_on_crafted_configs(self):
        sdr = make()
        cfg = cfg_of((RB, 0, 0), (RB, 1, 0), (RF, 2, 0))
        assert 0 in alive_roots(sdr, cfg)
        cfg2 = cfg_of((RF, 0, 0), (RF, 1, 0), (RF, 2, 0))
        assert dead_roots(sdr, cfg2) == {0}


class TestSegments:
    def test_language_membership(self):
        good = [
            [],
            ["rule_C"],
            ["rule_RB"],
            ["rule_R", "rule_RF"],
            ["rule_C", "rule_RB", "rule_RF"],
            ["rule_C", "rule_R"],
        ]
        bad = [
            ["rule_RF", "rule_C"],
            ["rule_RB", "rule_RB"],
            ["rule_C", "rule_C"],
            ["rule_RF", "rule_RF"],
            ["rule_RB", "rule_R"],
        ]
        for seq in good:
            assert sdr_sequence_in_language(seq), seq
        for seq in bad:
            assert not sdr_sequence_in_language(seq), seq

    @pytest.mark.parametrize("seed", range(3))
    def test_recorded_executions_obey_theorem4(self, seed):
        net = by_name("random", 8, seed=seed)
        sdr = SDR(Unison(net))
        trace = Trace(record_configurations=True)
        sim = Simulator(
            sdr, DistributedRandomDaemon(0.5),
            config=sdr.random_configuration(Random(seed)), seed=seed, trace=trace,
        )
        measure_stabilization(sim, sdr.is_normal, max_steps=200_000)
        assert segment_rule_sequences_ok(sdr, trace)
        segments = split_segments(sdr, trace)
        assert 1 <= len(segments) <= bounds.segments_bound(net.n)

    def test_split_segments_requires_snapshots(self):
        sdr = make()
        with pytest.raises(ValueError):
            split_segments(sdr, Trace(record_configurations=False))


class TestAttractors:
    def test_normal_configuration_is_level_4(self):
        sdr = make()
        cfg = cfg_of((C, 0, 0), (C, 0, 1), (C, 0, 1))
        assert attractor_p4(sdr, cfg)
        assert attractor_level(sdr, cfg) == 4

    def test_feedback_only_configuration_is_level_3(self):
        sdr = make()
        cfg = cfg_of((RF, 0, 0), (RF, 1, 0), (RF, 2, 0))
        assert attractor_level(sdr, cfg) == 3

    def test_incoherent_configuration_is_level_0(self):
        sdr = make()
        cfg = cfg_of((C, 0, 0), (C, 0, 2), (C, 0, 2))
        assert not attractor_p1(sdr, cfg)
        assert attractor_level(sdr, cfg) == 0

    @pytest.mark.parametrize("seed", range(3))
    def test_attractor_level_is_monotone_along_executions(self, seed):
        """P1 ⊆ P2 ⊆ P3 ⊆ P4 are closed (Lemmas 11–16): the level never
        decreases along any execution."""
        net = ring(7)
        sdr = SDR(Unison(net))
        trace = Trace(record_configurations=True)
        sim = Simulator(
            sdr, DistributedRandomDaemon(0.5),
            config=sdr.random_configuration(Random(seed)), seed=seed, trace=trace,
        )
        measure_stabilization(sim, sdr.is_normal, max_steps=200_000)
        levels = [attractor_level(sdr, cfg) for cfg in trace.configurations]
        assert all(a <= b for a, b in zip(levels, levels[1:]))
        assert levels[-1] == 4
