"""Behavioral tests of SDR: typical execution, terminal characterization,
stabilization bounds (Corollaries 4 and 5) on concrete runs."""

from random import Random

import pytest

from repro.analysis import bounds
from repro.core import (
    Configuration,
    DistributedRandomDaemon,
    Network,
    ScriptedDaemon,
    Simulator,
    SynchronousDaemon,
    measure_stabilization,
)
from repro.harness.experiments import SdrMoveCounter
from repro.reset import C, RB, RF, SDR
from repro.topology import by_name, ring
from repro.unison import Unison

PATH = Network([(0, 1), (1, 2)])


def cfg_of(*triples):
    return Configuration([{"st": st, "d": d, "c": c} for st, d, c in triples])


class TestTypicalExecution:
    def test_full_reset_wave_on_a_path(self):
        """Drive the Section 3.3 'typical execution' by hand: initiation,
        broadcast joins, feedback up the DAG, completion down."""
        sdr = SDR(Unison(PATH, period=5))
        # One inconsistency: process 0's clock is far from its neighbor's.
        start = cfg_of((C, 0, 3), (C, 0, 0), (C, 0, 0))
        script = [
            {0: "rule_R"},    # 0 initiates: (RB, 0), c := 0
            {1: "rule_RB"},   # 1 joins: (RB, 1)
            {2: "rule_RB"},   # 2 joins: (RB, 2)
            {2: "rule_RF"},   # deepest feeds back
            {1: "rule_RF"},
            {0: "rule_RF"},   # root becomes a dead root
            {0: "rule_C"},    # completion propagates down
            {1: "rule_C"},
            {2: "rule_C"},
        ]
        sim = Simulator(sdr, ScriptedDaemon(script), config=start, seed=0)
        for _ in script:
            sim.step()
        assert sdr.is_normal(sim.cfg)
        assert sim.cfg.variable("c") == [0, 0, 0]

    def test_terminal_iff_clean_and_icorrect(self):
        """Theorem 1: terminal configurations of the SDR layer are exactly
        the normal configurations."""
        sdr = SDR(Unison(PATH, period=5))
        normal = cfg_of((C, 0, 1), (C, 0, 1), (C, 0, 2))
        assert sdr.is_normal(normal)
        # Only U's rule may be enabled there, never an SDR rule.
        for u in range(3):
            for rule in ("rule_RB", "rule_RF", "rule_C", "rule_R"):
                assert not sdr.guard(rule, normal, u)

        broken = cfg_of((C, 0, 1), (C, 0, 3), (C, 0, 2))
        assert not sdr.is_normal(broken)
        assert any(
            sdr.guard(rule, broken, u)
            for u in range(3)
            for rule in ("rule_RB", "rule_RF", "rule_C", "rule_R")
        )

    def test_join_preferred_over_initiation(self):
        sdr = SDR(Unison(PATH, period=5))
        cfg = cfg_of((RB, 0, 0), (C, 0, 3), (C, 0, 3))
        assert sdr.guard("rule_RB", cfg, 1)
        assert not sdr.guard("rule_R", cfg, 1)


class TestStabilizationBounds:
    @pytest.mark.parametrize("topo", ["ring", "random", "tree"])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_rounds_bound_cor5(self, topo, seed):
        net = by_name(topo, 10, seed=seed)
        sdr = SDR(Unison(net))
        cfg = sdr.random_configuration(Random(seed))
        sim = Simulator(sdr, DistributedRandomDaemon(0.5), config=cfg, seed=seed)
        detector, _ = measure_stabilization(sim, sdr.is_normal, max_steps=500_000)
        assert detector.rounds <= bounds.sdr_rounds_bound(net.n)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_sdr_moves_per_process_cor4(self, seed):
        net = ring(8)
        sdr = SDR(Unison(net))
        cfg = sdr.random_configuration(Random(seed))
        counter = SdrMoveCounter(net.n)
        sim = Simulator(
            sdr, DistributedRandomDaemon(0.5), config=cfg, seed=seed,
            observers=[counter],
        )
        measure_stabilization(sim, sdr.is_normal, max_steps=500_000)
        sim.run(max_steps=200)  # whole-execution bound: keep going
        assert max(counter.counts) <= bounds.sdr_moves_per_process_bound(net.n)

    def test_synchronous_daemon_respects_bounds(self):
        net = ring(9)
        sdr = SDR(Unison(net))
        cfg = sdr.random_configuration(Random(3))
        sim = Simulator(sdr, SynchronousDaemon(), config=cfg, seed=3)
        detector, _ = measure_stabilization(sim, sdr.is_normal, max_steps=100_000)
        assert detector.rounds <= bounds.sdr_rounds_bound(net.n)


class TestMutualExclusion:
    @pytest.mark.parametrize("seed", range(5))
    def test_lemma5_no_two_sdr_rules_enabled(self, seed):
        """Lemma 5 + Remark 2, checked on random configurations: at most one
        rule of the whole composition is enabled per process."""
        net = by_name("random", 8, seed=seed)
        sdr = SDR(Unison(net))
        rng = Random(seed)
        for _ in range(50):
            cfg = sdr.random_configuration(rng)
            for u in net.processes():
                assert len(sdr.enabled_rules(cfg, u)) <= 1

    def test_strict_simulator_accepts_whole_runs(self):
        # The simulator's strict mode would raise on any violation.
        net = ring(7)
        sdr = SDR(Unison(net))
        sim = Simulator(
            sdr, DistributedRandomDaemon(0.5),
            config=sdr.random_configuration(Random(11)), seed=11, strict=True,
        )
        measure_stabilization(sim, sdr.is_normal, max_steps=500_000)


class TestDistanceDag:
    def test_broadcast_distances_increase_away_from_root(self):
        """After a scripted wave on a path, distances form the reset DAG."""
        sdr = SDR(Unison(PATH, period=5))
        start = cfg_of((C, 0, 3), (C, 0, 0), (C, 0, 0))
        sim = Simulator(
            sdr,
            ScriptedDaemon([{0: "rule_R"}, {1: "rule_RB"}, {2: "rule_RB"}]),
            config=start,
            seed=0,
        )
        for _ in range(3):
            sim.step()
        assert sim.cfg.variable("st") == [RB, RB, RB]
        assert sim.cfg.variable("d") == [0, 1, 2]
