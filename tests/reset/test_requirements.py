"""Tests of the input-algorithm requirement checker (Section 3.5).

Both directions: the paper's input algorithms pass every check, and
deliberately broken inputs are caught.
"""

from random import Random

import pytest

from repro.alliance import FGA, dominating_set
from repro.core import (
    DistributedRandomDaemon,
    Network,
    RequirementViolation,
    Simulator,
)
from repro.reset import (
    RequirementObserver,
    SDR,
    check_configuration,
    check_independence,
    check_requirements,
    check_reset_establishes,
)
from repro.topology import ring
from repro.unison import Unison

NET = ring(6)


class TestConformingInputs:
    @pytest.mark.parametrize("seed", range(3))
    def test_unison_passes_static_checks(self, seed):
        sdr = SDR(Unison(NET))
        rng = Random(seed)
        check_requirements(sdr, sdr.random_configuration(rng), rng)

    @pytest.mark.parametrize("seed", range(3))
    def test_fga_passes_static_checks(self, seed):
        f, g = dominating_set(NET)
        sdr = SDR(FGA(NET, f, g))
        rng = Random(seed)
        check_requirements(sdr, sdr.random_configuration(rng), rng)

    def test_unison_passes_dynamic_checks(self):
        sdr = SDR(Unison(NET))
        observer = RequirementObserver(sdr)
        sim = Simulator(
            sdr, DistributedRandomDaemon(0.5),
            config=sdr.random_configuration(Random(5)), seed=5,
            observers=[observer],
        )
        sim.run(max_steps=400)

    def test_fga_passes_dynamic_checks(self):
        f, g = dominating_set(NET)
        sdr = SDR(FGA(NET, f, g))
        observer = RequirementObserver(sdr)
        sim = Simulator(
            sdr, DistributedRandomDaemon(0.5),
            config=sdr.random_configuration(Random(6)), seed=6,
            observers=[observer],
        )
        sim.run_to_termination(max_steps=100_000)


class BrokenClean(Unison):
    """Violates Requirement 2c: runs even when the neighborhood is dirty."""

    def guard(self, rule, cfg, u):
        return self.p_up(cfg, u)  # P_Clean dropped


class BrokenReset(Unison):
    """Violates Requirement 2e: reset does not establish P_reset."""

    def reset_updates(self, cfg, u):
        return {"c": 1}


class BrokenResetLocality(Unison):
    """Violates Requirement 2b: P_reset reads a neighbor's variable."""

    def p_reset(self, cfg, u):
        v = self.network.neighbors(u)[0]
        return cfg[u]["c"] == 0 and cfg[v]["c"] == 0


class BrokenIcorrectReadsSdr(Unison):
    """Violates Requirement 2a: P_ICorrect reads SDR's status variable."""

    def p_icorrect(self, cfg, u):
        return super().p_icorrect(cfg, u) and cfg[u]["st"] == "C"


class TestViolationsCaught:
    def _dirty_config(self, sdr):
        cfg = sdr.initial_configuration()
        cfg.set(0, "st", "RB")
        cfg.set(1, "c", 2)  # make P_Up(1) hold while ¬P_Clean(1)
        cfg.set(2, "c", 1)
        return cfg

    def test_req_2c_violation(self):
        sdr = SDR(BrokenClean(NET))
        cfg = self._dirty_config(sdr)
        with pytest.raises(RequirementViolation, match="Req 2c"):
            check_configuration(sdr, cfg)

    def test_req_2e_violation(self):
        sdr = SDR(BrokenReset(NET))
        cfg = sdr.initial_configuration()
        with pytest.raises(RequirementViolation, match="Req 2e"):
            check_reset_establishes(sdr, cfg, 0)

    def test_req_2b_violation(self):
        sdr = SDR(BrokenResetLocality(NET))
        cfg = sdr.initial_configuration()
        with pytest.raises(RequirementViolation, match="Req 2b"):
            check_independence(sdr, cfg, Random(0), samples=8)

    def test_req_2a_violation(self):
        sdr = SDR(BrokenIcorrectReadsSdr(NET))
        cfg = sdr.initial_configuration()
        with pytest.raises(RequirementViolation, match="Req 2a"):
            check_independence(sdr, cfg, Random(0), samples=8)

    def test_req_1_violation_dynamic(self):
        class WritesSdrVars(Unison):
            def execute(self, rule, cfg, u):
                return {"c": (cfg[u]["c"] + 1) % self.period, "st": "C"}

        sdr = SDR(WritesSdrVars(NET))
        observer = RequirementObserver(sdr)
        sim = Simulator(
            sdr, DistributedRandomDaemon(0.9),
            config=sdr.initial_configuration(), seed=0, observers=[observer],
            strict=False,
        )
        with pytest.raises(RequirementViolation, match="Req 1"):
            sim.run(max_steps=50)

    def test_req_2d_violation(self):
        class NeverCorrect(Unison):
            def p_icorrect(self, cfg, u):
                return False

            def guard(self, rule, cfg, u):
                return False  # keep 2c satisfied so 2d is what trips

        sdr = SDR(NeverCorrect(NET))
        cfg = sdr.initial_configuration()
        with pytest.raises(RequirementViolation, match="Req 2d"):
            check_configuration(sdr, cfg)
