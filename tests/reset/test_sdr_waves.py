"""Scripted multi-initiator wave scenarios: the cooperative behaviours the
paper's Section 3.3/3.4 narrative describes, driven step by step."""

import pytest

from repro.core import Configuration, Network, ScriptedDaemon, Simulator
from repro.reset import C, RB, RF, SDR
from repro.reset.analysis import alive_roots, max_branch_depth, reset_branches
from repro.unison import Unison

LINE5 = Network([(0, 1), (1, 2), (2, 3), (3, 4)])
STAR = Network([(0, 1), (0, 2), (0, 3)])


def cfg_of(net, *triples):
    assert len(triples) == net.n
    return Configuration([{"st": st, "d": d, "c": c} for st, d, c in triples])


class TestTwoConcurrentResets:
    def test_waves_meet_and_merge_without_restart(self):
        """Both endpoints of a line initiate; the middle joins whichever
        broadcast reaches it, and the distance DAG lets both feed back."""
        sdr = SDR(Unison(LINE5, period=6))
        start = cfg_of(
            LINE5,
            (C, 0, 3), (C, 0, 0), (C, 0, 0), (C, 0, 0), (C, 0, 3),
        )
        sim = Simulator(
            sdr,
            ScriptedDaemon([
                {0: "rule_R", 4: "rule_R"},      # two roots
                {1: "rule_RB", 3: "rule_RB"},    # waves spread inward
                {2: "rule_RB"},                  # middle joins (one wave)
            ]),
            config=start,
            seed=0,
        )
        for _ in range(3):
            sim.step()
        assert sim.cfg.variable("st") == [RB] * 5
        assert sim.cfg.variable("d") == [0, 1, 2, 1, 0]
        # Two distinct roots, both alive:
        assert alive_roots(sdr, sim.cfg) == {0, 4}
        # The middle process belongs to branches of both resets:
        branches = reset_branches(sdr, sim.cfg)
        initial_extremities = {branch[0] for branch in branches if 2 in branch}
        assert initial_extremities == {0, 4}

    def test_feedback_consumes_both_roots(self):
        sdr = SDR(Unison(LINE5, period=6))
        start = cfg_of(
            LINE5,
            (RB, 0, 0), (RB, 1, 0), (RB, 2, 0), (RB, 1, 0), (RB, 0, 0),
        )
        script = [
            {2: "rule_RF"},
            {1: "rule_RF", 3: "rule_RF"},
            {0: "rule_RF", 4: "rule_RF"},
            {0: "rule_C", 4: "rule_C"},
            {1: "rule_C", 3: "rule_C"},
            {2: "rule_C"},
        ]
        sim = Simulator(sdr, ScriptedDaemon(script), config=start, seed=0)
        ar_counts = [len(alive_roots(sdr, sim.cfg))]
        for _ in script:
            sim.step()
            ar_counts.append(len(alive_roots(sdr, sim.cfg)))
        assert sim.cfg.variable("st") == [C] * 5
        assert sdr.is_normal(sim.cfg)
        # Alive roots only ever decrease (Theorem 3):
        assert all(a >= b for a, b in zip(ar_counts, ar_counts[1:]))
        assert ar_counts[-1] == 0


class TestStarWave:
    def test_hub_initiates_leaves_join_then_feed_back(self):
        sdr = SDR(Unison(STAR, period=5))
        start = cfg_of(STAR, (C, 0, 2), (C, 0, 0), (C, 0, 0), (C, 0, 0))
        script = [
            {0: "rule_R"},
            {1: "rule_RB", 2: "rule_RB", 3: "rule_RB"},
            {1: "rule_RF", 2: "rule_RF", 3: "rule_RF"},
            {0: "rule_RF"},
            {0: "rule_C"},
            {1: "rule_C", 2: "rule_C", 3: "rule_C"},
        ]
        sim = Simulator(sdr, ScriptedDaemon(script), config=start, seed=0)
        for _ in script:
            sim.step()
        assert sdr.is_normal(sim.cfg)
        assert sim.cfg.variable("c") == [0, 0, 0, 0]

    def test_branch_depths_on_star(self):
        sdr = SDR(Unison(STAR, period=5))
        cfg = cfg_of(STAR, (RB, 0, 0), (RB, 1, 0), (RB, 1, 0), (C, 0, 0))
        depths = max_branch_depth(sdr, cfg)
        assert depths[0] == 0
        assert depths[1] == depths[2] == 1
        assert 3 not in depths


class TestCorruptedWaveStates:
    def test_rf_island_gets_cleaned(self):
        """A lone RF process amid correct C processes: neighbors with
        non-reset state must join/initiate (P_R1), or the island completes
        if everyone satisfies P_reset."""
        sdr = SDR(Unison(LINE5, period=6))
        # All clocks zero (P_reset holds everywhere) and one RF island:
        start = cfg_of(LINE5, (C, 0, 0), (RF, 3, 0), (C, 0, 0), (C, 0, 0), (C, 0, 0))
        # rule_C(1) should be enabled: all of N[1] reset, neighbors C or RF≥.
        assert sdr.guard("rule_C", start, 1)
        sim = Simulator(sdr, ScriptedDaemon([{1: "rule_C"}]), config=start, seed=0)
        sim.step()
        assert sdr.is_normal(sim.cfg)

    def test_rf_island_with_dirty_neighbor_triggers_reset(self):
        sdr = SDR(Unison(LINE5, period=6))
        # Neighbor 0 has c=2 (not reset, yet locally "correct" clock-wise
        # w.r.t. process 1? c=2 vs c=0 is NOT ok) — P_R1 or ¬P_Correct fires.
        start = cfg_of(LINE5, (C, 0, 2), (RF, 3, 0), (C, 0, 0), (C, 0, 0), (C, 0, 0))
        assert sdr.p_r1(start, 0)
        assert sdr.guard("rule_R", start, 0)

    def test_corrupt_distance_zero_in_middle(self):
        """A broadcast process with corrupted d=0 simply acts as a root:
        the DAG ordering still prevents deadlock."""
        sdr = SDR(Unison(LINE5, period=6))
        start = cfg_of(
            LINE5, (RB, 0, 0), (RB, 0, 0), (RB, 0, 0), (RB, 0, 0), (RB, 0, 0)
        )
        # Everybody at d=0: every process satisfies P_RF (all neighbors RB
        # with d ≤ d_u) — feedback can start anywhere; no deadlock.
        assert all(sdr.guard("rule_RF", start, u) for u in range(5))
