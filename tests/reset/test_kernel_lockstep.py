"""Paranoid lockstep for the SDR kernel port: every step of the array
backend is cross-checked against the dict reference in-process."""

from random import Random

from repro.core import DistributedRandomDaemon, Simulator
from repro.core.exceptions import ModelViolation
from repro.reset import SDR
from repro.topology import random_tree, ring
from repro.unison import Unison

import pytest


def test_sdr_kernel_lockstep_across_seeds_and_topologies():
    for net in (ring(10), random_tree(12, seed=4)):
        for seed in range(3):
            sdr = SDR(Unison(net))
            cfg = sdr.random_configuration(Random(seed))
            sim = Simulator(
                sdr,
                DistributedRandomDaemon(0.5),
                config=cfg,
                seed=seed,
                backend="kernel",
                paranoid=True,
            )
            result = sim.run(max_steps=800)
            assert result.steps > 0


def test_lockstep_detects_tampering():
    """Corrupting the kernel columns mid-run trips the cross-check."""
    net = ring(8)
    sdr = SDR(Unison(net))
    cfg = sdr.random_configuration(Random(1))
    sim = Simulator(
        sdr,
        DistributedRandomDaemon(0.5),
        config=cfg,
        seed=1,
        backend="kernel",
        paranoid=True,
    )
    sim.step()
    # Flip a clock behind the reference's back.
    col = sim._kernel.read["c"]
    col[0] = (col[0] + 1) % sdr.input.period
    sim._cfg_dirty = True
    with pytest.raises(ModelViolation):
        for _ in range(20):
            sim.step()
