"""Executions where a process performs *more* than one wave of SDR moves.

Corollary 4 allows up to ``3n + 3`` SDR moves per process; random starts
almost always show exactly 3 (one join, one feedback, one completion,
because a broadcast floods the whole network before any feedback starts).
These tests construct the multi-segment executions that need more: a
process completing a leftover feedback (``rule_C``) and then being swept up
by a fresh broadcast."""

from repro.analysis import bounds
from repro.core import Configuration, Network, ScriptedDaemon, Simulator
from repro.harness.experiments import SdrMoveCounter
from repro.reset import C, RB, RF, SDR
from repro.reset.analysis import split_segments, segment_rule_sequences_ok
from repro.core import Trace
from repro.unison import Unison

LINE4 = Network([(0, 1), (1, 2), (2, 3)])


def cfg_of(net, *triples):
    assert len(triples) == net.n
    return Configuration([{"st": st, "d": d, "c": c} for st, d, c in triples])


class TestFourMoveProcess:
    def make(self):
        sdr = SDR(Unison(LINE4, period=5))
        # Process 2 is a leftover feedback island (already reset); process 0
        # holds a bad clock that will trigger a full wave afterwards.
        start = cfg_of(LINE4, (C, 0, 2), (C, 0, 0), (RF, 5, 0), (C, 0, 0))
        return sdr, start

    def test_scripted_four_sdr_moves(self):
        sdr, start = self.make()
        script = [
            {2: "rule_C"},    # leftover island completes …
            {0: "rule_R"},    # … then the real reset begins
            {1: "rule_RB"},
            {2: "rule_RB"},   # island process joins a second time
            {3: "rule_RB"},
            {3: "rule_RF"},
            {2: "rule_RF"},
            {1: "rule_RF"},
            {0: "rule_RF"},
            {0: "rule_C"},
            {1: "rule_C"},
            {2: "rule_C"},    # and completes a second time
            {3: "rule_C"},
        ]
        counter = SdrMoveCounter(LINE4.n)
        trace = Trace(record_configurations=True)
        sim = Simulator(
            sdr, ScriptedDaemon(script), config=start, seed=0,
            observers=[counter], trace=trace,
        )
        for _ in script:
            sim.step()
        assert sdr.is_normal(sim.cfg)
        # Process 2 executed C, RB, RF, C — four SDR moves, over one wave's 3.
        assert counter.counts[2] == 4
        assert max(counter.counts) <= bounds.sdr_moves_per_process_bound(LINE4.n)
        # The rule-language theorem still holds per segment:
        assert segment_rule_sequences_ok(sdr, trace)
        assert len(split_segments(sdr, trace)) <= bounds.segments_bound(LINE4.n)

    def test_island_completion_is_enabled_initially(self):
        sdr, start = self.make()
        assert sdr.guard("rule_C", start, 2)
        assert sdr.guard("rule_R", start, 0)


class TestFloodBeforeFeedback:
    def test_no_feedback_while_any_neighbor_is_clean(self):
        """P_RF blocks on C neighbors: a broadcast must cover the whole
        (connected) network before any feedback starts — the structural
        reason one wave costs each process at most 3 moves."""
        sdr = SDR(Unison(LINE4, period=5))
        cfg = cfg_of(LINE4, (RB, 0, 0), (RB, 1, 0), (C, 0, 0), (C, 0, 0))
        assert not sdr.guard("rule_RF", cfg, 1)  # neighbor 2 still C
        assert not sdr.guard("rule_RF", cfg, 0)  # child 1 not fed back
        full = cfg_of(LINE4, (RB, 0, 0), (RB, 1, 0), (RB, 2, 0), (RB, 3, 0))
        assert sdr.guard("rule_RF", full, 3)  # only the deepest may start
