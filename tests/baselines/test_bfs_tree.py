"""Tests for the BFS spanning tree substrate."""

from random import Random

import pytest

from repro.baselines import BfsTree
from repro.baselines.bfs_tree import DIST_VAR, PARENT_VAR
from repro.core import DistributedRandomDaemon, Network, Simulator, SynchronousDaemon
from repro.topology import by_name, grid, line, ring


class TestInitialState:
    def test_initial_configuration_is_correct_tree(self):
        net = grid(3, 3)
        tree = BfsTree(net, root=0)
        cfg = tree.initial_configuration()
        assert tree.is_correct_tree(cfg)
        assert tree.is_terminal(cfg)

    def test_root_state(self):
        tree = BfsTree(line(4), root=0)
        assert tree.initial_state(0) == {DIST_VAR: 0, PARENT_VAR: None}
        assert tree.initial_state(3) == {DIST_VAR: 3, PARENT_VAR: 2}

    def test_invalid_root_rejected(self):
        with pytest.raises(ValueError):
            BfsTree(line(4), root=9)


class TestSelfStabilization:
    @pytest.mark.parametrize("topo", ["ring", "random", "grid", "tree"])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_converges_from_random_states(self, topo, seed):
        net = by_name(topo, 9, seed=seed)
        tree = BfsTree(net, root=0)
        sim = Simulator(
            tree, DistributedRandomDaemon(0.5),
            config=tree.random_configuration(Random(seed)), seed=seed,
        )
        result = sim.run_to_termination(max_steps=500_000)
        assert tree.is_correct_tree(sim.cfg)

    def test_fake_small_distances_get_corrected(self):
        """A corrupted dist=0 at a non-root rises back (bounded domain)."""
        net = line(5)
        tree = BfsTree(net, root=0)
        cfg = tree.initial_configuration()
        cfg.set(4, DIST_VAR, 0)
        sim = Simulator(tree, SynchronousDaemon(), config=cfg, seed=0)
        sim.run_to_termination(max_steps=10_000)
        assert tree.is_correct_tree(sim.cfg)
        assert sim.cfg[4][DIST_VAR] == 4

    def test_children_view(self):
        net = line(4)
        tree = BfsTree(net, root=0)
        cfg = tree.initial_configuration()
        assert tree.children(cfg, 0) == [1]
        assert tree.children(cfg, 3) == []
