"""The mono-initiator reset baseline's kernel port: lockstep + equivalence."""

from random import Random

import pytest

from repro.baselines.kernelized import MonoResetKernelProgram
from repro.baselines.mono_reset import MonoReset
from repro.core import Simulator, make_daemon
from repro.faults.injector import corrupt_processes
from repro.probes import StabilizationProbe
from repro.topology import by_name, grid, ring
from repro.unison import Unison


def corrupted(mono, seed, k=2):
    rng = Random(seed)
    return corrupt_processes(
        mono, mono.initial_configuration(),
        rng.sample(range(mono.network.n), k), rng, variables=("c",),
    )


def test_backend_auto_picks_the_kernel():
    mono = MonoReset(Unison(ring(8)))
    assert isinstance(mono.kernel_program(), MonoResetKernelProgram)
    sim = Simulator(mono, make_daemon("distributed-random", mono.network), seed=0)
    assert sim.backend == "kernel"


def test_unported_input_keeps_the_dict_backend():
    from repro.reset.interface import InputAlgorithm

    class Unported(Unison):
        def kernel_input_program(self):
            return None

    mono = MonoReset(Unported(ring(8)))
    assert mono.kernel_program() is None


@pytest.mark.parametrize("topo,n", [("ring", 8), ("random", 10), ("tree", 9)])
def test_kernel_lockstep_from_corrupted_configs(topo, n):
    net = by_name(topo, n, seed=5)
    for seed in range(3):
        mono = MonoReset(Unison(net))
        sim = Simulator(
            mono, make_daemon("distributed-random", net),
            config=corrupted(mono, seed), seed=seed,
            backend="kernel", paranoid=True,
        )
        result = sim.run(max_steps=1500)
        assert result.steps > 0


def test_kernel_lockstep_from_random_wave_and_tree_states():
    net = grid(3, 3)
    for seed in range(3):
        mono = MonoReset(Unison(net))
        cfg = mono.random_configuration(Random(seed))
        sim = Simulator(
            mono, make_daemon("distributed-random", net), config=cfg,
            seed=seed, backend="kernel", paranoid=True,
        )
        sim.run(max_steps=800)


def test_fused_recovery_measurement_matches_dict_reference():
    net = ring(12)
    for seed in range(3):
        readings = []
        for backend in ("kernel", "dict"):
            mono = MonoReset(Unison(net))
            sim = Simulator(
                mono, make_daemon("distributed-random", net),
                config=corrupted(mono, seed), seed=seed, backend=backend,
            )
            probe = StabilizationProbe(mono.is_normal, mask="normal_mask")
            sim.add_probe(probe)
            if backend == "kernel":
                assert sim.fusion_available
            sim.run(max_steps=300_000)
            probe.require_hit()
            readings.append(
                (probe.step, probe.rounds, probe.moves,
                 probe.violations_after_hit)
            )
        assert readings[0] == readings[1]


def test_tiled_program_runs_batched_trials_identically():
    from repro.core.kernel.batch import run_batch

    net = ring(10)
    mono = MonoReset(Unison(net))
    program = mono.kernel_program()
    seeds = [0, 1, 2]
    cfgs = [corrupted(MonoReset(Unison(net)), seed) for seed in seeds]
    daemons = [make_daemon("distributed-random", net) for _ in seeds]
    result = run_batch(
        program, cfgs, daemons, [Random(seed) for seed in seeds], net,
        max_steps=300_000,
        until=lambda prog, cols: prog.normal_mask(cols),
    )
    for seed, cfg, outcome in zip(seeds, cfgs, result.outcomes):
        mono = MonoReset(Unison(net))
        sim = Simulator(
            mono, make_daemon("distributed-random", net), config=cfg.copy(),
            seed=seed,
        )
        probe = StabilizationProbe(mono.is_normal, mask="normal_mask")
        sim.add_probe(probe)
        sim.run(max_steps=300_000)
        probe.require_hit()
        assert outcome.hit
        assert (outcome.steps, outcome.rounds, outcome.moves) == (
            probe.step, probe.rounds, probe.moves,
        )
