"""Tests for the mono-initiator (Arora–Gouda style) reset baseline."""

from random import Random

import pytest

from repro.baselines import ACK, IDLE, MODE, MonoReset, REQ, RESET
from repro.core import DistributedRandomDaemon, Simulator, SynchronousDaemon, Trace, measure_stabilization
from repro.faults import corrupt_processes
from repro.topology import by_name, line, ring
from repro.unison import Unison, safety_holds


def recover(net, victims, seed=0, daemon=None):
    algo = MonoReset(Unison(net))
    cfg = corrupt_processes(
        algo, algo.initial_configuration(), victims, Random(seed), variables=("c",)
    )
    sim = Simulator(algo, daemon or DistributedRandomDaemon(0.5), config=cfg, seed=seed)
    detector, _ = measure_stabilization(sim, algo.is_normal, max_steps=500_000)
    return algo, sim, detector


class TestRecovery:
    @pytest.mark.parametrize("topo", ["ring", "random", "tree"])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_recovers_from_corrupted_input(self, topo, seed):
        net = by_name(topo, 9, seed=seed)
        algo, sim, detector = recover(net, victims=[3, 5], seed=seed)
        assert detector.hit
        assert algo.is_normal(sim.cfg)

    def test_no_fault_means_no_wave(self):
        net = ring(6)
        algo = MonoReset(Unison(net))
        sim = Simulator(algo, DistributedRandomDaemon(0.5),
                        config=algo.initial_configuration(), seed=0)
        sim.run(max_steps=200)
        # Only unison ticks; the wave layer never left IDLE.
        assert all(rule == "rule_U" for rule in sim.moves_per_rule)

    def test_reset_wave_covers_whole_network(self):
        """The mono-initiator architecture resets everyone, even for a
        single localized fault — the inefficiency SDR avoids."""
        net = line(7)
        algo = MonoReset(Unison(net))
        cfg = corrupt_processes(
            algo, algo.initial_configuration(), [6], Random(1), variables=("c",)
        )
        # Make sure the corruption is visible (c=0 would be a no-op fault).
        cfg.set(6, "c", 3)
        trace = Trace()
        sim = Simulator(algo, SynchronousDaemon(), config=cfg, seed=1, trace=trace)
        measure_stabilization(sim, algo.is_normal, max_steps=100_000)
        resetters = {
            u
            for record in trace
            for u, rule in record.selection.items()
            if rule in ("rule_reset_root", "rule_reset_down")
        }
        assert resetters == set(net.processes())

    def test_safety_after_recovery(self):
        net = ring(8)
        algo, sim, _ = recover(net, victims=[2], seed=3)
        for _ in range(200):
            sim.step()
        assert safety_holds(net, sim.cfg, algo.input.period)


class TestWaveMechanics:
    def test_request_travels_to_root_then_reset_comes_back(self):
        net = line(4)  # root 0 — 1 — 2 — 3
        algo = MonoReset(Unison(net))
        cfg = algo.initial_configuration()
        cfg.set(3, "c", 2)  # inconsistency at the far end
        sim = Simulator(algo, SynchronousDaemon(), config=cfg, seed=0)
        modes_seen = {u: set() for u in net.processes()}
        for _ in range(60):
            sim.step()
            for u in net.processes():
                modes_seen[u].add(sim.cfg[u][MODE])
            if algo.is_normal(sim.cfg) and sim.cfg[0][MODE] == IDLE:
                break
        # Both endpoints went through the reset mode.
        assert RESET in modes_seen[0]
        assert RESET in modes_seen[3]
        # The far end raised a request; the root never needs REQ.
        assert REQ in modes_seen[3] or RESET in modes_seen[3]

    def test_host_gate_blocks_input_near_wave(self):
        net = line(3)
        algo = MonoReset(Unison(net))
        cfg = algo.initial_configuration()
        cfg.set(0, MODE, RESET)
        assert not algo.input.guard("rule_U", cfg, 0)
        assert not algo.input.guard("rule_U", cfg, 1)  # neighbor of the wave
        assert algo.input.guard("rule_U", cfg, 2)
