"""Tests for the silent self-stabilizing max-id leader election."""

from random import Random

import networkx as nx
import pytest

from repro.baselines import LDIST, LID, LeaderElection
from repro.core import (
    Configuration,
    DistributedRandomDaemon,
    Network,
    Simulator,
    SynchronousDaemon,
)
from repro.topology import by_name, line, ring


class TestConvergence:
    @pytest.mark.parametrize("topo", ["ring", "random", "tree", "star"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_elects_true_leader_from_random_states(self, topo, seed):
        net = by_name(topo, 9, seed=seed)
        algo = LeaderElection(net)
        sim = Simulator(
            algo, DistributedRandomDaemon(0.5),
            config=algo.random_configuration(Random(seed)), seed=seed,
        )
        result = sim.run_to_termination(max_steps=500_000)
        assert algo.elected(sim.cfg)
        assert result.terminal

    def test_initial_configuration_converges(self):
        net = ring(8)
        algo = LeaderElection(net)
        sim = Simulator(algo, SynchronousDaemon(), seed=0)
        sim.run_to_termination(max_steps=10_000)
        assert algo.elected(sim.cfg)

    def test_nontrivial_ids(self):
        net = Network([(0, 1), (1, 2), (2, 3)], ids={0: 5, 1: 99, 2: 7, 3: 12})
        algo = LeaderElection(net)
        assert algo.true_leader == 1
        sim = Simulator(algo, SynchronousDaemon(), seed=0)
        sim.run_to_termination(max_steps=10_000)
        assert all(sim.cfg[u][LID] == 99 for u in net.processes())
        assert sim.cfg.variable(LDIST) == [1, 0, 1, 2]


class TestFakeLeaderElimination:
    def test_fake_id_larger_than_all_real_ids_dies(self):
        """A corrupted lid with no living source must be flushed out by the
        distance cap."""
        net = line(5)  # ids 0..4, true leader 4
        algo = LeaderElection(net)
        cfg = Configuration(
            [{"lid": 1000, "ldist": 0} if u == 0 else {"lid": u, "ldist": 0}
             for u in range(5)]
        )
        sim = Simulator(algo, SynchronousDaemon(), config=cfg, seed=0)
        sim.run_to_termination(max_steps=50_000)
        assert algo.elected(sim.cfg)
        assert all(sim.cfg[u][LID] == 4 for u in range(5))

    def test_everyone_believes_the_fake(self):
        net = ring(6)
        algo = LeaderElection(net)
        cfg = Configuration([{"lid": 777, "ldist": 2} for _ in range(6)])
        sim = Simulator(algo, DistributedRandomDaemon(0.6), config=cfg, seed=3)
        sim.run_to_termination(max_steps=100_000)
        assert algo.elected(sim.cfg)


class TestSpanningTree:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_converged_election_induces_a_spanning_tree(self, seed):
        net = by_name("random", 10, seed=seed)
        algo = LeaderElection(net)
        sim = Simulator(
            algo, DistributedRandomDaemon(0.5),
            config=algo.random_configuration(Random(seed)), seed=seed,
        )
        sim.run_to_termination(max_steps=500_000)
        edges = algo.spanning_tree_edges(sim.cfg)
        assert len(edges) == net.n - 1
        tree = nx.Graph(edges)
        tree.add_nodes_from(net.processes())
        assert nx.is_connected(tree)
        assert algo.parent_of(sim.cfg, algo.true_leader) is None

    def test_parents_point_toward_leader(self):
        net = line(5)
        algo = LeaderElection(net)
        sim = Simulator(algo, SynchronousDaemon(), seed=0)
        sim.run_to_termination(max_steps=10_000)
        for u in range(4):
            assert algo.parent_of(sim.cfg, u) == u + 1
