"""Property regression: fault schedules inject byte-identically everywhere.

A bound :class:`~repro.faults.FaultSchedule` pre-commits every
occurrence's victims and replacement values to a PRNG stream independent
of the daemon and the backend.  Running the same algorithm, daemon,
seed, *and schedule* must therefore produce identical executions on

* the dict engine and the stepping kernel (full trace equality),
* the fused kernel loop (accounting + terminal configuration equality —
  fusion admits no trace by design),
* batched ``(T, n)`` cells versus T serial trials (whole-record
  byte-identity, recovery/wave summaries included).

Any backend applying a corruption at a different step, to a different
victim, or with a different drawn value breaks these equalities
immediately.
"""

import json
from random import Random

import pytest

from repro.alliance.fga import FGA
from repro.core import Simulator, Trace, make_daemon
from repro.engine.campaign import Campaign
from repro.engine.pool import execute_batch, execute_trial
from repro.harness.runner import can_batch
from repro.reset import SDR
from repro.topology import grid, ring
from repro.unison import Unison
from repro.unison.boulinier import BoulinierUnison

DAEMONS = ("synchronous", "central", "locally-central", "distributed-random")

ALGORITHMS = {
    "unison-sdr": lambda net: SDR(Unison(net)),
    "fga-sdr": lambda net: SDR(FGA(net, 1, 1)),
    "boulinier": lambda net: BoulinierUnison(net),
}

#: Mid-run storms: three bursts, two random victims each, starting well
#: inside the execution so corruptions land on evolved configurations.
FAULTS = "burst=15,count=3,gap=40,k=2"

MAX_STEPS = 3000


def execute(algorithm, daemon_kind, seed, backend, traced):
    net = ring(9) if seed % 2 else grid(3, 3)
    algo = ALGORITHMS[algorithm](net)
    trace = Trace() if traced else None
    sim = Simulator(
        algo,
        make_daemon(daemon_kind, net),
        config=algo.random_configuration(Random(seed)),
        seed=seed,
        backend=backend,
        trace=trace,
        faults=FAULTS,
    )
    result = sim.run(max_steps=MAX_STEPS)
    out = {
        "steps": result.steps,
        "moves": result.moves,
        "rounds": result.rounds,
        "terminal": result.terminal,
        "stop_reason": result.stop_reason,
        "fired": sim.faults.fired,
        "moves_per_rule": dict(sim.moves_per_rule),
        "moves_per_process": list(sim.moves_per_process),
        "final": sim.cfg.snapshot(),
    }
    if traced:
        out["trace"] = [
            (rec.selection, rec.enabled_before, rec.enabled_after)
            for rec in trace
        ]
    return out


@pytest.mark.parametrize("daemon", DAEMONS)
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_dict_and_stepped_kernel_traces_identical(algorithm, daemon):
    for seed in (3, 4):
        reference = execute(algorithm, daemon, seed, "dict", traced=True)
        kernel = execute(algorithm, daemon, seed, "kernel", traced=True)
        assert reference["fired"] == 3  # the schedule actually struck
        assert kernel == reference, (algorithm, daemon, seed)


@pytest.mark.parametrize("daemon", DAEMONS)
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_fused_loop_matches_dict(algorithm, daemon):
    for seed in (3, 4):
        reference = execute(algorithm, daemon, seed, "dict", traced=False)
        fused = execute(algorithm, daemon, seed, "kernel", traced=False)
        assert fused == reference, (algorithm, daemon, seed)


def record_bytes(record):
    return json.dumps(record, sort_keys=True, default=str)


@pytest.mark.parametrize("algorithm,daemon,spec", [
    ("unison", "synchronous", FAULTS + ",scope=input"),
    ("unison", "distributed-random", FAULTS + ",scope=input"),
    ("fga", "central", FAULTS + ",scope=input"),
    ("boulinier", "distributed-random", FAULTS),  # uncomposed: no scopes
])
def test_faulted_cells_batch_identically(algorithm, daemon, spec):
    """Batched faulted cells equal serial faulted trials, byte for byte."""
    campaign = Campaign(
        name="fault-batch", seed=19, algorithms=(algorithm,),
        topologies=("ring",), sizes=(8,), scenarios=("random",),
        daemons=(daemon,), trials=3,
        params=(("faults", spec), ("max_steps", 200_000)),
    )
    cells = {}
    for spec in campaign.specs():
        cells.setdefault(spec.cell_key(), []).append(spec)
    for cell in cells.values():
        assert can_batch(cell[0])
        serial = [execute_trial(s, campaign.seed, campaign.name) for s in cell]
        batched = execute_batch(cell, campaign.seed, campaign.name)
        for expected, got in zip(serial, batched):
            assert record_bytes(expected) == record_bytes(got), expected["key"]
            recovery = got["result"]["extra"]["recovery"]
            assert recovery["bursts"] == 3
            assert recovery["recovered"] == 3
