"""Property-based tests for Algorithm U and its composition with SDR."""

from random import Random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import bounds
from repro.core import Configuration, DistributedRandomDaemon, Simulator, measure_stabilization
from repro.reset import SDR
from repro.topology import random_connected
from repro.unison import Unison, safety_holds

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def networks(draw):
    n = draw(st.integers(min_value=4, max_value=9))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return random_connected(n, p=0.3, seed=seed)


@st.composite
def safe_clock_configs(draw):
    """A network plus a configuration satisfying unison safety everywhere,
    built by assigning clocks from a BFS-consistent gradient."""
    net = draw(networks())
    period = net.n + 1 + draw(st.integers(min_value=0, max_value=5))
    base = draw(st.integers(min_value=0, max_value=period - 1))
    # BFS layering: neighbors differ by at most one level.
    import networkx as nx

    depth = nx.single_source_shortest_path_length(net.to_networkx(), 0)
    sign = draw(st.sampled_from([1, -1]))
    cfg = Configuration([{"c": (base + sign * depth[u]) % period} for u in net.processes()])
    return net, period, cfg


@given(safe_clock_configs())
@SETTINGS
def test_lemma17_safety_is_closed_under_u(instance):
    """Lemma 17: P_ICorrect (safety) is closed by U."""
    net, period, cfg = instance
    u = Unison(net, period=period)
    assert safety_holds(net, cfg, period)
    sim = Simulator(u, DistributedRandomDaemon(0.5), config=cfg, seed=1)
    for _ in range(50):
        if sim.step() is None:
            break
        assert safety_holds(net, sim.cfg, period)


@given(safe_clock_configs())
@SETTINGS
def test_lemma18_no_deadlock_in_safe_configurations(instance):
    """Lemma 18: configurations satisfying P_ICorrect ∧ P_Clean everywhere
    are never terminal (K > n)."""
    net, period, cfg = instance
    u = Unison(net, period=period)
    assert not u.is_terminal(cfg)


@given(networks(), st.integers(min_value=0, max_value=10_000))
@SETTINGS
def test_composition_converges_and_stays_safe(net, seed):
    """Theorems 6/7 + closure: stabilization within bounds, then safety."""
    sdr = SDR(Unison(net))
    cfg = sdr.random_configuration(Random(seed))
    sim = Simulator(sdr, DistributedRandomDaemon(0.5), config=cfg, seed=seed)
    detector, _ = measure_stabilization(sim, sdr.is_normal, max_steps=200_000)
    assert detector.rounds <= bounds.unison_rounds_bound(net.n)
    assert detector.moves <= bounds.unison_move_bound(net.n, net.diameter)
    for _ in range(30):
        sim.step()
        assert safety_holds(net, sim.cfg, sdr.input.period)
