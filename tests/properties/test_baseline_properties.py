"""Property-based tests for the baseline algorithms."""

from random import Random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.alliance import TurauMIS, is_minimal_dominating_set
from repro.baselines import BfsTree
from repro.core import DistributedRandomDaemon, Simulator, measure_stabilization
from repro.topology import random_connected
from repro.unison import BoulinierUnison

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def networks(draw):
    n = draw(st.integers(min_value=3, max_value=9))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return random_connected(n, p=0.35, seed=seed)


class TestBoulinierProperties:
    @given(networks(), st.integers(min_value=-6, max_value=30),
           st.integers(min_value=-6, max_value=30))
    @SETTINGS
    def test_comparability_is_symmetric_and_reflexive(self, net, a, b):
        algo = BoulinierUnison(net, period=31, alpha=6)
        assert algo.comparable(a, a)
        assert algo.comparable(a, b) == algo.comparable(b, a)

    @given(networks(), st.integers(min_value=0, max_value=10_000))
    @SETTINGS
    def test_converges_and_legitimacy_is_closed(self, net, seed):
        algo = BoulinierUnison(net)
        cfg = algo.random_configuration(Random(seed))
        sim = Simulator(algo, DistributedRandomDaemon(0.5), config=cfg, seed=seed)
        measure_stabilization(sim, algo.is_legitimate, max_steps=1_000_000)
        for _ in range(25):
            if sim.step() is None:
                break
            assert algo.is_legitimate(sim.cfg)

    @given(networks(), st.integers(min_value=0, max_value=10_000))
    @SETTINGS
    def test_exactly_one_rule_enabled_per_process(self, net, seed):
        algo = BoulinierUnison(net)
        cfg = algo.random_configuration(Random(seed))
        for u in net.processes():
            assert len(algo.enabled_rules(cfg, u)) <= 1


class TestTurauProperties:
    @given(networks(), st.integers(min_value=0, max_value=10_000))
    @SETTINGS
    def test_always_terminates_on_minimal_dominating_set(self, net, seed):
        algo = TurauMIS(net)
        cfg = algo.random_configuration(Random(seed))
        sim = Simulator(algo, DistributedRandomDaemon(0.5), config=cfg, seed=seed)
        sim.run_to_termination(max_steps=500_000)
        members = algo.members(sim.cfg)
        assert is_minimal_dominating_set(net, members)
        for u in members:
            assert not any(v in members for v in net.neighbors(u))


class TestBfsTreeProperties:
    @given(networks(), st.integers(min_value=0, max_value=10_000))
    @SETTINGS
    def test_always_converges_to_the_true_bfs_tree(self, net, seed):
        tree = BfsTree(net, root=0)
        cfg = tree.random_configuration(Random(seed))
        sim = Simulator(tree, DistributedRandomDaemon(0.5), config=cfg, seed=seed)
        sim.run_to_termination(max_steps=500_000)
        assert tree.is_correct_tree(sim.cfg)
