"""Property regression: batched ``(T, n)`` cells equal T serial trials.

``run_trial_batch`` runs a whole campaign cell as one tiled simulation;
the engine batches cells by default.  Nothing downstream may notice:
every trial record — accounting, metrics, extras, derived seed — must be
*identical* to the serial ``run_trial`` record, and the persisted stores
must be byte-identical across serial, parallel, batched, and unbatched
execution.
"""

import json

import pytest

from repro.engine.campaign import Campaign, TrialSpec
from repro.engine.pool import execute_batch, execute_trial, run_specs
from repro.engine.seeds import derive_seed
from repro.engine.store import ResultStore
from repro.harness.runner import can_batch, run_trial_batch


def record_bytes(record: dict) -> str:
    return json.dumps(record, sort_keys=True, default=str)


def assert_cells_identical(campaign: Campaign) -> int:
    cells: dict[str, list] = {}
    for spec in campaign.specs():
        cells.setdefault(spec.cell_key(), []).append(spec)
    checked = 0
    for cell in cells.values():
        assert can_batch(cell[0])
        serial = [execute_trial(s, campaign.seed, campaign.name) for s in cell]
        batched = execute_batch(cell, campaign.seed, campaign.name)
        for expected, got in zip(serial, batched):
            assert record_bytes(expected) == record_bytes(got), expected["key"]
            checked += 1
    return checked


@pytest.mark.parametrize("daemon", [
    "synchronous", "central", "locally-central",
    "distributed-random", "weakly-fair",
])
def test_unison_cells_record_identical(daemon):
    campaign = Campaign(
        name="batch-u", seed=17, algorithms=("unison",),
        topologies=("ring", "grid"), sizes=(8,),
        scenarios=("random", "gradient"), daemons=(daemon,), trials=3,
    )
    assert assert_cells_identical(campaign) == campaign.size


def test_boulinier_cells_record_identical():
    campaign = Campaign(
        name="batch-b", seed=23, algorithms=("boulinier",),
        topologies=("ring",), sizes=(9,), scenarios=("random", "split"),
        daemons=("distributed-random", "synchronous"), trials=3,
    )
    assert assert_cells_identical(campaign) == campaign.size


def test_fga_cells_record_identical():
    campaign = Campaign(
        name="batch-f", seed=29, algorithms=("fga",),
        topologies=("ring", "tree"), sizes=(9,),
        scenarios=("random", "hollow", "faults:3"),
        daemons=("distributed-random", "weakly-fair"), trials=3,
    )
    assert assert_cells_identical(campaign) == campaign.size


def test_partial_cells_batch_identically():
    """Resume leftovers (a strict subset of a cell) batch correctly."""
    campaign = Campaign(
        name="batch-part", seed=31, algorithms=("unison",),
        topologies=("ring",), sizes=(8,), daemons=("distributed-random",),
        trials=5,
    )
    from repro.engine.store import trial_to_dict

    specs = campaign.specs()
    subset = [specs[1], specs[3], specs[4]]  # as if trials 0 and 2 stored
    seeds = [campaign.seed_for(s) for s in subset]
    batched = run_trial_batch(subset, seeds)
    for spec, got in zip(subset, batched):
        expected = execute_trial(spec, campaign.seed, campaign.name)
        assert record_bytes(expected["result"]) == record_bytes(
            trial_to_dict(got)
        )


def test_stores_byte_identical_across_execution_modes(tmp_path):
    campaign = Campaign(
        name="batch-modes", seed=41, algorithms=("unison",),
        topologies=("ring",), sizes=(8, 10), daemons=("distributed-random",),
        trials=3,
    )
    stores = {}
    for mode, kwargs in {
        "serial-batched": dict(workers=0),
        "serial-unbatched": dict(workers=0, batch=False),
        "parallel-batched": dict(workers=2),
    }.items():
        store = ResultStore(tmp_path / f"{mode}.jsonl")
        run_specs(
            campaign.specs(), campaign.seed, campaign=campaign.name,
            store=store, **kwargs,
        )
        stores[mode] = sorted(store.path.read_text().splitlines())
    assert stores["serial-batched"] == stores["serial-unbatched"]
    assert stores["serial-batched"] == stores["parallel-batched"]


def test_run_specs_returns_grid_order_when_batched():
    campaign = Campaign(
        name="batch-order", seed=43, algorithms=("unison",),
        topologies=("ring",), sizes=(8,), daemons=("distributed-random",),
        trials=4,
    )
    records = run_specs(campaign.specs(), campaign.seed, campaign=campaign.name)
    assert [r["key"] for r in records] == [s.key() for s in campaign.specs()]


def test_unbatchable_cells_fall_back(monkeypatch):
    """A cell that fails to batch at runtime still produces records."""
    import repro.engine.pool as pool
    from repro.core.exceptions import UnbatchableError

    campaign = Campaign(
        name="batch-fb", seed=47, algorithms=("unison",), topologies=("ring",),
        sizes=(8,), daemons=("distributed-random",), trials=3,
    )
    specs = campaign.specs()

    def broken_batch(specs, seeds):
        raise UnbatchableError("cannot tile")

    monkeypatch.setattr("repro.harness.runner.run_trial_batch", broken_batch)
    fallback = pool.execute_batch(specs, campaign.seed, campaign.name)
    direct = [pool.execute_trial(s, campaign.seed, campaign.name) for s in specs]
    assert [record_bytes(r) for r in fallback] == [record_bytes(r) for r in direct]

    def buggy_batch(specs, seeds):
        raise ValueError("genuine defect inside the batch kernel")

    # Only UnbatchableError falls back — other errors are real defects
    # and must surface rather than silently disable batching.
    monkeypatch.setattr("repro.harness.runner.run_trial_batch", buggy_batch)
    with pytest.raises(ValueError, match="genuine defect"):
        pool.execute_batch(specs, campaign.seed, campaign.name)


@pytest.mark.parametrize("workers", [0, 2])
def test_not_stabilized_batch_persists_stabilizing_siblings(
    monkeypatch, tmp_path, workers
):
    """A budget-exhausted batch lands its stabilizing siblings' records.

    When one replicate of a batched cell exceeds its step budget, the
    batch's own per-trial outcomes already hold the siblings that did
    stabilize; those records ride the ``NotStabilized`` failure
    (``partial``) and land in the store — with *no* serial re-run of
    the cell — at any worker count.
    """
    from repro.core.exceptions import NotStabilized

    campaign = Campaign(
        name="batch-ns", seed=53, algorithms=("unison",), topologies=("ring",),
        sizes=(8,), daemons=("distributed-random",), trials=4,
    )
    specs = campaign.specs()
    # Full-budget reference run, then shrink the *default* budget (not a
    # spec param — that would change keys, hence seeds) so the cell
    # splits into stabilizing and budget-exhausted replicates.
    reference = [execute_trial(s, campaign.seed, campaign.name) for s in specs]
    steps = [r["result"]["steps"] for r in reference]
    assert len(set(steps)) > 1, "seeds collapsed; pick another campaign seed"
    budget = min(steps)
    monkeypatch.setattr("repro.harness.runner.UNISON_MAX_STEPS", budget)
    expected = [
        execute_trial(spec, campaign.seed, campaign.name)
        for spec, full in zip(specs, reference)
        if full["result"]["steps"] <= budget
    ]
    assert 0 < len(expected) < len(specs)

    # The rerun path is gone: a batched cell must never fall back to
    # per-trial execution on budget exhaustion.  (The patch reaches
    # forked pool workers too — Linux fork copies the patched module.)
    def no_serial_rerun(spec, campaign_seed, campaign=""):
        raise AssertionError("budget-exhausted batch was re-run serially")

    monkeypatch.setattr("repro.engine.pool.execute_trial", no_serial_rerun)
    store = ResultStore(tmp_path / "ns.jsonl")
    with pytest.raises(NotStabilized):
        run_specs(
            specs, campaign.seed, campaign=campaign.name, store=store,
            workers=workers,
        )
    from repro.engine.store import _dump_line

    stored = set(store.path.read_text().splitlines())
    # Exactly the stabilizing siblings landed, byte-identical to their
    # serial records.
    assert stored == {_dump_line(r).rstrip("\n") for r in expected}


def test_not_stabilized_carries_partial_trials(monkeypatch):
    """``run_trial_batch`` attaches finished sibling Trials to the failure."""
    from repro.core.exceptions import NotStabilized
    from repro.harness.runner import run_trial, run_trial_batch

    campaign = Campaign(
        name="batch-partial", seed=53, algorithms=("unison",),
        topologies=("ring",), sizes=(8,), daemons=("distributed-random",),
        trials=4,
    )
    specs = campaign.specs()
    seeds = [derive_seed(campaign.seed, spec.key()) for spec in specs]
    full = run_trial_batch(specs, seeds)
    budget = min(t.steps for t in full)
    assert any(t.steps > budget for t in full)

    monkeypatch.setattr("repro.harness.runner.UNISON_MAX_STEPS", budget)
    with pytest.raises(NotStabilized) as excinfo:
        run_trial_batch(specs, seeds)
    partial = dict(excinfo.value.partial)
    expected = {i for i, t in enumerate(full) if t.steps <= budget}
    assert set(partial) == expected
    for i in expected:
        assert partial[i] == run_trial(specs[i], seeds[i])


def test_mixed_backend_cell_is_not_batched():
    """backend="dict" is excluded from cell_key, but a replicate that
    explicitly asks for the dict engine must still get it — a cell with
    any unbatchable replicate runs as single trials."""
    from repro.engine.campaign import TrialSpec
    from repro.engine.pool import _execution_units

    specs = [
        TrialSpec(algorithm="unison", topology="ring", n=8, trial=0),
        TrialSpec(
            algorithm="unison", topology="ring", n=8, trial=1,
            params=(("backend", "dict"),),
        ),
    ]
    assert specs[0].cell_key() == specs[1].cell_key()
    assert [kind for kind, _ in _execution_units(specs, batch=True)] == [
        "single", "single",
    ]


def test_cell_key_groups_replicates_only():
    campaign = Campaign(
        name="ck", seed=1, algorithms=("unison",), topologies=("ring",),
        sizes=(8, 10), daemons=("distributed-random", "synchronous"), trials=2,
    )
    specs = campaign.specs()
    cells = {}
    for spec in specs:
        cells.setdefault(spec.cell_key(), []).append(spec)
    assert len(cells) == 4  # 2 sizes × 2 daemons
    for cell in cells.values():
        assert sorted(s.trial for s in cell) == [0, 1]
        assert len({s.key() for s in cell}) == len(cell)


def test_execute_batch_attaches_partial_records(monkeypatch):
    """Direct execute_batch callers get the siblings' store records on
    the failure (partial_records), not just raw Trial pairs."""
    from repro.core.exceptions import NotStabilized

    campaign = Campaign(
        name="batch-pr", seed=53, algorithms=("unison",), topologies=("ring",),
        sizes=(8,), daemons=("distributed-random",), trials=4,
    )
    specs = campaign.specs()
    reference = [execute_trial(s, campaign.seed, campaign.name) for s in specs]
    budget = min(r["result"]["steps"] for r in reference)
    monkeypatch.setattr("repro.harness.runner.UNISON_MAX_STEPS", budget)
    expected = [
        execute_trial(spec, campaign.seed, campaign.name)
        for spec, full in zip(specs, reference)
        if full["result"]["steps"] <= budget
    ]
    with pytest.raises(NotStabilized) as excinfo:
        execute_batch(specs, campaign.seed, campaign.name)
    assert excinfo.value.partial_records == expected
