"""Property: adversarial schedules replay identically on every backend.

A search runs on the kernel backend (it needs ``snapshot``/``restore``
and column potentials), but its product is backend-neutral: a list of
selections.  Feeding that list through
:class:`~repro.core.daemon.ScriptedDaemon` on the dict backend (the
reference interpreter) and on a fresh stepped kernel must reproduce the
original execution exactly — same steps, same moves, same rounds, same
final configuration hash.  This is the property that makes certificates
trustworthy evidence rather than self-reported numbers.
"""

from random import Random

import pytest

from repro.adversary.certificates import (
    certificate_from_daemon,
    config_digest,
    loads_certificate,
    dump_certificate,
    replay_certificate,
)
from repro.adversary.search import make_search_daemon
from repro.alliance.fga import FGA
from repro.core.daemon import ScriptedDaemon
from repro.core.simulator import Simulator
from repro.faults.scenarios import clock_gradient, clock_split
from repro.reset import SDR
from repro.topology import random_tree, ring
from repro.unison import Unison

STRATEGIES = ("greedy", "beam-2x2")


def scenarios():
    cases = []
    for n in (6, 9):
        sdr = SDR(Unison(ring(n)))
        cases.append((f"unison-split-n{n}", sdr,
                      clock_split(SDR(Unison(ring(n))))))
    net = random_tree(8, seed=3)
    sdr = SDR(Unison(net))
    cases.append(("unison-gradient-tree", sdr, clock_gradient(sdr)))
    fnet = ring(7)
    fga = SDR(FGA(fnet, 1, 1))
    cases.append(("fga-random", fga,
                  fga.random_configuration(Random(11))))
    return cases


def fresh_algorithm(name):
    if name.startswith("unison-split"):
        n = int(name.rsplit("n", 1)[1])
        return SDR(Unison(ring(n)))
    if name == "unison-gradient-tree":
        return SDR(Unison(random_tree(8, seed=3)))
    if name == "fga-random":
        return SDR(FGA(ring(7), 1, 1))
    raise AssertionError(name)


def search(name, algo, initial, strategy, max_steps=40):
    daemon = make_search_daemon(strategy)
    sim = Simulator(algo, daemon, config=initial.copy(), seed=0,
                    backend="kernel", fuse=False)
    result = sim.run(max_steps=max_steps)
    cert = certificate_from_daemon(
        daemon, algorithm=name, seed=0, initial=initial,
        final=sim.cfg, rounds=sim.rounds.completed,
    )
    return cert, result


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize(
    "name,algo,initial",
    scenarios(),
    ids=[c[0] for c in scenarios()],
)
class TestScheduleReplay:
    def test_dict_replay_matches(self, name, algo, initial, strategy):
        cert, _ = search(name, algo, initial, strategy)
        assert cert.steps > 0
        report = replay_certificate(
            cert, fresh_algorithm(name), initial.copy(), backend="dict")
        assert report.ok, (
            f"dict replay diverged: {report} vs header {cert.header()}")

    def test_kernel_replay_matches(self, name, algo, initial, strategy):
        cert, _ = search(name, algo, initial, strategy)
        report = replay_certificate(
            cert, fresh_algorithm(name), initial.copy(), backend="kernel")
        assert report.ok, (
            f"kernel replay diverged: {report} vs header {cert.header()}")

    def test_replay_reproduces_exact_trajectory(self, name, algo, initial,
                                                strategy):
        # Step the scripted replay manually and compare configurations
        # after every step, not just the endpoints.
        cert, _ = search(name, algo, initial, strategy)
        ref = Simulator(
            fresh_algorithm(name),
            ScriptedDaemon([dict(s) for s in cert.selections]),
            config=initial.copy(), seed=0, backend="dict")
        hashes = []
        for _ in range(cert.steps):
            ref.step()
            hashes.append(config_digest(ref.cfg))
        other = Simulator(
            fresh_algorithm(name),
            ScriptedDaemon([dict(s) for s in cert.selections]),
            config=initial.copy(), seed=0, backend="kernel", fuse=False)
        for i in range(cert.steps):
            other.step()
            assert config_digest(other.cfg) == hashes[i], f"step {i}"
        assert hashes[-1] == cert.final_hash

    def test_certificate_survives_serialization(self, name, algo, initial,
                                                strategy):
        cert, _ = search(name, algo, initial, strategy)
        revived = loads_certificate(dump_certificate(cert))
        report = replay_certificate(
            revived, fresh_algorithm(name), initial.copy(), backend="dict")
        assert report.ok
