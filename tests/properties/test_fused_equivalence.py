"""Property regression: the fused kernel loop equals step-by-step execution.

``Simulator.run`` on the kernel backend drives the whole
guard→daemon→apply cycle inside :meth:`KernelRuntime.run` (vectorized
daemons, array round counter, deferred accounting).  Nothing about the
execution may change: for every topology × daemon × seed × algorithm the
fused run must reproduce the step-by-step run *exactly* — same step and
move counts, same per-process/per-rule accounting, same round counter
state, same final configuration, and the same post-run ``Random`` state
(the vector daemons consume the rng stream in the dict daemons' order).
"""

from random import Random

import pytest

from repro.alliance.fga import FGA
from repro.alliance.turau import TurauMIS
from repro.core import Simulator, make_daemon
from repro.core.detectors import measure_stabilization
from repro.reset import SDR
from repro.topology import grid, random_connected, random_tree, ring
from repro.unison import Unison
from repro.unison.boulinier import BoulinierUnison

DAEMONS = (
    "synchronous",
    "central",
    "locally-central",
    "distributed-random",
    "weakly-fair",
)

TOPOLOGIES = {
    "ring": lambda: ring(11),
    "grid": lambda: grid(3, 4),
    "random-tree": lambda: random_tree(13, seed=5),
    "random-connected": lambda: random_connected(12, p=0.35, seed=9),
}

ALGORITHMS = {
    "unison-sdr": lambda net: SDR(Unison(net)),
    "fga-sdr": lambda net: SDR(FGA(net, 1, 1)),
    "boulinier": lambda net: BoulinierUnison(net),
    "turau": lambda net: TurauMIS(net),
}


def execute(factory, net, daemon_kind, seed, fuse, max_steps=250):
    algo = factory(net)
    sim = Simulator(
        algo,
        make_daemon(daemon_kind, net),
        config=algo.random_configuration(Random(seed)),
        seed=seed,
        backend="kernel",
        fuse=fuse,
    )
    result = sim.run(max_steps=max_steps)
    return {
        "steps": result.steps,
        "moves": result.moves,
        "rounds": result.rounds,
        "terminal": result.terminal,
        "stop_reason": result.stop_reason,
        "moves_per_rule": dict(sim.moves_per_rule),
        "moves_per_process": tuple(sim.moves_per_process),
        "enabled": dict(sim.enabled),
        "round_pending": sim.rounds.pending,
        "final": sim.cfg.snapshot(),
        "rng_state": sim.rng.getstate(),
    }


@pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
@pytest.mark.parametrize("daemon", DAEMONS)
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_fused_equals_stepwise(topology, daemon, algorithm):
    net = TOPOLOGIES[topology]()
    factory = ALGORITHMS[algorithm]
    for seed in (0, 1):
        stepwise = execute(factory, net, daemon, seed, fuse=False)
        fused = execute(factory, net, daemon, seed, fuse=True)
        assert fused == stepwise, (
            f"fused divergence: {algorithm} on {topology} under {daemon}, "
            f"seed {seed}"
        )


def test_fusion_engages_for_vector_daemons():
    net = ring(8)
    sim = Simulator(
        SDR(Unison(net)), make_daemon("distributed-random", net), seed=0,
        backend="kernel",
    )
    assert sim.fusion_available


def test_fusion_disabled_by_knobs():
    net = ring(8)
    sdr = SDR(Unison(net))
    base = dict(seed=0, backend="kernel")
    assert not Simulator(
        sdr, make_daemon("distributed-random", net), fuse=False, **base
    ).fusion_available
    assert not Simulator(
        sdr, make_daemon("distributed-random", net), paranoid=True, **base
    ).fusion_available
    observed = Simulator(
        sdr, make_daemon("distributed-random", net),
        observers=[lambda sim, rec: None], **base
    )
    assert not observed.fusion_available


def test_step_then_fused_run_continues_seamlessly():
    """A fused run can pick up mid-execution after manual step() calls."""
    net = grid(3, 4)
    results = []
    for fuse in (False, True):
        sdr = SDR(Unison(net))
        cfg = sdr.random_configuration(Random(3))
        sim = Simulator(
            sdr, make_daemon("weakly-fair", net), config=cfg, seed=3,
            backend="kernel", fuse=fuse,
        )
        for _ in range(17):  # prefix runs step-by-step in both cases
            sim.step()
        result = sim.run(max_steps=100)
        results.append((
            result.steps, result.moves, result.rounds,
            dict(sim.moves_per_rule), sim.cfg.snapshot(),
            sim.rng.getstate(), sim.rounds.pending,
        ))
    assert results[0] == results[1]


def test_fused_then_step_continues_seamlessly():
    """Manual step() after a fused run sees synced enabled/rounds/rng."""
    net = grid(3, 4)
    results = []
    for fuse in (False, True):
        sdr = SDR(Unison(net))
        cfg = sdr.random_configuration(Random(5))
        sim = Simulator(
            sdr, make_daemon("distributed-random", net), config=cfg, seed=5,
            backend="kernel", fuse=fuse,
        )
        sim.run(max_steps=40)
        for _ in range(10):
            sim.step()
        results.append((
            sim.step_count, sim.move_count, sim.rounds.completed,
            sim.cfg.snapshot(), sim.rng.getstate(),
        ))
    assert results[0] == results[1]


@pytest.mark.parametrize("daemon", DAEMONS)
def test_run_until_mask_equals_detector(daemon):
    """The vectorized convergence predicate stops at the detector's step."""
    net = ring(10)
    for seed in (0, 1, 2):
        sdr = SDR(Unison(net))
        cfg = sdr.random_configuration(Random(seed))
        reference = Simulator(
            sdr, make_daemon(daemon, net), config=cfg.copy(), seed=seed,
            backend="kernel", fuse=False,
        )
        detector, _ = measure_stabilization(
            reference, sdr.is_normal, max_steps=50_000
        )

        fused = Simulator(
            sdr, make_daemon(daemon, net), config=cfg.copy(), seed=seed,
            backend="kernel",
        )
        result = fused.run_until_mask(
            fused._program.normal_mask, max_steps=50_000
        )
        assert result.stop_reason == "predicate"
        assert (result.steps, result.rounds, result.moves) == (
            detector.step, detector.rounds, detector.moves
        )
        assert fused.cfg.snapshot() == reference.cfg.snapshot()


def test_run_until_mask_initial_hit():
    net = ring(6)
    sdr = SDR(Unison(net))
    sim = Simulator(
        sdr, make_daemon("synchronous", net),
        config=sdr.initial_configuration(), seed=0, backend="kernel",
    )
    result = sim.run_until_mask(sim._program.normal_mask, max_steps=100)
    assert (result.steps, result.stop_reason) == (0, "predicate")


def test_fused_budget_and_terminal_stop_reasons():
    net = grid(3, 3)
    sdr = SDR(FGA(net, 1, 1))
    cfg = sdr.random_configuration(Random(2))
    budget = Simulator(
        sdr, make_daemon("distributed-random", net), config=cfg.copy(),
        seed=2, backend="kernel",
    )
    assert budget.run(max_steps=1).stop_reason == "budget"
    terminal = Simulator(
        sdr, make_daemon("distributed-random", net), config=cfg.copy(),
        seed=2, backend="kernel",
    )
    result = terminal.run_to_termination(max_steps=100_000)
    assert result.terminal
