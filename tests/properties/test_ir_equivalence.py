"""Property regression: IR-generated programs are the kernel backend.

Every algorithm's kernel program is now *generated* from its declarative
rule set (``rule_set().compile_kernel()``).  This suite pins the three
guarantees the redesign made:

* the generated programs are trace-equal to the dict backend for the
  algorithms that gained a kernel backend through the IR (BFS tree,
  leader election, their composition, the mono reset) — topologies ×
  daemons × seeds, byte for byte, exactly like the long-ported set in
  ``test_backend_equivalence.py``;
* every registered algorithm really does run through an IR-generated
  program (no handwritten numpy twin survives), and the simulator warns
  (once) when someone supplies one anyway;
* batched probe views re-localize ``opt_index`` columns, so a pointer
  probe observes trial-local process indices in every trial.
"""

from random import Random

import numpy as np
import pytest

import repro.core.simulator as simulator_module
from repro.baselines.bfs_tree import PARENT_VAR, BfsTree
from repro.baselines.leader_election import LeaderElection
from repro.baselines.mono_reset import MonoReset
from repro.core import Simulator, Trace, make_daemon
from repro.core.composition import Composition
from repro.core.kernel.batch import run_batch
from repro.ir.registry import registered_algorithms
from repro.probes import Probe
from repro.topology import grid, random_connected, random_tree, ring
from repro.unison import Unison

DAEMONS = ("synchronous", "central", "distributed-random")

TOPOLOGIES = {
    "ring": lambda: ring(9),
    "grid": lambda: grid(3, 4),
    "random-tree": lambda: random_tree(11, seed=5),
    "random-connected": lambda: random_connected(10, p=0.35, seed=9),
}

#: The algorithms whose kernel backend exists *only* through the IR.
ALGORITHMS = {
    "bfs-tree": lambda net: BfsTree(net, root=1),
    "leader-election": lambda net: LeaderElection(net),
    "composition": lambda net: Composition(
        [BfsTree(net, root=0), LeaderElection(net)]
    ),
    "mono-reset": lambda net: MonoReset(Unison(net)),
}


def execute(factory, net, daemon_kind, seed, backend, max_steps=300):
    algo = factory(net)
    trace = Trace()
    sim = Simulator(
        algo,
        make_daemon(daemon_kind, net),
        config=algo.random_configuration(Random(seed)),
        seed=seed,
        backend=backend,
        trace=trace,
    )
    result = sim.run(max_steps=max_steps)
    return {
        "steps": result.steps,
        "moves": result.moves,
        "rounds": result.rounds,
        "terminal": result.terminal,
        "moves_per_rule": dict(sim.moves_per_rule),
        "trace": [
            (rec.selection, rec.enabled_before, rec.enabled_after, rec.rounds_completed)
            for rec in trace
        ],
        "final": sim.cfg.snapshot(),
    }


@pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
@pytest.mark.parametrize("daemon", DAEMONS)
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_ir_backend_identical_traces(topology, daemon, algorithm):
    net = TOPOLOGIES[topology]()
    factory = ALGORITHMS[algorithm]
    for seed in (0, 1):
        reference = execute(factory, net, daemon, seed, "dict")
        kernel = execute(factory, net, daemon, seed, "kernel")
        assert kernel == reference, (
            f"IR backend divergence: {algorithm} on {topology} under "
            f"{daemon}, seed {seed}"
        )


# ----------------------------------------------------------------------
# No handwritten twin survives
# ----------------------------------------------------------------------

def test_every_registered_kernel_program_is_ir_generated():
    for label, factory in registered_algorithms():
        program = factory().kernel_program()
        assert program is not None, label
        inner = getattr(program, "inner", program)
        assert getattr(inner, "ir_generated", False), (
            f"{label}: kernel program is not IR-generated"
        )


def test_simulator_warns_once_about_handwritten_programs(caplog):
    class Handwritten(BfsTree):
        name = "bfs-tree-handwritten"

        def kernel_program(self):
            program = super().kernel_program()
            program.ir_generated = False  # masquerade as a numpy twin
            return program

    simulator_module._HANDWRITTEN_WARNED.discard("bfs-tree-handwritten")
    net = ring(6)

    def boot(algo):
        Simulator(
            algo, make_daemon("central", net),
            config=algo.initial_configuration(), seed=0, backend="kernel",
        ).run(max_steps=1)

    with caplog.at_level("WARNING", logger=simulator_module.__name__):
        boot(Handwritten(net))
        boot(Handwritten(net))
        boot(BfsTree(net))  # the IR program must stay silent
    warnings = [
        rec for rec in caplog.records if "handwritten" in rec.getMessage()
    ]
    assert len(warnings) == 1
    assert "bfs-tree-handwritten" in warnings[0].getMessage()


# ----------------------------------------------------------------------
# Batched probes see trial-local pointers
# ----------------------------------------------------------------------

class _PointerProbe(Probe):
    """Records every parent-pointer column a batched trial shows it."""

    name = "pointer-probe"

    def __init__(self):
        self.seen = []

    def wants_decode(self):
        return False

    def on_columns(self, view):
        self.seen.append([int(v) for v in view.cols[PARENT_VAR]])


def test_batch_probe_views_localize_opt_index_columns():
    net = ring(8)
    n = net.n
    trials = 3
    algo = BfsTree(net, root=1)
    program = algo.kernel_program()
    # Identical trials: every probe must then observe identical blocks —
    # which only holds if trial t's globalized pointers (+t·n) are
    # re-localized before the probe sees them.
    cfgs = [algo.random_configuration(Random(7)) for _ in range(trials)]
    daemons = [make_daemon("distributed-random", net) for _ in range(trials)]
    rngs = [Random(13) for _ in range(trials)]
    probes = [[_PointerProbe()] for _ in range(trials)]

    run_batch(
        program, cfgs, daemons, rngs, net,
        max_steps=200, probes=probes,
    )

    first = probes[0][0].seen
    assert first, "probe observed nothing"
    for t in range(trials):
        seen = probes[t][0].seen
        assert all(
            -1 <= v < n for step in seen for v in step
        ), f"trial {t} saw non-local pointers"
        assert seen == first, f"trial {t} diverged from trial 0"
