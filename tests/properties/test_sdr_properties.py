"""Property-based tests (hypothesis) for SDR's structural theorems.

Each property quantifies over random graphs, random configurations, and
random daemon schedules — the same universes the paper's theorems quantify
over (at test scale).
"""

from random import Random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import bounds
from repro.core import DistributedRandomDaemon, Simulator, Trace, measure_stabilization
from repro.reset import SDR, check_configuration, check_reset_establishes
from repro.reset.analysis import (
    alive_roots,
    reset_branches,
    segment_rule_sequences_ok,
    split_segments,
)
from repro.topology import random_connected
from repro.unison import Unison

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def sdr_instances(draw):
    """A random (SDR over U, random configuration, rng seed) triple."""
    n = draw(st.integers(min_value=4, max_value=9))
    graph_seed = draw(st.integers(min_value=0, max_value=10_000))
    cfg_seed = draw(st.integers(min_value=0, max_value=10_000))
    net = random_connected(n, p=0.3, seed=graph_seed)
    sdr = SDR(Unison(net))
    cfg = sdr.random_configuration(Random(cfg_seed))
    return sdr, cfg, cfg_seed


@given(sdr_instances())
@SETTINGS
def test_lemma5_rules_pairwise_mutually_exclusive(instance):
    """Lemma 5 + Remark 2: at most one rule enabled per process."""
    sdr, cfg, _ = instance
    for u in sdr.network.processes():
        assert len(sdr.enabled_rules(cfg, u)) <= 1


@given(sdr_instances())
@SETTINGS
def test_theorem1_terminal_iff_normal(instance):
    """Theorem 1: a configuration is terminal for the SDR layer iff
    P_Clean ∧ P_ICorrect holds everywhere."""
    sdr, cfg, _ = instance
    sdr_rules = ("rule_RB", "rule_RF", "rule_C", "rule_R")
    sdr_terminal = not any(
        sdr.guard(rule, cfg, u)
        for u in sdr.network.processes()
        for rule in sdr_rules
    )
    assert sdr_terminal == sdr.is_normal(cfg)


@given(sdr_instances())
@SETTINGS
def test_theorem3_alive_roots_never_created(instance):
    """Theorem 3 / Remark 4: AR(γ_{i+1}) ⊆ AR(γ_i) along executions."""
    sdr, cfg, seed = instance
    sim = Simulator(sdr, DistributedRandomDaemon(0.5), config=cfg, seed=seed)
    previous = alive_roots(sdr, sim.cfg)
    for _ in range(60):
        if sim.step() is None:
            break
        current = alive_roots(sdr, sim.cfg)
        assert current <= previous
        previous = current


@given(sdr_instances())
@SETTINGS
def test_remark5_and_theorem4_segment_structure(instance):
    """Remark 5: ≤ n+1 segments; Theorem 4: per-segment rule language."""
    sdr, cfg, seed = instance
    trace = Trace(record_configurations=True)
    sim = Simulator(sdr, DistributedRandomDaemon(0.5), config=cfg, seed=seed,
                    trace=trace)
    measure_stabilization(sim, sdr.is_normal, max_steps=100_000)
    assert len(split_segments(sdr, trace)) <= bounds.segments_bound(sdr.network.n)
    assert segment_rule_sequences_ok(sdr, trace)


@given(sdr_instances())
@SETTINGS
def test_corollary5_convergence_bound(instance):
    """Corollary 5: a normal configuration within 3n rounds."""
    sdr, cfg, seed = instance
    sim = Simulator(sdr, DistributedRandomDaemon(0.5), config=cfg, seed=seed)
    detector, _ = measure_stabilization(sim, sdr.is_normal, max_steps=100_000)
    assert detector.rounds <= bounds.sdr_rounds_bound(sdr.network.n)


@given(sdr_instances())
@SETTINGS
def test_lemma7_branches_are_short_and_acyclic(instance):
    """Lemma 7.1: every reset branch has at most n distinct processes."""
    sdr, cfg, _ = instance
    for branch in reset_branches(sdr, cfg, limit=5_000):
        assert len(branch) <= sdr.network.n
        assert len(set(branch)) == len(branch)


@given(sdr_instances())
@SETTINGS
def test_requirements_hold_on_arbitrary_configurations(instance):
    """Requirements 2c/2d/2e hold for U on any configuration."""
    sdr, cfg, seed = instance
    check_configuration(sdr, cfg)
    for u in sdr.network.processes():
        check_reset_establishes(sdr, cfg, u)
