"""Property-based tests for the simulation kernel itself."""

from random import Random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    DistributedRandomDaemon,
    ModelViolation,
    Simulator,
    SynchronousDaemon,
)
from repro.reset import SDR
from repro.topology import random_connected
from repro.unison import Unison
from tests.toys import MaxFlood

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(
    st.integers(min_value=3, max_value=10),
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=0, max_value=10_000),
)
@SETTINGS
def test_incremental_enabled_set_matches_full_recompute(n, graph_seed, run_seed):
    """The paranoid cross-check never fires on SDR executions."""
    net = random_connected(n, p=0.3, seed=graph_seed)
    sdr = SDR(Unison(net))
    cfg = sdr.random_configuration(Random(run_seed))
    sim = Simulator(
        sdr, DistributedRandomDaemon(0.5), config=cfg, seed=run_seed, paranoid=True
    )
    sim.run(max_steps=120)  # raises ModelViolation on divergence


@given(
    st.integers(min_value=3, max_value=10),
    st.integers(min_value=0, max_value=10_000),
)
@SETTINGS
def test_max_flood_terminates_at_global_max(n, seed):
    """Determinism + termination sanity: MaxFlood always floods the max."""
    net = random_connected(n, p=0.3, seed=seed)
    algo = MaxFlood(net)
    cfg = algo.random_configuration(Random(seed))
    target = max(cfg.variable("x"))
    sim = Simulator(algo, DistributedRandomDaemon(0.5), config=cfg, seed=seed)
    sim.run_to_termination(max_steps=100_000)
    assert sim.cfg.variable("x") == [target] * n


@given(
    st.integers(min_value=3, max_value=8),
    st.integers(min_value=0, max_value=10_000),
)
@SETTINGS
def test_rounds_never_exceed_steps(n, seed):
    """Rounds are coarser than steps: completed rounds ≤ steps, and under
    the synchronous daemon every step closes exactly one round."""
    net = random_connected(n, p=0.3, seed=seed)
    algo = MaxFlood(net)
    cfg = algo.random_configuration(Random(seed))
    sim = Simulator(algo, SynchronousDaemon(), config=cfg, seed=seed)
    result = sim.run_to_termination(max_steps=10_000)
    assert result.rounds == result.steps

    sim2 = Simulator(algo, DistributedRandomDaemon(0.4), config=cfg, seed=seed)
    result2 = sim2.run_to_termination(max_steps=10_000)
    assert result2.rounds <= result2.steps


@given(
    st.integers(min_value=3, max_value=8),
    st.integers(min_value=0, max_value=10_000),
)
@SETTINGS
def test_same_seed_reproduces_execution(n, seed):
    """Identical (algorithm, config, daemon, seed) gives identical runs."""
    net = random_connected(n, p=0.3, seed=seed)
    sdr = SDR(Unison(net))
    cfg = sdr.random_configuration(Random(seed))

    def run_once():
        sim = Simulator(sdr, DistributedRandomDaemon(0.5), config=cfg.copy(), seed=seed)
        sim.run(max_steps=80)
        return sim.cfg.snapshot(), sim.move_count, sim.rounds.completed

    assert run_once() == run_once()
