"""Property-style regression: dict and kernel backends are trace-equal.

For random topologies × daemons × seeds, running the same algorithm with
the same seed on both execution backends must produce *identical*
executions: the same selection at every step, the same enabled sets, the
same move/round accounting, and the same terminal configuration.  This
holds because both backends present the enabled map to daemons in
ascending process order, so daemons consume the rng stream identically —
any guard or action discrepancy between the two implementations breaks
the equality immediately.
"""

from random import Random

import pytest

from repro.alliance.fga import FGA
from repro.alliance.turau import TurauMIS
from repro.core import Simulator, Trace, make_daemon
from repro.reset import SDR
from repro.topology import grid, random_connected, random_tree, ring
from repro.unison import Unison
from repro.unison.boulinier import BoulinierUnison

DAEMONS = (
    "synchronous",
    "central",
    "locally-central",
    "distributed-random",
    "weakly-fair",
)

TOPOLOGIES = {
    "ring": lambda: ring(11),
    "grid": lambda: grid(3, 4),
    "random-tree": lambda: random_tree(13, seed=5),
    "random-connected": lambda: random_connected(12, p=0.35, seed=9),
}

ALGORITHMS = {
    "unison": lambda net: Unison(net),
    "unison-sdr": lambda net: SDR(Unison(net)),
    "fga": lambda net: FGA(net, 1, 1),
    "fga-sdr": lambda net: SDR(FGA(net, 1, 1)),
    "boulinier": lambda net: BoulinierUnison(net),
    "turau": lambda net: TurauMIS(net),
}


def execute(algo_factory, net, daemon_kind, seed, backend, max_steps=300):
    algo = algo_factory(net)
    trace = Trace()
    sim = Simulator(
        algo,
        make_daemon(daemon_kind, net),
        config=algo.random_configuration(Random(seed)),
        seed=seed,
        backend=backend,
        trace=trace,
    )
    result = sim.run(max_steps=max_steps)
    return {
        "steps": result.steps,
        "moves": result.moves,
        "rounds": result.rounds,
        "terminal": result.terminal,
        "moves_per_rule": dict(sim.moves_per_rule),
        "trace": [
            (rec.selection, rec.enabled_before, rec.enabled_after, rec.rounds_completed)
            for rec in trace
        ],
        "final": sim.cfg.snapshot(),
    }


@pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
@pytest.mark.parametrize("daemon", DAEMONS)
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_identical_traces(topology, daemon, algorithm):
    net = TOPOLOGIES[topology]()
    factory = ALGORITHMS[algorithm]
    for seed in (0, 1):
        reference = execute(factory, net, daemon, seed, "dict")
        kernel = execute(factory, net, daemon, seed, "kernel")
        assert kernel == reference, (
            f"backend divergence: {algorithm} on {topology} under {daemon}, "
            f"seed {seed}"
        )


def test_terminal_configuration_identical_to_termination():
    """Silent composition: both backends end in the same terminal config."""
    net = grid(3, 3)
    finals = []
    for backend in ("dict", "kernel"):
        sdr = SDR(FGA(net, 1, 1))
        cfg = sdr.random_configuration(Random(23))
        sim = Simulator(
            sdr,
            make_daemon("distributed-random", net),
            config=cfg,
            seed=23,
            backend=backend,
        )
        result = sim.run_to_termination(max_steps=100_000)
        finals.append((result.moves, result.rounds, sim.cfg.snapshot()))
    assert finals[0] == finals[1]
