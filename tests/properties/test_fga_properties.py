"""Property-based tests for FGA and its composition with SDR."""

from random import Random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.alliance import FGA, is_alliance, is_fga_stable, is_one_minimal
from repro.analysis import bounds
from repro.core import DistributedRandomDaemon, Simulator
from repro.reset import SDR
from repro.topology import random_connected

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def fga_instances(draw):
    """Random network + feasible (f, g) + seed."""
    n = draw(st.integers(min_value=4, max_value=8))
    graph_seed = draw(st.integers(min_value=0, max_value=10_000))
    net = random_connected(n, p=0.4, seed=graph_seed)
    f, g = [], []
    for u in net.processes():
        deg = net.degree(u)
        fu = draw(st.integers(min_value=0, max_value=deg))
        gu = draw(st.integers(min_value=0, max_value=deg))
        f.append(fu)
        g.append(gu)
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return net, tuple(f), tuple(g), seed


@given(fga_instances())
@SETTINGS
def test_composition_is_silent_and_correct(instance):
    """Theorems 11–13 over random feasible (f,g): the composition always
    terminates, within the move bound, on an FGA-stable alliance."""
    net, f, g, seed = instance
    sdr = SDR(FGA(net, f, g))
    cfg = sdr.random_configuration(Random(seed))
    sim = Simulator(sdr, DistributedRandomDaemon(0.5), config=cfg, seed=seed)
    result = sim.run_to_termination(max_steps=500_000)
    assert result.moves <= bounds.fga_sdr_move_bound(net.n, net.m, net.max_degree)
    members = sdr.input.alliance(sim.cfg)
    assert is_alliance(net, members, f, g)
    assert is_fga_stable(net, members, f, g)


@given(fga_instances())
@SETTINGS
def test_theorem8_when_f_strictly_dominates_g(instance):
    """With f > g pointwise, terminal alliances are strictly 1-minimal."""
    net, f, g, seed = instance
    # Lift f above g, clamped to the degree (keeps the instance feasible).
    f = tuple(min(net.degree(u), max(f[u], g[u] + 1)) for u in net.processes())
    g = tuple(min(g[u], f[u] - 1) for u in net.processes())
    assert all(fu > gu for fu, gu in zip(f, g))
    sdr = SDR(FGA(net, f, g))
    cfg = sdr.random_configuration(Random(seed))
    sim = Simulator(sdr, DistributedRandomDaemon(0.5), config=cfg, seed=seed)
    sim.run_to_termination(max_steps=500_000)
    assert is_one_minimal(net, sdr.input.alliance(sim.cfg), f, g)


@given(fga_instances())
@SETTINGS
def test_corollary9_p_icorrect_closed_by_fga(instance):
    """Corollary 9: P_ICorrect(u) is closed by FGA (standalone)."""
    net, f, g, seed = instance
    fga = FGA(net, f, g)
    cfg = fga.random_configuration(Random(seed))
    sim = Simulator(fga, DistributedRandomDaemon(0.5), config=cfg, seed=seed, strict=True)
    correct = [fga.p_icorrect(sim.cfg, u) for u in net.processes()]
    for _ in range(40):
        if sim.step() is None:
            break
        now = [fga.p_icorrect(sim.cfg, u) for u in net.processes()]
        for before, after in zip(correct, now):
            assert not (before and not after)
        correct = now


@given(fga_instances())
@SETTINGS
def test_lemma21_scr_one_or_ptr_bottom_closed(instance):
    """Lemma 21: scr = 1 ∨ ptr = ⊥ is closed by FGA."""
    net, f, g, seed = instance
    fga = FGA(net, f, g)
    cfg = fga.random_configuration(Random(seed))
    sim = Simulator(fga, DistributedRandomDaemon(0.5), config=cfg, seed=seed)
    def holds(state):
        return state["scr"] == 1 or state["ptr"] is None
    ok = [holds(sim.cfg[u]) for u in net.processes()]
    for _ in range(40):
        if sim.step() is None:
            break
        now = [holds(sim.cfg[u]) for u in net.processes()]
        for before, after in zip(ok, now):
            assert not (before and not after)
        ok = now
