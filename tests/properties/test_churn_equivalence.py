"""Property regression: topology churn mutates byte-identically everywhere.

A bound :class:`~repro.faults.churn.BoundChurnSchedule` owns the canonical
topology state and pre-commits every occurrence's victims, edges, and
join-state draws to a PRNG stream independent of the daemon and the
backend.  Running the same algorithm, daemon, seed, *and churn schedule*
must therefore produce identical executions on

* the dict engine and the stepping kernel (full trace equality),
* the fused kernel loop (accounting + terminal configuration + final
  topology equality — fusion admits no trace by design),

and a finite schedule must always play out in full: occurrences landing
after the system quiesces are pulled forward, fired, and the run still
ends ``terminal`` — on every backend.

Any backend crashing a different process, reclaiming a different edge,
or drawing a join state from a stale neighborhood breaks these
equalities immediately.
"""

from random import Random

import pytest

from repro.alliance.fga import FGA
from repro.core import Simulator, Trace, make_daemon
from repro.engine.campaign import Campaign
from repro.harness.runner import can_batch
from repro.reset import SDR
from repro.topology import grid, ring
from repro.unison import Unison
from repro.unison.boulinier import BoulinierUnison

DAEMONS = ("synchronous", "central", "locally-central", "distributed-random")

ALGORITHMS = {
    "unison-sdr": lambda net: SDR(Unison(net)),
    "fga-sdr": lambda net: SDR(FGA(net, 1, 1)),
    "boulinier": lambda net: BoulinierUnison(net),
}

#: All four actions, interleaved: periodic crashes, a join storm landing
#: while crashed processes are still down, then one link flap late in the
#: run so edge churn hits an evolved configuration.
CHURN = (
    "every=10,count=4,crash=1;"
    "burst=55,count=3,gap=10,join=1;"
    "at=90,drop_edge=1;"
    "at=95,add_edge=1"
)

MAX_STEPS = 5000


def execute(algorithm, daemon_kind, seed, backend, traced):
    # Churn mutates the Network in place: every execution gets a fresh one.
    net = ring(9) if seed % 2 else grid(3, 3)
    algo = ALGORITHMS[algorithm](net)
    trace = Trace() if traced else None
    sim = Simulator(
        algo,
        make_daemon(daemon_kind, net),
        config=algo.random_configuration(Random(seed)),
        seed=seed,
        backend=backend,
        trace=trace,
        churn=CHURN,
    )
    result = sim.run(max_steps=MAX_STEPS)
    out = {
        "steps": result.steps,
        "moves": result.moves,
        "rounds": result.rounds,
        "terminal": result.terminal,
        "stop_reason": result.stop_reason,
        "fired": sim.churn.fired,
        "dead": sorted(sim.dead),
        "edges": sim.churn.current_edges(),
        "network_edges": tuple(sorted(tuple(sorted(e)) for e in net.edges())),
        "moves_per_rule": dict(sim.moves_per_rule),
        "moves_per_process": list(sim.moves_per_process),
        "final": sim.cfg.snapshot(),
    }
    if traced:
        out["trace"] = [
            (rec.selection, rec.enabled_before, rec.enabled_after)
            for rec in trace
        ]
    return out


@pytest.mark.parametrize("daemon", DAEMONS)
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_dict_and_stepped_kernel_traces_identical(algorithm, daemon):
    for seed in (3, 4):
        reference = execute(algorithm, daemon, seed, "dict", traced=True)
        kernel = execute(algorithm, daemon, seed, "kernel", traced=True)
        assert reference["fired"] == 9  # the full schedule played out
        assert kernel == reference, (algorithm, daemon, seed)


@pytest.mark.parametrize("daemon", DAEMONS)
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_fused_loop_matches_dict(algorithm, daemon):
    for seed in (3, 4):
        reference = execute(algorithm, daemon, seed, "dict", traced=False)
        fused = execute(algorithm, daemon, seed, "kernel", traced=False)
        assert fused == reference, (algorithm, daemon, seed)


@pytest.mark.parametrize("backend", ("dict", "kernel"))
def test_finite_schedule_pulled_forward_at_terminal(backend):
    """Occurrences scheduled past quiescence still fire before the run ends.

    The silent FGA∘SDR stack stabilizes in a few dozen steps; both loops
    must pull the remaining occurrences forward (even when an
    ``add_edge`` at a silent fixpoint wakes nobody) and end ``terminal``
    with the schedule exhausted, not strand them behind an early break.
    """
    net = ring(8)
    algo = SDR(FGA(net, 1, 1))
    sim = Simulator(
        algo,
        make_daemon("distributed-random", net),
        config=algo.random_configuration(Random(7)),
        seed=7,
        backend=backend,
        churn="at=4000,drop_edge=1;at=4500,add_edge=1;at=5000,crash=1",
    )
    result = sim.run(max_steps=MAX_STEPS)
    assert sim.churn.fired == 3
    assert sim.churn.exhausted
    assert result.stop_reason == "terminal"


def test_churn_trials_refuse_batching():
    """Churn mutates per-trial topology: cells with churn never batch."""
    campaign = Campaign(
        name="churn-batch", seed=5, algorithms=("unison",),
        topologies=("ring",), sizes=(8,), scenarios=("random",),
        trials=2, params=(("churn", "every=10,crash=1"),),
    )
    for spec in campaign.specs():
        assert not can_batch(spec)
