"""Property regression: probe tiers measure identically.

A :class:`StabilizationProbe` can observe one execution four ways — the
fused kernel loop (vector tier), the step-by-step kernel loop with the
mask, the step-by-step kernel loop with the predicate, and the dict
backend with the predicate.  For every algorithm × daemon × seed the
four must report *byte-identical* ``(step, rounds, moves,
violations_after_hit)``: measurement must never depend on how the
execution was driven.
"""

from random import Random

import pytest

from repro.baselines.mono_reset import MonoReset
from repro.core import Simulator, make_daemon
from repro.core.detectors import measure_stabilization
from repro.faults.injector import corrupt_processes
from repro.probes import StabilizationProbe
from repro.reset import SDR
from repro.topology import grid, ring
from repro.unison import Unison
from repro.unison.boulinier import BoulinierUnison

DAEMONS = (
    "synchronous",
    "central",
    "locally-central",
    "distributed-random",
    "weakly-fair",
)

#: name → (algorithm factory, start factory, predicate attr, mask attr)
ALGORITHMS = {
    "unison-sdr": (
        lambda net: SDR(Unison(net)),
        lambda algo, seed: algo.random_configuration(Random(seed)),
        "is_normal",
        "normal_mask",
    ),
    "boulinier": (
        lambda net: BoulinierUnison(net),
        lambda algo, seed: algo.random_configuration(Random(seed)),
        "is_legitimate",
        "legitimate_mask",
    ),
    "mono-reset": (
        lambda net: MonoReset(Unison(net)),
        # Random wave/tree states are outside the baseline's proven
        # scope; measure its documented scenario (corrupted input).
        lambda algo, seed: corrupt_processes(
            algo, algo.initial_configuration(),
            Random(seed).sample(range(algo.network.n), 2), Random(seed),
            variables=("c",),
        ),
        "is_normal",
        "normal_mask",
    ),
}

#: tier → (backend, fuse, use mask)
TIERS = {
    "fused": ("kernel", True, True),
    "kernel-mask-step": ("kernel", False, True),
    "kernel-decode": ("kernel", False, False),
    "dict-decode": ("dict", False, False),
}


def measure(algo_name, net, daemon_kind, seed, tier, run_past=0):
    factory, start, predicate_attr, mask_attr = ALGORITHMS[algo_name]
    backend, fuse, use_mask = TIERS[tier]
    algo = factory(net)
    cfg = start(algo, seed)
    sim = Simulator(
        algo, make_daemon(daemon_kind, net), config=cfg, seed=seed,
        backend=backend, fuse=fuse,
    )
    probe = StabilizationProbe(
        getattr(algo, predicate_attr),
        mask=mask_attr if use_mask else None,
        run_past=run_past,
    )
    sim.add_probe(probe)
    if tier == "fused":
        assert sim.fusion_available, (
            "a vectorized StabilizationProbe must keep the fused path"
        )
    result = sim.run(max_steps=200_000)
    probe.require_hit()
    if tier == "fused":
        assert result.stop_reason == "probe"
    return (probe.step, probe.rounds, probe.moves, probe.violations_after_hit)


@pytest.mark.parametrize("daemon_kind", DAEMONS)
@pytest.mark.parametrize("algo_name", sorted(ALGORITHMS))
def test_probe_tiers_byte_identical(algo_name, daemon_kind):
    net = ring(9)
    for seed in range(2):
        readings = {
            tier: measure(algo_name, net, daemon_kind, seed, tier)
            for tier in TIERS
        }
        assert len(set(readings.values())) == 1, readings


@pytest.mark.parametrize("algo_name", sorted(ALGORITHMS))
def test_probe_tiers_byte_identical_on_grid(algo_name):
    net = grid(3, 4)
    readings = [
        measure(algo_name, net, "distributed-random", 7, tier)
        for tier in TIERS
    ]
    assert len(set(readings)) == 1, readings


@pytest.mark.parametrize("daemon_kind", ("distributed-random", "synchronous"))
def test_run_past_suffix_monitoring_matches_across_tiers(daemon_kind):
    """Closure monitoring (run_past violations) is tier-independent."""
    net = ring(9)
    for seed in range(2):
        readings = {
            tier: measure("unison-sdr", net, daemon_kind, seed, tier,
                          run_past=40)
            for tier in TIERS
        }
        assert len(set(readings.values())) == 1, readings
        # U o SDR's normal predicate is closed: the suffix stays clean.
        assert next(iter(readings.values()))[3] == 0


def test_nonclosed_predicate_violations_match_across_tiers():
    """A predicate that flickers counts the same violations fused/decoded.

    "Every clock even" holds, breaks, and holds again along a unison
    execution — exactly what violations_after_hit must count, on both
    tiers, with a callable mask standing in for a program attribute.
    """
    net = ring(8)
    readings = []
    for tier in ("fused", "dict-decode"):
        backend, fuse, use_mask = TIERS[tier]
        sdr = SDR(Unison(net))
        cfg = sdr.random_configuration(Random(11))
        sim = Simulator(
            sdr, make_daemon("distributed-random", net), config=cfg, seed=11,
            backend=backend, fuse=fuse,
        )
        probe = StabilizationProbe(
            predicate=lambda c: all(c[u]["c"] % 2 == 0 for u in net.processes()),
            mask=(lambda cols: cols["c"] % 2 == 0) if use_mask else None,
            name="all-even",
            stop=False,
        )
        sim.add_probe(probe)
        if tier == "fused":
            assert sim.fusion_available
        sim.run(max_steps=400)
        readings.append(
            (probe.step, probe.rounds, probe.moves, probe.violations_after_hit)
        )
    assert readings[0] == readings[1]
    assert readings[0][3] > 0, "scenario should actually flicker"


def test_probe_agrees_with_legacy_measure_stabilization():
    """The probe path reports exactly what the legacy shim reports."""
    net = grid(3, 3)
    for seed in range(3):
        sdr = SDR(Unison(net))
        cfg = sdr.random_configuration(Random(seed))
        legacy_sim = Simulator(
            sdr, make_daemon("distributed-random", net), config=cfg.copy(),
            seed=seed, backend="dict",
        )
        detector, _ = measure_stabilization(
            legacy_sim, sdr.is_normal, max_steps=200_000
        )

        sdr2 = SDR(Unison(net))
        fused_sim = Simulator(
            sdr2, make_daemon("distributed-random", net), config=cfg.copy(),
            seed=seed,
        )
        probe = StabilizationProbe(sdr2.is_normal, mask="normal_mask")
        fused_sim.add_probe(probe)
        assert fused_sim.fusion_available
        fused_sim.run(max_steps=200_000)
        assert (probe.step, probe.rounds, probe.moves) == (
            detector.step, detector.rounds, detector.moves,
        )
