"""Unit tests for stabilization detectors."""

import pytest

from repro.core import (
    Network,
    NotStabilized,
    Simulator,
    StabilizationDetector,
    SynchronousDaemon,
    measure_stabilization,
)
from tests.toys import Countdown, MaxFlood

PATH = Network([(0, 1), (1, 2)])


class TestStabilizationDetector:
    def test_detects_on_initial_configuration(self):
        algo = Countdown(PATH, start=0)
        detector = StabilizationDetector(lambda cfg: True)
        Simulator(algo, SynchronousDaemon(), seed=0, observers=[detector]).run(max_steps=1)
        # on_start is wired by measure_stabilization; call manually here.
        detector.on_start(Simulator(algo, SynchronousDaemon(), seed=0))
        assert detector.hit
        assert detector.step == 0

    def test_records_first_hit_counts(self):
        algo = Countdown(PATH, start=3)
        predicate = lambda cfg: all(s["k"] <= 1 for s in cfg)
        sim = Simulator(algo, SynchronousDaemon(), seed=0)
        detector, result = measure_stabilization(sim, predicate)
        assert detector.hit
        assert detector.step == 2
        assert detector.rounds == 2
        assert detector.moves == 6

    def test_violations_after_hit_for_closed_predicate(self):
        algo = Countdown(PATH, start=4)
        predicate = lambda cfg: all(s["k"] <= 2 for s in cfg)
        sim = Simulator(algo, SynchronousDaemon(), seed=0)
        detector, _ = measure_stabilization(sim, predicate, run_past=10)
        assert detector.violations_after_hit == 0

    def test_non_closed_predicate_counts_violations(self):
        algo = Countdown(PATH, start=4)
        predicate = lambda cfg: cfg[0]["k"] == 2  # holds once, then breaks
        sim = Simulator(algo, SynchronousDaemon(), seed=0)
        detector, _ = measure_stabilization(sim, predicate, run_past=10)
        assert detector.violations_after_hit > 0

    def test_require_hit(self):
        detector = StabilizationDetector(lambda cfg: False, name="never")
        with pytest.raises(NotStabilized):
            detector.require_hit()

    def test_measure_raises_when_budget_exhausted(self):
        algo = Countdown(PATH, start=100)
        sim = Simulator(algo, SynchronousDaemon(), seed=0)
        with pytest.raises(NotStabilized):
            measure_stabilization(sim, lambda cfg: False, max_steps=5)

    def test_repr(self):
        detector = StabilizationDetector(lambda cfg: True, name="legit")
        assert "legit" in repr(detector)

    def test_terminal_predicate(self):
        algo = MaxFlood(PATH)
        sim = Simulator(algo, SynchronousDaemon(), seed=0)
        detector, result = measure_stabilization(sim, algo.is_terminal)
        assert detector.hit
        assert sim.is_terminal()
