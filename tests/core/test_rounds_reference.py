"""Cross-check the incremental round counter against an independent
reference implementation that replays the inductive definition over a
recorded trace (prefix-minimal rounds, computed from scratch)."""

from random import Random

import pytest

from repro.core import DistributedRandomDaemon, Simulator, Trace
from repro.reset import SDR
from repro.topology import random_connected, ring
from repro.unison import Unison
from tests.toys import Countdown, MaxFlood


def reference_rounds(records) -> int:
    """Recompute completed rounds by literally applying Section 2.4.

    For each round, scan forward for the minimal prefix in which every
    process enabled at the round's start was activated or neutralized.
    Restart the scan after each boundary (quadratic, reference-only).
    """
    completed = 0
    i = 0
    n_records = len(records)
    while i < n_records:
        pending = set(records[i].enabled_before)
        if not pending:
            break
        j = i
        while j < n_records and pending:
            record = records[j]
            before = set(record.enabled_before)
            after = set(record.enabled_after)
            activated = set(record.selection)
            pending -= {
                v for v in pending
                if v in activated or (v in before and v not in after)
            }
            j += 1
        if pending:
            break  # execution prefix ended mid-round
        completed += 1
        i = j
    return completed


@pytest.mark.parametrize("seed", range(6))
def test_reference_agrees_on_sdr_runs(seed):
    net = random_connected(7, p=0.3, seed=seed)
    sdr = SDR(Unison(net))
    trace = Trace()
    sim = Simulator(
        sdr, DistributedRandomDaemon(0.5),
        config=sdr.random_configuration(Random(seed)), seed=seed, trace=trace,
    )
    sim.run(max_steps=200)
    assert sim.rounds.completed == reference_rounds(trace.records)


@pytest.mark.parametrize("seed", range(4))
def test_reference_agrees_on_silent_runs(seed):
    net = ring(6)
    algo = MaxFlood(net)
    trace = Trace()
    sim = Simulator(
        algo, DistributedRandomDaemon(0.4),
        config=algo.random_configuration(Random(seed)), seed=seed, trace=trace,
    )
    sim.run_to_termination(max_steps=10_000)
    assert sim.rounds.completed == reference_rounds(trace.records)


def test_reference_agrees_on_countdown():
    net = ring(5)
    algo = Countdown(net, start=4)
    trace = Trace()
    sim = Simulator(algo, DistributedRandomDaemon(0.6), seed=1, trace=trace)
    sim.run_to_termination(max_steps=10_000)
    assert sim.rounds.completed == reference_rounds(trace.records)
