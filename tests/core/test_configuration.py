"""Unit tests for :mod:`repro.core.configuration`."""

import pytest

from repro.core import Configuration
from repro.core.configuration import freeze_state, state_equal


@pytest.fixture
def cfg():
    return Configuration([{"a": 1, "b": "x"}, {"a": 2, "b": "y"}, {"a": 3, "b": "z"}])


class TestAccess:
    def test_getitem_returns_state_dict(self, cfg):
        assert cfg[1] == {"a": 2, "b": "y"}

    def test_len_and_iter(self, cfg):
        assert len(cfg) == 3
        assert [s["a"] for s in cfg] == [1, 2, 3]

    def test_get(self, cfg):
        assert cfg.get(2, "b") == "z"

    def test_variable_vector(self, cfg):
        assert cfg.variable("a") == [1, 2, 3]

    def test_build(self):
        cfg = Configuration.build(3, lambda u: {"v": u * u})
        assert cfg.variable("v") == [0, 1, 4]


class TestMutation:
    def test_apply_updates_selected_processes(self, cfg):
        cfg.apply({0: {"a": 10}, 2: {"b": "w"}})
        assert cfg[0] == {"a": 10, "b": "x"}
        assert cfg[1] == {"a": 2, "b": "y"}
        assert cfg[2] == {"a": 3, "b": "w"}

    def test_apply_is_atomic_with_respect_to_reads(self, cfg):
        # Updates computed from the frozen pre-state, then applied together.
        updates = {u: {"a": cfg[(u + 1) % 3]["a"]} for u in range(3)}
        cfg.apply(updates)
        assert cfg.variable("a") == [2, 3, 1]

    def test_set_single_variable(self, cfg):
        cfg.set(1, "a", 99)
        assert cfg[1]["a"] == 99


class TestSnapshots:
    def test_copy_is_independent(self, cfg):
        clone = cfg.copy()
        clone.set(0, "a", 42)
        assert cfg[0]["a"] == 1

    def test_snapshot_is_hashable_and_stable(self, cfg):
        snap = cfg.snapshot()
        hash(snap)
        assert snap == cfg.copy().snapshot()

    def test_restrict_projects_variables(self, cfg):
        proj = cfg.restrict(["a"])
        assert proj[0] == {"a": 1}
        assert "b" not in proj[0]

    def test_equality(self, cfg):
        assert cfg == cfg.copy()
        other = cfg.copy()
        other.set(0, "a", 0)
        assert cfg != other

    def test_repr_small_and_large(self):
        small = Configuration([{"a": 1}])
        assert "a" in repr(small)
        big = Configuration([{"a": i} for i in range(20)])
        assert "20 processes" in repr(big)


class TestHelpers:
    def test_freeze_state_sorted(self):
        assert freeze_state({"b": 2, "a": 1}) == (("a", 1), ("b", 2))

    def test_state_equal(self):
        assert state_equal({"a": 1}, {"a": 1})
        assert not state_equal({"a": 1}, {"a": 2})
