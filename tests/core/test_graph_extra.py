"""Additional Network coverage: constructors and interop paths."""

import networkx as nx
import pytest

from repro.core import Network


class TestFromNetworkx:
    def test_classmethod_constructor(self):
        net = Network.from_networkx(nx.cycle_graph(5))
        assert net.n == 5

    def test_with_ids_via_classmethod(self):
        net = Network.from_networkx(nx.path_graph(3), ids={0: 9, 1: 4, 2: 6})
        assert net.ids == (9, 4, 6)

    def test_string_node_graph_roundtrip(self):
        graph = nx.Graph([("x", "y"), ("y", "z")])
        net = Network.from_networkx(graph)
        dense = net.to_networkx()
        assert sorted(dense.nodes()) == [0, 1, 2]
        assert dense.number_of_edges() == 2

    def test_source_graph_mutation_does_not_leak(self):
        graph = nx.path_graph(4)
        net = Network(graph)
        graph.add_edge(0, 3)
        assert net.m == 3  # frozen at construction


class TestDiameterCaching:
    def test_diameter_is_stable(self):
        net = Network(nx.path_graph(6))
        assert net.diameter == 5
        assert net.diameter == 5  # cached path

    def test_edges_iteration_matches_m(self):
        net = Network(nx.complete_graph(5))
        assert len(list(net.edges())) == net.m
