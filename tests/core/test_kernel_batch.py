"""Unit tests for the tiled batch substrate (repro.core.kernel.batch).

The property suite proves end-to-end record identity; these tests pin
the building blocks — block-diagonal CSR tiling, schema tiling with
``opt_index`` globalization, program tiling, and per-trial freezing.
"""

from random import Random

import numpy as np
import pytest

from repro.alliance.fga import FGA
from repro.core.configuration import Configuration
from repro.core.daemon import make_daemon
from repro.core.exceptions import ModelViolation
from repro.core.kernel import CSRAdjacency, Schema, Var, run_batch
from repro.reset import SDR
from repro.topology import grid, ring
from repro.unison import Unison


class TestCSRTile:
    def test_tile_is_block_diagonal(self):
        net = grid(2, 3)
        base = CSRAdjacency(net)
        tiled = base.tile(3)
        assert tiled.n == 3 * net.n
        for trial in range(3):
            for u in range(net.n):
                g = trial * net.n + u
                neigh = tiled.indices[tiled.indptr[g]:tiled.indptr[g + 1]]
                expected = [trial * net.n + v for v in net.neighbors(u)]
                assert neigh.tolist() == expected

    def test_tile_one_is_identity(self):
        base = CSRAdjacency(ring(5))
        assert base.tile(1) is base

    def test_tiled_reductions_stay_per_block(self):
        net = ring(4)
        tiled = CSRAdjacency(net).tile(2)
        flags = np.zeros(tiled.indices.shape[0], dtype=np.bool_)
        # Satisfy every edge of block 0 only.
        flags[: net.m * 2] = True
        allv = tiled.all_neigh(flags)
        assert allv[: net.n].all() and not allv[net.n :].any()

    def test_regular_stride_path_matches_reduceat(self):
        net = ring(7)  # 2-regular: strided fast path
        csr = CSRAdjacency(net)
        assert csr._stride == 2
        rng = np.random.default_rng(0)
        flags = rng.random(csr.indices.shape[0]) < 0.5
        values = rng.integers(0, 50, csr.indices.shape[0])
        starts = csr._starts
        assert np.array_equal(
            csr.all_neigh(flags), np.logical_and.reduceat(flags, starts)
        )
        assert np.array_equal(
            csr.any_neigh(flags), np.logical_or.reduceat(flags, starts)
        )
        assert np.array_equal(
            csr.count_neigh(flags),
            np.add.reduceat(flags.astype(np.int64), starts),
        )
        masked = np.where(flags, values, 999)
        assert np.array_equal(
            csr.min_neigh(values, flags, 999),
            np.minimum.reduceat(masked, starts),
        )


class TestSchemaTiling:
    def test_encode_tiled_offsets_opt_index(self):
        schema = Schema(Var.int("x"), Var.opt_index("p"))
        cfgs = [
            Configuration([{"x": 1, "p": None}, {"x": 2, "p": 0}]),
            Configuration([{"x": 3, "p": 1}, {"x": 4, "p": None}]),
        ]
        cols = schema.encode_tiled(cfgs)
        assert cols["x"].tolist() == [1, 2, 3, 4]
        assert cols["p"].tolist() == [-1, 0, 3, -1]  # block 1 offset by 2

    def test_decode_block_round_trips(self):
        schema = Schema(Var.int("x"), Var.opt_index("p"), Var.bool("b"))
        cfgs = [
            Configuration([{"x": 9, "p": 1, "b": True},
                           {"x": -2, "p": None, "b": False}]),
            Configuration([{"x": 0, "p": 0, "b": False},
                           {"x": 5, "p": 1, "b": True}]),
        ]
        cols = schema.encode_tiled(cfgs)
        for t, cfg in enumerate(cfgs):
            assert schema.decode_block(cols, t, 2).snapshot() == cfg.snapshot()


class TestProgramTiling:
    def test_tiled_programs_share_schema_and_rules(self):
        net = ring(6)
        for algo in (SDR(Unison(net)), SDR(FGA(net, 1, 1))):
            program = algo.kernel_program()
            tiled = program.tiled(4)
            assert tiled.schema is program.schema
            assert tiled.rules == program.rules
            assert tiled.csr.n == 4 * net.n

    def test_untileable_program_returns_none(self):
        from repro.core.kernel.programs import KernelProgram

        class Bare(KernelProgram):
            def guard_masks(self, cols):  # pragma: no cover
                return {}

            def apply(self, rule, idx, read, write):  # pragma: no cover
                pass

        assert Bare().tiled(2) is None


class TestRunBatch:
    def _unison_batch(self, seeds, max_steps=400, until=True):
        net = ring(8)
        sdr = SDR(Unison(net))
        program = sdr.kernel_program()
        cfgs = [sdr.random_configuration(Random(seed)) for seed in seeds]
        daemons = [make_daemon("distributed-random", net) for _ in seeds]
        rngs = [Random(seed) for seed in seeds]
        mask = (lambda prog, cols: prog.normal_mask(cols)) if until else None
        return run_batch(
            program, cfgs, daemons, rngs, net,
            max_steps=max_steps, until=mask, exclusion_name=sdr.name,
        )

    def test_trials_freeze_independently(self):
        result = self._unison_batch(seeds=[0, 1, 2, 3], max_steps=50_000)
        steps = [outcome.steps for outcome in result.outcomes]
        assert all(outcome.hit for outcome in result.outcomes)
        assert len(set(steps)) > 1  # different seeds stop at different steps

    def test_frozen_trials_keep_their_configuration(self):
        """A frozen block's decoded configuration satisfies the predicate
        even though other trials kept running after it froze."""
        result = self._unison_batch(seeds=[0, 1, 2], max_steps=50_000)
        net = ring(8)
        sdr = SDR(Unison(net))
        for t, outcome in enumerate(result.outcomes):
            assert outcome.hit
            assert sdr.is_normal(result.configuration(t))

    def test_budget_trials_report_budget(self):
        result = self._unison_batch(seeds=[0, 1], max_steps=1)
        assert all(o.stop_reason in ("budget", "predicate")
                   for o in result.outcomes)

    def test_rejects_unvectorizable_daemon(self):
        net = ring(8)
        sdr = SDR(Unison(net))
        program = sdr.kernel_program()
        cfgs = [sdr.random_configuration(Random(0))]
        from repro.core.daemon import ScriptedDaemon

        with pytest.raises(ValueError):
            run_batch(
                program, cfgs, [ScriptedDaemon([])], [Random(0)], net,
                max_steps=10,
            )

    def test_exclusion_check_names_trial(self):
        from repro.core.kernel.programs import KernelProgram

        class Broken(KernelProgram):
            """Two rules enabled at once at every process."""

            def __init__(self, net):
                self.schema = Schema(Var.int("x"))
                self.rules = ("a", "b")
                self._n = net.n

            def guard_masks(self, cols):
                on = np.ones(cols["x"].shape[0], dtype=np.bool_)
                return {"a": on.copy(), "b": on.copy()}

            def apply(self, rule, idx, read, write):  # pragma: no cover
                pass

            def tiled(self, copies):
                return self

        net = ring(4)
        cfgs = [Configuration([{"x": 0}] * net.n) for _ in range(2)]
        daemons = [make_daemon("synchronous", net) for _ in range(2)]
        with pytest.raises(ModelViolation, match="trial"):
            run_batch(
                Broken(net), cfgs, daemons, [Random(0), Random(1)], net,
                max_steps=5, exclusion_name="broken",
            )


class TiledSpy:
    """Delegating program wrapper recording every ``tiled(copies)`` call."""

    def __init__(self, inner):
        self.inner = inner
        self.calls = []

    def __getattr__(self, name):
        return getattr(self.inner, name)

    def tiled(self, copies):
        self.calls.append(copies)
        return self.inner.tiled(copies)


class TestCompaction:
    """Trailing frozen blocks are dropped from the working buffers."""

    def _mixed_batch(self, trailing_normal=6, leading_random=2):
        """Leading trials start random (long recovery), trailing trials
        start normal (freeze immediately) — a deterministic heavy tail."""
        net = ring(8)
        sdr = SDR(Unison(net))
        trials = leading_random + trailing_normal
        cfgs = [sdr.random_configuration(Random(seed))
                for seed in range(leading_random)]
        cfgs += [sdr.initial_configuration() for _ in range(trailing_normal)]
        daemons = [make_daemon("distributed-random", net) for _ in range(trials)]
        rngs = [Random(seed) for seed in range(trials)]
        return net, sdr, cfgs, daemons, rngs

    def test_compaction_retiles_to_the_surviving_prefix(self):
        net, sdr, cfgs, daemons, rngs = self._mixed_batch()
        spy = TiledSpy(sdr.kernel_program())
        result = run_batch(
            spy, cfgs, daemons, rngs, net, max_steps=50_000,
            until=lambda prog, cols: prog.normal_mask(cols),
        )
        # Initial tile for all 8 trials, then a re-tile once the trailing
        # frozen blocks were dropped.
        assert spy.calls[0] == 8
        assert len(spy.calls) > 1 and spy.calls[1] < 8
        assert all(outcome.hit for outcome in result.outcomes)

    def test_compaction_is_invisible_in_the_results(self):
        net, sdr, cfgs, daemons, rngs = self._mixed_batch()
        batched = run_batch(
            sdr.kernel_program(), cfgs, daemons, rngs, net, max_steps=50_000,
            until=lambda prog, cols: prog.normal_mask(cols),
        )
        for t, cfg in enumerate(cfgs):
            single = run_batch(
                sdr.kernel_program(), [cfg.copy()],
                [make_daemon("distributed-random", net)], [Random(t)],
                net, max_steps=50_000,
                until=lambda prog, cols: prog.normal_mask(cols),
            )
            a, b = batched.outcomes[t], single.outcomes[0]
            assert (a.steps, a.moves, a.rounds, a.stop_reason, a.hit) == (
                b.steps, b.moves, b.rounds, b.stop_reason, b.hit,
            )
            assert a.moves_per_process == b.moves_per_process
            assert a.moves_per_rule == b.moves_per_rule
            got, want = batched.configuration(t), single.configuration(0)
            for u in range(net.n):
                assert got[u] == want[u]


class TestBatchProbes:
    """Per-trial vector probes observe their block of the tiled buffers."""

    def test_accounting_probes_match_serial_fused_runs(self):
        from repro.probes import AccountingProbe, StabilizationProbe
        from repro.core.simulator import Simulator

        net = ring(8)
        sdr = SDR(Unison(net))
        seeds = [0, 1, 2]
        cfgs = [sdr.random_configuration(Random(seed)) for seed in seeds]
        probes = [[AccountingProbe(every=5)] for _ in seeds]
        run_batch(
            sdr.kernel_program(), [c.copy() for c in cfgs],
            [make_daemon("distributed-random", net) for _ in seeds],
            [Random(seed) for seed in seeds], net, max_steps=50_000,
            until=lambda prog, cols: prog.normal_mask(cols),
            probes=probes,
        )
        for seed, cfg, plist in zip(seeds, cfgs, probes):
            fresh = SDR(Unison(net))
            sim = Simulator(
                fresh, make_daemon("distributed-random", net),
                config=cfg.copy(), seed=seed,
            )
            reference = AccountingProbe(every=5)
            sim.add_probe(reference)
            sim.add_probe(StabilizationProbe(fresh.is_normal, mask="normal_mask"))
            assert sim.fusion_available
            sim.run(max_steps=50_000)
            assert plist[0].samples == reference.samples

    def test_probe_done_freezes_its_trial_only(self):
        from repro.probes import StopProbe

        net = ring(8)
        sdr = SDR(Unison(net))
        seeds = [0, 1]
        cfgs = [sdr.random_configuration(Random(seed)) for seed in seeds]
        # Trial 0 stops via its probe after its clocks first all go even;
        # trial 1 runs to its budget.
        stopper = StopProbe(mask=lambda cols: cols["c"] % 2 == 0, name="even")
        result = run_batch(
            sdr.kernel_program(), cfgs,
            [make_daemon("distributed-random", net) for _ in seeds],
            [Random(seed) for seed in seeds], net, max_steps=60,
            probes=[[stopper], []],
        )
        assert result.outcomes[0].stop_reason == "probe"
        assert stopper.hit
        assert result.outcomes[1].stop_reason == "budget"
        assert result.outcomes[1].steps == 60

    def test_probes_must_align_with_trials(self):
        net = ring(8)
        sdr = SDR(Unison(net))
        cfgs = [sdr.random_configuration(Random(0))]
        with pytest.raises(ValueError, match="align"):
            run_batch(
                sdr.kernel_program(), cfgs,
                [make_daemon("distributed-random", net)], [Random(0)], net,
                max_steps=10, probes=[[], []],
            )

    def test_named_mask_probes_resolve_against_the_view_program(self):
        """Batch-attached probes never see a simulator; a mask given by
        attribute name must resolve against the view's base program."""
        from repro.probes import StabilizationProbe

        net = ring(8)
        sdr = SDR(Unison(net))
        seeds = [0, 1]
        cfgs = [sdr.random_configuration(Random(seed)) for seed in seeds]
        probes = [
            [StabilizationProbe(mask="normal_mask", stop=False)]
            for _ in seeds
        ]
        result = run_batch(
            sdr.kernel_program(), cfgs,
            [make_daemon("distributed-random", net) for _ in seeds],
            [Random(seed) for seed in seeds], net, max_steps=50_000,
            until=lambda prog, cols: prog.normal_mask(cols),
            probes=probes,
        )
        for outcome, plist in zip(result.outcomes, probes):
            assert outcome.hit
            # The probe and the freeze mask agree on the hit point.
            assert plist[0].step == outcome.steps

    def test_unresolvable_named_mask_raises_cleanly(self):
        from repro.probes import StabilizationProbe

        net = ring(8)
        sdr = SDR(Unison(net))
        cfgs = [sdr.random_configuration(Random(0))]
        with pytest.raises(ValueError, match="did not resolve"):
            run_batch(
                sdr.kernel_program(), cfgs,
                [make_daemon("distributed-random", net)], [Random(0)], net,
                max_steps=10,
                probes=[[StabilizationProbe(mask="no_such_mask")]],
            )
