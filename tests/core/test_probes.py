"""Unit tests for repro.probes: protocol, shim, sampling, stop semantics."""

from random import Random

import pytest

from repro.core import Simulator, make_daemon
from repro.core.configuration import state_equal
from repro.probes import (
    AccountingProbe,
    LegacyObserverProbe,
    Probe,
    StabilizationProbe,
    StopProbe,
    TraceProbe,
    as_probe,
)
from repro.reset import SDR
from repro.topology import ring
from repro.unison import Unison


def make_sim(seed=0, n=9, **kwargs):
    net = ring(n)
    sdr = SDR(Unison(net))
    cfg = sdr.random_configuration(Random(seed))
    sim = Simulator(
        sdr, make_daemon("distributed-random", net), config=cfg, seed=seed,
        **kwargs,
    )
    return sim, sdr


# ======================================================================
# The deprecation shim
# ======================================================================
class RecordingObserver:
    """A legacy observer callable with the optional on_start attribute."""

    def __init__(self):
        self.started = 0
        self.steps = []

    def on_start(self, sim):
        self.started += 1

    def __call__(self, sim, record):
        self.steps.append(record.index)


def test_as_probe_wraps_callables_and_passes_probes_through():
    probe = AccountingProbe()
    assert as_probe(probe) is probe
    wrapped = as_probe(lambda sim, record: None)
    assert isinstance(wrapped, LegacyObserverProbe)
    with pytest.raises(TypeError):
        LegacyObserverProbe(42)


def test_legacy_observer_probe_delegates_both_hooks():
    observer = RecordingObserver()
    sim, _ = make_sim(probes=[as_probe(observer)])
    assert observer.started == 1
    sim.step()
    sim.step()
    assert observer.steps == [0, 1]


def test_wrapped_observer_disables_fusion_like_observers_did():
    sim, _ = make_sim(probes=[as_probe(lambda sim, record: None)])
    assert sim.backend == "kernel"
    assert not sim.fusion_available


def test_legacy_observers_kwarg_still_works_and_blocks_fusion():
    observer = RecordingObserver()
    sim, _ = make_sim(observers=[observer])
    assert observer.started == 1
    assert not sim.fusion_available
    sim.step()
    assert observer.steps == [0]


def test_probe_is_callable_as_a_legacy_observer():
    """Code appending probes to sim.observers keeps working."""
    probe = AccountingProbe()
    sim, _ = make_sim()
    probe.on_start(sim)
    sim.observers.append(probe)
    sim.step()
    assert probe.samples[-1][0] == 1


# ======================================================================
# Capability gating
# ======================================================================
def test_vector_probes_keep_fusion_available():
    sim, sdr = make_sim(probes=[AccountingProbe(every=5), TraceProbe(every=50)])
    assert sim.fusion_available


def test_decode_probe_forces_step_loop():
    class DecodeProbe(Probe):
        pass  # wants_decode() defaults to True

    sim, _ = make_sim(probes=[DecodeProbe()])
    assert not sim.fusion_available


def test_stabilization_probe_without_mask_is_decode_tier():
    sim, sdr = make_sim()
    probe = StabilizationProbe(sdr.is_normal)
    sim.add_probe(probe)
    assert probe.wants_decode()
    assert not sim.fusion_available


def test_stabilization_probe_with_missing_mask_attr_falls_back():
    sim, sdr = make_sim()
    probe = StabilizationProbe(sdr.is_normal, mask="no_such_mask")
    sim.add_probe(probe)
    assert probe.wants_decode()
    sim.run(max_steps=50_000)
    probe.require_hit()


# ======================================================================
# Sampling probes: fused == decode
# ======================================================================
def test_accounting_probe_samples_identical_fused_and_decoded():
    runs = []
    for fuse in (True, False):
        sim, _ = make_sim(seed=4, fuse=fuse)
        probe = AccountingProbe(every=7)
        sim.add_probe(probe)
        assert sim.fusion_available is fuse
        sim.run(max_steps=140)
        runs.append(probe.samples)
    assert runs[0] == runs[1]
    assert runs[0][0] == (0, 0, 0)
    assert len(runs[0]) == 1 + 140 // 7


def test_trace_probe_samples_identical_fused_and_decoded():
    runs = []
    for fuse in (True, False):
        sim, _ = make_sim(seed=4, fuse=fuse)
        probe = TraceProbe(every=20)
        sim.add_probe(probe)
        sim.run(max_steps=100)
        runs.append(probe.samples)
    assert [step for step, _ in runs[0]] == [step for step, _ in runs[1]]
    for (_, fused_cfg), (_, decoded_cfg) in zip(*runs):
        for u in range(len(fused_cfg)):
            assert state_equal(fused_cfg[u], decoded_cfg[u])


@pytest.mark.parametrize("cls", [AccountingProbe, TraceProbe])
def test_sampling_probes_reject_bad_interval(cls):
    with pytest.raises(ValueError):
        cls(every=0)


# ======================================================================
# Stop semantics
# ======================================================================
def test_stop_probe_equals_stop_when_and_reports_probe_reason():
    predicate = lambda c: all(c[u]["st"] == "C" for u in range(9))

    sim, sdr = make_sim(seed=6)
    probe = StopProbe(predicate, mask=lambda cols: cols["st"] == 0)
    sim.add_probe(probe)
    assert sim.fusion_available
    fused = sim.run(max_steps=50_000)
    assert fused.stop_reason == "probe"

    ref, _ = make_sim(seed=6, backend="dict")
    reference = ref.run(max_steps=50_000, stop_when=lambda s: predicate(s.cfg))
    assert reference.stop_reason == "predicate"
    assert (fused.steps, fused.moves, fused.rounds) == (
        reference.steps, reference.moves, reference.rounds,
    )


def test_initial_hit_stops_with_zero_steps_on_both_tiers():
    for fuse in (True, False):
        net = ring(9)
        sdr = SDR(Unison(net))
        sim = Simulator(
            sdr, make_daemon("distributed-random", net),
            config=sdr.initial_configuration(), seed=0, fuse=fuse,
        )
        probe = StabilizationProbe(sdr.is_normal, mask="normal_mask")
        sim.add_probe(probe)
        result = sim.run(max_steps=1000)
        assert result.stop_reason == "probe"
        assert result.steps == 0
        assert (probe.step, probe.rounds, probe.moves) == (0, 0, 0)


def test_run_past_runs_exactly_that_many_extra_steps():
    sim, sdr = make_sim(seed=2)
    probe = StabilizationProbe(sdr.is_normal, mask="normal_mask", run_past=30)
    sim.add_probe(probe)
    assert sim.fusion_available
    result = sim.run(max_steps=100_000)
    probe.require_hit()
    assert result.stop_reason == "probe"
    assert result.steps == probe.step + 30  # unison never terminates
    assert probe.violations_after_hit == 0  # the predicate is closed


def test_require_hit_raises_not_stabilized():
    from repro.core.exceptions import NotStabilized

    probe = StabilizationProbe(lambda c: False)
    with pytest.raises(NotStabilized):
        probe.require_hit()


def test_probe_without_predicate_needs_resolvable_mask():
    sim, _ = make_sim(backend="dict")
    probe = StabilizationProbe(mask="normal_mask")
    with pytest.raises(ValueError):
        sim.add_probe(probe)
