"""Unit tests for the array-backed execution kernel (repro.core.kernel)."""

from random import Random

import numpy as np
import pytest

from repro.alliance.fga import FGA
from repro.core import (
    BACKENDS,
    DistributedRandomDaemon,
    ScriptedDaemon,
    Simulator,
    SynchronousDaemon,
)
from repro.core.configuration import Configuration
from repro.core.exceptions import AlgorithmError
from repro.core.kernel import CSRAdjacency, KernelRuntime, Schema, Var, kernel_available
from repro.core.graph import Network
from repro.reset import SDR
from repro.topology import grid, ring, star
from repro.unison import Unison


class TestCSRAdjacency:
    def test_layout_matches_network(self):
        net = grid(3, 4)
        csr = CSRAdjacency(net)
        for u in net.processes():
            lo, hi = csr.indptr[u], csr.indptr[u + 1]
            assert tuple(csr.indices[lo:hi].tolist()) == net.neighbors(u)
        assert csr.deg.tolist() == list(net.degrees)

    def test_reductions(self):
        net = star(5)  # center 0, leaves 1..4
        csr = CSRAdjacency(net)
        flag = np.array([False, True, True, False, False])
        edge_flag = csr.pull(flag)
        # center sees 2 flagged leaves; each leaf sees the unflagged center
        assert csr.count_neigh(edge_flag).tolist() == [2, 0, 0, 0, 0]
        assert csr.any_neigh(edge_flag).tolist() == [True, False, False, False, False]
        assert csr.all_neigh(edge_flag).tolist() == [False, False, False, False, False]
        vals = np.array([7, 3, 9, 1, 5])
        got = csr.min_neigh(csr.pull(vals), csr.pull(flag), 99)
        assert got[0] == 3  # min over flagged leaves {3, 9}
        assert got[1] == 99  # center not flagged

    def test_single_process_network(self):
        csr = CSRAdjacency(Network.single())
        empty = np.zeros(0, dtype=np.bool_)
        assert csr.all_neigh(empty).tolist() == [True]
        assert csr.any_neigh(empty).tolist() == [False]
        assert csr.count_neigh(empty).tolist() == [0]


class TestSchema:
    def test_round_trip_all_kinds(self):
        schema = Schema(
            Var.int("x"),
            Var.bool("b"),
            Var.enum("st", ("C", "RB", "RF")),
            Var.opt_index("ptr"),
        )
        states = [
            {"x": -3, "b": True, "st": "RB", "ptr": None},
            {"x": 10, "b": False, "st": "C", "ptr": 0},
            {"x": 0, "b": True, "st": "RF", "ptr": 2},
        ]
        cfg = Configuration(states)
        decoded = schema.decode(schema.encode(cfg))
        assert decoded == cfg
        # plain python values come back, not numpy scalars
        assert type(decoded[0]["x"]) is int
        assert type(decoded[0]["b"]) is bool
        assert decoded[0]["ptr"] is None

    def test_enum_rejects_unknown_value(self):
        schema = Schema(Var.enum("st", ("C",)))
        with pytest.raises(AlgorithmError):
            schema.encode(Configuration([{"st": "XX"}]))

    def test_duplicate_names_rejected(self):
        with pytest.raises(AlgorithmError):
            Schema(Var.int("x"), Var.bool("x"))


class TestKernelRuntime:
    def test_enabled_map_ascending_and_cached(self):
        net = ring(8)
        algo = Unison(net)
        runtime = KernelRuntime(algo.kernel_program(), algo.initial_configuration())
        enabled = runtime.enabled_map()
        assert list(enabled) == sorted(enabled)
        assert enabled == {u: ("rule_U",) for u in range(8)}
        # unchanged state -> the same dict object is reused
        runtime._masks = None
        assert runtime.enabled_map() is enabled

    def test_apply_is_composite_atomic(self):
        net = ring(4)
        algo = Unison(net)
        runtime = KernelRuntime(algo.kernel_program(), algo.initial_configuration())
        runtime.apply({u: "rule_U" for u in range(4)})
        assert runtime.decode().variable("c") == [1, 1, 1, 1]

    def test_multi_rule_enabled_map_is_not_cached_stale(self):
        """Two multi-rule states with the same *shape* but different rule
        sets must not hit the unchanged-state cache (regression)."""
        from repro.core.kernel import KernelProgram

        class ThreeRules(KernelProgram):
            # A always enabled; B on even x; C on odd x — so x=0 -> {A,B}
            # and x=1 -> {A,C} produce identical sentinel patterns.
            schema = Schema(Var.int("x"))
            rules = ("A", "B", "C")

            def guard_masks(self, cols):
                x = cols["x"]
                return {"A": x >= 0, "B": x % 2 == 0, "C": x % 2 == 1}

            def apply(self, rule, idx, read, write):
                write["x"][idx] = read["x"][idx] + 1

        runtime = KernelRuntime(ThreeRules(), Configuration([{"x": 0}]))
        assert runtime.enabled_map() == {0: ("A", "B")}
        runtime.apply({0: "A"})
        assert runtime.enabled_map() == {0: ("A", "C")}


class TestBackendSelection:
    def test_backends_constant(self):
        assert BACKENDS == ("auto", "dict", "kernel")

    def test_auto_picks_kernel_for_ported_algorithms(self):
        net = ring(6)
        for algo in (Unison(net), SDR(Unison(net)), FGA(net, 1, 1), SDR(FGA(net, 1, 1))):
            sim = Simulator(algo, SynchronousDaemon(), seed=0)
            assert sim.backend == ("kernel" if kernel_available() else "dict")

    def test_dict_backend_forced(self):
        sim = Simulator(Unison(ring(4)), SynchronousDaemon(), seed=0, backend="dict")
        assert sim.backend == "dict"

    def test_kernel_refused_without_program(self):
        from repro.baselines.bfs_tree import BfsTree

        class Unported(BfsTree):
            name = "bfs-tree-unported"

            def rule_set(self):
                return None  # no IR definition: dict backend only

        algo = Unported(ring(4))
        with pytest.raises(AlgorithmError):
            Simulator(algo, SynchronousDaemon(), seed=0, backend="kernel")
        # auto falls back (with a one-time logged warning)
        sim = Simulator(algo, SynchronousDaemon(), seed=0, backend="auto")
        assert sim.backend == "dict"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            Simulator(Unison(ring(4)), SynchronousDaemon(), seed=0, backend="turbo")

    def test_auto_fallback_warns_once_per_algorithm(self, caplog):
        import logging

        from repro.baselines.bfs_tree import BfsTree
        from repro.core import simulator as sim_module

        class Unported(BfsTree):
            name = "bfs-tree-unported"

            def rule_set(self):
                return None  # no IR definition: dict backend only

        algo = Unported(ring(4))
        sim_module._FALLBACK_WARNED.discard(algo.name)
        with caplog.at_level(logging.WARNING, logger="repro.core.simulator"):
            Simulator(algo, SynchronousDaemon(), seed=0, backend="auto")
            Simulator(algo, SynchronousDaemon(), seed=0, backend="auto")
        fallback_warnings = [
            record for record in caplog.records
            if algo.name in record.getMessage()
        ]
        assert len(fallback_warnings) == 1  # loud once, silent after

        caplog.clear()
        with caplog.at_level(logging.WARNING, logger="repro.core.simulator"):
            Simulator(algo, SynchronousDaemon(), seed=0, backend="dict")
        assert not caplog.records  # explicit dict request is not a fallback

    def test_attached_input_algorithm_has_no_standalone_program(self):
        unison = Unison(ring(4))
        SDR(unison)  # attaches
        assert unison.kernel_program() is None


class TestKernelExecution:
    def test_scripted_daemon_exact_replay(self):
        net = ring(5)
        script = [{0: "rule_U"}, {1: "rule_U", 4: "rule_U"}]
        results = []
        for backend in ("dict", "kernel"):
            sdr = Unison(net)
            sim = Simulator(sdr, ScriptedDaemon(script), seed=0, backend=backend)
            sim.step()
            sim.step()
            results.append((sim.cfg.snapshot(), dict(sim.enabled), sim.move_count))
        assert results[0] == results[1]

    def test_cfg_is_decoded_on_demand(self):
        net = ring(6)
        sim = Simulator(Unison(net), SynchronousDaemon(), seed=0, backend="kernel")
        sim.step()
        assert sim.cfg.variable("c") == [1] * 6
        sim.step()
        assert sim.cfg.variable("c") == [2] * 6

    def test_run_matches_dict_accounting(self):
        net = grid(3, 3)
        outcomes = []
        for backend in ("dict", "kernel"):
            sdr = SDR(Unison(net))
            cfg = sdr.random_configuration(Random(11))
            sim = Simulator(
                sdr, DistributedRandomDaemon(0.5), config=cfg, seed=11, backend=backend
            )
            res = sim.run(max_steps=500)
            outcomes.append(
                (
                    res.steps,
                    res.moves,
                    res.rounds,
                    sim.moves_per_rule,
                    sim.moves_per_process,
                    sim.cfg.snapshot(),
                )
            )
        assert outcomes[0] == outcomes[1]

    def test_daemon_cfg_view_supports_reads(self):
        from repro.core import CentralDaemon

        net = ring(6)
        # priority callback forces the daemon to actually read the lazy view
        daemon = CentralDaemon(priority=lambda cfg, u, rules: cfg[u]["c"])
        sdr = Unison(net)
        sim = Simulator(sdr, daemon, seed=3, backend="kernel")
        assert sim.run(max_steps=20).steps == 20
