"""Unit tests for the execution engine (composite atomicity, accounting)."""

import pytest

from repro.core import (
    Configuration,
    DaemonError,
    ModelViolation,
    Network,
    NotStabilized,
    ScriptedDaemon,
    Simulator,
    SynchronousDaemon,
    Trace,
)
from repro.core.daemon import DistributedRandomDaemon
from tests.toys import CopyNeighbor, Countdown, MaxFlood

PATH = Network([(0, 1), (1, 2), (2, 3)])
PAIR = Network([(0, 1)])


class TestCompositeAtomicity:
    def test_simultaneous_neighbors_read_prestep_values(self):
        # CopyNeighbor on a pair: simultaneous activation swaps the values.
        algo = CopyNeighbor(PAIR)
        sim = Simulator(algo, ScriptedDaemon([[0, 1]]), seed=0)
        assert sim.cfg.variable("y") == [0, 1]
        sim.step()
        assert sim.cfg.variable("y") == [1, 0]

    def test_sequential_activation_converges_instead(self):
        algo = CopyNeighbor(PAIR)
        sim = Simulator(algo, ScriptedDaemon([[0]]), seed=0)
        sim.step()
        assert sim.cfg.variable("y") == [1, 1]
        assert sim.is_terminal()


class TestStepping:
    def test_step_returns_none_at_terminal(self):
        algo = Countdown(PAIR, start=0)
        sim = Simulator(algo, SynchronousDaemon(), seed=0)
        assert sim.is_terminal()
        assert sim.step() is None

    def test_move_accounting(self):
        algo = Countdown(PATH, start=2)
        sim = Simulator(algo, SynchronousDaemon(), seed=0)
        sim.run_to_termination()
        assert sim.move_count == 8
        assert sim.moves_per_process == [2, 2, 2, 2]
        assert sim.moves_per_rule == {"rule_dec": 8}

    def test_round_accounting_synchronous(self):
        # Under the synchronous daemon, each step is one full round.
        algo = Countdown(PATH, start=3)
        sim = Simulator(algo, SynchronousDaemon(), seed=0)
        result = sim.run_to_termination()
        assert result.rounds == 3
        assert result.steps == 3

    def test_custom_initial_configuration(self):
        algo = MaxFlood(PATH)
        cfg = Configuration([{"x": 9}, {"x": 0}, {"x": 0}, {"x": 0}])
        sim = Simulator(algo, SynchronousDaemon(), config=cfg, seed=0)
        sim.run_to_termination()
        assert sim.cfg.variable("x") == [9, 9, 9, 9]

    def test_config_size_mismatch_rejected(self):
        algo = MaxFlood(PATH)
        with pytest.raises(ValueError, match="states for"):
            Simulator(algo, SynchronousDaemon(), config=Configuration([{"x": 0}]))

    def test_initial_config_copied_not_aliased(self):
        algo = MaxFlood(PATH)
        cfg = algo.initial_configuration()
        sim = Simulator(algo, SynchronousDaemon(), config=cfg, seed=0)
        sim.run_to_termination()
        assert cfg.variable("x") == [0, 1, 2, 3]  # caller's copy untouched


class TestEnabledMaintenance:
    def test_incremental_matches_paranoid(self):
        algo = MaxFlood(PATH)
        sim = Simulator(algo, DistributedRandomDaemon(0.5), seed=5, paranoid=True)
        sim.run_to_termination()  # ModelViolation would fire on divergence
        assert sim.cfg.variable("x") == [3, 3, 3, 3]

    def test_enabled_map_is_current(self):
        algo = MaxFlood(PATH)
        sim = Simulator(algo, SynchronousDaemon(), seed=0)
        assert set(sim.enabled) == {0, 1, 2}
        sim.run_to_termination()
        assert sim.enabled == {}


class TestStrictChecks:
    def test_daemon_selecting_disabled_process_rejected(self):
        algo = Countdown(PAIR, start=1)

        class BadDaemon(SynchronousDaemon):
            def select(self, cfg, enabled, rng, step):
                return {0: "rule_dec", 1: "rule_dec", }  # fine

        class WorseDaemon(SynchronousDaemon):
            def select(self, cfg, enabled, rng, step):
                return {7: "rule_dec"}

        Simulator(algo, BadDaemon(), seed=0).step()
        sim = Simulator(algo, WorseDaemon(), seed=0)
        with pytest.raises(DaemonError, match="disabled process"):
            sim.step()

    def test_daemon_empty_selection_rejected(self):
        algo = Countdown(PAIR, start=1)

        class LazyDaemon(SynchronousDaemon):
            def select(self, cfg, enabled, rng, step):
                return {}

        sim = Simulator(algo, LazyDaemon(), seed=0)
        with pytest.raises(DaemonError, match="empty"):
            sim.step()

    def test_mutual_exclusion_violation_detected(self):
        class TwoRules(Countdown):
            mutually_exclusive_rules = True

            def rule_names(self):
                return ("rule_dec", "rule_also")

            def guard(self, rule, cfg, u):
                return cfg[u]["k"] > 0  # both enabled together: violation

        algo = TwoRules(PAIR, start=1)
        with pytest.raises(ModelViolation, match="mutual exclusion"):
            Simulator(algo, SynchronousDaemon(), seed=0)

    def test_seed_and_rng_exclusive(self):
        from random import Random

        algo = Countdown(PAIR, start=1)
        with pytest.raises(ValueError):
            Simulator(algo, SynchronousDaemon(), seed=1, rng=Random(1))


class TestRunLoops:
    def test_run_stops_on_predicate(self):
        algo = Countdown(PATH, start=5)
        sim = Simulator(algo, SynchronousDaemon(), seed=0)
        result = sim.run(stop_when=lambda s: s.cfg[0]["k"] == 2)
        assert result.stop_reason == "predicate"
        assert sim.cfg[0]["k"] == 2

    def test_run_predicate_checked_on_initial_config(self):
        algo = Countdown(PATH, start=5)
        sim = Simulator(algo, SynchronousDaemon(), seed=0)
        result = sim.run(stop_when=lambda s: True)
        assert result.steps == 0
        assert result.stop_reason == "predicate"

    def test_run_budget(self):
        algo = Countdown(PATH, start=100)
        sim = Simulator(algo, SynchronousDaemon(), seed=0)
        result = sim.run(max_steps=3)
        assert result.steps == 3
        assert result.stop_reason == "budget"

    def test_run_to_termination_raises_on_budget(self):
        algo = Countdown(PATH, start=100)
        sim = Simulator(algo, SynchronousDaemon(), seed=0)
        with pytest.raises(NotStabilized):
            sim.run_to_termination(max_steps=3)

    def test_result_repr(self):
        algo = Countdown(PAIR, start=1)
        sim = Simulator(algo, SynchronousDaemon(), seed=0)
        result = sim.run_to_termination()
        assert "terminal=True" in repr(result)


class TestObserversAndTrace:
    def test_trace_records_steps_and_configs(self):
        algo = Countdown(PAIR, start=2)
        trace = Trace(record_configurations=True)
        sim = Simulator(algo, SynchronousDaemon(), seed=0, trace=trace)
        sim.run_to_termination()
        assert len(trace) == 2
        assert len(trace.configurations) == 3
        assert trace.configurations[0].variable("k") == [2, 2]
        assert trace.configurations[-1].variable("k") == [0, 0]

    def test_observer_called_each_step(self):
        calls = []

        def observer(sim, record):
            calls.append(record.index)

        algo = Countdown(PAIR, start=3)
        sim = Simulator(algo, SynchronousDaemon(), seed=0, observers=[observer])
        sim.run_to_termination()
        assert calls == [0, 1, 2]

    def test_on_start_hook(self):
        seen = []

        class Obs:
            def on_start(self, sim):
                seen.append("start")

            def __call__(self, sim, record):
                seen.append(record.index)

        algo = Countdown(PAIR, start=1)
        sim = Simulator(algo, SynchronousDaemon(), seed=0, observers=[Obs()])
        sim.run_to_termination()
        assert seen == ["start", 0]
