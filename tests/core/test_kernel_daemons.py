"""Vectorized daemons and RNG streams: exact twins of the dict zoo.

The fused kernel loop replaces the dict daemons with array
implementations that must consume the *same* seeded ``Random`` stream in
the *same* order — otherwise traces silently diverge between the fused
and step-by-step drivers.  These tests pin that contract directly, below
the simulator: same selections, same post-call generator state, for
thousands of randomized enabled sets.
"""

from random import Random

import numpy as np
import pytest

from repro.core.daemon import (
    AdversarialDaemon,
    CentralDaemon,
    DistributedRandomDaemon,
    LocallyCentralDaemon,
    ScriptedDaemon,
    SynchronousDaemon,
    WeaklyFairDaemon,
    make_daemon,
)
from repro.core.kernel.daemons import (
    MTStream,
    PyStream,
    open_stream,
    vectorize,
)
from repro.topology import grid, ring, random_connected

KINDS = (
    "synchronous",
    "central",
    "distributed-random",
    "weakly-fair",
    "locally-central",
)


class TestStreams:
    def test_mtstream_mirrors_random_doubles(self):
        probe, ref = Random(2024), Random(2024)
        stream = MTStream(probe)
        drawn = np.concatenate([stream.random_vec(k) for k in (1, 7, 64, 3)])
        expected = np.array([ref.random() for _ in range(75)])
        assert np.array_equal(drawn, expected)

    def test_mtstream_mirrors_randrange(self):
        probe, ref = Random(99), Random(99)
        stream = MTStream(probe)
        for bound in (1, 2, 3, 7, 100, 2**20):
            assert stream.randrange(bound) == ref.randrange(bound)

    def test_mtstream_mirrors_shuffle(self):
        probe, ref = Random(5), Random(5)
        stream = MTStream(probe)
        mine, theirs = list(range(41)), list(range(41))
        stream.shuffle(mine)
        ref.shuffle(theirs)
        assert mine == theirs

    def test_mtstream_close_syncs_state(self):
        probe, ref = Random(31337), Random(31337)
        stream = MTStream(probe)
        stream.random_vec(13)
        stream.randrange(5)
        stream.close()
        for _ in range(13):
            ref.random()
        ref.randrange(5)
        assert probe.getstate() == ref.getstate()
        # ... and the two Randoms continue identically.
        assert [probe.random() for _ in range(5)] == [ref.random() for _ in range(5)]

    def test_pystream_draws_through_the_random(self):
        probe, ref = Random(8), Random(8)
        stream = PyStream(probe)
        assert np.array_equal(
            stream.random_vec(9), np.array([ref.random() for _ in range(9)])
        )
        assert stream.randrange(7) == ref.randrange(7)
        assert probe.getstate() == ref.getstate()

    def test_open_stream_scalar_preference(self):
        assert isinstance(open_stream(Random(0), scalar=True), PyStream)

    def test_open_stream_requires_vanilla_random(self):
        """SystemRandom has no twister state and a subclass may override
        random(): both must get the always-correct PyStream, exactly like
        vectorize() refuses daemon subclasses."""
        from random import SystemRandom

        class StubRandom(Random):
            def random(self):
                return 0.5

        assert isinstance(open_stream(SystemRandom()), PyStream)
        stub_stream = open_stream(StubRandom(0))
        assert isinstance(stub_stream, PyStream)
        assert stub_stream.random_vec(3).tolist() == [0.5, 0.5, 0.5]
        assert isinstance(open_stream(Random(0)), MTStream)


class TestVectorize:
    def test_standard_kinds_have_twins(self):
        net = ring(8)
        for kind in KINDS:
            assert vectorize(make_daemon(kind, net), net) is not None

    def test_unvectorizable_daemons(self):
        net = ring(8)
        assert vectorize(ScriptedDaemon([{0: "r"}]), net) is None
        assert vectorize(AdversarialDaemon(lambda *a: 0.0), net) is None
        assert vectorize(CentralDaemon(priority=lambda *a: 0.0), net) is None
        random_rules = DistributedRandomDaemon(0.5)
        random_rules.rule_choice = "random"
        assert vectorize(random_rules, net) is None

    def test_daemon_subclasses_are_refused(self):
        class Custom(SynchronousDaemon):
            def select(self, cfg, enabled, rng, step):  # pragma: no cover
                return super().select(cfg, enabled, rng, step)

        assert vectorize(Custom(), ring(8)) is None


class TestSelectionEquality:
    """Twin selections equal dict selections, stream state included."""

    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_selection_and_stream_equal(self, kind, seed):
        net = random_connected(14, p=0.3, seed=seed + 1)
        dict_daemon = make_daemon(kind, net)
        twin = vectorize(make_daemon(kind, net), net)
        twin.load_state(dict_daemon)
        rng_dict, rng_vec = Random(seed), Random(seed)
        driver = Random(1000 + seed)

        for step in range(60):
            count = driver.randrange(1, net.n + 1)
            procs = sorted(driver.sample(range(net.n), count))
            enabled = {u: ("rule",) for u in procs}
            selection = dict_daemon.select(None, enabled, rng_dict, step)
            stream = open_stream(rng_vec, scalar=twin.scalar_stream)
            chosen = twin.select(np.asarray(procs, dtype=np.int64), stream)
            stream.close()
            assert sorted(selection) == chosen.tolist(), (kind, seed, step)
            assert rng_dict.getstate() == rng_vec.getstate(), (kind, seed, step)

    def test_weakly_fair_state_bridges(self):
        net = grid(3, 3)
        dict_daemon = WeaklyFairDaemon(p=0.3, patience=3)
        dict_daemon._waiting = {0: 2, 4: 1}
        twin = vectorize(WeaklyFairDaemon(p=0.3, patience=3), net)
        twin.load_state(dict_daemon)
        rng = Random(0)
        stream = open_stream(rng)
        twin.select(np.array([0, 4, 7]), stream)
        stream.close()
        twin.store_state(dict_daemon)
        assert set(dict_daemon._waiting) == {0, 4, 7}


class TestLocallyCentralIndependence:
    def test_chosen_set_is_independent_and_maximal(self):
        net = grid(4, 4)
        twin = vectorize(LocallyCentralDaemon(net), net)
        enabled = np.arange(net.n, dtype=np.int64)
        stream = open_stream(Random(3), scalar=True)
        chosen = twin.select(enabled, stream)
        chosen_set = set(chosen.tolist())
        for u in chosen_set:
            assert not chosen_set & set(net.neighbors(u))
        for u in range(net.n):  # maximality
            assert u in chosen_set or chosen_set & set(net.neighbors(u))
