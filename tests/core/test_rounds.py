"""Unit tests for the neutralization-based round counter."""

import pytest

from repro.core import RoundCounter


class TestRoundCounter:
    def test_requires_start(self):
        counter = RoundCounter()
        with pytest.raises(RuntimeError):
            counter.observe_step([0], [0], [])

    def test_single_process_single_round(self):
        counter = RoundCounter()
        counter.start([0])
        done = counter.observe_step(activated=[0], enabled_before=[0], enabled_after=[])
        assert done == 1
        assert counter.completed == 1

    def test_round_waits_for_all_enabled(self):
        counter = RoundCounter()
        counter.start([0, 1])
        assert counter.observe_step([0], [0, 1], [0, 1]) == 0
        assert counter.completed == 0
        assert counter.observe_step([1], [0, 1], [0, 1]) == 1
        assert counter.completed == 1

    def test_neutralization_resolves_pending(self):
        counter = RoundCounter()
        counter.start([0, 1])
        # Process 1 is neutralized: enabled before, disabled after, not activated.
        assert counter.observe_step([0], [0, 1], [0]) == 1

    def test_new_round_pending_is_enabled_after(self):
        counter = RoundCounter()
        counter.start([0])
        counter.observe_step([0], [0], [1, 2])
        assert counter.pending == frozenset({1, 2})

    def test_disable_then_reenable_still_counts_first_disable(self):
        counter = RoundCounter()
        counter.start([0, 1])
        # 1 gets neutralized in step 0 even though it re-enables later.
        assert counter.observe_step([0], [0, 1], [0]) == 1
        # New round starts with pending {0}.
        assert counter.pending == frozenset({0})

    def test_terminal_start(self):
        counter = RoundCounter()
        counter.start([])
        assert counter.observe_step([], [], []) == 0
        assert counter.completed == 0

    def test_activation_of_unpending_process_does_not_close_round(self):
        counter = RoundCounter()
        counter.start([0])
        # Process 5 (enabled later, not pending) moving doesn't affect round 1.
        assert counter.observe_step([5], [0, 5], [0, 5]) == 0
        assert counter.pending == frozenset({0})

    def test_multiple_rounds_sequence(self):
        counter = RoundCounter()
        counter.start([0, 1])
        counter.observe_step([0, 1], [0, 1], [0, 1])  # round 1 done
        counter.observe_step([0], [0, 1], [0, 1])     # round 2 partial
        counter.observe_step([1], [0, 1], [])         # round 2 done
        assert counter.completed == 2
