"""Unit tests for the daemon zoo."""

from random import Random

import pytest

from repro.core import (
    AdversarialDaemon,
    CentralDaemon,
    Configuration,
    DaemonError,
    DistributedRandomDaemon,
    LocallyCentralDaemon,
    Network,
    ScriptedDaemon,
    Simulator,
    SynchronousDaemon,
    WeaklyFairDaemon,
    make_daemon,
)
from tests.toys import Countdown

NET = Network([(0, 1), (1, 2), (2, 3), (3, 4)])


def enabled_map(processes, rules=("rule_dec",)):
    return {u: tuple(rules) for u in processes}


CFG = Configuration([{"k": 1}] * 5)


class TestSynchronous:
    def test_selects_everyone(self):
        sel = SynchronousDaemon().select(CFG, enabled_map([0, 2, 4]), Random(0), 0)
        assert set(sel) == {0, 2, 4}

    def test_rule_is_enabled_one(self):
        sel = SynchronousDaemon().select(CFG, enabled_map([1]), Random(0), 0)
        assert sel == {1: "rule_dec"}


class TestCentral:
    def test_selects_exactly_one(self):
        for seed in range(10):
            sel = CentralDaemon().select(CFG, enabled_map([0, 1, 2]), Random(seed), 0)
            assert len(sel) == 1
            assert next(iter(sel)) in {0, 1, 2}

    def test_priority_function(self):
        daemon = CentralDaemon(priority=lambda cfg, u, rules: u)
        sel = daemon.select(CFG, enabled_map([0, 3, 2]), Random(0), 0)
        assert set(sel) == {3}


class TestLocallyCentral:
    def test_no_two_neighbors_selected(self):
        daemon = LocallyCentralDaemon(NET)
        for seed in range(20):
            sel = daemon.select(CFG, enabled_map([0, 1, 2, 3, 4]), Random(seed), 0)
            chosen = sorted(sel)
            for i, u in enumerate(chosen):
                for v in chosen[i + 1 :]:
                    assert not NET.are_neighbors(u, v)

    def test_maximality(self):
        daemon = LocallyCentralDaemon(NET)
        sel = daemon.select(CFG, enabled_map([0, 4]), Random(0), 0)
        # 0 and 4 are not neighbors: both must be picked.
        assert set(sel) == {0, 4}


class TestDistributedRandom:
    def test_never_empty(self):
        daemon = DistributedRandomDaemon(0.01)
        for seed in range(30):
            sel = daemon.select(CFG, enabled_map([0, 1]), Random(seed), 0)
            assert len(sel) >= 1

    def test_p_one_selects_all(self):
        sel = DistributedRandomDaemon(1.0).select(CFG, enabled_map([0, 1, 2]), Random(0), 0)
        assert set(sel) == {0, 1, 2}

    def test_invalid_probability(self):
        with pytest.raises(DaemonError):
            DistributedRandomDaemon(0.0)
        with pytest.raises(DaemonError):
            DistributedRandomDaemon(1.5)


class TestWeaklyFair:
    def test_overdue_process_is_forced(self):
        daemon = WeaklyFairDaemon(p=0.0, patience=3)
        rng = Random(0)
        # With p=0 nothing is picked voluntarily; the fallback picks one,
        # and by 3 consecutive steps every enabled process must have moved.
        picked: set[int] = set()
        for step in range(3):
            sel = daemon.select(CFG, enabled_map([0, 1, 2]), rng, step)
            picked |= set(sel)
        assert picked == {0, 1, 2}

    def test_invalid_patience(self):
        with pytest.raises(DaemonError):
            WeaklyFairDaemon(patience=0)

    def test_reset_clears_counters(self):
        daemon = WeaklyFairDaemon(p=0.0, patience=2)
        daemon.select(CFG, enabled_map([0]), Random(0), 0)
        daemon.reset()
        assert daemon._waiting == {}


class TestAdversarial:
    def test_picks_max_score(self):
        daemon = AdversarialDaemon(lambda cfg, u, rule, step: -u)
        sel = daemon.select(CFG, enabled_map([2, 0, 1]), Random(0), 0)
        assert set(sel) == {0}

    def test_single_selection_always(self):
        daemon = AdversarialDaemon(lambda cfg, u, rule, step: 0.0)
        sel = daemon.select(CFG, enabled_map([3, 4]), Random(0), 0)
        assert len(sel) == 1


class TestScripted:
    def test_replays_script(self):
        daemon = ScriptedDaemon([[0], {1: "rule_dec"}])
        assert daemon.select(CFG, enabled_map([0, 1]), Random(0), 0) == {0: "rule_dec"}
        assert daemon.select(CFG, enabled_map([0, 1]), Random(0), 1) == {1: "rule_dec"}

    def test_rejects_disabled_process(self):
        daemon = ScriptedDaemon([[2]])
        with pytest.raises(DaemonError):
            daemon.select(CFG, enabled_map([0, 1]), Random(0), 0)

    def test_exhausted_script(self):
        daemon = ScriptedDaemon([])
        with pytest.raises(DaemonError, match="exhausted"):
            daemon.select(CFG, enabled_map([0]), Random(0), 0)

    def test_empty_selection_rejected(self):
        daemon = ScriptedDaemon([[]])
        with pytest.raises(DaemonError):
            daemon.select(CFG, enabled_map([0]), Random(0), 0)


class TestFactory:
    @pytest.mark.parametrize(
        "kind", ["synchronous", "central", "locally-central", "distributed-random", "weakly-fair"]
    )
    def test_make_daemon(self, kind):
        daemon = make_daemon(kind, NET)
        assert daemon.name == kind

    def test_unknown_kind(self):
        with pytest.raises(DaemonError, match="unknown daemon"):
            make_daemon("quantum", NET)


class TestDaemonsDriveExecutions:
    @pytest.mark.parametrize(
        "kind", ["synchronous", "central", "locally-central", "distributed-random", "weakly-fair"]
    )
    def test_countdown_terminates_under_every_daemon(self, kind):
        algo = Countdown(NET, start=2)
        sim = Simulator(algo, make_daemon(kind, NET), seed=3)
        result = sim.run_to_termination(max_steps=10_000)
        assert result.terminal
        assert sim.cfg.variable("k") == [0] * 5
        assert result.moves == 2 * 5  # each process decrements exactly twice
