"""Unit tests for :mod:`repro.core.graph`."""

import networkx as nx
import pytest

from repro.core import Network, TopologyError


class TestConstruction:
    def test_from_edge_list(self):
        net = Network([(0, 1), (1, 2)])
        assert net.n == 3
        assert net.m == 2

    def test_from_networkx_graph(self):
        net = Network(nx.cycle_graph(5))
        assert net.n == 5
        assert net.m == 5

    def test_arbitrary_node_names_are_reindexed(self):
        net = Network([("a", "b"), ("b", "c")])
        assert net.n == 3
        assert net.names == ("a", "b", "c")
        assert net.index_of("b") == 1

    def test_empty_graph_rejected(self):
        with pytest.raises(TopologyError):
            Network(nx.Graph())

    def test_disconnected_graph_rejected(self):
        with pytest.raises(TopologyError, match="connected"):
            Network([(0, 1), (2, 3)])

    def test_self_loop_rejected(self):
        graph = nx.Graph()
        graph.add_edge(0, 0)
        graph.add_edge(0, 1)
        with pytest.raises(TopologyError, match="[Ss]elf-loop"):
            Network(graph)

    def test_single_process_network(self):
        net = Network.single()
        assert net.n == 1
        assert net.m == 0
        assert net.neighbors(0) == ()
        assert net.diameter == 0


class TestAdjacency:
    def test_neighbors_sorted(self):
        net = Network([(2, 0), (2, 1), (2, 3)])
        assert net.neighbors(2) == (0, 1, 3)

    def test_closed_neighbors_self_first(self):
        net = Network([(0, 1), (1, 2)])
        assert net.closed_neighbors(1) == (1, 0, 2)

    def test_are_neighbors(self):
        net = Network([(0, 1), (1, 2)])
        assert net.are_neighbors(0, 1)
        assert not net.are_neighbors(0, 2)

    def test_degree_and_max_degree(self):
        net = Network([(0, 1), (0, 2), (0, 3)])
        assert net.degree(0) == 3
        assert net.degree(1) == 1
        assert net.max_degree == 3
        assert net.degrees == (3, 1, 1, 1)

    def test_edges_listed_once(self):
        net = Network(nx.cycle_graph(4))
        edges = list(net.edges())
        assert len(edges) == 4
        assert all(u < v for u, v in edges)

    def test_diameter(self):
        assert Network(nx.path_graph(5)).diameter == 4
        assert Network(nx.complete_graph(5)).diameter == 1

    def test_len_and_processes(self):
        net = Network(nx.path_graph(4))
        assert len(net) == 4
        assert list(net.processes()) == [0, 1, 2, 3]


class TestIdentifiers:
    def test_default_ids_are_indices(self):
        net = Network([(0, 1), (1, 2)])
        assert net.ids == (0, 1, 2)
        assert net.id_of(1) == 1

    def test_explicit_ids(self):
        net = Network([(0, 1), (1, 2)], ids={0: 30, 1: 10, 2: 20})
        assert net.ids == (30, 10, 20)
        assert net.id_of(0) == 30

    def test_duplicate_ids_rejected(self):
        with pytest.raises(TopologyError, match="unique"):
            Network([(0, 1)], ids={0: 7, 1: 7})

    def test_missing_id_rejected(self):
        with pytest.raises(TopologyError):
            Network([(0, 1)], ids={0: 1})

    def test_with_ids_copy(self):
        net = Network([(0, 1), (1, 2)])
        renamed = net.with_ids([5, 9, 3])
        assert renamed.ids == (5, 9, 3)
        assert net.ids == (0, 1, 2)  # original untouched


class TestInterop:
    def test_to_networkx_is_copy(self):
        net = Network([(0, 1), (1, 2)])
        graph = net.to_networkx()
        graph.add_edge(0, 2)
        assert net.m == 2  # unchanged

    def test_repr_mentions_sizes(self):
        rep = repr(Network([(0, 1)]))
        assert "n=2" in rep and "m=1" in rep


class TestChurnDelta:
    """``apply_delta`` — the only sanctioned mutation surface."""

    def test_drop_and_add_update_all_views(self):
        net = Network([(0, 1), (1, 2), (0, 2)])
        net.apply_delta(drops=[(0, 2)])
        assert net.m == 2
        assert net.neighbors(0) == (1,)
        assert not net.are_neighbors(0, 2)
        net.apply_delta(adds=[(0, 2)])
        assert net.m == 3
        assert net.are_neighbors(0, 2)

    def test_validation(self):
        net = Network([(0, 1), (1, 2)])
        with pytest.raises(TopologyError, match="absent"):
            net.apply_delta(drops=[(0, 2)])
        with pytest.raises(TopologyError, match="present"):
            net.apply_delta(adds=[(0, 1)])
        with pytest.raises(TopologyError, match="[Ss]elf-loop"):
            net.apply_delta(adds=[(1, 1)])

    def test_disconnection_is_permitted(self):
        """Connectivity policy lives in the churn scheduler, not here."""
        net = Network([(0, 1), (1, 2)])
        net.apply_delta(drops=[(1, 2)])
        assert net.neighbors(2) == ()

    def test_csr_cache_invalidated(self):
        """Regression: ``csr()`` once cached a pre-churn layout forever."""
        net = Network([(0, 1), (1, 2)])
        indptr_before, indices_before = net.csr()
        net.apply_delta(adds=[(0, 2)])
        indptr_after, indices_after = net.csr()
        assert list(indices_after) != list(indices_before)
        assert indptr_after[-1] == 2 * net.m
        # and the refreshed layout matches a from-scratch network
        fresh_indptr, fresh_indices = Network([(0, 1), (1, 2), (0, 2)]).csr()
        assert list(indptr_after) == list(fresh_indptr)
        assert list(indices_after) == list(fresh_indices)

    def test_diameter_cache_invalidated(self):
        net = Network([(0, 1), (1, 2), (2, 3)])
        assert net.diameter == 3
        net.apply_delta(adds=[(0, 3)])
        assert net.diameter == 2
