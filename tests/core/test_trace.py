"""Unit tests for :mod:`repro.core.trace`."""

import pytest

from repro.core import Network, ScriptedDaemon, Simulator, Trace
from repro.core.trace import StepRecord
from tests.toys import Countdown

PAIR = Network([(0, 1)])


def make_trace():
    algo = Countdown(PAIR, start=2)
    trace = Trace(record_configurations=True)
    sim = Simulator(
        algo, ScriptedDaemon([[0], [1], [0, 1]]), seed=0, trace=trace
    )
    sim.run_to_termination(max_steps=10)
    return trace


class TestStepRecord:
    def test_moves_and_executed(self):
        record = StepRecord(0, {1: "r", 3: "r"}, (1, 3), (), 1)
        assert record.moves == 2
        assert record.executed(1)
        assert not record.executed(0)


class TestTrace:
    def test_records_and_lengths(self):
        trace = make_trace()
        assert len(trace) == 3
        assert [r.moves for r in trace] == [1, 1, 2]

    def test_moves_of_and_rules_of(self):
        trace = make_trace()
        assert trace.moves_of(0) == 2
        assert trace.moves_of(1) == 2
        assert trace.rules_of(0) == ["rule_dec", "rule_dec"]

    def test_steps_with_rule(self):
        trace = make_trace()
        assert trace.steps_with_rule("rule_dec") == [0, 1, 2]
        assert trace.steps_with_rule("rule_other") == []

    def test_configuration_snapshots(self):
        trace = make_trace()
        assert trace.configuration(0).variable("k") == [2, 2]
        assert trace.configuration(3).variable("k") == [0, 0]

    def test_pairs_iteration(self):
        trace = make_trace()
        triples = list(trace.pairs())
        assert len(triples) == 3
        pre, record, post = triples[0]
        assert pre.variable("k") == [2, 2]
        assert post.variable("k") == [1, 2]
        assert record.selection == {0: "rule_dec"}

    def test_without_snapshots_raises(self):
        trace = Trace(record_configurations=False)
        algo = Countdown(PAIR, start=1)
        sim = Simulator(algo, ScriptedDaemon([[0, 1]]), seed=0, trace=trace)
        sim.run_to_termination(max_steps=5)
        with pytest.raises(ValueError):
            trace.configuration(0)
        with pytest.raises(ValueError):
            list(trace.pairs())
