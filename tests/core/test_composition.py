"""Unit tests for generic algorithm composition."""

import pytest

from repro.core import AlgorithmError, Composition, Network, Simulator, SynchronousDaemon
from tests.toys import Countdown, MaxFlood

NET = Network([(0, 1), (1, 2)])


class TestConstruction:
    def test_merges_variables_and_rules(self):
        comp = Composition([MaxFlood(NET), Countdown(NET)])
        assert set(comp.variables()) == {"x", "k"}
        assert comp.rule_names() == ("max-flood:rule_max", "countdown:rule_dec")

    def test_name_follows_paper_order(self):
        comp = Composition([MaxFlood(NET), Countdown(NET)])
        # A ∘ B lists the later layer first: B's rules run "under" A.
        assert comp.name == "countdown o max-flood"

    def test_custom_name(self):
        comp = Composition([MaxFlood(NET)], name="solo")
        assert comp.name == "solo"

    def test_variable_collision_rejected(self):
        class OtherFlood(MaxFlood):
            name = "other-flood"

        with pytest.raises(AlgorithmError, match="declared by both"):
            Composition([MaxFlood(NET), OtherFlood(NET)])

    def test_duplicate_component_names_rejected(self):
        a, b = Countdown(NET), Countdown(NET)
        with pytest.raises(AlgorithmError):
            Composition([a, b])

    def test_different_networks_rejected(self):
        other = Network([(0, 1)])
        with pytest.raises(AlgorithmError, match="share one network"):
            Composition([MaxFlood(NET), Countdown(other)])

    def test_empty_composition_rejected(self):
        with pytest.raises(AlgorithmError):
            Composition([])


class TestSemantics:
    def test_guard_and_execute_dispatch(self):
        comp = Composition([MaxFlood(NET), Countdown(NET, start=1)])
        cfg = comp.initial_configuration()
        assert comp.guard("countdown:rule_dec", cfg, 0)
        assert comp.execute("countdown:rule_dec", cfg, 0) == {"k": 0}
        assert comp.guard("max-flood:rule_max", cfg, 0)
        assert comp.execute("max-flood:rule_max", cfg, 0) == {"x": 1}

    def test_initial_state_merged(self):
        comp = Composition([MaxFlood(NET), Countdown(NET, start=2)])
        assert comp.initial_state(1) == {"x": 1, "k": 2}

    def test_component_lookup(self):
        flood = MaxFlood(NET)
        comp = Composition([flood, Countdown(NET)])
        assert comp.component("max-flood") is flood
        with pytest.raises(AlgorithmError):
            comp.component("missing")

    def test_composed_execution_terminates(self):
        comp = Composition([MaxFlood(NET), Countdown(NET, start=2)])
        sim = Simulator(comp, SynchronousDaemon(), seed=0)
        result = sim.run_to_termination(max_steps=100)
        assert sim.cfg.variable("x") == [2, 2, 2]
        assert sim.cfg.variable("k") == [0, 0, 0]
        assert result.moves > 0
