"""CSRAdjacency under churn: in-place deltas and empty-segment reductions.

``apply_delta`` promises that patching the CSR arrays in place leaves an
object *exactly* equal to a from-scratch rebuild of the mutated edge set
— including the ``_stride`` regular-graph fast path and the
``_has_empty`` guard that routes reductions off ``reduceat`` (which
mis-handles empty segments) once churn isolates a vertex.  These tests
drive randomized edit sequences against that promise and pin every
reduction's vacuous value on isolated-vertex and zero-edge graphs.
"""

from random import Random

import numpy as np
import pytest

from repro.core.kernel.csr import CSRAdjacency
from repro.topology import grid, ring


def assert_same_layout(got: CSRAdjacency, want: CSRAdjacency):
    assert got.n == want.n
    np.testing.assert_array_equal(got.indptr, want.indptr)
    np.testing.assert_array_equal(got.indices, want.indices)
    np.testing.assert_array_equal(got.edge_src, want.edge_src)
    np.testing.assert_array_equal(got.deg, want.deg)
    assert got._no_edges == want._no_edges
    assert got._has_empty == want._has_empty
    assert got._stride == want._stride


def random_edits(net, rng, rounds=12):
    """Yield (drops, adds) batches valid against ``net``, applying each."""
    n = net.n
    for _ in range(rounds):
        edges = sorted(tuple(sorted(e)) for e in net.edges())
        absent = [
            (u, v) for u in range(n) for v in range(u + 1, n)
            if (u, v) not in set(edges)
        ]
        drops = rng.sample(edges, k=min(len(edges), rng.randrange(0, 3)))
        adds = rng.sample(absent, k=min(len(absent), rng.randrange(0, 3)))
        if not drops and not adds:
            continue
        net.apply_delta(drops, adds)
        yield drops, adds


class TestApplyDelta:
    @pytest.mark.parametrize("make,seed", [
        (lambda: ring(9), 1),
        (lambda: grid(3, 4), 2),
        (lambda: ring(6), 3),
    ])
    def test_randomized_edits_equal_scratch_rebuild(self, make, seed):
        net = make()
        csr = CSRAdjacency(net)
        rng = Random(seed)
        for drops, adds in random_edits(net, rng):
            csr.apply_delta(drops, adds)
            assert_same_layout(csr, CSRAdjacency(net))

    def test_isolating_a_vertex_flips_the_empty_guard(self):
        net = ring(5)
        csr = CSRAdjacency(net)
        assert not csr._has_empty
        assert csr._stride == 2
        net.apply_delta([(0, 1), (0, 4)], [])
        csr.apply_delta([(0, 1), (0, 4)], [])
        assert csr._has_empty
        assert csr._stride == 0  # no longer regular
        assert csr.deg[0] == 0
        assert_same_layout(csr, CSRAdjacency(net))

    def test_dropping_every_edge_reaches_the_zero_edge_layout(self):
        net = ring(4)
        csr = CSRAdjacency(net)
        edges = [tuple(sorted(e)) for e in net.edges()]
        net.apply_delta(edges, [])
        csr.apply_delta(edges, [])
        assert csr._no_edges and csr._has_empty
        assert_same_layout(csr, CSRAdjacency(net))

    def test_reconnecting_restores_the_stride_fast_path(self):
        net = ring(6)
        csr = CSRAdjacency(net)
        net.apply_delta([(0, 1)], [])
        csr.apply_delta([(0, 1)], [])
        assert csr._stride == 0
        net.apply_delta([], [(0, 1)])
        csr.apply_delta([], [(0, 1)])
        assert csr._stride == 2
        assert_same_layout(csr, CSRAdjacency(net))


def brute(csr):
    """Per-process neighbor lists straight from the CSR arrays."""
    return [
        list(csr.indices[csr.indptr[u]:csr.indptr[u + 1]])
        for u in range(csr.n)
    ]


def isolated_csr():
    """grid(3, 3) with vertex 4 (the center) fully isolated."""
    net = grid(3, 3)
    incident = [tuple(sorted(e)) for e in net.edges() if 4 in e]
    csr = CSRAdjacency(net)
    csr.apply_delta(incident, [])
    assert csr._has_empty and not csr._no_edges
    return csr


def zero_edge_csr():
    net = ring(4)
    csr = CSRAdjacency(net)
    csr.apply_delta([tuple(sorted(e)) for e in net.edges()], [])
    return csr


@pytest.mark.parametrize("make", [isolated_csr, zero_edge_csr],
                         ids=["isolated-vertex", "zero-edges"])
class TestEmptySegmentReductions:
    """Every quantifier hands isolated processes its vacuous value."""

    def test_count_all_any(self, make):
        csr = make()
        rng = np.random.default_rng(7)
        flags = rng.random(csr.indices.shape[0]) < 0.5
        neigh = brute(csr)
        offsets = csr.indptr[:-1]
        count = csr.count_neigh(flags)
        alls = csr.all_neigh(flags)
        anys = csr.any_neigh(flags)
        for u in range(csr.n):
            local = [flags[offsets[u] + i] for i in range(len(neigh[u]))]
            assert count[u] == sum(local)
            assert alls[u] == all(local)   # vacuously True when isolated
            assert anys[u] == any(local)   # vacuously False when isolated
        assert count.dtype == np.int64

    def test_min_max_defaults(self, make):
        csr = make()
        rng = np.random.default_rng(11)
        values = rng.integers(0, 50, size=csr.indices.shape[0])
        mask = rng.random(csr.indices.shape[0]) < 0.6
        neigh = brute(csr)
        offsets = csr.indptr[:-1]
        lo = csr.min_neigh(values, mask, default=-1)
        hi = csr.max_neigh(values, mask, default=99)
        for u in range(csr.n):
            cands = [
                values[offsets[u] + i]
                for i in range(len(neigh[u]))
                if mask[offsets[u] + i]
            ]
            assert lo[u] == (min(cands) if cands else -1)
            assert hi[u] == (max(cands) if cands else 99)
