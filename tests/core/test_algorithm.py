"""Unit tests for the :class:`~repro.core.algorithm.Algorithm` base class."""

from random import Random

import pytest

from repro.core import AlgorithmError, Network
from tests.toys import Countdown, MaxFlood


@pytest.fixture
def net():
    return Network([(0, 1), (1, 2), (2, 3)])


class TestDeclaration:
    def test_variables_and_rules(self, net):
        algo = MaxFlood(net)
        assert algo.variables() == ("x",)
        assert algo.rule_names() == ("rule_max",)

    def test_check_rule_rejects_unknown(self, net):
        with pytest.raises(AlgorithmError, match="unknown rule"):
            MaxFlood(net).check_rule("rule_nope")

    def test_validate_state(self, net):
        algo = MaxFlood(net)
        algo.validate_state({"x": 1}, 0)
        with pytest.raises(AlgorithmError):
            algo.validate_state({"y": 1}, 0)
        with pytest.raises(AlgorithmError):
            algo.validate_state({"x": 1, "extra": 2}, 0)


class TestConfigurations:
    def test_initial_configuration(self, net):
        cfg = MaxFlood(net).initial_configuration()
        assert cfg.variable("x") == [0, 1, 2, 3]

    def test_random_configuration_seeded(self, net):
        algo = MaxFlood(net)
        a = algo.random_configuration(Random(7))
        b = algo.random_configuration(Random(7))
        assert a == b


class TestDerivedQueries:
    def test_enabled_rules_and_processes(self, net):
        algo = MaxFlood(net)
        cfg = algo.initial_configuration()
        # Process 3 holds the max; everyone with a larger neighbor is enabled.
        assert algo.enabled_rules(cfg, 0) == ("rule_max",)
        assert algo.enabled_rules(cfg, 3) == ()
        assert algo.enabled_processes(cfg) == [0, 1, 2]

    def test_is_terminal(self, net):
        algo = MaxFlood(net)
        from repro.core import Configuration

        flat = Configuration([{"x": 5} for _ in range(4)])
        assert algo.is_terminal(flat)
        assert not algo.is_terminal(algo.initial_configuration())

    def test_countdown_enabled_until_zero(self, net):
        algo = Countdown(net, start=1)
        cfg = algo.initial_configuration()
        assert algo.enabled_processes(cfg) == [0, 1, 2, 3]
        cfg.apply({u: {"k": 0} for u in range(4)})
        assert algo.is_terminal(cfg)
