"""Recovery probes and scenario builders across execution backends.

The satellite guarantees under test:

* every adversarial *scenario builder* (``clock_gradient``,
  ``clock_split``, ``fake_reset_wave``, ``hollow_alliance``) produces
  trials that are byte-identical between the dict engine and the fused
  kernel loop — the builders write decoded configurations, the kernel
  encodes them, and nothing downstream may notice;
* the *recovery workload* (``faults=``) produces byte-identical
  per-burst recovery and SDR-wave series on both backends;
* :class:`~repro.probes.RecoveryProbe` and
  :class:`~repro.probes.SdrWaveProbe` report per-burst series with the
  documented semantics (deltas from injection, rebased rounds, stop on
  the expected burst count).
"""

import dataclasses
import json

import pytest

from repro.harness.runner import (
    run_boulinier_trial,
    run_fga_trial,
    run_unison_trial,
)
from repro.topology import grid, ring

FAULTS = "burst=20,count=3,gap=40,k=2"


def trial_bytes(trial):
    return json.dumps(dataclasses.asdict(trial), sort_keys=True, default=str)


class TestScenarioBuildersAcrossBackends:
    @pytest.mark.parametrize("scenario", ["gradient", "split", "fake-wave"])
    def test_unison_scenarios_dict_equals_fused(self, scenario):
        kwargs = dict(seed=11, daemon="distributed-random", scenario=scenario)
        reference = run_unison_trial(ring(9), backend="dict", **kwargs)
        fused = run_unison_trial(ring(9), backend="kernel", **kwargs)
        assert trial_bytes(fused) == trial_bytes(reference)

    def test_hollow_alliance_dict_equals_fused(self):
        kwargs = dict(seed=11, daemon="central", scenario="hollow")
        reference = run_fga_trial(grid(3, 3), 1, 1, backend="dict", **kwargs)
        fused = run_fga_trial(grid(3, 3), 1, 1, backend="kernel", **kwargs)
        assert trial_bytes(fused) == trial_bytes(reference)


class TestRecoveryTrialsAcrossBackends:
    @pytest.mark.parametrize("daemon", [
        "synchronous", "central", "distributed-random",
    ])
    def test_unison_recovery_series_identical(self, daemon):
        kwargs = dict(seed=5, daemon=daemon, faults=FAULTS)
        reference = run_unison_trial(ring(9), backend="dict", **kwargs)
        fused = run_unison_trial(ring(9), backend="kernel", **kwargs)
        assert trial_bytes(fused) == trial_bytes(reference)
        recovery = reference.extra["recovery"]
        assert recovery["bursts"] == recovery["recovered"] == 3
        assert reference.extra["faults"] == FAULTS

    def test_fga_recovery_series_identical(self):
        kwargs = dict(seed=5, daemon="distributed-random", faults=FAULTS)
        reference = run_fga_trial(ring(9), 1, 1, backend="dict", **kwargs)
        fused = run_fga_trial(ring(9), 1, 1, backend="kernel", **kwargs)
        assert trial_bytes(fused) == trial_bytes(reference)

    def test_boulinier_recovery_series_identical(self):
        kwargs = dict(seed=5, daemon="distributed-random", faults=FAULTS)
        reference = run_boulinier_trial(ring(9), backend="dict", **kwargs)
        fused = run_boulinier_trial(ring(9), backend="kernel", **kwargs)
        assert trial_bytes(fused) == trial_bytes(reference)
        assert "sdr_waves" not in reference.extra  # uncomposed: no SDR layer


class TestRecoverySemantics:
    def test_burst_records_carry_deltas_and_identity(self):
        trial = run_unison_trial(ring(9), seed=5, faults=FAULTS)
        records = trial.extra["recovery"]["records"]
        assert [r["burst"] for r in records] == [0, 1, 2]
        for record in records:
            assert record["recovered"] is True
            assert record["nominal_step"] in (20, 60, 100)
            assert len(record["victims"]) == 2
            assert record["steps"] >= 0
            assert record["rounds"] >= 0
            assert record["moves"] >= 0
        summary = trial.extra["recovery"]
        assert summary["worst_steps"] == max(r["steps"] for r in records)
        assert summary["worst_rounds"] == max(r["rounds"] for r in records)

    def test_rounds_are_rebased_per_burst(self):
        """Per-burst rounds are deltas, not cumulative totals."""
        trial = run_unison_trial(ring(12), seed=2, faults=FAULTS)
        records = trial.extra["recovery"]["records"]
        assert all(r["rounds"] < trial.rounds or trial.rounds == 0
                   for r in records if r["rounds"] is not None) or \
            len(records) == 1

    def test_sdr_wave_summary_shape(self):
        trial = run_unison_trial(ring(9), seed=5, faults=FAULTS)
        waves = trial.extra["sdr_waves"]
        assert set(waves) >= {"windows", "initiators", "epochs", "merges"}
        assert len(waves["windows"]) == 4  # "pre" + one per burst
        assert [w["burst"] for w in waves["windows"]] == ["pre", 0, 1, 2]
        for window in waves["windows"]:
            assert set(window) == {"burst", "initiators", "rb", "rf",
                                   "epochs", "merges"}
            assert window["merges"] == max(
                0, window["initiators"] - window["epochs"]
            )
        assert waves["initiators"] == sum(
            w["initiators"] for w in waves["windows"]
        )

    def test_unrecoverable_budget_raises_not_stabilized(self):
        from repro.core.exceptions import NotStabilized

        with pytest.raises(NotStabilized):
            run_unison_trial(ring(9), seed=5, faults=FAULTS, max_steps=10)
