"""Unit tests for :mod:`repro.faults.churn`: grammar, draws, invariants.

The bound schedule is the single source of truth for mid-run topology:
these tests pin the spec grammar's round-trip, the per-occurrence PRNG
determinism, the connectivity-preserve policy, the post-join junk-state
domain, and the draw-time mirroring into the shared ``Network``.
"""

from random import Random

import pytest

from repro.alliance.fga import FGA
from repro.faults.churn import (
    BoundChurnSchedule,
    ChurnEvent,
    ChurnSchedule,
    parse_churn,
)
from repro.topology import grid, ring
from repro.unison import Unison


def drain(bound, horizon=10_000):
    """Pop the whole finite stream; returns occurrence summaries."""
    out = []
    while not bound.exhausted:
        for occ in bound.pop_due(horizon):
            out.append(
                (occ.action, occ.victims, occ.drops, occ.adds,
                 occ.assignments, occ.components, occ.live)
            )
    return out


class TestGrammar:
    def test_canonical_round_trip(self):
        spec = (
            "every=10,count=4,crash=1;burst=55,count=3,gap=10,join=1;"
            "at=90,drop_edge=1;at=95,add_edge=1"
        )
        sched = parse_churn(spec)
        assert parse_churn(sched.canonical()) == sched
        assert sched.canonical() == spec

    def test_all_timing_surfaces_normalize(self):
        sched = parse_churn(
            "at=5,crash=2;every=7,join=1;storm=10-30,cadence=10,drop_edge=1;"
            "burst=50,count=2,gap=3,add_edge=1"
        )
        kinds = [e.kind for e in sched.events]
        assert kinds == ["at", "every", "storm", "burst"]
        storm = sched.events[2]
        assert (storm.start, storm.gap, storm.count) == (10, 10, 3)
        assert list(sched.events[3].occurrence_steps()) == [50, 53]

    def test_seed_and_connectivity_join_the_canonical_form(self):
        sched = parse_churn("every=10,count=2,crash=1,connectivity=allow,seed=9")
        assert sched.seed == 9
        assert sched.connectivity == "allow"
        assert "connectivity=allow" in sched.canonical()
        assert "seed=9" in sched.canonical()
        assert parse_churn(sched.canonical()) == sched

    def test_until_bounds_every(self):
        sched = parse_churn("every=10,start=20,until=50,crash=1")
        assert list(sched.events[0].occurrence_steps()) == [20, 30, 40, 50]

    def test_finite_and_total_occurrences(self):
        finite = parse_churn("every=10,count=4,crash=1;at=90,join=2")
        assert finite.finite
        assert finite.total_occurrences == 5
        unbounded = parse_churn("every=10,crash=1")
        assert not unbounded.finite
        assert unbounded.total_occurrences is None

    @pytest.mark.parametrize("bad", [
        "",
        "at=10",                                # no action
        "crash=1",                              # no timing surface
        "at=10,crash=1,join=1",                 # two actions
        "at=10,teleport=1",                     # unknown action
        "at=10,drop_edge=1,procs=1|2",          # procs on an edge event
        "at=10,drop_edge=1,clustered",          # clustered on an edge event
        "storm=10-30,crash=1",                  # storm without cadence
        "burst=10,crash=1",                     # burst without count/gap
        "every=10,until=5,start=8,crash=1",     # until before start
        "at=10,crash=0",                        # k < 1
        "at=10,crash=1,connectivity=maybe",     # unknown policy
    ])
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(ValueError):
            parse_churn(bad)

    def test_procs_restrict_crash_pool(self):
        sched = parse_churn("every=10,count=3,crash=1,procs=2|5")
        assert sched.events[0].procs == (2, 5)
        bound = sched.bind(Unison(ring(8)), default_seed=1)
        victims = {v for _, vs, *_ in drain(bound) for v in vs}
        assert victims <= {2, 5}


class TestDeterminism:
    SPEC = (
        "every=10,count=4,crash=1;burst=55,count=3,gap=10,join=1;"
        "at=90,drop_edge=1;at=95,add_edge=1"
    )

    def bind(self, seed):
        net = grid(3, 3)
        return parse_churn(self.SPEC).bind(FGA(net, 1, 1), default_seed=seed)

    def test_same_seed_same_stream(self):
        assert drain(self.bind(42)) == drain(self.bind(42))

    def test_different_seed_different_stream(self):
        assert drain(self.bind(42)) != drain(self.bind(43))

    def test_pull_forward_draws_like_the_nominal_twin(self):
        """A pulled-forward occurrence uses its identity-keyed PRNG, so
        it commits the same delta as if it had fired on time."""
        nominal = self.bind(42)
        on_time = nominal.pop_due(10)
        pulled = self.bind(42).pop_due(0, idle=True)
        assert len(on_time) == 1 and len(pulled) == 1
        assert (on_time[0].victims, on_time[0].drops) == (
            pulled[0].victims, pulled[0].drops
        )


class TestDrawInvariants:
    def test_preserve_never_splits_the_live_subgraph(self):
        bound = parse_churn(
            "every=5,count=10,crash=1;every=7,count=10,drop_edge=1"
        ).bind(Unison(ring(12)), default_seed=3)
        for action, *_, components, live in drain(bound):
            assert components == 1, action

    def test_allow_may_partition(self):
        bound = parse_churn(
            "every=1,count=30,drop_edge=1,connectivity=allow"
        ).bind(Unison(ring(10)), default_seed=0)
        assert max(c for *_, c, _ in drain(bound)) > 1

    def test_crash_never_silences_the_last_live_process(self):
        bound = parse_churn(
            "every=1,count=50,crash=1,connectivity=allow"
        ).bind(Unison(ring(6)), default_seed=1)
        drain(bound)
        assert sum(bound.live) >= 1

    def test_join_junk_drawn_from_post_join_neighborhood(self):
        """A rejoining FGA process samples its junk pointer from the
        neighborhood it has *after* reclaiming its links — the schedule
        mirrors the reclaimed edges into the Network before the draw."""
        net = grid(3, 3)
        algo = FGA(net, 1, 1)
        bound = parse_churn("at=1,crash=2;at=2,join=2").bind(algo, default_seed=6)
        seen_ptrs = []
        for occ in bound.pop_due(5):
            if occ.action != "join":
                continue
            for u, var, value in occ.assignments:
                if var == "ptr" and value is not None:
                    seen_ptrs.append((u, value))
                    assert value in net.closed_neighbors(u)
        assert seen_ptrs, "no join pointer draws observed"

    def test_network_mirrored_at_draw_time(self):
        net = ring(9)
        bound = parse_churn(
            "every=3,count=6,crash=1;every=4,count=6,drop_edge=1;"
            "every=5,count=6,add_edge=1;every=6,count=6,join=1"
        ).bind(Unison(net), default_seed=2)
        while not bound.exhausted:
            bound.pop_due(100)
            mirrored = tuple(sorted(tuple(sorted(e)) for e in net.edges()))
            assert mirrored == bound.current_edges()

    def test_join_reverses_crash(self):
        """Crash then join of the same victim restores the deployment
        links (all neighbors still live) and clears the dead set."""
        net = ring(5)
        bound = parse_churn("at=1,crash=1;at=2,join=1").bind(
            Unison(net), default_seed=4
        )
        (crash,) = bound.pop_due(1)
        assert bound.dead() == crash.victims
        (join,) = bound.pop_due(2)
        assert join.victims == crash.victims
        assert sorted(join.adds) == sorted(crash.drops)
        assert bound.dead() == ()
        assert set(bound.current_edges()) == {
            (0, 1), (1, 2), (2, 3), (3, 4), (0, 4)
        }


class TestBindPlumbing:
    def test_bind_prefers_schedule_seed(self):
        sched = parse_churn("at=1,crash=1,seed=77")
        bound = sched.bind(Unison(ring(6)), default_seed=5)
        assert bound.seed == 77
        unseeded = parse_churn("at=1,crash=1").bind(Unison(ring(6)), default_seed=5)
        assert unseeded.seed == 5

    def test_event_validation(self):
        with pytest.raises(ValueError):
            ChurnEvent(action="crash", kind="every", start=10, gap=0, count=None)
        with pytest.raises(ValueError):
            ChurnSchedule([], seed=0)
