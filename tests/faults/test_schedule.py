"""FaultSchedule: parsing, canonical forms, and committed determinism."""

import pytest

from repro.faults.schedule import (
    FaultEvent,
    FaultSchedule,
    parse_schedule,
)
from repro.reset import SDR
from repro.topology import ring
from repro.unison import Unison


def unison_sdr(n=8):
    return SDR(Unison(ring(n)))


class TestParsing:
    def test_roundtrip_is_fixed_point(self):
        specs = [
            "at=100,k=3,vars=c",
            "every=250",
            "every=100,start=40,count=5,k=2",
            "storm=1000-2000,cadence=50,k=2",
            "burst=500,count=3,gap=100,k=2,scope=input",
            "at=0,procs=1|4;at=64,k=2,clustered",
            "burst=10,count=2,gap=5;every=7,count=3,seed=9",
        ]
        for spec in specs:
            canonical = parse_schedule(spec).canonical()
            assert parse_schedule(canonical).canonical() == canonical, spec

    def test_surface_forms_normalize_to_start_gap_count(self):
        storm = parse_schedule("storm=100-300,cadence=50").events[0]
        assert (storm.start, storm.gap, storm.count) == (100, 50, 5)
        burst = parse_schedule("burst=100,count=5,gap=50").events[0]
        assert (burst.start, burst.gap, burst.count) == (100, 50, 5)
        assert list(storm.occurrence_steps()) == list(burst.occurrence_steps())
        at = parse_schedule("at=7").events[0]
        assert (at.start, at.gap, at.count) == (7, 0, 1)

    def test_every_is_unbounded(self):
        sched = parse_schedule("every=250")
        assert not sched.finite
        assert sched.total_occurrences is None
        assert parse_schedule("every=250,count=4").total_occurrences == 4

    def test_total_occurrences_sums_events(self):
        sched = parse_schedule("burst=10,count=3,gap=5;at=99")
        assert sched.finite and sched.total_occurrences == 4

    def test_explicit_seed_lands_in_canonical_and_equality(self):
        pinned = parse_schedule("at=10,seed=5")
        assert "seed=5" in pinned.canonical()
        assert pinned != parse_schedule("at=10")
        assert pinned == parse_schedule("at=10,seed=5")

    @pytest.mark.parametrize("spec", [
        "bogus=10",
        "at=10,scope=nowhere",
        "at=10,vars=c,scope=input",
        "at=10,procs=1|2,clustered",
        "every=0",
        "burst=10,count=0,gap=5",
        "",
    ])
    def test_invalid_specs_raise(self, spec):
        with pytest.raises(ValueError):
            parse_schedule(spec)

    def test_repeating_event_requires_gap(self):
        with pytest.raises(ValueError):
            FaultEvent("burst", 10, gap=0, count=3)


class TestBoundDeterminism:
    SPEC = "burst=20,count=3,gap=30,k=2"

    def drain(self, bound, max_step=400):
        occurrences = []
        step = 0
        while not bound.exhausted and step <= max_step:
            occurrences += bound.pop_due(step)
            step += 1
        return occurrences

    def test_same_seed_same_assignments(self):
        algo = unison_sdr()
        a = self.drain(parse_schedule(self.SPEC).bind(algo, default_seed=7))
        b = self.drain(parse_schedule(self.SPEC).bind(algo, default_seed=7))
        assert [o.assignments for o in a] == [o.assignments for o in b]
        assert [o.victims for o in a] == [o.victims for o in b]

    def test_different_seed_different_assignments(self):
        algo = unison_sdr()
        a = self.drain(parse_schedule(self.SPEC).bind(algo, default_seed=7))
        b = self.drain(parse_schedule(self.SPEC).bind(algo, default_seed=8))
        assert [o.assignments for o in a] != [o.assignments for o in b]

    def test_pull_forward_keeps_nominal_draws(self):
        """An occurrence pulled forward injects the same corruption."""
        algo = unison_sdr()
        nominal = self.drain(parse_schedule(self.SPEC).bind(algo, 7))
        pulled_bound = parse_schedule(self.SPEC).bind(algo, 7)
        pulled = []
        while not pulled_bound.exhausted:
            pulled += pulled_bound.pop_due(0, idle=True)  # terminal at step 0
        assert [o.assignments for o in pulled] == [
            o.assignments for o in nominal
        ]
        # Nominal steps are preserved for reporting even when pulled.
        assert [o.step for o in pulled] == [20, 50, 80]

    def test_pop_due_with_nothing_due_mutates_nothing(self):
        bound = parse_schedule(self.SPEC).bind(unison_sdr(), 7)
        assert bound.pop_due(5) == []
        assert bound.peek_next() == 20
        assert bound.pop_due(19) == []
        assert len(bound.pop_due(20)) == 1
        assert bound.peek_next() == 50

    def test_overlapping_events_fire_in_step_then_declaration_order(self):
        bound = parse_schedule("at=10,procs=1;at=10,procs=2;at=5,procs=3").bind(
            unison_sdr(), 0
        )
        due = bound.pop_due(10)
        assert [o.step for o in due] == [5, 10, 10]
        assert [o.event for o in due] == [2, 0, 1]
        assert [o.burst for o in due] == [0, 1, 2]

    def test_assignments_stay_inside_declared_domains(self):
        algo = unison_sdr()
        schema = algo.rule_set().schema
        n = algo.network.n
        for spec in ("burst=5,count=4,gap=10,k=3",
                     "at=0,k=2,scope=input",
                     "at=0,k=2,scope=reset",
                     "at=0,k=2,vars=st|d"):
            for occ in self.drain(parse_schedule(spec).bind(algo, 3)):
                assert occ.victims
                for proc, var, value in occ.assignments:
                    assert 0 <= proc < n
                    assert var in algo.variables()
                    for candidate in schema.vars:
                        if candidate.name == var:
                            candidate.encode_value(value)  # must not raise
                            break
                    else:  # pragma: no cover - schema always has the var
                        raise AssertionError(var)

    def test_scope_partitions_the_composition_seam(self):
        algo = unison_sdr()
        reset_vars = {"st", "d"}
        for occ in self.drain(parse_schedule("every=10,count=4,k=2,scope=input")
                              .bind(algo, 1)):
            assert {v for _, v, _ in occ.assignments}.isdisjoint(reset_vars)
        for occ in self.drain(parse_schedule("every=10,count=4,k=2,scope=reset")
                              .bind(algo, 1)):
            assert {v for _, v, _ in occ.assignments} <= reset_vars

    def test_named_procs_and_vars_are_honoured(self):
        bound = parse_schedule("at=3,procs=2|5,vars=c").bind(unison_sdr(), 0)
        (occ,) = bound.pop_due(3)
        assert occ.victims == (2, 5)
        assert {v for _, v, _ in occ.assignments} == {"c"}
        assert {p for p, _, _ in occ.assignments} == {2, 5}
