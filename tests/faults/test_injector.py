"""Tests for transient-fault injection."""

from random import Random

import pytest

from repro.faults import FaultPlan, corrupt_processes, corrupt_variables
from repro.reset import SDR
from repro.topology import ring
from repro.unison import Unison

NET = ring(8)


def make_sdr():
    return SDR(Unison(NET))


class TestCorruptProcesses:
    def test_only_targets_change(self):
        sdr = make_sdr()
        cfg = sdr.initial_configuration()
        out = corrupt_processes(sdr, cfg, [2, 5], Random(0))
        for u in NET.processes():
            if u in (2, 5):
                continue
            assert out[u] == cfg[u]

    def test_original_configuration_untouched(self):
        sdr = make_sdr()
        cfg = sdr.initial_configuration()
        corrupt_processes(sdr, cfg, [0], Random(0))
        assert cfg[0] == sdr.initial_state(0)

    def test_variable_restriction(self):
        sdr = make_sdr()
        cfg = sdr.initial_configuration()
        out = corrupt_processes(sdr, cfg, list(NET.processes()), Random(1), variables=("c",))
        for u in NET.processes():
            assert out[u]["st"] == "C"
            assert out[u]["d"] == 0

    def test_values_stay_in_domain(self):
        sdr = make_sdr()
        cfg = sdr.initial_configuration()
        out = corrupt_processes(sdr, cfg, list(NET.processes()), Random(2))
        for u in NET.processes():
            assert out[u]["st"] in ("C", "RB", "RF")
            assert 0 <= out[u]["c"] < sdr.input.period
            assert 0 <= out[u]["d"] <= 2 * NET.n

    def test_corrupt_variables_explicit(self):
        sdr = make_sdr()
        cfg = sdr.initial_configuration()
        out = corrupt_variables(sdr, cfg, [(3, "c")], Random(3))
        assert out[3]["st"] == "C"


class TestFaultPlan:
    def test_requires_positive_k(self):
        with pytest.raises(ValueError):
            FaultPlan(0)

    def test_picks_k_distinct_victims(self):
        plan = FaultPlan(4)
        sdr = make_sdr()
        victims = plan.pick_victims(sdr, Random(0))
        assert len(victims) == len(set(victims)) == 4

    def test_clustered_victims_form_connected_region(self):
        import networkx as nx

        plan = FaultPlan(4, clustered=True)
        sdr = make_sdr()
        for seed in range(5):
            victims = plan.pick_victims(sdr, Random(seed))
            sub = sdr.network.to_networkx().subgraph(victims)
            assert nx.is_connected(sub)

    def test_k_capped_at_n(self):
        plan = FaultPlan(100)
        sdr = make_sdr()
        assert len(plan.pick_victims(sdr, Random(1))) == NET.n

    def test_apply_returns_corrupted_copy_and_victims(self):
        plan = FaultPlan(2, variables=("c",))
        sdr = make_sdr()
        cfg = sdr.initial_configuration()
        out, victims = plan.apply(sdr, cfg, Random(4))
        assert len(victims) == 2
        assert all(out[u]["st"] == "C" for u in NET.processes())
