"""Tests for adversarial initial-configuration builders."""

from random import Random

from repro.alliance import FGA, dominating_set
from repro.faults import clock_gradient, clock_split, fake_reset_wave, hollow_alliance
from repro.reset import SDR
from repro.topology import ring
from repro.unison import Unison

NET = ring(8)


class TestClockScenarios:
    def test_gradient_spreads_clocks(self):
        sdr = SDR(Unison(NET))
        cfg = clock_gradient(sdr)
        values = set(cfg.variable("c"))
        assert len(values) > 2
        assert all(cfg[u]["st"] == "C" for u in NET.processes())

    def test_split_has_two_camps(self):
        sdr = SDR(Unison(NET))
        cfg = clock_split(sdr)
        assert set(cfg.variable("c")) == {0, sdr.input.period // 2}

    def test_gradient_is_not_normal(self):
        sdr = SDR(Unison(NET))
        cfg = clock_gradient(sdr)
        assert not sdr.is_normal(cfg)


class TestFakeResetWave:
    def test_wave_covers_requested_fraction(self):
        sdr = SDR(Unison(NET))
        cfg = fake_reset_wave(sdr, Random(0), fraction=0.5)
        touched = [u for u in NET.processes() if cfg[u]["st"] != "C"]
        assert len(touched) == 4

    def test_wave_distances_mimic_bfs(self):
        sdr = SDR(Unison(NET))
        cfg = fake_reset_wave(sdr, Random(1), fraction=0.5)
        touched = {u: cfg[u]["d"] for u in NET.processes() if cfg[u]["st"] != "C"}
        assert min(touched.values()) == 0


class TestHollowAlliance:
    def test_everyone_out(self):
        f, g = dominating_set(NET)
        sdr = SDR(FGA(NET, f, g))
        cfg = hollow_alliance(sdr)
        assert not any(cfg.variable("col"))
        assert not sdr.is_normal(cfg)
