"""Unit tests for FGA's macros, predicates, and rules (Algorithm 3)."""

import pytest

from repro.alliance import FGA
from repro.alliance.fga import resolve_node_function
from repro.core import AlgorithmError, Configuration, Network

PATH = Network([(0, 1), (1, 2)])  # ids = indices


def make(f=1, g=0, net=PATH):
    return FGA(net, f, g)


def cfg_of(*quads):
    """Build a configuration from (col, scr, canQ, ptr) per process."""
    return Configuration(
        [{"col": c, "scr": s, "canQ": q, "ptr": p} for c, s, q, p in quads]
    )


ALL_IN = cfg_of((True, 1, True, None), (True, 1, True, None), (True, 1, True, None))


class TestNodeFunctions:
    def test_constant_sequence_callable(self):
        net = PATH
        assert resolve_node_function(2, net) == (2, 2, 2)
        assert resolve_node_function([0, 1, 2], net) == (0, 1, 2)
        assert resolve_node_function(lambda u: u * u, net) == (0, 1, 4)

    def test_wrong_length_rejected(self):
        with pytest.raises(AlgorithmError):
            resolve_node_function([1, 2], PATH)

    def test_degree_feasibility_enforced(self):
        with pytest.raises(AlgorithmError, match="degree"):
            FGA(PATH, 2, 0)  # endpoints have degree 1

    def test_negative_rejected(self):
        with pytest.raises(AlgorithmError, match="non-negative"):
            FGA(PATH, -1, 0)


class TestMacros:
    def test_in_alliance_count(self):
        fga = make()
        cfg = cfg_of((True, 1, True, None), (False, 1, True, None), (True, 1, True, None))
        assert fga.in_alliance_count(cfg, 1) == 2
        assert fga.in_alliance_count(cfg, 0) == 0

    def test_real_scr_thresholds_for_member(self):
        fga = make(f=1, g=0)
        # Member compares #InAll against g=0: any neighbors in -> scr 1.
        assert fga.real_scr(ALL_IN, 1) == 1
        hollow = cfg_of((False, 1, True, None), (True, 1, True, None), (False, 1, True, None))
        assert fga.real_scr(hollow, 1) == 0  # == g? no: #InAll=0 == g=0 -> 0

    def test_real_scr_thresholds_for_non_member(self):
        fga = make(f=1, g=0)
        lonely = cfg_of((False, 1, True, None), (False, 1, True, None), (True, 1, True, None))
        assert fga.real_scr(lonely, 0) == -1  # 0 < f=1
        assert fga.real_scr(lonely, 1) == 0   # 1 == f
        mid = cfg_of((True, 1, True, None), (False, 1, True, None), (True, 1, True, None))
        assert fga.real_scr(mid, 1) == 1      # 2 > f

    def test_real_scr_col_override(self):
        fga = make(f=1, g=0)
        # Same counts, but evaluate as if u had left the alliance.
        assert fga.real_scr(ALL_IN, 1, col=False) == 1  # 2 > f=1

    def test_p_can_quit(self):
        fga = make(f=1, g=0)
        assert fga.p_can_quit(ALL_IN, 1)
        low_scr = cfg_of((True, 0, True, None), (True, 1, True, None), (True, 1, True, None))
        assert not fga.p_can_quit(low_scr, 1)  # neighbor scr != 1
        out = cfg_of((True, 1, True, None), (False, 1, True, None), (True, 1, True, None))
        assert not fga.p_can_quit(out, 1)  # not a member

    def test_p_to_quit_needs_unanimous_pointers(self):
        fga = make(f=1, g=0)
        pointed = cfg_of((True, 1, True, 1), (True, 1, True, 1), (True, 1, True, 1))
        assert fga.p_to_quit(pointed, 1)
        partial = cfg_of((True, 1, True, 1), (True, 1, True, 1), (True, 1, True, None))
        assert not fga.p_to_quit(partial, 1)

    def test_best_ptr_smallest_id_wins(self):
        fga = make(f=1, g=0)
        assert fga.best_ptr(ALL_IN, 1) == 0  # ids are indices; 0 < 1 < 2

    def test_best_ptr_bottom_when_scr_low(self):
        fga = make(f=1, g=0)
        low = cfg_of((True, 1, True, None), (True, 0, True, None), (True, 1, True, None))
        assert fga.best_ptr(low, 1) is None

    def test_best_ptr_bottom_when_nobody_can_quit(self):
        fga = make(f=1, g=0)
        nobody = cfg_of((True, 1, False, None), (True, 1, False, None), (True, 1, False, None))
        assert fga.best_ptr(nobody, 1) is None

    def test_best_ptr_respects_identifier_order(self):
        net = Network([(0, 1), (1, 2)], ids={0: 50, 1: 10, 2: 30})
        fga = FGA(net, 1, 0)
        assert fga.best_ptr(ALL_IN, 1) == 1  # own id 10 smallest in N[1]
        assert fga.best_ptr(ALL_IN, 0) == 1  # neighbor with id 10


class TestPredicatesForSdr:
    def test_p_reset(self):
        fga = make()
        assert fga.p_reset(ALL_IN, 0)
        dirty = cfg_of((True, 1, True, 1), (True, 1, True, None), (True, 1, True, None))
        assert not fga.p_reset(dirty, 0)

    def test_reset_updates_establish_p_reset(self):
        fga = make()
        cfg = cfg_of((False, -1, False, 2), (True, 1, True, None), (True, 1, True, None))
        probe = cfg.copy()
        for var, val in fga.reset_updates(cfg, 0).items():
            probe.set(0, var, val)
        assert fga.p_reset(probe, 0)

    def test_p_icorrect_happy_paths(self):
        fga = make(f=1, g=0)
        assert fga.p_icorrect(ALL_IN, 1)  # scr = realScr = 1
        ptr_ok = cfg_of((False, 1, True, None), (True, 1, True, 0), (True, 1, True, None))
        # ptr=0, scr=1, col_0 false: third disjunct.
        assert fga.p_icorrect(ptr_ok, 1)

    def test_p_icorrect_fails_on_negative_real_score(self):
        fga = make(f=1, g=1)
        isolated = cfg_of((True, 1, True, None), (False, 1, True, None), (True, 1, True, None))
        # 1 not in alliance with one member neighbor... member 0 has
        # #InAll = 0 < g=1: realScr(0) = -1.
        assert not fga.p_icorrect(isolated, 0)

    def test_p_icorrect_fails_on_stale_pointer_to_member(self):
        fga = make(f=1, g=0)
        stale = cfg_of((True, 1, True, None), (True, 1, True, 0), (True, 1, True, None))
        # ptr_1 = 0 but col_0 still true and scr=1=realScr... disjunct 1 applies
        assert fga.p_icorrect(stale, 1)
        worse = cfg_of((True, 1, True, None), (True, 0, True, 0), (True, 1, True, None))
        # scr=0 != realScr=1, ptr != bottom, col_ptr true: all disjuncts fail.
        assert not fga.p_icorrect(worse, 1)


class TestRules:
    def test_rule_clr_updates_everything_consistently(self):
        fga = make(f=1, g=0)
        pointed = cfg_of((True, 1, True, 1), (True, 1, True, 1), (True, 1, True, 1))
        assert fga.guard("rule_Clr", pointed, 1)
        updates = fga.execute("rule_Clr", pointed, 1)
        assert updates["col"] is False
        assert updates["scr"] == 1  # two member neighbors > f
        # canQ must be false now (no longer a member).
        assert updates["canQ"] is False

    def test_rule_clr_locally_central(self):
        """Two neighbors can never be simultaneously enabled to quit."""
        fga = make(f=1, g=0)
        pointed = cfg_of((True, 1, True, 1), (True, 1, True, 1), (True, 1, True, 1))
        enabled = [u for u in range(3) if fga.guard("rule_Clr", pointed, u)]
        assert enabled == [1]

    def test_rule_p1_clears_pointer_first(self):
        fga = make(f=1, g=0)
        cfg = cfg_of((True, 1, True, 2), (True, 1, True, None), (False, 0, False, None))
        # bestPtr(0) is ⊥ or 0... ptr_0=2 stale (canQ_2 false).
        if fga.guard("rule_P1", cfg, 0):
            updates = fga.execute("rule_P1", cfg, 0)
            assert updates["ptr"] is None

    def test_rule_p2_points_after_clearing(self):
        fga = make(f=1, g=0)
        cfg = cfg_of((True, 1, True, None), (True, 1, True, None), (True, 1, True, None))
        assert fga.guard("rule_P2", cfg, 0)
        updates = fga.execute("rule_P2", cfg, 0)
        assert updates["ptr"] == 0  # smallest id in N[0] with canQ

    def test_rule_q_refreshes_score(self):
        fga = make(f=1, g=0)
        stale = cfg_of((True, 0, True, None), (True, 1, True, None), (True, 1, True, None))
        # 0: realScr=1 != scr=0, ptr=⊥ so P_updPtr... bestPtr with scr 0 is ⊥ =
        # ptr: not P_updPtr; rule_Q applies.
        assert fga.guard("rule_Q", stale, 0)
        updates = fga.execute("rule_Q", stale, 0)
        assert updates["scr"] == 1

    def test_rule_q_resets_pointer_on_low_score(self):
        fga = make(f=1, g=1, net=Network([(0, 1), (1, 2), (0, 2)]))
        cfg = cfg_of((True, -1, False, 0), (True, 1, True, None), (False, 1, True, None))
        # realScr(0): member, #InAll = 1 == g -> 0; ensure ptr cleared when <= 0
        if fga.guard("rule_Q", cfg, 0):
            updates = fga.execute("rule_Q", cfg, 0)
            if updates["scr"] <= 0:
                assert updates["ptr"] is None


class TestStates:
    def test_gamma_init(self):
        fga = make()
        state = fga.initial_state(0)
        assert state == {"col": True, "scr": 1, "canQ": True, "ptr": None}

    def test_random_state_domains(self):
        from random import Random

        fga = make()
        rng = Random(0)
        for _ in range(50):
            state = fga.random_state(1, rng)
            assert state["scr"] in (-1, 0, 1)
            assert state["ptr"] in (None, 0, 1, 2)
            assert isinstance(state["col"], bool)

    def test_alliance_extraction(self):
        fga = make()
        cfg = cfg_of((True, 1, True, None), (False, 1, True, None), (True, 1, True, None))
        assert fga.alliance(cfg) == {0, 2}
