"""Integration tests for the silent self-stabilizing composition
``FGA ∘ SDR`` (Theorems 11–14)."""

from random import Random

import pytest

from repro.alliance import (
    FGA,
    dominating_set,
    instance_by_name,
    is_fga_stable,
    is_one_minimal,
    one_minimality_guaranteed,
)
from repro.analysis import bounds
from repro.core import DistributedRandomDaemon, Simulator, SynchronousDaemon
from repro.faults import corrupt_processes, hollow_alliance
from repro.reset import SDR
from repro.topology import by_name, complete, ring


def sdr_init(net, f, g):
    """γ_init of the composition (clean SDR layer, full alliance)."""
    return SDR(FGA(net, f, g)).initial_configuration()


def run(net, f, g, cfg, seed=0, daemon=None):
    sdr = SDR(FGA(net, f, g))
    sim = Simulator(
        sdr, daemon or DistributedRandomDaemon(0.5),
        config=cfg if cfg is not None else sdr.random_configuration(Random(seed)),
        seed=seed,
    )
    result = sim.run_to_termination(max_steps=2_000_000)
    return sdr, sim, result


class TestSilentSelfStabilization:
    @pytest.mark.parametrize("topo", ["ring", "random", "grid"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_terminates_from_arbitrary_configuration(self, topo, seed):
        """Theorem 12 (silence) + Theorem 11 (terminal = 1-minimal)."""
        net = by_name(topo, 8, seed=seed)
        f, g = dominating_set(net)
        sdr, sim, result = run(net, f, g, cfg=None, seed=seed)
        assert result.terminal
        assert is_one_minimal(net, sdr.input.alliance(sim.cfg), f, g)

    def test_terminal_configurations_are_normal(self):
        net = ring(7)
        f, g = dominating_set(net)
        sdr, sim, _ = run(net, f, g, cfg=None, seed=3)
        assert sdr.is_normal(sim.cfg)
        assert sim.cfg.variable("st") == ["C"] * net.n

    def test_recovers_from_hollow_alliance(self):
        """Worst violation: everyone out of the alliance (realScr < 0)."""
        net = by_name("random", 9, seed=4)
        f, g = dominating_set(net)
        sdr = SDR(FGA(net, f, g))
        cfg = hollow_alliance(sdr)
        sdr, sim, result = run(net, f, g, cfg=cfg, seed=4)
        assert is_one_minimal(net, sdr.input.alliance(sim.cfg), f, g)

    def test_recovers_from_small_fault(self):
        net = ring(8)
        f, g = dominating_set(net)
        sdr = SDR(FGA(net, f, g))
        # Stabilize once, then flip one process's membership bit.
        sim = Simulator(sdr, DistributedRandomDaemon(0.5),
                        config=sdr.random_configuration(Random(5)), seed=5)
        sim.run_to_termination(max_steps=2_000_000)
        faulty = corrupt_processes(sdr, sim.cfg, [3], Random(5), variables=("col",))
        sdr2, sim2, _ = run(net, f, g, cfg=faulty, seed=6)
        assert is_one_minimal(net, sdr2.input.alliance(sim2.cfg), f, g)


class TestBounds:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_move_bound_theorem12(self, seed):
        net = by_name("random", 8, seed=seed)
        f, g = dominating_set(net)
        _, _, result = run(net, f, g, cfg=None, seed=seed)
        assert result.moves <= bounds.fga_sdr_move_bound(net.n, net.m, net.max_degree)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_rounds_bound_theorem14(self, seed):
        net = ring(8)
        f, g = dominating_set(net)
        _, _, result = run(net, f, g, cfg=None, seed=seed)
        assert result.rounds <= bounds.fga_sdr_rounds_bound(net.n)

    def test_synchronous_daemon_bounds(self):
        net = ring(9)
        f, g = dominating_set(net)
        _, _, result = run(net, f, g, cfg=None, seed=7, daemon=SynchronousDaemon())
        assert result.rounds <= bounds.fga_sdr_rounds_bound(net.n)


class TestInstancesUnderSdr:
    @pytest.mark.parametrize(
        "name",
        ["dominating-set", "2-dominating-set", "2-tuple-dominating-set",
         "global-offensive", "global-defensive", "global-powerful"],
    )
    def test_all_six_instances_stabilize(self, name):
        net = complete(6)  # dense enough for every instance
        f, g = instance_by_name(name, net)
        sdr, sim, result = run(net, f, g, cfg=None, seed=8)
        assert result.terminal
        members = sdr.input.alliance(sim.cfg)
        if one_minimality_guaranteed(f, g):
            # Theorem 8 applies as stated.
            assert is_one_minimal(net, members, f, g)
        else:
            # Reproduction finding: with f ≤ g somewhere the published
            # guards only enforce the strict-margin variant.
            assert is_fga_stable(net, members, f, g)

    def test_reproduction_finding_defensive_gap(self):
        """With f < g, FGA's terminal alliance can fail strict 1-minimality
        (removable member with realScr = 0): the documented gap in the
        paper's Theorem 8 proof for u = m."""
        from repro.core import Network

        net = Network([(0, 1), (0, 2), (1, 3), (1, 4), (2, 3), (2, 4)])
        f = (1,) * 5
        g = (2,) * 5
        sdr, sim, result = run(net, f, g, cfg=sdr_init(net, f, g), seed=0)
        members = sdr.input.alliance(sim.cfg)
        assert members == set(range(5))  # nobody could leave
        assert not is_one_minimal(net, members, f, g)
        assert is_fga_stable(net, members, f, g)
