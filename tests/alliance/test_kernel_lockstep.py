"""Paranoid lockstep for the FGA kernel port (standalone and under SDR)."""

from random import Random

from repro.alliance.fga import FGA
from repro.core import DistributedRandomDaemon, Simulator
from repro.topology import grid, ring


def test_fga_standalone_kernel_lockstep_terminates():
    net = grid(3, 3)
    fga = FGA(net, 1, 1)
    sim = Simulator(
        fga, DistributedRandomDaemon(0.5), seed=2, backend="kernel", paranoid=True
    )
    result = sim.run_to_termination(max_steps=50_000)
    assert result.terminal
    assert fga.alliance(sim.cfg)  # a non-empty 1-minimal alliance came out


def test_fga_sdr_kernel_lockstep_from_random_configs():
    from repro.reset import SDR

    for seed in range(3):
        net = ring(9)
        sdr = SDR(FGA(net, 2, 0))
        cfg = sdr.random_configuration(Random(seed))
        sim = Simulator(
            sdr,
            DistributedRandomDaemon(0.5),
            config=cfg,
            seed=seed,
            backend="kernel",
            paranoid=True,
        )
        result = sim.run_to_termination(max_steps=100_000)
        assert result.terminal


def test_turau_kernel_lockstep_terminates():
    from repro.alliance.turau import TurauMIS

    for seed in range(3):
        net = grid(3, 4)
        algo = TurauMIS(net)
        cfg = algo.random_configuration(Random(seed))
        sim = Simulator(
            algo,
            DistributedRandomDaemon(0.5),
            config=cfg,
            seed=seed,
            backend="kernel",
            paranoid=True,
        )
        result = sim.run_to_termination(max_steps=50_000)
        assert result.terminal
        members = algo.members(sim.cfg)
        for u in members:  # terminal states are independent sets
            assert not members & set(net.neighbors(u))


def test_turau_kernel_respects_custom_identifiers():
    from repro.alliance.turau import TurauMIS

    net = grid(3, 3).with_ids([90, 10, 80, 30, 70, 50, 60, 40, 20])
    results = []
    for backend in ("dict", "kernel"):
        algo = TurauMIS(net)
        sim = Simulator(
            algo, DistributedRandomDaemon(0.5), seed=6, backend=backend
        )
        sim.run_to_termination(max_steps=50_000)
        results.append(sim.cfg.snapshot())
    assert results[0] == results[1]


def test_fga_kernel_respects_custom_identifiers():
    """bestPtr argmin-by-id must follow explicit (non-dense) ids."""
    net = grid(3, 3).with_ids([90, 10, 80, 30, 70, 50, 60, 40, 20])
    results = []
    for backend in ("dict", "kernel"):
        fga = FGA(net, 1, 1)
        sim = Simulator(
            fga, DistributedRandomDaemon(0.5), seed=6, backend=backend
        )
        sim.run_to_termination(max_steps=50_000)
        results.append(sim.cfg.snapshot())
    assert results[0] == results[1]
