"""Tests for the Turau-style MIS/MDS baseline."""

from random import Random

import pytest

from repro.alliance import IN, OUT, WAIT, TurauMIS, is_minimal_dominating_set
from repro.core import Configuration, DistributedRandomDaemon, Network, Simulator
from repro.topology import by_name, complete, ring, star


def states(*values):
    return Configuration([{"s": v} for v in values])


PATH = Network([(0, 1), (1, 2)])


class TestGuards:
    def test_out_waits_without_in_neighbor(self):
        algo = TurauMIS(PATH)
        cfg = states(OUT, OUT, OUT)
        assert algo.guard("rule_wait", cfg, 0)

    def test_out_stays_next_to_in(self):
        algo = TurauMIS(PATH)
        cfg = states(OUT, IN, OUT)
        assert not algo.guard("rule_wait", cfg, 0)

    def test_wait_retreats_next_to_in(self):
        algo = TurauMIS(PATH)
        cfg = states(WAIT, IN, OUT)
        assert algo.guard("rule_retreat", cfg, 0)

    def test_enter_prefers_smaller_id(self):
        algo = TurauMIS(PATH)
        cfg = states(WAIT, WAIT, OUT)
        assert algo.guard("rule_enter", cfg, 0)
        assert not algo.guard("rule_enter", cfg, 1)  # 0 has smaller id

    def test_larger_in_leaves(self):
        algo = TurauMIS(PATH)
        cfg = states(IN, IN, OUT)
        assert algo.guard("rule_leave", cfg, 1)
        assert not algo.guard("rule_leave", cfg, 0)


class TestTerminalCharacterization:
    @pytest.mark.parametrize("topo", ["ring", "random", "star", "complete"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_terminal_configurations_are_mis(self, topo, seed):
        net = by_name(topo, 9, seed=seed) if topo == "random" else {
            "ring": ring(9), "star": star(9), "complete": complete(9)
        }[topo]
        algo = TurauMIS(net)
        sim = Simulator(
            algo, DistributedRandomDaemon(0.5),
            config=algo.random_configuration(Random(seed)), seed=seed,
        )
        result = sim.run_to_termination(max_steps=200_000)
        members = algo.members(sim.cfg)
        # Independence:
        for u in members:
            assert not any(v in members for v in net.neighbors(u))
        # Minimal dominating set:
        assert is_minimal_dominating_set(net, members)
        # No WAIT residue in terminal configurations:
        assert all(sim.cfg[u]["s"] != WAIT for u in net.processes())

    def test_star_mis_is_hub_or_leaves(self):
        net = star(6)
        algo = TurauMIS(net)
        sim = Simulator(
            algo, DistributedRandomDaemon(0.5),
            config=algo.random_configuration(Random(4)), seed=4,
        )
        sim.run_to_termination(max_steps=100_000)
        members = algo.members(sim.cfg)
        assert members == {0} or members == set(range(1, 6))


class TestMoveComplexityShape:
    def test_moves_scale_linearly_on_rings(self):
        """The baseline's selling point: O(n)-ish move complexity."""
        measurements = []
        for n in (8, 16, 32):
            worst = 0
            for seed in range(3):
                net = ring(n)
                algo = TurauMIS(net)
                sim = Simulator(
                    algo, DistributedRandomDaemon(0.5),
                    config=algo.random_configuration(Random(seed)), seed=seed,
                )
                result = sim.run_to_termination(max_steps=200_000)
                worst = max(worst, result.moves)
            measurements.append(worst)
        # Crude linearity check: doubling n should not quadruple moves.
        assert measurements[2] <= 6 * measurements[0]
