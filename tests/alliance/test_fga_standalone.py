"""Behavioral tests for standalone FGA from γ_init (Theorems 8–10)."""

from random import Random

import pytest

from repro.alliance import FGA, dominating_set, global_powerful_alliance, is_one_minimal
from repro.analysis import bounds
from repro.core import (
    DistributedRandomDaemon,
    Simulator,
    SynchronousDaemon,
    Trace,
    make_daemon,
)
from repro.topology import by_name, complete, ring, star


def run_from_init(net, f, g, seed=0, daemon=None, trace=None):
    fga = FGA(net, f, g)
    sim = Simulator(
        fga,
        daemon or DistributedRandomDaemon(0.5),
        config=fga.initial_configuration(),
        seed=seed,
        trace=trace,
    )
    result = sim.run_to_termination(max_steps=1_000_000)
    return fga, sim, result


class TestCorrectness:
    @pytest.mark.parametrize("topo", ["ring", "random", "star", "complete", "tree"])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_terminates_with_one_minimal_alliance(self, topo, seed):
        net = by_name(topo, 8, seed=seed)
        f, g = dominating_set(net)
        fga, sim, _ = run_from_init(net, f, g, seed=seed)
        assert is_one_minimal(net, fga.alliance(sim.cfg), f, g)

    def test_star_converges_to_hub(self):
        net = star(6)
        f, g = dominating_set(net)
        fga, sim, _ = run_from_init(net, f, g, seed=3)
        # {hub} is the unique 1-minimal (1,0)-alliance containing the hub;
        # FGA removes greedily by id, so the result must dominate the star.
        assert is_one_minimal(net, fga.alliance(sim.cfg), f, g)

    def test_powerful_alliance_on_complete_graph(self):
        net = complete(6)
        f, g = global_powerful_alliance(net)
        fga, sim, _ = run_from_init(net, f, g, seed=4)
        assert is_one_minimal(net, fga.alliance(sim.cfg), f, g)

    def test_members_only_ever_leave(self):
        """col goes true→false at most once per process (rule_Clr is the
        only writer and no rule sets col back)."""
        net = ring(8)
        f, g = dominating_set(net)
        trace = Trace(record_configurations=True)
        _, sim, _ = run_from_init(net, f, g, seed=5, trace=trace)
        cols = [[cfg[u]["col"] for cfg in trace.configurations] for u in net.processes()]
        for series in cols:
            # Monotone non-increasing booleans: no False -> True flip.
            assert all(not (not a and b) for a, b in zip(series, series[1:]))

    def test_removals_are_locally_central(self):
        """At most one member of any closed neighborhood quits per step."""
        net = ring(8)
        f, g = dominating_set(net)
        trace = Trace()
        _, sim, _ = run_from_init(net, f, g, seed=6, daemon=SynchronousDaemon(), trace=trace)
        for record in trace:
            quitters = [u for u, rule in record.selection.items() if rule == "rule_Clr"]
            for i, u in enumerate(quitters):
                for v in quitters[i + 1 :]:
                    assert not net.are_neighbors(u, v)


class TestBounds:
    @pytest.mark.parametrize("topo", ["ring", "random"])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_move_bounds_cor11_lemma25(self, topo, seed):
        net = by_name(topo, 9, seed=seed)
        f, g = dominating_set(net)
        _, sim, result = run_from_init(net, f, g, seed=seed)
        assert result.moves <= bounds.fga_standalone_move_bound(net.n, net.m, net.max_degree)
        for u in net.processes():
            assert sim.moves_per_process[u] <= \
                bounds.fga_standalone_moves_per_process_bound(net.degree(u), net.max_degree)

    @pytest.mark.parametrize("daemon_kind", ["synchronous", "central", "distributed-random"])
    def test_rounds_bound_cor12(self, daemon_kind):
        net = ring(8)
        f, g = dominating_set(net)
        _, _, result = run_from_init(net, f, g, seed=2, daemon=make_daemon(daemon_kind, net))
        assert result.rounds <= bounds.fga_standalone_rounds_bound(net.n)

    def test_each_process_quits_at_most_once(self):
        net = by_name("random", 10, seed=3)
        f, g = dominating_set(net)
        trace = Trace()
        _, sim, _ = run_from_init(net, f, g, seed=7, trace=trace)
        clr_by_process: dict[int, int] = {}
        for record in trace:
            for u, rule in record.selection.items():
                if rule == "rule_Clr":
                    clr_by_process[u] = clr_by_process.get(u, 0) + 1
        assert all(count == 1 for count in clr_by_process.values())
