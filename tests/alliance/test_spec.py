"""Unit tests for (f,g)-alliance specification checkers."""

import pytest

from repro.alliance import (
    is_alliance,
    is_dominating_set,
    is_minimal,
    is_minimal_dominating_set,
    is_one_minimal,
    neighbors_in,
    violating_processes,
)
from repro.core import Network
from repro.topology import complete, ring, star

STAR5 = star(5)  # hub 0, leaves 1..4
ONES = (1,) * 5
ZEROS = (0,) * 5


class TestBasicChecks:
    def test_neighbors_in(self):
        assert neighbors_in(STAR5, {0}, 1) == 1
        assert neighbors_in(STAR5, {1, 2}, 0) == 2

    def test_hub_dominates_star(self):
        assert is_alliance(STAR5, {0}, ONES, ZEROS)
        assert not is_alliance(STAR5, {1}, ONES, ZEROS)  # hub not dominated? 1 covers hub only
        assert violating_processes(STAR5, {1}, ONES, ZEROS) == [2, 3, 4]

    def test_full_set_is_always_an_alliance_when_degrees_allow(self):
        net = ring(5)
        assert is_alliance(net, set(range(5)), (1,) * 5, (1,) * 5)

    def test_g_constraint_on_members(self):
        net = ring(4)
        # Members need one member neighbor: opposite corners fail g.
        assert not is_alliance(net, {0, 2}, (1,) * 4, (1,) * 4)
        assert is_alliance(net, {0, 1}, (1,) * 4, (1,) * 4)


class TestOneMinimality:
    def test_hub_is_one_minimal(self):
        assert is_one_minimal(STAR5, {0}, ONES, ZEROS)

    def test_superset_not_one_minimal(self):
        assert not is_one_minimal(STAR5, {0, 1}, ONES, ZEROS)

    def test_non_alliance_is_not_one_minimal(self):
        assert not is_one_minimal(STAR5, set(), ONES, ZEROS)

    def test_empty_set_can_be_an_alliance_with_zero_f(self):
        net = ring(4)
        assert is_alliance(net, set(), (0,) * 4, (0,) * 4)
        assert is_one_minimal(net, set(), (0,) * 4, (0,) * 4)


class TestMinimality:
    def test_minimal_implies_one_minimal_property1(self):
        net = complete(4)
        members = {0}
        assert is_minimal(net, members, ONES[:4], ZEROS[:4])
        assert is_one_minimal(net, members, ONES[:4], ZEROS[:4])

    def test_minimality_guard(self):
        net = complete(4)
        with pytest.raises(ValueError, match="exponential"):
            is_minimal(net, set(range(4)), (0,) * 4, (0,) * 4, exhaustive_limit=2)

    def test_one_minimal_but_not_minimal_exists(self):
        """Dourado et al.: 1-minimality is weaker than minimality when
        f < g somewhere.  Star, f=0, g=1 on the hub only."""
        net = star(4)  # hub 0, leaves 1..3
        f = (0, 0, 0, 0)
        g = (1, 0, 0, 0)
        members = {0, 1}
        # Alliance: hub has member neighbor 1 (g). Dropping 0: {1} f ok? all f=0 -> ok... so {0,1} is not 1-minimal
        assert is_alliance(net, members, f, g)
        # the empty set is also an alliance: {0,1} is not minimal
        assert is_alliance(net, set(), f, g)


class TestDominatingHelpers:
    def test_is_dominating_set(self):
        assert is_dominating_set(STAR5, {0})
        assert not is_dominating_set(STAR5, {1})

    def test_is_minimal_dominating_set(self):
        assert is_minimal_dominating_set(STAR5, {0})
        assert not is_minimal_dominating_set(STAR5, {0, 1})
        net = ring(6)
        assert is_minimal_dominating_set(net, {0, 3})
