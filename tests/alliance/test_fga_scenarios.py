"""Scenario coverage for FGA: identifier relabeling, pointer staleness,
heterogeneous (f,g), and determinism."""

from random import Random

import pytest

from repro.alliance import FGA, is_alliance, is_one_minimal
from repro.core import (
    Configuration,
    DistributedRandomDaemon,
    Network,
    ScriptedDaemon,
    Simulator,
    SynchronousDaemon,
)
from repro.reset import SDR
from repro.topology import by_name, line, ring


class TestIdentifierSensitivity:
    def test_relabeled_ids_yield_valid_but_possibly_different_alliances(self):
        """FGA's output may depend on identifiers (who wins approvals),
        but is always a correct 1-minimal alliance."""
        base = by_name("random", 9, seed=1)
        f = [1] * 9
        g = [0] * 9
        outcomes = set()
        for perm_seed in range(4):
            ids = list(range(9))
            Random(perm_seed).shuffle(ids)
            net = base.with_ids(ids)
            fga = FGA(net, f, g)
            sim = Simulator(
                fga, DistributedRandomDaemon(0.5),
                config=fga.initial_configuration(), seed=0,
            )
            sim.run_to_termination(max_steps=200_000)
            members = frozenset(fga.alliance(sim.cfg))
            assert is_one_minimal(net, members, f, g)
            outcomes.add(members)
        assert len(outcomes) >= 2  # identifiers really do steer the result

    def test_smallest_id_quits_first_on_complete_graph(self):
        net = Network([(0, 1), (1, 2), (0, 2)], ids={0: 30, 1: 10, 2: 20})
        fga = FGA(net, 1, 0)
        sim = Simulator(
            fga, SynchronousDaemon(), config=fga.initial_configuration(), seed=0
        )
        from repro.core import Trace

        trace = Trace()
        sim.trace = trace
        trace.start(sim.cfg)
        sim.run_to_termination(max_steps=1_000)
        first_quit = next(
            u for r in trace for u, rule in r.selection.items() if rule == "rule_Clr"
        )
        assert net.id_of(first_quit) == 10  # process with the smallest id


class TestHeterogeneousFunctions:
    def test_mixed_f_g_per_process(self):
        net = ring(6)
        f = [1, 2, 1, 2, 1, 2]
        g = [0, 1, 0, 1, 0, 1]
        sdr = SDR(FGA(net, f, g))
        sim = Simulator(
            sdr, DistributedRandomDaemon(0.5),
            config=sdr.random_configuration(Random(3)), seed=3,
        )
        sim.run_to_termination(max_steps=500_000)
        members = sdr.input.alliance(sim.cfg)
        assert is_alliance(net, members, f, g)
        assert is_one_minimal(net, members, f, g)

    def test_zero_zero_alliance_shrinks_to_stable_residue(self):
        """(0,0): the empty set is an alliance, but f = g = 0 sits on the
        Theorem 8 boundary (see DESIGN.md §6): once a member's last member
        neighbor leaves, its score drops to 0 and it can no longer
        self-approve.  The result is FGA-stable, not necessarily empty."""
        from repro.alliance import is_fga_stable

        net = line(4)
        fga = FGA(net, 0, 0)
        sim = Simulator(
            fga, DistributedRandomDaemon(0.5),
            config=fga.initial_configuration(), seed=0,
        )
        sim.run_to_termination(max_steps=100_000)
        members = fga.alliance(sim.cfg)
        assert len(members) < 4  # it did shrink
        assert is_fga_stable(net, members, [0] * 4, [0] * 4)

    def test_degree_saturated_g_keeps_everyone(self):
        """g = δ: members need *all* neighbors in; nobody can ever leave."""
        net = ring(5)
        fga = FGA(net, [1] * 5, [2] * 5)  # δ = 2 = g
        sim = Simulator(
            fga, DistributedRandomDaemon(0.5),
            config=fga.initial_configuration(), seed=1,
        )
        sim.run_to_termination(max_steps=100_000)
        assert fga.alliance(sim.cfg) == set(range(5))


class TestPointerStaleness:
    def test_stale_pointer_to_absent_candidate_is_cleared(self):
        net = line(3)
        fga = FGA(net, 1, 0)
        # ptr_0 = 1 but canQ_1 is false: bestPtr(0) ≠ ptr_0 → P1 clears it.
        cfg = Configuration(
            [
                {"col": True, "scr": 1, "canQ": False, "ptr": 1},
                {"col": True, "scr": 1, "canQ": False, "ptr": None},
                {"col": True, "scr": 1, "canQ": False, "ptr": None},
            ]
        )
        assert fga.guard("rule_P1", cfg, 0)
        updates = fga.execute("rule_P1", cfg, 0)
        assert updates["ptr"] is None

    def test_two_step_pointer_switch(self):
        """Approval switching is two atomic steps: ⊥ first, then the new
        target (the paper's liveness mechanism)."""
        net = line(3)
        fga = FGA(net, 1, 0)
        cfg = Configuration(
            [
                {"col": True, "scr": 1, "canQ": True, "ptr": None},
                {"col": True, "scr": 1, "canQ": True, "ptr": 2},
                {"col": True, "scr": 1, "canQ": True, "ptr": None},
            ]
        )
        # bestPtr(1) = 0 (smaller id, canQ) ≠ ptr_1 = 2 → must go through ⊥.
        assert fga.guard("rule_P1", cfg, 1)
        cfg.apply({1: fga.execute("rule_P1", cfg, 1)})
        assert cfg[1]["ptr"] is None
        assert fga.guard("rule_P2", cfg, 1)
        cfg.apply({1: fga.execute("rule_P2", cfg, 1)})
        assert cfg[1]["ptr"] == 0


class TestDeterminism:
    def test_same_seed_same_alliance(self):
        net = by_name("random", 10, seed=5)
        f = [1] * 10
        g = [0] * 10

        def run_once():
            sdr = SDR(FGA(net, f, g))
            sim = Simulator(
                sdr, DistributedRandomDaemon(0.5),
                config=sdr.random_configuration(Random(7)), seed=7,
            )
            sim.run_to_termination(max_steps=500_000)
            return frozenset(sdr.input.alliance(sim.cfg)), sim.move_count

        assert run_once() == run_once()
