"""Unit tests for the six classical alliance instances."""

import pytest

from repro.alliance import (
    INSTANCES,
    dominating_set,
    global_defensive_alliance,
    global_offensive_alliance,
    global_powerful_alliance,
    instance_by_name,
    k_dominating_set,
    k_tuple_dominating_set,
)
from repro.core import AlgorithmError
from repro.topology import complete, line, ring


class TestInstanceDefinitions:
    def test_dominating_set_is_1_0(self):
        f, g = dominating_set(ring(5))
        assert f == (1,) * 5 and g == (0,) * 5

    def test_k_domination(self):
        f, g = k_dominating_set(ring(5), 2)
        assert f == (2,) * 5 and g == (0,) * 5

    def test_k_tuple(self):
        f, g = k_tuple_dominating_set(complete(5), 3)
        assert f == (3,) * 5 and g == (2,) * 5

    def test_offensive_majorities(self):
        net = ring(5)  # degree 2 everywhere
        f, g = global_offensive_alliance(net)
        assert f == (2,) * 5  # ceil(3/2)
        assert g == (0,) * 5

    def test_defensive_majorities(self):
        net = complete(4)  # degree 3
        f, g = global_defensive_alliance(net)
        assert f == (1,) * 4
        assert g == (2,) * 4  # ceil(4/2)

    def test_powerful_combines_both(self):
        net = complete(4)
        f, g = global_powerful_alliance(net)
        assert f == (2,) * 4  # ceil(4/2)
        assert g == (2,) * 4  # ceil(3/2)


class TestFeasibilityValidation:
    def test_infeasible_k_domination_rejected(self):
        with pytest.raises(AlgorithmError, match="infeasible"):
            k_dominating_set(line(5), 3)  # endpoints have degree 1

    def test_feasible_on_dense_graph(self):
        k_dominating_set(complete(5), 3)

    def test_defensive_feasible_on_ring(self):
        # ring: δ=2, g = ceil(3/2) = 2 ≤ δ: feasible.
        global_defensive_alliance(ring(6))


class TestRegistry:
    def test_registry_contains_six_instances(self):
        assert len(INSTANCES) == 6

    @pytest.mark.parametrize("name", sorted(INSTANCES))
    def test_instances_build_on_complete_graph(self, name):
        f, g = instance_by_name(name, complete(6))
        assert len(f) == 6 and len(g) == 6
        assert all(x >= 0 for x in f) and all(x >= 0 for x in g)

    def test_unknown_instance(self):
        with pytest.raises(AlgorithmError, match="unknown alliance instance"):
            instance_by_name("super-alliance", ring(5))
