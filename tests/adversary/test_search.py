"""Search strategies, their daemon adapter, and the deprecation shim."""

import warnings
from random import Random

import pytest

from repro.adversary.search import (
    STRATEGY_KINDS,
    AdversarialDaemon,
    BeamAdversary,
    GreedyAdversary,
    ScoredStrategy,
    SearchDaemon,
    delay_strategy,
    known_strategy,
    make_search_daemon,
)
from repro.core.daemon import DAEMON_KINDS, daemon_kind_known, make_daemon
from repro.core.exceptions import DaemonError
from repro.core.simulator import Simulator
from repro.reset import SDR
from repro.topology import ring
from repro.unison import Unison


class TestAdversarialTieBreak:
    """Satellite regression: one canonical ``(score, -u, rule)`` key."""

    def test_constant_score_prefers_lowest_process(self):
        daemon = AdversarialDaemon(lambda cfg, u, rule, step: 1.0)
        enabled = {4: ("rule_a",), 0: ("rule_a",), 2: ("rule_a",)}
        assert daemon.select(None, enabled, Random(0), 0) == {0: "rule_a"}

    def test_rule_tie_breaks_lexicographically_greatest(self):
        daemon = AdversarialDaemon(lambda cfg, u, rule, step: 1.0)
        enabled = {3: ("rule_a", "rule_c", "rule_b")}
        assert daemon.select(None, enabled, Random(0), 0) == {3: "rule_c"}

    def test_score_dominates_process_order(self):
        daemon = AdversarialDaemon(
            lambda cfg, u, rule, step: 5.0 if u == 7 else 1.0
        )
        enabled = {0: ("rule_a",), 7: ("rule_a",)}
        assert daemon.select(None, enabled, Random(0), 0) == {7: "rule_a"}

    def test_one_canonical_key_not_per_process_max(self):
        # The old implementation maximized per process then across
        # processes with inconsistent tuples; the canonical key must
        # pick (score, -u, rule) across ALL (u, rule) pairs at once.
        daemon = AdversarialDaemon(
            lambda cfg, u, rule, step: {"x": 2.0, "y": 2.0}[rule]
        )
        enabled = {1: ("x", "y"), 0: ("y", "x")}
        assert daemon.select(None, enabled, Random(0), 0) == {0: "y"}


class TestDelayStrategy:
    def test_input_moves_first(self):
        assert delay_strategy(None, 0, "rule_U", 0) == 3.0
        assert delay_strategy(None, 0, "rule_RB", 0) == 2.0
        assert delay_strategy(None, 0, "rule_R", 0) == 2.0
        assert delay_strategy(None, 0, "rule_RF", 0) == 1.0
        assert delay_strategy(None, 0, "rule_C", 0) == 0.0


class TestStrategyParsing:
    def test_kinds(self):
        assert set(STRATEGY_KINDS) == {"greedy", "beam", "delay"}

    def test_default_is_greedy(self):
        daemon = make_search_daemon()
        assert isinstance(daemon.strategy, GreedyAdversary)
        assert daemon.spec == "adversarial:greedy"

    @pytest.mark.parametrize("spec,width,horizon,branch", [
        ("beam", 3, 3, 6),
        ("beam-2", 2, 3, 6),
        ("beam-2x5", 2, 5, 6),
        ("beam-2x5x4", 2, 5, 4),
    ])
    def test_beam_specs(self, spec, width, horizon, branch):
        strategy = make_search_daemon(spec).strategy
        assert isinstance(strategy, BeamAdversary)
        assert (strategy.width, strategy.horizon, strategy.branch) == (
            width, horizon, branch)

    def test_delay_is_scored_only(self):
        strategy = make_search_daemon("delay").strategy
        assert isinstance(strategy, ScoredStrategy)
        assert strategy.column_tier is False

    @pytest.mark.parametrize("bad", [
        "nope", "beam-", "beam-1x2x3x4", "beam-ax2", "beam-0", "beam-2x0",
    ])
    def test_bad_specs_raise(self, bad):
        with pytest.raises(DaemonError):
            make_search_daemon(bad)
        assert not known_strategy(bad)

    def test_known_strategy(self):
        assert known_strategy(None)
        assert known_strategy("greedy")
        assert known_strategy("beam-2x2")
        assert known_strategy("delay")


class TestDaemonRegistry:
    def test_adversarial_registered(self):
        assert "adversarial" in DAEMON_KINDS

    def test_make_daemon_parses_strategy_suffix(self):
        daemon = make_daemon("adversarial:beam-2x2")
        assert isinstance(daemon, SearchDaemon)
        assert daemon.spec == "adversarial:beam-2x2"

    def test_make_daemon_bare_adversarial(self):
        assert isinstance(make_daemon("adversarial"), SearchDaemon)

    def test_non_adversarial_kind_rejects_argument(self):
        with pytest.raises(DaemonError):
            make_daemon("central:greedy")

    def test_daemon_kind_known(self):
        assert daemon_kind_known("distributed-random")
        assert daemon_kind_known("adversarial")
        assert daemon_kind_known("adversarial:beam-2x2")
        assert not daemon_kind_known("adversarial:nope")
        assert not daemon_kind_known("central:x")
        assert not daemon_kind_known("nope")


class TestDeprecationShim:
    """Satellite: the old import path warns but returns the same class."""

    def test_core_daemon_import_warns(self):
        import repro.core.daemon as core_daemon

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            cls = core_daemon.AdversarialDaemon
        assert cls is AdversarialDaemon
        assert any(issubclass(w.category, DeprecationWarning) for w in caught)

    def test_package_reexports_are_the_same_class(self):
        import repro
        import repro.core as core

        assert repro.AdversarialDaemon is AdversarialDaemon
        assert core.AdversarialDaemon is AdversarialDaemon


class TestKernelSnapshot:
    def test_snapshot_restore_round_trip(self):
        sdr = SDR(Unison(ring(6)))
        sim = Simulator(sdr, make_daemon("synchronous"), seed=0,
                        backend="kernel", fuse=False)
        sim.run(max_steps=2)
        kernel = sim._kernel
        snap = kernel.snapshot()
        before = {name: col.copy() for name, col in kernel.read.items()}
        enabled_before = dict(kernel.enabled_map())
        # Drive the runtime forward, then rewind.
        for _ in range(3):
            em = dict(kernel.enabled_map())
            if not em:
                break
            u = min(em)
            kernel.apply({u: em[u][0]})
        kernel.restore(snap)
        for name, col in before.items():
            assert (kernel.read[name] == col).all()
        assert dict(kernel.enabled_map()) == enabled_before

    def test_snapshot_carries_rng_and_rounds(self):
        from repro.core.rounds import RoundCounter

        sdr = SDR(Unison(ring(4)))
        sim = Simulator(sdr, make_daemon("synchronous"), seed=0,
                        backend="kernel", fuse=False)
        sim.run(max_steps=1)
        kernel = sim._kernel
        rng = Random(42)
        rounds = RoundCounter()
        rounds.resume(3, set(range(4)))
        snap = kernel.snapshot(rng=rng, rounds=rounds)
        state = rng.getstate()
        rng.random()
        rounds.resume(7, set())
        kernel.restore(snap, rng=rng, rounds=rounds)
        assert rng.getstate() == state
        assert rounds.completed == 3


class TestSearchDaemonAdapter:
    def test_logs_every_selection_and_resets(self):
        net = ring(6)
        sdr = SDR(Unison(net))
        daemon = make_search_daemon("greedy")
        sim = Simulator(sdr, daemon, seed=0, backend="kernel", fuse=False)
        sim.run(max_steps=5)
        assert len(daemon.log) == 5
        assert all(sel for sel in daemon.log)
        daemon.reset()
        assert daemon.log == []

    def test_dict_backend_falls_back_to_scored_tier(self):
        net = ring(6)
        sdr = SDR(Unison(net))
        daemon = make_search_daemon("greedy")
        sim = Simulator(sdr, daemon, seed=0, backend="dict")
        sim.run(max_steps=4)
        # Decode-tier fallback activates exactly one process per step.
        assert [len(sel) for sel in daemon.log] == [1, 1, 1, 1]

    def test_searches_are_seed_independent(self):
        net = ring(6)
        results = []
        for seed in (0, 1):
            daemon = make_search_daemon("beam-2x2")
            sdr = SDR(Unison(net))
            sim = Simulator(sdr, daemon, seed=seed, backend="kernel",
                            fuse=False)
            sim.run(max_steps=6)
            results.append(list(daemon.log))
        assert results[0] == results[1]

    def test_beam_first_depth_equals_greedy_when_width_one(self):
        # A 1x1 beam IS greedy: identical schedules step for step.
        net = ring(6)
        logs = []
        for spec in ("greedy", "beam-1x1"):
            daemon = make_search_daemon(spec)
            sim = Simulator(SDR(Unison(net)), daemon, seed=0,
                            backend="kernel", fuse=False)
            sim.run(max_steps=6)
            logs.append(list(daemon.log))
        assert logs[0] == logs[1]
