"""Certificates serialize canonically and replay byte-for-byte."""

import pytest

from repro.adversary.certificates import (
    CERT_VERSION,
    CertificateError,
    ScheduleCertificate,
    certificate_from_daemon,
    config_digest,
    dump_certificate,
    load_certificate,
    loads_certificate,
    replay_certificate,
    verify_certificate,
    write_certificate,
)
from repro.adversary.search import make_search_daemon
from repro.core.daemon import make_daemon
from repro.core.simulator import Simulator
from repro.faults.scenarios import clock_split
from repro.reset import SDR
from repro.topology import ring
from repro.unison import Unison


def search_run(n=6, spec="greedy", max_steps=8):
    """Run an adversarial search and package it as a certificate."""
    sdr = SDR(Unison(ring(n)))
    initial = clock_split(sdr)
    daemon = make_search_daemon(spec)
    sim = Simulator(sdr, daemon, config=initial, seed=0,
                    backend="kernel", fuse=False)
    result = sim.run(max_steps=max_steps)
    cert = certificate_from_daemon(
        daemon,
        algorithm="unison",
        seed=0,
        initial=initial,
        final=sim.cfg,
        rounds=sim.rounds.completed,
        meta={"topology": "ring", "scenario": "split"},
    )
    return cert, initial, result


class TestSerialization:
    def test_round_trip_is_byte_identical(self):
        cert, _, _ = search_run()
        text = dump_certificate(cert)
        again = dump_certificate(loads_certificate(text))
        assert again == text

    def test_digest_is_stable(self):
        a, _, _ = search_run()
        b, _, _ = search_run()
        assert a.digest() == b.digest()

    def test_file_round_trip(self, tmp_path):
        cert, _, _ = search_run()
        path = tmp_path / "cert.jsonl"
        write_certificate(cert, path)
        loaded = load_certificate(path)
        assert dump_certificate(loaded) == dump_certificate(cert)
        assert loaded.selections == cert.selections

    def test_header_totals(self):
        cert, _, result = search_run()
        assert cert.version == CERT_VERSION
        assert cert.steps == len(cert.selections) == result.steps
        assert cert.moves == sum(len(s) for s in cert.selections)
        assert cert.moves == result.moves


class TestMalformed:
    def test_empty(self):
        with pytest.raises(CertificateError, match="empty"):
            loads_certificate("")

    def test_bad_version(self):
        cert, _, _ = search_run()
        cert.version = 99
        with pytest.raises(CertificateError, match="version"):
            loads_certificate(dump_certificate(cert))

    def test_steps_out_of_order(self):
        cert, _, _ = search_run()
        lines = dump_certificate(cert).splitlines()
        lines[1], lines[2] = lines[2], lines[1]
        with pytest.raises(CertificateError, match="out of order"):
            loads_certificate("\n".join(lines))

    def test_step_count_mismatch(self):
        cert, _, _ = search_run()
        lines = dump_certificate(cert).splitlines()
        with pytest.raises(CertificateError, match="steps"):
            loads_certificate("\n".join(lines[:-1]))

    def test_garbage_header(self):
        with pytest.raises(CertificateError, match="malformed"):
            loads_certificate('{"version":1}\n')


class TestReplay:
    def test_replays_on_dict_backend(self):
        cert, initial, _ = search_run()
        sdr = SDR(Unison(ring(6)))
        report = replay_certificate(cert, sdr, initial, backend="dict")
        assert report.ok
        assert report.backend == "dict"
        assert report.moves == cert.moves
        assert report.rounds == cert.rounds
        assert report.final_hash == cert.final_hash

    def test_initial_hash_mismatch_raises(self):
        cert, _, _ = search_run()
        sdr = SDR(Unison(ring(6)))
        other = sdr.initial_configuration()
        assert config_digest(other) != cert.initial_hash
        with pytest.raises(CertificateError, match="initial configuration"):
            replay_certificate(cert, sdr, other)

    def test_verify_raises_on_tampered_moves(self):
        cert, initial, _ = search_run()
        cert.moves += 1
        sdr = SDR(Unison(ring(6)))
        with pytest.raises(CertificateError, match="diverged"):
            verify_certificate(cert, sdr, initial)

    def test_verify_raises_on_tampered_final_hash(self):
        cert, initial, _ = search_run()
        cert.final_hash = "0" * 64
        sdr = SDR(Unison(ring(6)))
        with pytest.raises(CertificateError, match="diverged"):
            verify_certificate(cert, sdr, initial)

    def test_scripted_replay_rejects_disabled_moves(self):
        cert, initial, _ = search_run()
        # Corrupt one selection so the script activates a process with
        # a rule that is not enabled at that point of the replay.
        cert.selections[0] = {0: "rule_bogus"}
        sdr = SDR(Unison(ring(6)))
        with pytest.raises(Exception):
            replay_certificate(cert, sdr, initial)


class TestConfigDigest:
    def test_digest_ignores_state_dict_order(self):
        sdr = SDR(Unison(ring(4)))
        cfg = sdr.initial_configuration()
        assert config_digest(cfg) == config_digest(cfg.copy())

    def test_digest_changes_with_state(self):
        sdr = SDR(Unison(ring(4)))
        a = sdr.initial_configuration()
        b = a.copy()
        b.set(0, "c", a.get(0, "c") + 1)
        assert config_digest(a) != config_digest(b)
