"""Potential functions score kernel columns without decoding."""

import numpy as np
import pytest

from repro.adversary.potential import (
    POTENTIAL_KINDS,
    EnabledMoves,
    FgaElectionChurn,
    Potential,
    ResetDistanceMass,
    UnisonSkew,
    WeightedPotential,
    default_potential,
    make_potential,
)
from repro.core.daemon import make_daemon
from repro.core.exceptions import DaemonError
from repro.core.simulator import Simulator
from repro.reset import SDR
from repro.topology import ring
from repro.unison import Unison


def kernel_for(algo, seed=0):
    sim = Simulator(algo, make_daemon("synchronous"), seed=seed,
                    backend="kernel")
    assert sim._kernel is not None
    return sim._kernel


class TestEnabledMoves:
    def test_counts_guard_mask_bits(self):
        kernel = kernel_for(SDR(Unison(ring(6))))
        pot = EnabledMoves()
        total = sum(
            int(np.count_nonzero(mask))
            for mask in kernel.program.guard_masks(kernel.read).values()
            if mask is not None
        )
        assert pot.score(kernel.read, kernel.program) == float(total)


class TestResetDistanceMass:
    def test_zero_without_status_column(self):
        assert ResetDistanceMass().score({}, program=None) == 0.0

    def test_weights_statuses(self):
        kernel = kernel_for(SDR(Unison(ring(4))))
        cols = {name: col.copy() for name, col in kernel.read.items()}
        cols["st"][:] = 0  # all C
        base = ResetDistanceMass().score(cols, kernel.program)
        assert base == 0.0
        cols["st"][0] = 1  # one RB: weight 3
        cols["d"][0] = 0
        assert ResetDistanceMass().score(cols, kernel.program) == 3.0
        cols["st"][1] = 2  # plus one RF: weight 2
        cols["d"][1] = 0
        assert ResetDistanceMass().score(cols, kernel.program) == 5.0

    def test_distance_term_is_normalized(self):
        kernel = kernel_for(SDR(Unison(ring(4))))
        cols = {name: col.copy() for name, col in kernel.read.items()}
        cols["st"][:] = 0
        cols["st"][0] = 1
        cols["d"][0] = 2
        score = ResetDistanceMass().score(cols, kernel.program)
        assert 3.0 < score < 4.0  # 3 + 2/n, never a whole move


class TestUnisonSkew:
    def test_zero_when_clocks_equal(self):
        kernel = kernel_for(SDR(Unison(ring(5))))
        cols = {name: col.copy() for name, col in kernel.read.items()}
        cols["c"][:] = 7
        assert UnisonSkew().score(cols, kernel.program) == 0.0

    def test_counts_unequal_neighbor_pairs(self):
        kernel = kernel_for(SDR(Unison(ring(4))))
        cols = {name: col.copy() for name, col in kernel.read.items()}
        cols["c"][:] = 0
        cols["c"][0] = 5  # two incident ring edges disagree
        assert UnisonSkew().score(cols, kernel.program) == 2.0


class TestWeightedPotential:
    def test_weighted_sum(self):
        kernel = kernel_for(SDR(Unison(ring(4))))
        e, s = EnabledMoves(), UnisonSkew()
        combo = WeightedPotential([(2.0, e), (0.5, s)])
        expected = (2.0 * e.score(kernel.read, kernel.program)
                    + 0.5 * s.score(kernel.read, kernel.program))
        assert combo.score(kernel.read, kernel.program) == expected


class TestDefaultPotential:
    def test_unison_sdr_terms(self):
        kernel = kernel_for(SDR(Unison(ring(4))))
        combo = default_potential(kernel.program)
        names = {p.name for _, p in combo.terms}
        assert "enabled" in names
        assert "reset-mass" in names
        assert "unison-skew" in names
        assert "fga-churn" not in names


class TestRegistry:
    def test_kinds_instantiate(self):
        for kind in POTENTIAL_KINDS:
            assert isinstance(make_potential(kind), Potential)

    def test_unknown_kind(self):
        with pytest.raises(DaemonError):
            make_potential("nope")
