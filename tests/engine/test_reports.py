"""Aggregating stored records into tables and figures."""

import pytest

from repro.engine import (
    Campaign,
    aggregate,
    run_campaign,
    scaling_figure,
    summary_table,
    trials_from_records,
)
from repro.harness.runner import Trial


@pytest.fixture(scope="module")
def records():
    campaign = Campaign(
        "reports-test", seed=1, algorithms=("unison", "boulinier"),
        topologies=("ring",), sizes=(5, 7), scenarios=("gradient",), trials=2,
    )
    return run_campaign(campaign, workers=0).records


class TestAggregate:
    def test_mean_and_max_per_group(self, records):
        means = aggregate(records, ("algorithm", "n"), "moves", "mean")
        worst = aggregate(records, ("algorithm", "n"), "moves", "max")
        assert set(means) == {("unison", 5), ("unison", 7),
                              ("boulinier", 5), ("boulinier", 7)}
        assert all(worst[k] >= means[k] for k in means)

    def test_unknown_aggregate_rejected(self, records):
        with pytest.raises(ValueError, match="unknown aggregate"):
            aggregate(records, ("n",), "moves", "median-ish")

    def test_unknown_field_rejected(self, records):
        with pytest.raises(KeyError):
            aggregate(records, ("n",), "no_such_field")


class TestSummaryTable:
    def test_one_row_per_cell_with_trial_counts(self, records):
        table = summary_table(records, group_by=("algorithm", "n"))
        assert len(table.rows) == 4
        rendered = table.render()
        assert "unison" in rendered and "boulinier" in rendered
        assert table.columns[2] == "trials"
        assert all(row[2] == "2" for row in table.rows)


class TestScalingFigure:
    def test_one_series_per_algorithm(self, records):
        fig = scaling_figure(records, x="n", y="moves", series="algorithm")
        assert set(fig.series) == {"unison", "boulinier"}
        assert all(len(pts) == 2 for pts in fig.series.values())
        assert "moves" in fig.render()


class TestTrialReconstruction:
    def test_records_rebuild_into_trials(self, records):
        trials = trials_from_records(records)
        assert len(trials) == len(records)
        assert all(isinstance(t, Trial) for t in trials)
        assert trials[0].moves == records[0]["result"]["moves"]
        assert trials[0].metrics.moves == trials[0].moves
