"""The supervised executor: crashes, hangs, poison trials, quarantine.

``FailurePolicy`` switches ``run_specs``/``run_campaign`` to one
short-lived supervised OS process per in-flight unit.  These tests drive
it with the deterministic chaos hook (``REPRO_CHAOS`` — real SIGKILLs
and real hangs in real worker processes) and with genuinely poisonous
specs, and assert the graceful-degradation contract:

* the grid always completes — siblings of a failing replicate land
  exactly once, byte-identical to an unsupervised run;
* transient failures are retried (and recovered runs carry no
  failures);
* persistent failures walk the batch → serial → dict ladder and end in
  quarantine: a ``trial_failed`` event with ``reason`` and ``retries``,
  an ``outcome.failures`` entry, and the landed records excluding the
  quarantined keys;
* deterministic failures (budget exhaustion) quarantine immediately.
"""

import json

import pytest

from repro.engine import Campaign, FailurePolicy, run_campaign, run_specs
from repro.telemetry.events import MemoryEventSink

CAMPAIGN = Campaign(
    "policy-test", seed=7, algorithms=("unison", "fga"),
    topologies=("ring",), sizes=(6,), scenarios=("random",),
    daemons=("central",), trials=2,
)

POLICY = FailurePolicy(trial_timeout=60, max_retries=2, backoff=0.05)


def record_bytes(records):
    return json.dumps(records, sort_keys=True, default=str)


def chaos(monkeypatch, tmp_path, directives):
    monkeypatch.setenv("REPRO_CHAOS", directives)
    monkeypatch.setenv("REPRO_CHAOS_DIR", str(tmp_path / "chaos"))
    (tmp_path / "chaos").mkdir(exist_ok=True)


class TestPolicyValidation:
    def test_rejects_nonpositive_timeout_and_negative_retries(self):
        with pytest.raises(ValueError):
            FailurePolicy(trial_timeout=0)
        with pytest.raises(ValueError):
            FailurePolicy(max_retries=-1)
        with pytest.raises(ValueError):
            FailurePolicy(backoff=-0.1)


class TestSupervisedHappyPath:
    def test_records_identical_to_unsupervised(self):
        plain = run_specs(CAMPAIGN.specs(), CAMPAIGN.seed)
        failures = []
        supervised = run_specs(
            CAMPAIGN.specs(), CAMPAIGN.seed, workers=2,
            policy=POLICY, failures=failures,
        )
        assert failures == []
        assert record_bytes(supervised) == record_bytes(plain)


class TestRetriesRecoverTransientFailures:
    def test_single_crash_is_retried_and_lands(self, monkeypatch, tmp_path):
        chaos(monkeypatch, tmp_path, "crash:algorithm=unison:1")
        plain = run_specs(CAMPAIGN.specs(), CAMPAIGN.seed)
        failures = []
        supervised = run_specs(
            CAMPAIGN.specs(), CAMPAIGN.seed, workers=2,
            policy=POLICY, failures=failures,
        )
        assert failures == []
        assert record_bytes(supervised) == record_bytes(plain)

    def test_hung_worker_hits_deadline_then_lands(self, monkeypatch, tmp_path):
        chaos(monkeypatch, tmp_path, "timeout:algorithm=fga:1")
        plain = run_specs(CAMPAIGN.specs(), CAMPAIGN.seed)
        failures = []
        supervised = run_specs(
            CAMPAIGN.specs(), CAMPAIGN.seed, workers=2,
            policy=FailurePolicy(trial_timeout=1.5, max_retries=1,
                                 backoff=0.05),
            failures=failures,
        )
        assert failures == []
        assert record_bytes(supervised) == record_bytes(plain)


class TestQuarantine:
    def test_persistent_crash_quarantines_and_siblings_land(
        self, monkeypatch, tmp_path
    ):
        chaos(monkeypatch, tmp_path, "crash:algorithm=unison")
        sink = MemoryEventSink()
        outcome = run_campaign(
            CAMPAIGN, workers=2, events=sink,
            policy=FailurePolicy(trial_timeout=60, max_retries=0,
                                 backoff=0.05, degrade=False),
        )
        assert len(outcome.failures) == 2
        for failure in outcome.failures:
            assert "algorithm=unison" in failure["key"]
            assert failure["reason"] == "crash"
            assert failure["retries"] == 0
        landed = {r["spec"]["algorithm"] for r in outcome.records}
        assert landed == {"fga"}
        assert len(outcome.records) == 2
        failed_events = [e for e in sink.events if e["event"] == "trial_failed"]
        assert len(failed_events) == 2
        for event in failed_events:
            assert event["reason"] == "crash"
            assert event["retries"] == 0
            assert "algorithm=unison" in event["key"]
        # The campaign still finishes cleanly.
        assert sink.events[-1]["event"] == "campaign_finished"

    def test_poison_spec_quarantines_with_reason_error(self):
        from repro.engine.campaign import TrialSpec

        good = CAMPAIGN.specs()[0]
        poison = TrialSpec(
            algorithm="unison", topology="ring", n=6,
            scenario="no-such-scenario", daemon="central",
            trial=0, params=good.params,
        )
        failures = []
        records = run_specs(
            [good, poison], CAMPAIGN.seed, workers=2,
            policy=FailurePolicy(trial_timeout=60, max_retries=1,
                                 backoff=0.05),
            failures=failures,
        )
        assert len(records) == 1 and records[0]["key"] == good.key()
        assert len(failures) == 1
        assert failures[0]["key"] == poison.key()
        assert failures[0]["reason"] == "error"
        assert failures[0]["retries"] >= 1

    def test_budget_exhaustion_quarantines_immediately(self):
        tight = Campaign(
            "policy-budget", seed=7, algorithms=("unison",),
            topologies=("ring",), sizes=(16,), scenarios=("gradient",),
            daemons=("central",), trials=1, params=(("max_steps", 5),),
        )
        failures = []
        records = run_specs(
            tight.specs(), tight.seed, workers=2,
            policy=POLICY, failures=failures,
        )
        assert records == []
        assert len(failures) == 1
        assert failures[0]["reason"] == "budget"
        assert failures[0]["retries"] == 0  # deterministic: never retried


class TestDegradationLadder:
    def test_batch_crash_degrades_to_serial_and_completes(
        self, monkeypatch, tmp_path
    ):
        # Trip every batch attempt (retries included) but let single
        # trials through: the marker budget covers exactly the batch
        # tier's attempts for the unison cell.
        policy = FailurePolicy(trial_timeout=60, max_retries=1, backoff=0.05)
        chaos(monkeypatch, tmp_path,
              f"crash:algorithm=unison:{policy.max_retries + 1}")
        plain = run_specs(CAMPAIGN.specs(), CAMPAIGN.seed)
        failures = []
        supervised = run_specs(
            CAMPAIGN.specs(), CAMPAIGN.seed, workers=2,
            policy=policy, failures=failures,
        )
        assert failures == []
        assert record_bytes(supervised) == record_bytes(plain)
