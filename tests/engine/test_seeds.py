"""Seed derivation: deterministic, order-independent, well-spread."""

import random

from repro.engine import Campaign, derive_seed, spread_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(0, "a") == derive_seed(0, "a")
        assert derive_seed(123, "x|y") == derive_seed(123, "x|y")

    def test_distinct_keys_distinct_seeds(self):
        seeds = {derive_seed(0, f"trial={i}") for i in range(500)}
        assert len(seeds) == 500

    def test_distinct_campaign_seeds_decorrelate(self):
        keys = [f"trial={i}" for i in range(100)]
        a = [derive_seed(1, k) for k in keys]
        b = [derive_seed(2, k) for k in keys]
        assert all(x != y for x, y in zip(a, b))

    def test_fits_in_signed_int64(self):
        for i in range(200):
            assert 0 <= derive_seed(i, "k") < 2**63

    def test_streams_are_independent(self):
        base = derive_seed(0, "k")
        assert spread_seed(0, "k", 0) != spread_seed(0, "k", 1)
        assert spread_seed(0, "k", 0) != base


class TestOrderIndependence:
    def test_seed_assignment_ignores_expansion_order(self):
        campaign = Campaign(
            "order", seed=5, algorithms=("unison",),
            topologies=("ring", "random"), sizes=(6, 8),
            scenarios=("random", "gradient"), trials=3,
        )
        specs = campaign.specs()
        expected = {spec.key(): campaign.seed_for(spec) for spec in specs}

        shuffled = list(specs)
        random.Random(99).shuffle(shuffled)
        assert {s.key(): campaign.seed_for(s) for s in shuffled} == expected
