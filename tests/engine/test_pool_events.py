"""Executor telemetry: lifecycle events, exactly-once progress, phase absorb."""

import multiprocessing

import pytest

from repro.core.exceptions import NotStabilized
from repro.engine import Campaign, ResultStore, run_campaign, run_specs
from repro.telemetry import phases
from repro.telemetry.events import MemoryEventSink

CAMPAIGN = Campaign(
    "events-test", seed=7, algorithms=("unison",), topologies=("ring",),
    sizes=(5, 7), scenarios=("random",), trials=3,
)

FAILING = Campaign(
    "events-fail", seed=7, algorithms=("unison",), topologies=("ring",),
    sizes=(16,), scenarios=("gradient",), daemons=("central",), trials=2,
    params=(("max_steps", 5),),
)


class TestProgressExactlyOnce:
    @pytest.mark.parametrize("batch", [True, False])
    def test_progress_fires_once_per_trial_in_order(self, batch):
        calls = []
        run_specs(
            CAMPAIGN.specs(), CAMPAIGN.seed, batch=batch,
            progress=lambda done, total, record: calls.append(
                (done, total, record["key"])
            ),
        )
        assert [done for done, _, _ in calls] == list(range(1, 7))
        assert all(total == 6 for _, total, _ in calls)
        assert len({key for _, _, key in calls}) == 6

    def test_duplicate_specs_land_once(self, tmp_path):
        spec = CAMPAIGN.specs()[0]
        store = ResultStore(tmp_path / "r.jsonl")
        calls = []
        records = run_specs(
            [spec, spec], CAMPAIGN.seed, store=store, batch=False,
            progress=lambda done, total, record: calls.append(done),
        )
        assert calls == [1]  # second landing is a no-op
        assert len(store.load(strict=True)) == 1
        assert len(records) == 2 and records[0] == records[1]


class TestLifecycleEvents:
    def test_successful_campaign_event_sequence(self):
        sink = MemoryEventSink()
        outcome = run_campaign(CAMPAIGN, events=sink)
        kinds = [event["event"] for event in sink.events]
        assert kinds[0] == "campaign_started"
        assert kinds[-1] == "campaign_finished"
        assert kinds.count("trial_finished") == outcome.total == 6
        assert kinds.count("cell_composed") == 2  # one per grid cell

        started = sink.events[0]
        assert started["total"] == 6 and started["pending"] == 6
        finished = sink.events[-1]
        assert finished["done"] == 6
        assert finished["elapsed_s"] >= 0
        for event in sink.events:
            if event["event"] == "trial_finished":
                assert event["status"] == "ok"
                assert event["unit"] == "batch"
                assert event["fallback"] is False
                assert event["steps"] >= 0

    def test_resume_reports_pending_not_total(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        run_campaign(CAMPAIGN, store=store)
        sink = MemoryEventSink()
        run_campaign(CAMPAIGN, store=store, resume=True, events=sink)
        assert sink.events[0]["total"] == 6
        assert sink.events[0]["pending"] == 0

    def test_heartbeats_carry_throughput(self):
        sink = MemoryEventSink()
        run_specs(
            CAMPAIGN.specs(), CAMPAIGN.seed, events=sink, heartbeat_every=0.0,
        )
        beats = [e for e in sink.events if e["event"] == "heartbeat"]
        assert beats  # throttle at zero: one per landed trial
        for beat in beats:
            assert beat["total"] == 6
            assert beat["elapsed_s"] >= 0
            assert beat["trials_per_s"] >= 0

    def test_failed_batch_emits_trial_failed_and_raises(self):
        sink = MemoryEventSink()
        with pytest.raises(NotStabilized):
            run_specs(FAILING.specs(), FAILING.seed, events=sink)
        failed = [e for e in sink.events if e["event"] == "trial_failed"]
        assert {e["key"] for e in failed} == FAILING.keys()
        assert all("5 steps" in e["error"] for e in failed)

    def test_failed_single_trial_emits_trial_failed(self):
        sink = MemoryEventSink()
        spec = FAILING.specs()[0]
        with pytest.raises(NotStabilized):
            run_specs([spec], FAILING.seed, events=sink, batch=False)
        assert [e["key"] for e in sink.events
                if e["event"] == "trial_failed"] == [spec.key()]

    def test_records_identical_with_and_without_events(self):
        plain = run_specs(CAMPAIGN.specs(), CAMPAIGN.seed)
        observed = run_specs(
            CAMPAIGN.specs(), CAMPAIGN.seed, events=MemoryEventSink(),
            heartbeat_every=0.0,
        )
        assert plain == observed


class TestWorkerPhaseAbsorb:
    def test_parallel_workers_fold_phase_timings_into_parent(self):
        if multiprocessing.get_start_method() != "fork":
            pytest.skip("worker collectors are inherited via fork")
        with phases.recording(stride=4) as stats:
            run_specs(CAMPAIGN.specs(), CAMPAIGN.seed, workers=2)
        snap = stats.snapshot()
        assert snap["total_est_s"] > 0
        assert snap["phases"]["guard"]["samples"] > 0

    def test_serial_in_process_does_not_double_count(self):
        with phases.recording(stride=1) as stats:
            run_specs(CAMPAIGN.specs()[:3], CAMPAIGN.seed, workers=0)
        direct = stats.snapshot()
        # Re-running the same work must roughly double, not quadruple,
        # the accumulated samples (absorb skipped in-process).
        with phases.recording(stride=1) as twice:
            run_specs(CAMPAIGN.specs()[:3], CAMPAIGN.seed, workers=0)
            run_specs(CAMPAIGN.specs()[:3], CAMPAIGN.seed, workers=0)
        doubled = twice.snapshot()
        assert doubled["phases"]["guard"]["samples"] == \
            2 * direct["phases"]["guard"]["samples"]
