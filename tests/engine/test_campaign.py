"""Campaign grids and trial descriptors."""

import pytest

from repro.engine import Campaign, TrialSpec


class TestTrialSpec:
    def test_key_is_canonical_and_unique_per_field(self):
        a = TrialSpec("unison", "ring", 8, "random", "central", 0)
        b = TrialSpec("unison", "ring", 8, "random", "central", 1)
        assert a.key() != b.key()
        assert a.key() == TrialSpec("unison", "ring", 8, "random", "central", 0).key()

    def test_params_are_sorted_into_the_key(self):
        a = TrialSpec("unison", "ring", 8, params=(("b", 2), ("a", 1)))
        b = TrialSpec("unison", "ring", 8, params=(("a", 1), ("b", 2)))
        assert a.key() == b.key()
        assert "params=a:1,b:2" in a.key()

    def test_params_accept_mappings(self):
        spec = TrialSpec("unison", "ring", 8, params={"period": 12})
        assert spec.kwargs() == {"period": 12}

    def test_non_scalar_params_rejected(self):
        with pytest.raises(TypeError):
            TrialSpec("unison", "ring", 8, params={"bad": [1, 2]})

    def test_dict_round_trip(self):
        spec = TrialSpec("fga", "random", 12, "hollow", "synchronous", 4,
                         topology_seed=3, params={"instance": "dominating-set"})
        assert TrialSpec.from_dict(spec.to_dict()) == spec

    def test_specs_are_hashable_and_picklable(self):
        import pickle

        spec = TrialSpec("unison", "ring", 8, params={"period": 12})
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert len({spec, spec}) == 1


class TestCampaign:
    def test_grid_expansion_size(self):
        campaign = Campaign(
            "grid", seed=0, algorithms=("unison", "boulinier"),
            topologies=("ring", "random"), sizes=(6, 8, 10),
            scenarios=("random", "gradient"), daemons=("distributed-random",),
            trials=4,
        )
        specs = campaign.specs()
        assert campaign.size == 2 * 2 * 3 * 2 * 1 * 4 == len(specs)
        assert len({s.key() for s in specs}) == len(specs)

    def test_scalar_axes_are_promoted(self):
        campaign = Campaign("scalar", seed=0, algorithms="unison",
                            topologies="ring", sizes=8)
        assert campaign.algorithms == ("unison",)
        assert campaign.sizes == (8,)

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            Campaign("bad", seed=0, algorithms=("nope",))

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            Campaign("bad", seed=0, sizes=())

    def test_zero_trials_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            Campaign("bad", seed=0, trials=0)

    def test_campaign_params_reach_every_spec(self):
        campaign = Campaign("params", seed=0, sizes=(6,), params={"period": 20})
        assert all(s.kwargs() == {"period": 20} for s in campaign.iter_specs())
