"""The JSONL result store: durability, schema checks, queries."""

import json

import pytest

from repro.engine import SCHEMA_VERSION, ResultStore, StoreError


def record(key: str, n: int = 8, moves: int = 10) -> dict:
    return {
        "schema": SCHEMA_VERSION,
        "campaign": "t",
        "campaign_seed": 0,
        "key": key,
        "seed": 1,
        "spec": {"algorithm": "unison", "n": n},
        "result": {"moves": moves, "rounds": 3},
    }


class TestAppendLoad:
    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        assert not store.exists()
        store.append(record("a"))
        store.append_many([record("b"), record("c")])
        assert store.load() == [record("a"), record("b"), record("c")]
        assert store.keys() == {"a", "b", "c"}
        assert len(store) == 3

    def test_missing_file_loads_empty(self, tmp_path):
        assert ResultStore(tmp_path / "none.jsonl").load() == []

    def test_schema_stamped_automatically(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        bare = record("a")
        bare.pop("schema")
        store.append(bare)
        assert store.load()[0]["schema"] == SCHEMA_VERSION


class TestCrashTolerance:
    def test_truncated_tail_is_tolerated(self, tmp_path):
        path = tmp_path / "r.jsonl"
        store = ResultStore(path)
        store.append(record("a"))
        store.append(record("b"))
        # Simulate a crash mid-append: chop the last line in half.
        text = path.read_text()
        path.write_text(text[: len(text) - 25])
        assert store.keys() == {"a"}

    def test_truncated_tail_warns_with_location(self, tmp_path):
        path = tmp_path / "r.jsonl"
        store = ResultStore(path)
        store.append(record("a"))
        store.append(record("b"))
        text = path.read_text()
        path.write_text(text[: len(text) - 25])
        with pytest.warns(RuntimeWarning, match=r"r\.jsonl:2.*corrupt"):
            assert [r["key"] for r in store.load()] == ["a"]

    def test_torn_write_resume_rebuilds_byte_identically(self, tmp_path):
        """A crash-torn final line is skipped; resume re-runs that trial
        and the healed store equals an uninterrupted run byte for byte."""
        from repro.engine import Campaign, run_campaign

        campaign = Campaign(
            "torn", seed=11, algorithms=("unison",), topologies=("ring",),
            sizes=(5,), scenarios=("random",), trials=3,
        )
        clean_path = tmp_path / "clean.jsonl"
        run_campaign(campaign, store=ResultStore(clean_path), resume=True)
        reference = clean_path.read_bytes()

        torn_path = tmp_path / "torn.jsonl"
        torn_path.write_bytes(reference[:-30])  # crash mid-final-append
        store = ResultStore(torn_path)
        with pytest.warns(RuntimeWarning, match="corrupt"):
            outcome = run_campaign(campaign, store=store, resume=True)
        assert len(outcome.records) == campaign.size
        assert outcome.records == ResultStore(clean_path).load(strict=True)
        # Appends heal the torn tail first, so the resumed store is a
        # byte-for-byte match of the uninterrupted run.
        assert torn_path.read_bytes() == reference

    def test_strict_mode_raises_on_corruption(self, tmp_path):
        path = tmp_path / "r.jsonl"
        ResultStore(path).append(record("a"))
        path.write_text(path.read_text() + "{broken\n")
        with pytest.raises(StoreError, match="corrupt"):
            ResultStore(path).load(strict=True)

    def test_newer_schema_is_refused(self, tmp_path):
        path = tmp_path / "r.jsonl"
        newer = record("a")
        newer["schema"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(newer) + "\n")
        with pytest.raises(StoreError, match="newer"):
            ResultStore(path).load()

    def test_compact_drops_corrupt_tail_and_duplicates(self, tmp_path):
        path = tmp_path / "r.jsonl"
        store = ResultStore(path)
        store.append(record("a", moves=1))
        store.append(record("a", moves=2))  # rewrite of the same trial
        path.write_text(path.read_text() + '{"half')
        store.compact()
        records = store.load(strict=True)
        assert [r["key"] for r in records] == ["a"]
        assert records[0]["result"]["moves"] == 2


class TestRewriteAndQuery:
    def test_rewrite_is_total_and_atomic(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        store.append(record("a"))
        store.rewrite([record("x"), record("y")])
        assert store.keys() == {"x", "y"}
        assert not list(tmp_path.glob("*.tmp"))

    def test_query_reaches_spec_and_result_fields(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        store.append(record("a", n=8, moves=5))
        store.append(record("b", n=12, moves=50))
        assert [r["key"] for r in store.query(n=12)] == ["b"]
        assert [r["key"] for r in store.query(algorithm="unison", moves=5)] == ["a"]
        assert store.query(predicate=lambda r: r["result"]["moves"] > 10)[0]["key"] == "b"


class TestTrialSerialization:
    def test_trial_round_trip(self):
        from repro.engine import trial_from_record, trial_to_dict
        from repro.engine.campaign import TrialSpec
        from repro.harness.runner import run_trial

        trial = run_trial(TrialSpec("fga", "random", 8, "random"), seed=42)
        data = trial_to_dict(trial)
        json.dumps(data)  # JSON-safe, including the frozenset alliance
        rebuilt = trial_from_record({"result": data})
        assert rebuilt == trial
