"""Executor and resume semantics: parallel == serial, partial stores heal."""

import pytest

from repro.engine import (
    Campaign,
    ResultStore,
    execute_trial,
    missing_specs,
    run_campaign,
    run_specs,
)

#: Small but non-trivial grid: 2 topologies x 2 sizes x 2 trials = 8 trials.
CAMPAIGN = Campaign(
    "engine-test", seed=7, algorithms=("unison",),
    topologies=("ring", "random"), sizes=(5, 7),
    scenarios=("random",), trials=2,
)


class TestExecuteTrial:
    def test_record_shape(self):
        spec = CAMPAIGN.specs()[0]
        record = execute_trial(spec, CAMPAIGN.seed, CAMPAIGN.name)
        assert record["key"] == spec.key()
        assert record["campaign_seed"] == CAMPAIGN.seed
        assert record["seed"] == CAMPAIGN.seed_for(spec)
        assert record["spec"] == spec.to_dict()
        assert record["result"]["moves"] >= 0
        assert record["result"]["n"] == spec.n

    def test_repeated_execution_is_identical(self):
        spec = CAMPAIGN.specs()[-1]
        assert execute_trial(spec, 7) == execute_trial(spec, 7)


class TestParallelEqualsSerial:
    def test_two_workers_match_serial_records_exactly(self):
        serial = run_specs(CAMPAIGN.specs(), CAMPAIGN.seed, workers=0)
        parallel = run_specs(CAMPAIGN.specs(), CAMPAIGN.seed, workers=2)
        assert serial == parallel  # same records, same (grid) order

    def test_records_are_independent_of_submission_order(self):
        specs = CAMPAIGN.specs()
        forward = run_specs(specs, CAMPAIGN.seed, workers=0)
        backward = run_specs(list(reversed(specs)), CAMPAIGN.seed, workers=0)
        assert sorted(forward, key=lambda r: r["key"]) == \
            sorted(backward, key=lambda r: r["key"])

    def test_progress_callback_sees_every_trial(self):
        seen = []
        run_specs(
            CAMPAIGN.specs(), CAMPAIGN.seed, workers=0,
            progress=lambda done, total, record: seen.append((done, total)),
        )
        assert seen == [(i, CAMPAIGN.size) for i in range(1, CAMPAIGN.size + 1)]


class TestResume:
    def test_full_run_then_resume_is_a_no_op(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        first = run_campaign(CAMPAIGN, store=store, workers=0)
        assert (first.ran, first.skipped) == (8, 0)
        again = run_campaign(CAMPAIGN, store=store, workers=0, resume=True)
        assert (again.ran, again.skipped) == (0, 8)
        assert again.records == first.records

    def test_resume_runs_only_missing_trials(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        full = run_campaign(CAMPAIGN, store=store, workers=0)

        # Truncate the store to 3 of the 8 records, as if the run was killed.
        store.rewrite(full.records[:3])
        assert len(missing_specs(CAMPAIGN, store)) == 5

        resumed = run_campaign(CAMPAIGN, store=store, workers=0, resume=True)
        assert (resumed.ran, resumed.skipped) == (5, 3)
        assert resumed.records == full.records
        assert store.keys() == CAMPAIGN.keys()

    def test_resume_ignores_records_from_other_campaign_seeds(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        run_campaign(CAMPAIGN, store=store, workers=0)

        other = Campaign(
            CAMPAIGN.name, seed=CAMPAIGN.seed + 1,
            algorithms=CAMPAIGN.algorithms, topologies=CAMPAIGN.topologies,
            sizes=CAMPAIGN.sizes, scenarios=CAMPAIGN.scenarios,
            trials=CAMPAIGN.trials,
        )
        # Same grid keys, different master seed: nothing may be reused.
        assert len(missing_specs(other, store)) == other.size

    def test_without_resume_flag_everything_reruns(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        run_campaign(CAMPAIGN, store=store, workers=0)
        rerun = run_campaign(CAMPAIGN, store=store, workers=0, resume=False)
        assert rerun.ran == CAMPAIGN.size


class TestStoreEquivalenceAcrossWorkerCounts:
    @pytest.mark.parametrize("workers", [0, 2])
    def test_store_contents_equal_after_grid_order_rewrite(self, tmp_path, workers):
        store = ResultStore(tmp_path / f"w{workers}.jsonl")
        outcome = run_campaign(CAMPAIGN, store=store, workers=workers)
        store.rewrite(outcome.records)
        # Compare against a fresh in-memory serial run: byte-level identity.
        reference = run_specs(CAMPAIGN.specs(), CAMPAIGN.seed,
                              campaign=CAMPAIGN.name, workers=0)
        assert store.load(strict=True) == reference
