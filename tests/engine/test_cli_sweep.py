"""The ``python -m repro.harness sweep`` subcommand (acceptance criteria)."""

import pytest

from repro.engine import ResultStore
from repro.harness import __main__ as cli

GRID = ["--grid", "algorithm=unison", "--grid", "topology=ring",
        "--grid", "n=5,7", "--grid", "scenario=random",
        "--trials", "2", "--seed", "4", "--quiet"]


def sweep(*extra: str) -> int:
    return cli.main(["sweep", *GRID, *extra])


class TestSweepCli:
    def test_serial_and_parallel_stores_are_byte_identical(self, tmp_path):
        serial, parallel = tmp_path / "w0.jsonl", tmp_path / "w2.jsonl"
        assert sweep("--workers", "0", "--out", str(serial)) == 0
        assert sweep("--workers", "2", "--out", str(parallel)) == 0
        assert serial.read_bytes() == parallel.read_bytes()
        assert len(ResultStore(serial).load(strict=True)) == 4

    def test_resume_runs_only_missing_trials(self, tmp_path, capsys):
        out = tmp_path / "r.jsonl"
        assert sweep("--workers", "0", "--out", str(out)) == 0
        full = out.read_bytes()

        # Keep only the first record, as if the sweep was killed early.
        lines = out.read_text().splitlines(keepends=True)
        out.write_text(lines[0])
        capsys.readouterr()

        assert sweep("--workers", "0", "--out", str(out), "--resume") == 0
        assert "3 trial(s) run, 1 already stored" in capsys.readouterr().out
        assert out.read_bytes() == full

    def test_summary_table_is_printed(self, capsys):
        assert sweep("--workers", "0") == 0
        out = capsys.readouterr().out
        assert "campaign 'sweep'" in out
        assert "moves (mean)" in out
        assert "4 trial(s) run" in out

    def test_unknown_grid_axis_is_an_error(self, capsys):
        assert cli.main(["sweep", "--grid", "color=red"]) == 2
        assert "unknown grid axis" in capsys.readouterr().out

    def test_malformed_grid_entry_is_an_error(self, capsys):
        assert cli.main(["sweep", "--grid", "topology"]) == 2
        assert "AXIS=V1" in capsys.readouterr().out

    def test_resume_without_out_is_an_error(self, capsys):
        assert cli.main(["sweep", "--resume"]) == 2
        assert "--resume needs --out" in capsys.readouterr().out

    def test_unknown_topology_fails_before_running(self, capsys):
        assert cli.main(["sweep", "--grid", "topology=mobius"]) == 2
        assert "unknown topology" in capsys.readouterr().out

    def test_mid_run_trial_error_is_reported_cleanly(self, capsys):
        code = cli.main(["sweep", "--grid", "algorithm=boulinier",
                         "--grid", "scenario=hollow", "--grid", "n=5", "--quiet"])
        assert code == 1
        assert "unknown boulinier scenario" in capsys.readouterr().out

    def test_unknown_daemon_fails_before_running(self, capsys):
        assert cli.main(["sweep", "--grid", "daemon=centrall"]) == 2
        assert "unknown daemon" in capsys.readouterr().out

    def test_repeated_grid_flags_for_one_axis_merge(self, capsys):
        assert cli.main(["sweep", "--grid", "n=5", "--grid", "n=7,5",
                         "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "2 trial(s) run" in out  # n=5 and n=7, deduplicated

    def test_malformed_param_is_an_error(self, capsys):
        assert cli.main(["sweep", "--param", "period"]) == 2
        assert "KEY=VALUE" in capsys.readouterr().out

    def test_duplicate_params_last_wins(self, capsys):
        assert cli.main(["sweep", "--grid", "n=5", "--param", "period=9",
                         "--param", "period=40", "--quiet"]) == 0

    def test_mid_file_corruption_skips_compaction_keeps_data(self, tmp_path, capsys):
        out = tmp_path / "c.jsonl"
        assert sweep("--workers", "0", "--out", str(out)) == 0
        lines = out.read_text().splitlines(keepends=True)
        # Corrupt a *middle* line: later records must survive the next sweep.
        out.write_text(lines[0] + '{"half\n' + "".join(lines[2:]))
        capsys.readouterr()
        assert cli.main(["sweep", "--grid", "algorithm=unison",
                         "--grid", "n=9", "--seed", "4",
                         "--out", str(out), "--quiet"]) == 0
        assert "skipping grid-order compaction" in capsys.readouterr().out
        text = out.read_text()
        assert '{"half' in text  # file left append-only, nothing dropped
        assert "n=9" in text.splitlines()[-1]

    def test_param_values_reach_the_trials(self, tmp_path):
        out = tmp_path / "p.jsonl"
        assert cli.main([
            "sweep", "--grid", "algorithm=unison", "--grid", "n=5",
            "--param", "period=40", "--out", str(out), "--quiet",
        ]) == 0
        record = ResultStore(out).load(strict=True)[0]
        assert record["spec"]["params"] == {"period": 40}


class TestExperimentsThroughEngine:
    """The refactored experiments accept workers/store and stay correct."""

    @pytest.mark.parametrize("workers", [0, 2])
    def test_t5_parallel_matches_serial(self, workers, tmp_path):
        from repro.harness.experiments import experiment_t5

        store = ResultStore(tmp_path / "t5.jsonl")
        result = experiment_t5(sizes=(6, 8), trials=2, workers=workers, store=store)
        assert result.ok
        assert len(store.keys()) == 2 * 2 * 2  # algorithms x sizes x trials

    def test_t3_t4_resumes_from_store(self, tmp_path):
        from repro.harness.experiments import experiment_t3_t4

        store = ResultStore(tmp_path / "t34.jsonl")
        kwargs = dict(sizes=(6,), topologies=("ring",),
                      scenarios=("random",), trials=2, store=store)
        first = experiment_t3_t4(**kwargs)
        before = store.keys()
        second = experiment_t3_t4(**kwargs)  # fully resumed, nothing re-run
        assert store.keys() == before
        assert first.table.rows == second.table.rows
        assert first.ok and second.ok

    def test_probe_tier_is_an_execution_option(self, tmp_path):
        """--probe decode measures identically to the fused default
        (and deduplicates against it on resume)."""
        fused, decoded = tmp_path / "pf.jsonl", tmp_path / "pd.jsonl"
        assert sweep("--workers", "0", "--out", str(fused)) == 0
        assert sweep("--workers", "0", "--out", str(decoded),
                     "--probe", "decode") == 0
        fused_records = ResultStore(fused).load(strict=True)
        decoded_records = ResultStore(decoded).load(strict=True)
        # Same keys (probe is an execution option), same measurements.
        assert [r["key"] for r in fused_records] == [
            r["key"] for r in decoded_records
        ]
        assert [r["result"] for r in fused_records] == [
            r["result"] for r in decoded_records
        ]

        # Execution option: a probe=decode rerun resumes from the fused
        # store without re-running anything.
        assert sweep("--workers", "0", "--out", str(fused),
                     "--probe", "decode", "--resume") == 0
        records = ResultStore(fused).load(strict=True)
        assert len(records) == 4

    def test_probe_decode_spec_params_disable_batching(self):
        from repro.engine.campaign import TrialSpec
        from repro.harness.runner import can_batch

        fused_spec = TrialSpec(algorithm="unison", topology="ring", n=8, trial=0)
        decode_spec = TrialSpec(
            algorithm="unison", topology="ring", n=8, trial=0,
            params=(("probe", "decode"),),
        )
        assert fused_spec.key() == decode_spec.key()  # execution option
        assert can_batch(fused_spec) and not can_batch(decode_spec)
