"""End-to-end scenarios exercising the whole stack together."""

from random import Random

import pytest

from repro.alliance import FGA, dominating_set, is_one_minimal
from repro.analysis import bounds, collect_metrics
from repro.core import (
    DistributedRandomDaemon,
    Simulator,
    Trace,
    WeaklyFairDaemon,
    measure_stabilization,
)
from repro.faults import FaultPlan
from repro.reset import SDR, RequirementObserver
from repro.topology import by_name, grid, ring
from repro.unison import Unison, safety_holds


class TestFaultRecoveryLifecycle:
    def test_unison_survives_repeated_fault_bursts(self):
        """Stabilize, inject transient faults, re-stabilize — three times.

        This is the operational story of self-stabilization: every burst is
        recovered within the theorem bounds, from *whatever* state the
        faults leave behind.
        """
        net = grid(3, 3)
        sdr = SDR(Unison(net))
        plan = FaultPlan(3)
        rng = Random(42)
        cfg = sdr.random_configuration(rng)
        for burst in range(3):
            sim = Simulator(sdr, DistributedRandomDaemon(0.5), config=cfg, seed=burst)
            detector, _ = measure_stabilization(sim, sdr.is_normal, max_steps=500_000)
            assert detector.rounds <= bounds.sdr_rounds_bound(net.n)
            sim.run(max_steps=50)  # normal operation
            assert safety_holds(net, sim.cfg, sdr.input.period)
            cfg, victims = plan.apply(sdr, sim.cfg, rng)
            assert len(victims) == 3

    def test_alliance_survives_membership_corruption(self):
        net = by_name("random", 10, seed=2)
        f, g = dominating_set(net)
        sdr = SDR(FGA(net, f, g))
        rng = Random(7)
        cfg = sdr.random_configuration(rng)
        for burst in range(2):
            sim = Simulator(sdr, DistributedRandomDaemon(0.5), config=cfg, seed=burst)
            sim.run_to_termination(max_steps=1_000_000)
            assert is_one_minimal(net, sdr.input.alliance(sim.cfg), f, g)
            cfg, _ = FaultPlan(2, variables=("col", "scr")).apply(sdr, sim.cfg, rng)


class TestFullStackWithObservers:
    def test_everything_wired_together(self):
        """Requirement observer + trace + detector + metrics on one run."""
        net = ring(8)
        sdr = SDR(Unison(net))
        trace = Trace(record_configurations=True)
        observer = RequirementObserver(sdr)
        sim = Simulator(
            sdr,
            WeaklyFairDaemon(p=0.4, patience=6),
            config=sdr.random_configuration(Random(3)),
            seed=3,
            trace=trace,
            observers=[observer],
            paranoid=True,
        )
        detector, _ = measure_stabilization(sim, sdr.is_normal, max_steps=200_000)
        metrics = collect_metrics(sim)
        assert metrics.moves == sum(metrics.moves_per_process)
        assert metrics.sdr_moves + metrics.input_moves == metrics.moves
        assert len(trace) == metrics.steps
        assert detector.rounds <= bounds.sdr_rounds_bound(net.n)

    def test_two_concurrent_resets_cooperate(self):
        """Two fault sites on a ring: concurrent resets must coordinate
        (distance DAG) and still converge within the single-reset bound."""
        net = ring(12)
        sdr = SDR(Unison(net))
        cfg = sdr.initial_configuration()
        cfg.set(0, "c", 5)   # fault site A
        cfg.set(6, "c", 9)   # fault site B (antipodal)
        sim = Simulator(sdr, DistributedRandomDaemon(0.5), config=cfg, seed=9)
        detector, _ = measure_stabilization(sim, sdr.is_normal, max_steps=200_000)
        assert detector.rounds <= bounds.sdr_rounds_bound(net.n)
        # Both sites initiated: at least two rule_R executions happened.
        assert sim.moves_per_rule.get("rule_R", 0) >= 2


class TestCrossAlgorithmConsistency:
    def test_same_network_same_seed_different_inputs(self):
        """SDR behaves identically as a layer regardless of the input
        algorithm: its rule labels and accounting views stay consistent."""
        net = by_name("random", 8, seed=5)
        f, g = dominating_set(net)
        for make_input in (lambda: Unison(net), lambda: FGA(net, f, g)):
            sdr = SDR(make_input())
            sim = Simulator(
                sdr, DistributedRandomDaemon(0.5),
                config=sdr.random_configuration(Random(11)), seed=11,
            )
            sim.run(max_steps=2_000)
            assert set(sim.moves_per_rule) <= set(sdr.rule_names())

    def test_unison_period_parameter_sweep(self):
        """Stabilization bounds hold across legal periods K > n."""
        net = ring(6)
        for period in (7, 9, 16, 40):
            sdr = SDR(Unison(net, period=period))
            sim = Simulator(
                sdr, DistributedRandomDaemon(0.5),
                config=sdr.random_configuration(Random(period)), seed=period,
            )
            detector, _ = measure_stabilization(sim, sdr.is_normal, max_steps=200_000)
            assert detector.rounds <= bounds.sdr_rounds_bound(net.n)
