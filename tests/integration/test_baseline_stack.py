"""Integration of the Arora–Gouda-style substrate stack:
leader election → rooted tree → mono-initiator reset hosting unison."""

from random import Random

import pytest

from repro.baselines import BfsTree, LeaderElection, MonoReset
from repro.core import (
    Composition,
    DistributedRandomDaemon,
    Simulator,
    measure_stabilization,
)
from repro.faults import corrupt_processes
from repro.topology import by_name
from repro.unison import Unison, safety_holds


class TestFullStack:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_elect_then_reset_pipeline(self, seed):
        """Phase 1: elect a root from arbitrary election states.
        Phase 2: run the mono-initiator reset rooted at the elected leader
        and recover the hosted unison from corrupted clocks."""
        net = by_name("random", 10, seed=seed)

        election = LeaderElection(net)
        sim = Simulator(
            election, DistributedRandomDaemon(0.5),
            config=election.random_configuration(Random(seed)), seed=seed,
        )
        sim.run_to_termination(max_steps=500_000)
        assert election.elected(sim.cfg)
        root = election.true_leader

        mono = MonoReset(Unison(net), root=root)
        cfg = corrupt_processes(
            mono, mono.initial_configuration(), [1, 4], Random(seed),
            variables=("c",),
        )
        sim2 = Simulator(mono, DistributedRandomDaemon(0.5), config=cfg, seed=seed)
        detector, _ = measure_stabilization(sim2, mono.is_normal, max_steps=500_000)
        assert detector.hit
        sim2.run(max_steps=100)
        assert safety_holds(net, sim2.cfg, mono.input.period)

    def test_generic_composition_of_independent_layers(self):
        """Leader election and a BFS tree run side by side under the generic
        composition operator without interfering."""
        net = by_name("random", 9, seed=3)
        election = LeaderElection(net)
        tree = BfsTree(net, root=0)
        comp = Composition([election, tree])
        cfg = comp.random_configuration(Random(3))
        sim = Simulator(comp, DistributedRandomDaemon(0.5), config=cfg, seed=3)
        sim.run_to_termination(max_steps=500_000)
        assert election.elected(sim.cfg)
        assert tree.is_correct_tree(sim.cfg)

    def test_election_tree_matches_bfs_distances(self):
        """The election's induced spanning tree has BFS distances to the
        leader — the same substrate quality BfsTree provides for a fixed
        root."""
        import networkx as nx

        net = by_name("random", 10, seed=4)
        election = LeaderElection(net)
        sim = Simulator(
            election, DistributedRandomDaemon(0.5),
            config=election.random_configuration(Random(4)), seed=4,
        )
        sim.run_to_termination(max_steps=500_000)
        graph = net.to_networkx()
        true = nx.single_source_shortest_path_length(graph, election.true_leader)
        for u in net.processes():
            assert sim.cfg[u]["ldist"] == true[u]
