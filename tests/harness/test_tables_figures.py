"""Tests for the harness table and figure renderers."""

import pytest

from repro.harness import Figure, Table


class TestTable:
    def test_render_alignment(self):
        table = Table("demo", ["name", "value"])
        table.add_row("alpha", 1)
        table.add_row("b", 123456)
        out = table.render()
        lines = out.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[2] and "value" in lines[2]
        assert all(len(line) == len(lines[2]) for line in lines[2:])

    def test_formatting_of_cell_types(self):
        table = Table("t", ["a", "b", "c"])
        table.add_row(True, 1.234, "x")
        rendered = table.render()
        assert "yes" in rendered
        assert "1.23" in rendered

    def test_wrong_arity_rejected(self):
        table = Table("t", ["a"])
        with pytest.raises(ValueError):
            table.add_row(1, 2)

    def test_extend(self):
        table = Table("t", ["a", "b"])
        table.extend([(1, 2), (3, 4)])
        assert len(table.rows) == 2

    def test_str_is_render(self):
        table = Table("t", ["a"])
        table.add_row(7)
        assert str(table) == table.render()


class TestFigure:
    def test_empty_figure(self):
        fig = Figure("empty")
        assert "empty figure" in fig.render()

    def test_plot_contains_markers_and_legend(self):
        fig = Figure("f", "x", "y")
        fig.add("s1", [(1, 1), (2, 2)])
        fig.add_point("s2", 3, 1)
        out = fig.render(width=20, height=6)
        assert "legend:" in out
        assert "s1" in out and "s2" in out
        assert "o" in out and "x" in out

    def test_loglog_flag_shown(self):
        fig = Figure("f", loglog=True)
        fig.add("s", [(1, 1), (10, 100)])
        assert "(log-log)" in fig.render()

    def test_to_rows_sorted(self):
        fig = Figure("f")
        fig.add("s", [(2, 20), (1, 10)])
        assert fig.to_rows() == [("s", 1.0, 10.0), ("s", 2.0, 20.0)]

    def test_single_point_does_not_crash(self):
        fig = Figure("f")
        fig.add_point("s", 5, 5)
        fig.render()
