"""Tests for CSV/JSON persistence of experiment data."""

import csv
import json

import pytest

from repro.harness import experiments, run_unison_trial
from repro.harness.io import trial_rows, write_result_json, write_trials_csv
from repro.topology import ring


@pytest.fixture(scope="module")
def trials():
    return [run_unison_trial(ring(5), seed=s, scenario="gradient") for s in range(3)]


class TestTrialRows:
    def test_core_fields_present(self, trials):
        rows = trial_rows(trials)
        assert len(rows) == 3
        for row in rows:
            assert row["algorithm"] == "U o SDR"
            assert row["n"] == 5
            assert row["sdr_moves"] + row["input_moves"] == row["moves"]

    def test_extras_inlined_with_prefix(self):
        from repro.harness import run_boulinier_trial

        rows = trial_rows([run_boulinier_trial(ring(5), seed=0)])
        assert rows[0]["extra_period"] > 5
        assert rows[0]["extra_alpha"] >= 1


class TestCsv:
    def test_round_trip(self, trials, tmp_path):
        path = write_trials_csv(trials, tmp_path / "trials.csv")
        with path.open() as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 3
        assert {row["seed"] for row in rows} == {"0", "1", "2"}

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_trials_csv([], tmp_path / "empty.csv")


class TestJson:
    def test_result_round_trip(self, tmp_path):
        result = experiments.experiment_t5(sizes=(5, 6), trials=1)
        path = write_result_json(result, tmp_path / "t5.json")
        payload = json.loads(path.read_text())
        assert payload["experiment_id"] == "T5"
        assert payload["ok"] is True
        assert len(payload["rows"]) == 2
        assert payload["figure"] is None

    def test_figure_series_serialized(self, tmp_path):
        result = experiments.figure_f4(sizes=(5, 6), trials=1)
        payload = json.loads(write_result_json(result, tmp_path / "f4.json").read_text())
        assert set(payload["figure"]) == {"measured", "bound"}


class TestA1Experiment:
    def test_a1_smoke(self):
        result = experiments.experiment_a1(sizes=(8,), trials=1)
        assert result.ok
        assert result.experiment_id == "A1"

    def test_registry_includes_a1(self):
        assert "A1" in experiments.REGISTRY
