"""Tests for the ``python -m repro.harness`` command-line entry point."""

import pytest

from repro.harness import __main__ as cli
from repro.harness import experiments
from repro.harness.experiments import ExperimentResult
from repro.harness.tables import Table


def _fake_result(ok: bool) -> ExperimentResult:
    table = Table("fake", ["x"])
    table.add_row(1)
    return ExperimentResult("FAKE", "fake claim", table, ok)


class TestCli:
    def test_no_args_lists_experiments(self, capsys):
        assert cli.main([]) == 0
        out = capsys.readouterr().out
        for key in experiments.REGISTRY:
            assert key in out

    def test_unknown_experiment_is_an_error(self, capsys):
        assert cli.main(["NOPE"]) == 2
        assert "unknown experiment" in capsys.readouterr().out

    def test_passing_experiment_returns_zero(self, capsys, monkeypatch):
        monkeypatch.setitem(cli.REGISTRY, "FAKE-PASS", lambda: _fake_result(True))
        assert cli.main(["FAKE-PASS"]) == 0
        out = capsys.readouterr().out
        assert "RESULT: PASS" in out
        assert "All selected experiments PASSED" in out

    def test_failing_experiment_returns_one(self, capsys, monkeypatch):
        monkeypatch.setitem(cli.REGISTRY, "FAKE-FAIL", lambda: _fake_result(False))
        assert cli.main(["FAKE-FAIL"]) == 1
        assert "FAILED experiments: FAKE-FAIL" in capsys.readouterr().out
