"""Smoke tests: every registered experiment runs on a tiny grid and passes."""

import pytest

from repro.harness import experiments


class TestSmallExperiments:
    def test_t1_t2(self):
        result = experiments.experiment_t1_t2(
            sizes=(6,), topologies=("ring",), trials=1,
            daemons=("distributed-random",),
        )
        assert result.ok
        assert result.table.rows

    def test_t3_t4(self):
        result = experiments.experiment_t3_t4(
            sizes=(6,), topologies=("ring",), trials=1, scenarios=("gradient",)
        )
        assert result.ok

    def test_t5(self):
        result = experiments.experiment_t5(sizes=(6, 8), trials=1)
        assert result.ok
        assert len(result.data["n"]) == 2

    def test_t6_t7(self):
        result = experiments.experiment_t6_t7(
            sizes=(6,), topologies=("random",), trials=1, scenarios=("random",)
        )
        assert result.ok

    def test_t8(self):
        result = experiments.experiment_t8(sizes=(6,), topologies=("ring",), trials=1)
        assert result.ok

    def test_t9(self):
        result = experiments.experiment_t9(n=8, trials=1)
        assert result.ok
        assert len(result.table.rows) == 6  # six instances

    def test_t10(self):
        result = experiments.experiment_t10(sizes=(6,), trials=1)
        assert result.ok

    def test_f1_f2(self):
        result = experiments.figure_f1_f2(sizes=(6, 8, 10), trials=1)
        assert result.figure is not None
        assert "ours_exponent" in result.data

    def test_f3(self):
        result = experiments.figure_f3(n=10, fault_counts=(1, 4), trials=2)
        assert result.figure is not None

    def test_f4(self):
        result = experiments.figure_f4(sizes=(6, 8), trials=1)
        assert result.ok

    def test_f5(self):
        result = experiments.figure_f5(n=8, trials=1)
        assert result.ok

    def test_f6(self):
        result = experiments.figure_f6(sizes=(6, 10), trials=1)
        assert result.table.rows

    def test_p1(self):
        result = experiments.experiment_p1(sizes=(6,), topologies=("ring",), trials=1)
        assert result.ok

    def test_t11(self):
        result = experiments.experiment_t11(
            n=8, trials=1, fault_counts=(1,), cadences=(30,), bursts=2
        )
        assert result.ok
        assert result.table.rows

    def test_t12(self):
        result = experiments.experiment_t12(
            n=8, trials=1, cadences=(30,), mixes=("crash-join",), events=1
        )
        assert result.ok
        assert result.table.rows

    def test_registry_complete(self):
        assert set(experiments.REGISTRY) == {
            "T1/T2", "T3/T4", "T5", "T6/T7", "T8", "T9", "T10", "T11", "T12",
            "T13", "F1/F2", "F3", "F4", "F5", "F6", "F7", "P1", "A1",
        }

    def test_render_includes_verdict(self):
        result = experiments.experiment_t8(sizes=(6,), topologies=("ring",), trials=1)
        out = result.render()
        assert "RESULT: PASS" in out
