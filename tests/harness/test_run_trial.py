"""The descriptor-driven ``run_trial`` entry point."""

import pytest

from repro.engine.campaign import TrialSpec
from repro.harness.runner import (
    run_boulinier_trial,
    run_fga_trial,
    run_trial,
    run_unison_trial,
)
from repro.topology import by_name


class TestRunTrial:
    def test_unison_matches_direct_runner_call(self):
        spec = TrialSpec("unison", "ring", 6, "gradient", "distributed-random",
                         topology_seed=2)
        direct = run_unison_trial(
            by_name("ring", 6, seed=2), seed=17, scenario="gradient",
            daemon="distributed-random",
        )
        assert run_trial(spec, seed=17) == direct

    def test_boulinier_dispatch_with_params(self):
        spec = TrialSpec("boulinier", "ring", 6, "split", params={"period": 40})
        trial = run_trial(spec, seed=3)
        assert trial.algorithm == "boulinier"
        assert trial.extra["period"] == 40
        direct = run_boulinier_trial(
            by_name("ring", 6, seed=0), seed=3, scenario="split", period=40,
            daemon="distributed-random",
        )
        assert trial == direct

    def test_fga_dispatch_resolves_named_instance(self):
        spec = TrialSpec("fga", "random", 8, "random",
                         params={"instance": "dominating-set"})
        trial = run_trial(spec, seed=5)
        assert trial.algorithm == "FGA o SDR"
        assert trial.extra["alliance_size"] >= 1

        from repro.alliance.functions import dominating_set
        net = by_name("random", 8, seed=0)
        f, g = dominating_set(net)
        assert trial == run_fga_trial(net, f, g, seed=5, scenario="random",
                                      daemon="distributed-random")

    def test_default_seed_is_the_replicate_index(self):
        spec = TrialSpec("unison", "ring", 5, trial=9)
        assert run_trial(spec).seed == 9

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="unknown trial algorithm"):
            run_trial(TrialSpec("paxos", "ring", 5))
