"""Tests for the trial runners."""

import pytest

from repro.alliance import dominating_set
from repro.harness import run_boulinier_trial, run_fga_trial, run_unison_trial, sweep
from repro.topology import ring


class TestUnisonTrials:
    @pytest.mark.parametrize("scenario", ["random", "gradient", "split", "fake-wave", "faults:2"])
    def test_scenarios_run(self, scenario):
        trial = run_unison_trial(ring(6), seed=0, scenario=scenario)
        assert trial.algorithm == "U o SDR"
        assert trial.n == 6
        assert trial.rounds <= 3 * 6

    def test_unknown_scenario(self):
        with pytest.raises(ValueError):
            run_unison_trial(ring(6), scenario="chaos")

    def test_daemon_by_name(self):
        trial = run_unison_trial(ring(6), seed=1, daemon="synchronous")
        assert trial.daemon == "synchronous"


class TestBoulinierTrials:
    @pytest.mark.parametrize("scenario", ["random", "gradient", "split"])
    def test_scenarios_run(self, scenario):
        trial = run_boulinier_trial(ring(6), seed=0, scenario=scenario)
        assert trial.algorithm == "boulinier"
        assert trial.extra["period"] > 6

    def test_unknown_scenario(self):
        with pytest.raises(ValueError):
            run_boulinier_trial(ring(6), scenario="chaos")


class TestFgaTrials:
    @pytest.mark.parametrize("scenario", ["random", "init", "hollow", "faults:2"])
    def test_scenarios_run(self, scenario):
        net = ring(6)
        f, g = dominating_set(net)
        trial = run_fga_trial(net, f, g, seed=0, scenario=scenario)
        assert trial.extra["alliance_size"] == len(trial.extra["alliance"])
        assert trial.rounds <= 8 * 6 + 4


class TestSweep:
    def test_grid_cardinality(self):
        trials = sweep(run_unison_trial, [ring(5), ring(6)], range(2), scenario="random")
        assert len(trials) == 4
        assert {t.n for t in trials} == {5, 6}
