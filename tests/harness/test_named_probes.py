"""Named probe selections: plumbed through serial and batched execution."""

import dataclasses

import pytest

from repro.engine.campaign import TrialSpec
from repro.harness.runner import run_trial, run_trial_batch
from repro.probes import PROBE_NAMES, is_named_probe, make_probe
from repro.probes.sampling import AccountingProbe, TraceProbe


def spec_for(trial: int, probe: str | None = None, **over) -> TrialSpec:
    params = dict(over.pop("params", ()))
    if probe is not None:
        params["probe"] = probe
    base = dict(algorithm="unison", topology="ring", n=12,
                scenario="gradient", daemon="central")
    base.update(over)
    return TrialSpec(trial=trial, params=tuple(params.items()), **base)


SEEDS = [101, 102, 103]


class TestRegistry:
    def test_registered_names(self):
        assert PROBE_NAMES == ("accounting", "sdr-moves", "trace")

    def test_is_named_probe(self):
        assert is_named_probe("accounting")
        assert is_named_probe("accounting:100")
        assert not is_named_probe("auto")
        assert not is_named_probe("decode")
        assert not is_named_probe("bogus")

    def test_make_probe_constructs_and_validates(self):
        assert isinstance(make_probe("accounting:50", 8), AccountingProbe)
        assert isinstance(make_probe("trace", 8), TraceProbe)
        with pytest.raises(ValueError, match="unknown probe"):
            make_probe("bogus", 8)
        with pytest.raises(ValueError, match="bad probe selection"):
            make_probe("accounting:xx", 8)
        with pytest.raises(ValueError, match="takes no argument"):
            make_probe("sdr-moves:3", 8)

    def test_registry_probes_are_vector_capable(self):
        for name in PROBE_NAMES:
            assert make_probe(name, 8).wants_decode() is False


class TestSerialPlumbing:
    @pytest.mark.parametrize("selection", ["accounting:100", "trace:200",
                                           "sdr-moves"])
    def test_named_probe_does_not_change_the_record(self, selection):
        plain = run_trial(spec_for(0), SEEDS[0])
        observed = run_trial(spec_for(0, probe=selection), SEEDS[0])
        assert dataclasses.asdict(plain) == dataclasses.asdict(observed)

    def test_unknown_selection_fails_loudly(self):
        with pytest.raises(ValueError, match="unknown probe mode"):
            run_trial(spec_for(0, probe="bogus"), SEEDS[0])


class TestBatchPlumbing:
    def test_named_probe_batch_matches_plain_batch(self):
        named = [spec_for(t, probe="accounting:50") for t in range(3)]
        plain = [spec_for(t) for t in range(3)]
        for a, b in zip(run_trial_batch(named, SEEDS),
                        run_trial_batch(plain, SEEDS)):
            assert dataclasses.asdict(a) == dataclasses.asdict(b)

    def test_named_probe_batch_matches_serial(self):
        specs = [spec_for(t, probe="sdr-moves") for t in range(3)]
        batched = run_trial_batch(specs, SEEDS)
        for spec, seed, trial in zip(specs, SEEDS, batched):
            assert dataclasses.asdict(run_trial(spec, seed)) == \
                dataclasses.asdict(trial)

    def test_named_selection_keeps_the_cell_batchable(self):
        from repro.harness.runner import can_batch

        assert can_batch(spec_for(0, probe="accounting"))
        assert not can_batch(spec_for(0, probe="decode"))
