"""Tiny algorithms used by the kernel tests.

These exercise the simulator independently of the paper's algorithms:

* :class:`MaxFlood` — silent max-propagation (terminal: all values equal);
* :class:`Countdown` — neighbor-independent counter (always enabled until
  zero; handy for daemon accounting tests);
* :class:`CopyNeighbor` — copies a neighbor's value; distinguishes
  composite atomicity from sequential interleaving.
"""

from __future__ import annotations

from random import Random

from repro.core import Algorithm, Configuration


class MaxFlood(Algorithm):
    """Each process raises its value to the neighborhood maximum."""

    name = "max-flood"
    mutually_exclusive_rules = True

    def variables(self):
        return ("x",)

    def rule_names(self):
        return ("rule_max",)

    def _target(self, cfg: Configuration, u: int) -> int:
        return max(cfg[v]["x"] for v in self.network.neighbors(u))

    def guard(self, rule, cfg, u):
        if not self.network.neighbors(u):
            return False
        return cfg[u]["x"] < self._target(cfg, u)

    def execute(self, rule, cfg, u):
        return {"x": self._target(cfg, u)}

    def initial_state(self, u):
        return {"x": u}

    def random_state(self, u, rng: Random):
        return {"x": rng.randrange(100)}


class Countdown(Algorithm):
    """Processes independently count down to zero."""

    name = "countdown"
    mutually_exclusive_rules = True

    def __init__(self, network, start: int = 3):
        super().__init__(network)
        self.start = start

    def variables(self):
        return ("k",)

    def rule_names(self):
        return ("rule_dec",)

    def guard(self, rule, cfg, u):
        return cfg[u]["k"] > 0

    def execute(self, rule, cfg, u):
        return {"k": cfg[u]["k"] - 1}

    def initial_state(self, u):
        return {"k": self.start}

    def random_state(self, u, rng: Random):
        return {"k": rng.randrange(self.start + 1)}


class CopyNeighbor(Algorithm):
    """Copy the smallest-index neighbor's value when it differs.

    Under composite atomicity, two activated neighbors read each other's
    *pre-step* values, so simultaneous activation swaps values instead of
    converging — the kernel tests rely on that distinction.
    """

    name = "copy-neighbor"
    mutually_exclusive_rules = True

    def variables(self):
        return ("y",)

    def rule_names(self):
        return ("rule_copy",)

    def _source(self, u: int) -> int:
        return self.network.neighbors(u)[0]

    def guard(self, rule, cfg, u):
        if not self.network.neighbors(u):
            return False
        return cfg[u]["y"] != cfg[self._source(u)]["y"]

    def execute(self, rule, cfg, u):
        return {"y": cfg[self._source(u)]["y"]}

    def initial_state(self, u):
        return {"y": u}

    def random_state(self, u, rng: Random):
        return {"y": rng.randrange(10)}
