"""Phase tracing: kill switch, sampling arithmetic, determinism contract."""

import pytest

from random import Random

from repro.core import Simulator, make_daemon
from repro.reset import SDR
from repro.telemetry import phases
from repro.topology import ring
from repro.unison import Unison


def run_one(backend: str, steps: int = 400):
    """One deterministic run; returns everything observable about it."""
    network = ring(10)
    sdr = SDR(Unison(network))
    cfg = sdr.random_configuration(Random(5))
    sim = Simulator(
        sdr, make_daemon("distributed-random", network),
        config=cfg, seed=5, backend=backend,
    )
    result = sim.run(max_steps=steps)
    return (result.steps, result.moves, result.rounds, sim.cfg)


class TestPhaseStats:
    def test_stride_must_be_power_of_two(self):
        for bad in (0, -1, 3, 12):
            with pytest.raises(ValueError):
                phases.PhaseStats(stride=bad)
        for ok in (1, 2, 16, 64):
            assert phases.PhaseStats(stride=ok).mask == ok - 1

    def test_snapshot_extrapolates_sampled_phases(self):
        stats = phases.PhaseStats(stride=8)
        stats.add(phases.GUARD, 0.25)
        stats.add(phases.GUARD, 0.25)
        snap = stats.snapshot()
        guard = snap["phases"]["guard"]
        assert guard["samples"] == 2
        assert guard["sampled_s"] == pytest.approx(0.5)
        assert guard["est_s"] == pytest.approx(0.5 * 8)

    def test_exact_phases_are_not_extrapolated(self):
        stats = phases.PhaseStats(stride=8)
        stats.add(phases.COMPACT, 0.5)
        snap = stats.snapshot()
        assert snap["phases"]["compact"]["est_s"] == pytest.approx(0.5)

    def test_shares_sum_to_one(self):
        stats = phases.PhaseStats(stride=4)
        stats.add(phases.GUARD, 0.3)
        stats.add(phases.APPLY, 0.1)
        snap = stats.snapshot()
        assert sum(e["share"] for e in snap["phases"].values()) == pytest.approx(
            1.0, abs=0.01
        )

    def test_mark_since_isolates_a_delta(self):
        stats = phases.PhaseStats(stride=2)
        stats.add(phases.APPLY, 1.0)
        mark = stats.mark()
        stats.add(phases.APPLY, 0.5)
        delta = stats.since(mark)
        assert delta["phases"]["apply"]["samples"] == 1
        assert delta["phases"]["apply"]["sampled_s"] == pytest.approx(0.5)

    def test_absorb_preserves_estimated_seconds_across_strides(self):
        worker = phases.PhaseStats(stride=4)
        worker.add(phases.GUARD, 0.5)  # est 2.0s
        parent = phases.PhaseStats(stride=16)
        parent.absorb(worker.snapshot())
        assert parent.snapshot()["phases"]["guard"]["est_s"] == pytest.approx(2.0)
        parent.absorb(None)  # no-op

    def test_merge_snapshots_sums_and_drops_stride(self):
        a = phases.PhaseStats(stride=4)
        a.add(phases.GUARD, 1.0)
        b = phases.PhaseStats(stride=8)
        b.add(phases.GUARD, 1.0)
        b.add(phases.COMPACT, 0.25)
        merged = phases.merge_snapshots(a.snapshot(), b.snapshot(), None)
        assert merged["stride"] is None
        assert merged["phases"]["guard"]["est_s"] == pytest.approx(4.0 + 8.0)
        assert merged["phases"]["compact"]["est_s"] == pytest.approx(0.25)


class TestKillSwitch:
    def test_recording_scopes_and_restores(self):
        assert phases.collector() is None
        with phases.recording(stride=4) as stats:
            assert phases.collector() is stats
            with phases.recording(stride=2) as inner:
                assert phases.collector() is inner
            assert phases.collector() is stats
        assert phases.collector() is None

    def test_enable_disable(self):
        try:
            stats = phases.enable(stride=8)
            assert phases.enabled() and phases.collector() is stats
            assert phases.snapshot() == stats.snapshot()
        finally:
            phases.disable()
        assert not phases.enabled() and phases.snapshot() is None

    @pytest.mark.parametrize("backend", ["dict", "kernel"])
    def test_disabled_run_never_consults_the_timer(self, backend, monkeypatch):
        calls = []

        def counting_timer():
            calls.append(1)
            return 0.0

        assert phases.collector() is None
        monkeypatch.setattr(phases, "timer", counting_timer)
        run_one(backend)
        assert calls == []

    @pytest.mark.parametrize("backend", ["dict", "kernel"])
    def test_enabled_run_samples_the_hot_path(self, backend):
        with phases.recording(stride=4) as stats:
            run_one(backend)
        snap = stats.snapshot()
        assert snap["total_est_s"] > 0
        for phase in ("guard", "daemon", "apply"):
            assert snap["phases"][phase]["samples"] > 0


class TestDeterminismContract:
    @pytest.mark.parametrize("backend", ["dict", "kernel"])
    def test_results_identical_with_telemetry_on_and_off(self, backend):
        off = run_one(backend)
        with phases.recording(stride=2):
            on = run_one(backend)
        assert on == off
