"""``status``: summarizing a finished, partial, or crashed sweep."""

from repro.engine import Campaign, ResultStore, run_campaign
from repro.telemetry.events import JsonlEventSink, events_path_for
from repro.telemetry.provenance import build_manifest, write_manifest
from repro.telemetry.status import render_status, summarize_status

CAMPAIGN = Campaign(
    "status-test", seed=9, algorithms=("unison",), topologies=("ring",),
    sizes=(5, 7), scenarios=("random",), trials=2,
)


def run_sweep(tmp_path):
    """A finished 4-trial sweep with both sidecars, like the CLI leaves."""
    store = ResultStore(tmp_path / "r.jsonl")
    sink = JsonlEventSink(events_path_for(store.path))
    write_manifest(store.path, build_manifest(campaign=CAMPAIGN))
    run_campaign(CAMPAIGN, store=store, events=sink)
    sink.close()
    return store


class TestFinishedSweep:
    def test_summary_fields(self, tmp_path):
        store = run_sweep(tmp_path)
        summary = summarize_status(store.path)
        assert summary["records"] == 4
        assert summary["total"] == 4
        assert summary["by_algorithm"] == {"unison": 4}
        assert summary["running"] is False
        assert summary["failures"] == []
        assert summary["throughput"]["done"] == 4
        assert summary["manifest"]["campaign"]["name"] == "status-test"

    def test_render_mentions_the_essentials(self, tmp_path):
        store = run_sweep(tmp_path)
        text = render_status(summarize_status(store.path))
        assert "4 trials landed of 4 (100%)" in text
        assert "finished" in text
        assert "unison: 4" in text


class TestPartialSweep:
    def test_truncated_store_and_missing_finish_event(self, tmp_path):
        store = run_sweep(tmp_path)
        # Keep 2 of 4 records plus a crash-truncated partial line...
        lines = store.path.read_text().splitlines(keepends=True)
        store.path.write_text("".join(lines[:2]) + lines[2][:25])
        # ...and cut the event log before campaign_finished.
        events_path = events_path_for(store.path)
        kept = [line for line in events_path.read_text().splitlines(keepends=True)
                if '"campaign_finished"' not in line]
        events_path.write_text("".join(kept))

        summary = summarize_status(store.path)
        assert summary["records"] == 2
        assert summary["total"] == 4
        assert summary["running"] is True
        text = render_status(summary)
        assert "2 trials landed of 4 (50%)" in text
        assert "running (or crashed mid-run)" in text

    def test_store_only_no_event_log(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        run_campaign(CAMPAIGN, store=store)
        summary = summarize_status(store.path)
        assert summary["records"] == 4
        assert summary["total"] is None
        assert summary["running"] is False
        assert "no event log" in render_status(summary)

    def test_failures_are_surfaced(self, tmp_path):
        store_path = tmp_path / "r.jsonl"
        sink = JsonlEventSink(events_path_for(store_path))
        sink.emit("campaign_started", total=2, pending=2, workers=0,
                  batch=True, store=str(store_path))
        sink.emit("trial_failed", key="some|trial", error="budget exhausted",
                  reason="budget", retries=1)
        sink.close()
        summary = summarize_status(store_path)
        assert summary["failures"] == [
            {"key": "some|trial", "error": "budget exhausted",
             "reason": "budget", "retries": 1}
        ]
        assert summary["running"] is True
        assert ("FAILED some|trial [budget, 1 retries]: budget exhausted"
                in render_status(summary))
