"""Event log: schema validation, JSONL round-trip, crash-truncated tails."""

import json

import pytest

from repro.telemetry.events import (
    EVENT_SCHEMA_VERSION,
    EventError,
    JsonlEventSink,
    MemoryEventSink,
    events_path_for,
    read_events,
    validate_event,
)


class TestValidation:
    def test_unknown_event_type_is_rejected(self):
        sink = MemoryEventSink()
        with pytest.raises(EventError):
            sink.emit("totally_new_event", foo=1)

    def test_missing_required_field_is_rejected(self):
        sink = MemoryEventSink()
        with pytest.raises(EventError):
            sink.emit("trial_finished", key="k", status="ok")  # no steps/...

    def test_extra_fields_are_allowed(self):
        sink = MemoryEventSink()
        sink.emit(
            "campaign_finished", done=1, total=1, elapsed_s=0.1,
            trials_per_s=10.0, phase_stats={"stride": 16},
        )
        assert sink.events[0]["phase_stats"] == {"stride": 16}

    def test_envelope_is_stamped(self):
        sink = MemoryEventSink()
        sink.emit("trial_failed", key="k", error="boom", reason="error", retries=0)
        event = sink.events[0]
        assert event["v"] == EVENT_SCHEMA_VERSION
        assert isinstance(event["ts"], float)
        validate_event(event)  # round-trips through the validator

    def test_validate_rejects_bad_envelope(self):
        with pytest.raises(EventError):
            validate_event({"event": "trial_failed", "key": "k", "error": "x",
                            "reason": "error", "retries": 0})
        with pytest.raises(EventError):
            validate_event({"v": EVENT_SCHEMA_VERSION, "ts": 1.0})


class TestJsonlRoundTrip:
    def test_sidecar_path_naming(self, tmp_path):
        assert events_path_for(tmp_path / "res.jsonl").name == "res.events.jsonl"

    def test_emitted_events_read_back_identically(self, tmp_path):
        path = events_path_for(tmp_path / "r.jsonl")
        sink = JsonlEventSink(path)
        sink.emit("campaign_started", total=4, pending=4, workers=0,
                  batch=True, store="r.jsonl")
        sink.emit("trial_finished", key="a", status="ok", steps=10,
                  unit="batch", fallback=False)
        sink.close()
        events = list(read_events(path, strict=True))
        assert [e["event"] for e in events] == [
            "campaign_started", "trial_finished",
        ]
        assert events[0]["total"] == 4
        assert events[1]["steps"] == 10

    def test_missing_log_yields_nothing(self, tmp_path):
        assert list(read_events(tmp_path / "absent.events.jsonl")) == []

    def test_truncated_tail_is_tolerated(self, tmp_path):
        path = tmp_path / "r.events.jsonl"
        sink = JsonlEventSink(path)
        sink.emit("trial_failed", key="a", error="x", reason="error", retries=0)
        sink.emit("trial_failed", key="b", error="y", reason="error", retries=0)
        sink.close()
        # Simulate a crash mid-write: a partial trailing line.
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"v": 1, "ts": 1.0, "eve')
        events = list(read_events(path))
        assert [e["key"] for e in events] == ["a", "b"]
        with pytest.raises(EventError):
            list(read_events(path, strict=True))

    def test_mid_file_garbage_stops_the_read(self, tmp_path):
        path = tmp_path / "r.events.jsonl"
        sink = JsonlEventSink(path)
        sink.emit("trial_failed", key="a", error="x", reason="error", retries=0)
        sink.close()
        with path.open("a", encoding="utf-8") as fh:
            fh.write("not json\n")
            fh.write(json.dumps({"v": 1, "ts": 2.0, "event": "trial_failed",
                                 "key": "b", "error": "y",
                                 "reason": "error", "retries": 0}) + "\n")
        # Non-strict reads must not resynchronize past corruption.
        assert [e["key"] for e in read_events(path)] == ["a"]
