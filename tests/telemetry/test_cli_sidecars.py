"""CLI integration: sweep sidecars, ``status`` subcommand, ``--probe``."""

import json

from repro.harness import __main__ as cli
from repro.telemetry.events import events_path_for, read_events
from repro.telemetry.provenance import manifest_path_for, read_manifest

GRID = ["--grid", "algorithm=unison", "--grid", "topology=ring",
        "--grid", "n=5,7", "--grid", "scenario=random",
        "--trials", "2", "--seed", "4", "--quiet"]


def sweep(*extra: str) -> int:
    return cli.main(["sweep", *GRID, *extra])


class TestSweepSidecars:
    def test_out_gets_event_log_and_manifest(self, tmp_path):
        out = tmp_path / "res.jsonl"
        assert sweep("--out", str(out)) == 0

        events = list(read_events(events_path_for(out), strict=True))
        kinds = [event["event"] for event in events]
        assert kinds[0] == "campaign_started"
        assert kinds[-1] == "campaign_finished"
        assert kinds.count("trial_finished") == 4

        manifest = read_manifest(out)
        assert manifest is not None
        assert manifest["campaign"]["size"] == 4
        assert manifest["campaign"]["name"] == "sweep"

    def test_no_out_means_no_sidecars(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert sweep() == 0
        assert list(tmp_path.iterdir()) == []

    def test_resume_appends_to_the_event_log(self, tmp_path):
        out = tmp_path / "res.jsonl"
        assert sweep("--out", str(out)) == 0
        first = len(list(read_events(events_path_for(out))))
        assert sweep("--out", str(out), "--resume") == 0
        events = list(read_events(events_path_for(out)))
        assert len(events) > first  # second campaign_started/finished pair
        assert events[-1]["event"] == "campaign_finished"

    def test_records_unchanged_by_sidecars(self, tmp_path):
        with_sidecars = tmp_path / "a.jsonl"
        assert sweep("--out", str(with_sidecars)) == 0
        again = tmp_path / "b.jsonl"
        assert sweep("--out", str(again)) == 0
        assert with_sidecars.read_bytes() == again.read_bytes()


class TestStatusCli:
    def test_status_after_a_finished_sweep(self, tmp_path, capsys):
        out = tmp_path / "res.jsonl"
        assert sweep("--out", str(out)) == 0
        capsys.readouterr()
        assert cli.main(["status", str(out)]) == 0
        text = capsys.readouterr().out
        assert "4 trials landed of 4 (100%)" in text
        assert "finished" in text

    def test_status_json_output(self, tmp_path, capsys):
        out = tmp_path / "res.jsonl"
        assert sweep("--out", str(out)) == 0
        capsys.readouterr()
        assert cli.main(["status", str(out), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["records"] == 4
        assert summary["by_algorithm"] == {"unison": 4}

    def test_status_without_any_files_is_an_error(self, tmp_path, capsys):
        assert cli.main(["status", str(tmp_path / "absent.jsonl")]) == 2
        assert "no result store" in capsys.readouterr().out

    def test_status_from_sidecars_of_a_failed_sweep(self, tmp_path, capsys):
        out = tmp_path / "res.jsonl"
        code = cli.main([
            "sweep", "--grid", "algorithm=unison", "--grid", "topology=ring",
            "--grid", "n=16", "--grid", "scenario=gradient",
            "--grid", "daemon=central", "--trials", "1", "--seed", "4",
            "--param", "max_steps=5", "--quiet", "--out", str(out),
        ])
        assert code == 1  # NotStabilized reported cleanly
        assert not out.exists()  # nothing landed; store never created
        capsys.readouterr()
        assert cli.main(["status", str(out)]) == 1  # failures present
        text = capsys.readouterr().out
        assert "FAILED" in text
        assert "running (or crashed mid-run)" in text


class TestProbeOption:
    def test_named_probe_sweep_matches_plain(self, tmp_path):
        plain, named = tmp_path / "p.jsonl", tmp_path / "n.jsonl"
        assert sweep("--out", str(plain)) == 0
        assert sweep("--out", str(named), "--probe", "accounting:100") == 0
        strip = lambda path: [
            {k: v for k, v in json.loads(line).items()
             if k not in ("key", "spec")}
            for line in path.read_text().splitlines()
        ]
        assert strip(plain) == strip(named)

    def test_bad_probe_fails_before_running(self, capsys):
        assert sweep("--probe", "bogus") == 2
        assert "unknown probe mode" in capsys.readouterr().out
        assert sweep("--probe", "accounting:xx") == 2
        assert "bad probe selection" in capsys.readouterr().out
