"""Provenance manifests: identity capture, sidecar round-trip, grid hashing."""

import json
import pathlib
import re

from repro.engine import Campaign
from repro.telemetry.provenance import (
    MANIFEST_SCHEMA_VERSION,
    build_manifest,
    git_info,
    grid_hash,
    manifest_path_for,
    read_manifest,
    write_manifest,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

CAMPAIGN = Campaign(
    "prov-test", seed=11, algorithms=("unison",), topologies=("ring",),
    sizes=(5,), scenarios=("random",), trials=2,
)


class TestGridHash:
    def test_same_campaign_same_hash(self):
        assert grid_hash(CAMPAIGN) == grid_hash(CAMPAIGN)

    def test_seed_changes_the_hash(self):
        other = Campaign(
            "prov-test", seed=12, algorithms=("unison",),
            topologies=("ring",), sizes=(5,), scenarios=("random",), trials=2,
        )
        assert grid_hash(other) != grid_hash(CAMPAIGN)

    def test_grid_changes_the_hash(self):
        other = Campaign(
            "prov-test", seed=11, algorithms=("unison",),
            topologies=("ring",), sizes=(5, 7), scenarios=("random",), trials=2,
        )
        assert other.seed == CAMPAIGN.seed
        assert grid_hash(other) != grid_hash(CAMPAIGN)

    def test_hash_is_hex_sha256(self):
        assert re.fullmatch(r"[0-9a-f]{64}", grid_hash(CAMPAIGN))


class TestBuildManifest:
    def test_core_fields(self):
        manifest = build_manifest(campaign=CAMPAIGN, cwd=REPO_ROOT)
        assert manifest["schema"] == MANIFEST_SCHEMA_VERSION
        assert manifest["campaign"]["name"] == "prov-test"
        assert manifest["campaign"]["seed"] == 11
        assert manifest["campaign"]["size"] == CAMPAIGN.size
        assert manifest["campaign"]["grid_hash"] == grid_hash(CAMPAIGN)
        assert "python" in manifest["versions"]
        assert "numpy" in manifest["versions"]
        assert manifest["created_at"].endswith("+00:00")

    def test_git_identity_of_this_repo(self):
        info = git_info(cwd=REPO_ROOT)
        if info is None:  # tolerated: tarball checkouts have no .git
            return
        assert re.fullmatch(r"[0-9a-f]{40}", info["sha"])
        assert isinstance(info["dirty"], bool)

    def test_phase_stats_and_extra_ride_along(self):
        manifest = build_manifest(
            phase_stats={"stride": 16, "phases": {}, "total_est_s": 0.0},
            extra={"benchmark": "bench"},
            cwd=REPO_ROOT,
        )
        assert manifest["phase_stats"]["stride"] == 16
        assert manifest["extra"]["benchmark"] == "bench"
        assert manifest["campaign"] is None

    def test_manifest_is_json_safe(self):
        manifest = build_manifest(campaign=CAMPAIGN, cwd=REPO_ROOT)
        json.dumps(manifest)  # must not raise


class TestSidecarRoundTrip:
    def test_write_read_next_to_store(self, tmp_path):
        store = tmp_path / "results.jsonl"
        manifest = build_manifest(campaign=CAMPAIGN, cwd=REPO_ROOT)
        write_manifest(store, manifest)
        sidecar = manifest_path_for(store)
        assert sidecar.name == "results.manifest.json"
        assert sidecar.exists()
        # Readable via either the store path or the manifest path.
        assert read_manifest(store) == manifest
        assert read_manifest(sidecar) == manifest

    def test_missing_manifest_reads_as_none(self, tmp_path):
        assert read_manifest(tmp_path / "absent.jsonl") is None

    def test_rewrite_is_atomic_replacement(self, tmp_path):
        store = tmp_path / "r.jsonl"
        write_manifest(store, build_manifest(cwd=REPO_ROOT))
        second = build_manifest(campaign=CAMPAIGN, cwd=REPO_ROOT)
        write_manifest(store, second)
        assert read_manifest(store)["campaign"]["name"] == "prov-test"
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []
