"""Smoke tests: every shipped example runs to completion.

Examples are executed in-process (``runpy``) with stdout captured, so the
suite catches API drift the moment it would break a documented walkthrough.
"""

import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 5


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(example, capsys):
    runpy.run_path(str(example), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{example.name} produced no output"
