"""Tests pinning the paper's bound formulas to their stated constants."""

from repro.analysis import bounds


class TestSdrBounds:
    def test_cor4_moves_per_process(self):
        assert bounds.sdr_moves_per_process_bound(10) == 33

    def test_cor5_rounds(self):
        assert bounds.sdr_rounds_bound(10) == 30

    def test_remark5_segments(self):
        assert bounds.segments_bound(10) == 11


class TestUnisonBounds:
    def test_thm6_explicit_constant(self):
        # (3D+3)n² + (3D+1)(n−1) + 1 with n=4, D=2
        assert bounds.unison_move_bound(4, 2) == 9 * 16 + 7 * 3 + 1

    def test_thm7_rounds(self):
        assert bounds.unison_rounds_bound(7) == 21

    def test_lemma20_standalone(self):
        assert bounds.unison_standalone_moves_per_process_bound(5) == 15

    def test_monotone_in_n_and_d(self):
        assert bounds.unison_move_bound(10, 3) < bounds.unison_move_bound(11, 3)
        assert bounds.unison_move_bound(10, 3) < bounds.unison_move_bound(10, 4)


class TestFgaBounds:
    def test_lemma25_per_process(self):
        assert bounds.fga_standalone_moves_per_process_bound(3, 5) == 8 * 15 + 54 + 24

    def test_cor11_total(self):
        assert bounds.fga_standalone_move_bound(5, 6, 3) == 16 * 18 + 36 * 6 + 120

    def test_cor12_rounds(self):
        assert bounds.fga_standalone_rounds_bound(9) == 49

    def test_thm12_composition_total(self):
        assert bounds.fga_sdr_move_bound(4, 5, 3) == 5 * (16 * 15 + 180 + 108)

    def test_thm14_rounds(self):
        assert bounds.fga_sdr_rounds_bound(9) == 76


class TestBaselineShape:
    def test_boulinier_shape(self):
        assert bounds.boulinier_move_shape(10, 5, 10) == 5 * 1000 + 10 * 100


class TestBoundIdentities:
    """Structural identities the paper's proofs rely on.

    The adversary experiments (T13/F7) check found schedules against
    these formulas, so the decompositions below are what make "within
    the bound" a meaningful claim rather than a lucky constant.
    """

    def test_fga_sdr_rounds_decomposes(self):
        # Thm 14's 8n+4 is Cor 12's standalone stabilization (5n+4)
        # plus the reset's own 3n rounds (Cor 5).
        for n in (2, 5, 9, 16, 33):
            assert bounds.fga_sdr_rounds_bound(n) == (
                bounds.fga_standalone_rounds_bound(n)
                + bounds.sdr_rounds_bound(n)
            )

    def test_unison_rounds_match_sdr_rounds(self):
        # Thm 7 and Cor 5 are the same 3n: U∘SDR stabilizes in the
        # rounds the reset itself needs.
        for n in (3, 8, 21):
            assert bounds.unison_rounds_bound(n) == bounds.sdr_rounds_bound(n)

    def test_fga_sdr_moves_factor_is_segment_count(self):
        # Thm 12 multiplies the per-segment work by n+1 — exactly
        # Remark 5's bound on the number of segments of an execution.
        for n in (2, 6, 13):
            per_segment = 16 * 4 * 3 + 36 * 4 + 27 * n
            assert bounds.fga_sdr_move_bound(n, 4, 3) == (
                bounds.segments_bound(n) * per_segment
            )

    def test_sdr_moves_per_process_tracks_segments(self):
        # Cor 4's 3n+3 = 3(n+1): three status moves per segment.
        for n in (2, 7, 20):
            assert bounds.sdr_moves_per_process_bound(n) == (
                3 * bounds.segments_bound(n)
            )

    def test_unison_move_bound_dominates_standalone_mass(self):
        # The composed bound must cover n processes each doing the
        # standalone 3D clock moves.
        for n, d in ((4, 2), (8, 4), (16, 8)):
            standalone = n * bounds.unison_standalone_moves_per_process_bound(d)
            assert bounds.unison_move_bound(n, d) > standalone

    def test_small_n_values(self):
        assert bounds.unison_rounds_bound(1) == 3
        assert bounds.sdr_rounds_bound(1) == 3
        assert bounds.segments_bound(1) == 2
        assert bounds.fga_sdr_rounds_bound(1) == 12
        assert bounds.unison_move_bound(1, 0) == 3 + 0 + 1

    def test_monotonicity_in_n(self):
        for fn in (
            bounds.unison_rounds_bound,
            bounds.sdr_rounds_bound,
            bounds.sdr_moves_per_process_bound,
            bounds.segments_bound,
            bounds.fga_standalone_rounds_bound,
            bounds.fga_sdr_rounds_bound,
        ):
            values = [fn(n) for n in range(1, 12)]
            assert values == sorted(values)
            assert len(set(values)) == len(values)
