"""Tests pinning the paper's bound formulas to their stated constants."""

from repro.analysis import bounds


class TestSdrBounds:
    def test_cor4_moves_per_process(self):
        assert bounds.sdr_moves_per_process_bound(10) == 33

    def test_cor5_rounds(self):
        assert bounds.sdr_rounds_bound(10) == 30

    def test_remark5_segments(self):
        assert bounds.segments_bound(10) == 11


class TestUnisonBounds:
    def test_thm6_explicit_constant(self):
        # (3D+3)n² + (3D+1)(n−1) + 1 with n=4, D=2
        assert bounds.unison_move_bound(4, 2) == 9 * 16 + 7 * 3 + 1

    def test_thm7_rounds(self):
        assert bounds.unison_rounds_bound(7) == 21

    def test_lemma20_standalone(self):
        assert bounds.unison_standalone_moves_per_process_bound(5) == 15

    def test_monotone_in_n_and_d(self):
        assert bounds.unison_move_bound(10, 3) < bounds.unison_move_bound(11, 3)
        assert bounds.unison_move_bound(10, 3) < bounds.unison_move_bound(10, 4)


class TestFgaBounds:
    def test_lemma25_per_process(self):
        assert bounds.fga_standalone_moves_per_process_bound(3, 5) == 8 * 15 + 54 + 24

    def test_cor11_total(self):
        assert bounds.fga_standalone_move_bound(5, 6, 3) == 16 * 18 + 36 * 6 + 120

    def test_cor12_rounds(self):
        assert bounds.fga_standalone_rounds_bound(9) == 49

    def test_thm12_composition_total(self):
        assert bounds.fga_sdr_move_bound(4, 5, 3) == 5 * (16 * 15 + 180 + 108)

    def test_thm14_rounds(self):
        assert bounds.fga_sdr_rounds_bound(9) == 76


class TestBaselineShape:
    def test_boulinier_shape(self):
        assert bounds.boulinier_move_shape(10, 5, 10) == 5 * 1000 + 10 * 100
