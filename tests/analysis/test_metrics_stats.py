"""Tests for metric collection and statistics."""

import math

import pytest

from repro.analysis import RunMetrics, Summary, collect_metrics, fit_power_law, summarize
from repro.core import Network, Simulator, SynchronousDaemon
from tests.toys import Countdown


class TestRunMetrics:
    def test_collect_from_simulator(self):
        net = Network([(0, 1)])
        sim = Simulator(Countdown(net, start=2), SynchronousDaemon(), seed=0)
        sim.run_to_termination()
        metrics = collect_metrics(sim)
        assert metrics.moves == 4
        assert metrics.steps == 2
        assert metrics.rounds == 2
        assert metrics.moves_per_process == (2, 2)
        assert metrics.max_moves_per_process == 2

    def test_sdr_vs_input_split(self):
        metrics = RunMetrics(
            steps=5, moves=10, rounds=3,
            moves_per_process=(5, 5),
            moves_per_rule={"rule_RB": 2, "rule_C": 1, "rule_U": 7},
        )
        assert metrics.sdr_moves == 3
        assert metrics.input_moves == 7
        assert metrics.rule_share("rule_U") == 0.7

    def test_rule_share_of_empty_run(self):
        metrics = RunMetrics(0, 0, 0, (), {})
        assert metrics.rule_share("rule_U") == 0.0
        assert metrics.max_moves_per_process == 0


class TestSummarize:
    def test_basic_statistics(self):
        s = summarize([1, 2, 3, 4])
        assert s.count == 4
        assert s.mean == 2.5
        assert s.minimum == 1 and s.maximum == 4
        assert s.median == 2.5

    def test_odd_median(self):
        assert summarize([3, 1, 2]).median == 2

    def test_stddev(self):
        s = summarize([2, 2, 2])
        assert s.stddev == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_str_format(self):
        assert "mean=" in str(summarize([1, 2]))


class TestPowerLawFit:
    def test_exact_square_law(self):
        xs = [2, 4, 8, 16]
        ys = [4 * x * x for x in xs]
        exponent, constant = fit_power_law(xs, ys)
        assert math.isclose(exponent, 2.0, abs_tol=1e-9)
        assert math.isclose(constant, 4.0, rel_tol=1e-9)

    def test_cubic_vs_quadratic_distinguished(self):
        xs = [4, 8, 16, 32]
        quad, _ = fit_power_law(xs, [x**2 for x in xs])
        cubic, _ = fit_power_law(xs, [x**3 for x in xs])
        assert cubic > quad + 0.9

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [0, 1])
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [1, 2, 3])
