"""Tests for sweep aggregation and bound-margin helpers."""

import pytest

from repro.analysis import bound_margin, bounds, group_trials, summarize_trials
from repro.harness import run_unison_trial, sweep
from repro.topology import ring


@pytest.fixture(scope="module")
def trials():
    return sweep(run_unison_trial, [ring(5), ring(7)], range(3), scenario="gradient")


class TestGrouping:
    def test_group_by_n(self, trials):
        groups = group_trials(trials, by=("n",))
        assert set(groups) == {(5,), (7,)}
        assert all(len(g) == 3 for g in groups.values())

    def test_group_by_extra_key_missing_gives_none(self, trials):
        groups = group_trials(trials, by=("nonexistent",))
        assert set(groups) == {(None,)}

    def test_summarize_trials(self, trials):
        summaries = summarize_trials(trials, "moves", by=("n",))
        assert summaries[(5,)].count == 3
        assert summaries[(7,)].mean >= summaries[(5,)].minimum


class TestBoundMargin:
    def test_rounds_margin_below_one(self, trials):
        margin = bound_margin(trials, "rounds", bounds.unison_rounds_bound)
        assert 0 < margin <= 1.0

    def test_moves_margin_with_two_args(self, trials):
        margin = bound_margin(
            trials, "moves", bounds.unison_move_bound, args=("n", "diameter")
        )
        assert 0 < margin <= 1.0

    def test_nonpositive_bound_rejected(self, trials):
        with pytest.raises(ValueError):
            bound_margin(trials, "moves", lambda n: 0)
