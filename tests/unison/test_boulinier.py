"""Tests for the reconstructed reset-tail unison baseline [11]."""

from random import Random

import pytest

from repro.core import (
    AlgorithmError,
    Configuration,
    DistributedRandomDaemon,
    Network,
    Simulator,
    SynchronousDaemon,
    measure_stabilization,
)
from repro.topology import by_name, ring
from repro.unison import BoulinierUnison, couvreur_parameters, default_parameters

PATH = Network([(0, 1), (1, 2)])


def rvals(*values):
    return Configuration([{"r": v} for v in values])


class TestParameters:
    def test_default_parameters_are_safe(self):
        k, alpha = default_parameters(10)
        assert k > 10 and alpha >= 1

    def test_couvreur_parameters(self):
        k, alpha = couvreur_parameters(10)
        assert k == 101 and alpha == 1

    def test_invalid_parameters_rejected(self):
        with pytest.raises(AlgorithmError):
            BoulinierUnison(PATH, period=2)
        with pytest.raises(AlgorithmError):
            BoulinierUnison(PATH, alpha=0)


class TestComparability:
    def test_normal_zone_is_circular(self):
        algo = BoulinierUnison(PATH, period=10, alpha=3)
        assert algo.comparable(0, 9)
        assert algo.comparable(9, 0)
        assert not algo.comparable(0, 5)

    def test_tail_values_use_integer_distance(self):
        algo = BoulinierUnison(PATH, period=10, alpha=3)
        assert algo.comparable(-1, 0)
        assert algo.comparable(-3, -2)
        assert not algo.comparable(-3, -1)
        assert not algo.comparable(-1, 9)  # tail is not circular


class TestGuards:
    def test_normal_advance(self):
        algo = BoulinierUnison(PATH, period=10, alpha=3)
        cfg = rvals(1, 1, 2)
        assert algo.guard("rule_NA", cfg, 0)
        assert algo.execute("rule_NA", cfg, 0) == {"r": 2}
        assert not algo.guard("rule_NA", cfg, 2)  # neighbor behind

    def test_reset_on_incomparable_neighbor(self):
        algo = BoulinierUnison(PATH, period=10, alpha=3)
        cfg = rvals(0, 5, 5)
        assert algo.guard("rule_RA", cfg, 0)
        assert algo.guard("rule_RA", cfg, 1)
        assert algo.execute("rule_RA", cfg, 0) == {"r": -3}
        assert not algo.guard("rule_NA", cfg, 0)  # RA suppresses NA

    def test_tail_advance_waits_for_deeper_neighbors(self):
        algo = BoulinierUnison(PATH, period=10, alpha=4)
        cfg = rvals(-4, -2, 0)
        assert algo.guard("rule_TA", cfg, 0)   # neighbor above it
        assert not algo.guard("rule_TA", cfg, 1)  # neighbor -4 below

    def test_tail_out_requires_near_zero_neighborhood(self):
        algo = BoulinierUnison(PATH, period=10, alpha=4)
        assert algo.guard("rule_TO", rvals(-1, 0, 0), 0)
        assert not algo.guard("rule_TO", rvals(-1, 5, 0), 0)
        assert not algo.guard("rule_TO", rvals(-1, -3, 0), 0)


class TestConvergence:
    @pytest.mark.parametrize("topo", ["ring", "random", "tree"])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_converges_from_random_configuration(self, topo, seed):
        net = by_name(topo, 8, seed=seed)
        algo = BoulinierUnison(net)
        cfg = algo.random_configuration(Random(seed))
        sim = Simulator(algo, DistributedRandomDaemon(0.5), config=cfg, seed=seed)
        detector, _ = measure_stabilization(sim, algo.is_legitimate, max_steps=1_000_000)
        assert detector.hit

    def test_legitimate_is_closed_and_live(self):
        net = ring(6)
        algo = BoulinierUnison(net)
        cfg = algo.random_configuration(Random(3))
        sim = Simulator(algo, DistributedRandomDaemon(0.5), config=cfg, seed=3)
        measure_stabilization(sim, algo.is_legitimate, max_steps=1_000_000)
        moved = [0] * net.n
        for _ in range(400):
            record = sim.step()
            assert algo.is_legitimate(sim.cfg)
            for u in record.selection:
                moved[u] += 1
        assert all(m >= 3 for m in moved)  # liveness: everyone keeps ticking

    def test_couvreur_parameterization_converges(self):
        net = ring(6)
        k, alpha = couvreur_parameters(net.n)
        algo = BoulinierUnison(net, period=k, alpha=alpha)
        cfg = algo.random_configuration(Random(4))
        sim = Simulator(algo, DistributedRandomDaemon(0.5), config=cfg, seed=4)
        detector, _ = measure_stabilization(sim, algo.is_legitimate, max_steps=2_000_000)
        assert detector.hit

    def test_reset_floods_incoherent_region(self):
        """One incomparable edge drags the whole component into the tail —
        the global behaviour SDR's cooperative partial resets avoid."""
        net = ring(6)
        algo = BoulinierUnison(net, period=14, alpha=6)
        cfg = Configuration([{"r": 0 if u < 3 else 7} for u in range(6)])
        sim = Simulator(algo, SynchronousDaemon(), config=cfg, seed=0)
        saw_tail = set()
        for _ in range(200):
            sim.step()
            for u in net.processes():
                if sim.cfg[u]["r"] < 0:
                    saw_tail.add(u)
            if algo.is_legitimate(sim.cfg):
                break
        assert algo.is_legitimate(sim.cfg)
        assert len(saw_tail) == net.n  # everyone was dragged into the reset
