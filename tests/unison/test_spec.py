"""Unit tests for the unison specification checkers."""

from repro.core import Configuration, Network, ScriptedDaemon, Simulator, Trace
from repro.unison import (
    SafetyMonitor,
    Unison,
    circularly_close,
    increment_counts,
    liveness_holds,
    safety_holds,
    safety_violations,
)

PATH = Network([(0, 1), (1, 2)])


def clocks(*values):
    return Configuration([{"c": v} for v in values])


class TestCircularlyClose:
    def test_wraparound(self):
        assert circularly_close(0, 4, 5)
        assert circularly_close(4, 0, 5)
        assert not circularly_close(0, 2, 5)

    def test_equal(self):
        assert circularly_close(3, 3, 5)


class TestSafetyChecks:
    def test_violations_lists_bad_edges(self):
        cfg = clocks(0, 2, 2)
        assert safety_violations(PATH, cfg, 5) == [(0, 1)]
        assert not safety_holds(PATH, cfg, 5)

    def test_all_good(self):
        assert safety_holds(PATH, clocks(1, 2, 2), 5)
        assert safety_violations(PATH, clocks(1, 2, 2), 5) == []


class TestSafetyMonitor:
    def test_counts_unsafe_configurations(self):
        net = PATH
        u = Unison(net, period=5)
        cfg = clocks(0, 1, 2)
        monitor = SafetyMonitor(net, 5)
        sim = Simulator(
            u, ScriptedDaemon([[0], [0]]), config=cfg, seed=0, observers=[monitor]
        )
        sim.step()  # 0 ticks to 1: still safe
        sim.step()  # 0 ticks to 2: edge (0,1) = (2,1) safe; stays safe
        assert monitor.violations == 0
        assert monitor.first_safe_step == 0

    def test_detects_unsafe_start(self):
        monitor = SafetyMonitor(PATH, 5)
        u = Unison(PATH, period=5)
        cfg = clocks(0, 2, 2)
        Simulator(u, ScriptedDaemon([[2]]), config=cfg, seed=0, observers=[monitor])
        assert monitor.first_safe_step is None
        assert monitor.violations == 1


class TestLiveness:
    def test_increment_counts_and_liveness(self):
        u = Unison(PATH, period=5)
        trace = Trace()
        sim = Simulator(u, ScriptedDaemon([[0, 1, 2], [0, 1, 2]]), seed=0, trace=trace)
        sim.step()
        sim.step()
        assert increment_counts(trace) == {0: 2, 1: 2, 2: 2}
        assert liveness_holds(trace, 3, min_increments=2)
        assert not liveness_holds(trace, 3, min_increments=3)

    def test_liveness_fails_for_starved_process(self):
        u = Unison(PATH, period=5)
        trace = Trace()
        sim = Simulator(u, ScriptedDaemon([[0]]), seed=0, trace=trace)
        sim.step()
        assert not liveness_holds(trace, 3, min_increments=1)
