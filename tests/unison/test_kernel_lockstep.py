"""Paranoid lockstep: the kernel port of U is machine-checked vs the
dict reference on every step (configurations, enabled sets, accounting)."""

from random import Random

from repro.core import DistributedRandomDaemon, Simulator, SynchronousDaemon
from repro.reset import SDR
from repro.topology import grid, ring
from repro.unison import Unison


def test_unison_standalone_kernel_lockstep():
    net = ring(9)
    algo = Unison(net)
    sim = Simulator(algo, SynchronousDaemon(), seed=0, backend="kernel", paranoid=True)
    result = sim.run(max_steps=120)
    assert result.steps == 120  # synchronous ticking never terminates


def test_boulinier_kernel_lockstep_from_random_configs():
    from repro.unison.boulinier import BoulinierUnison

    for seed in range(3):
        net = grid(3, 4)
        algo = BoulinierUnison(net)
        cfg = algo.random_configuration(Random(seed))
        sim = Simulator(
            algo,
            DistributedRandomDaemon(0.5),
            config=cfg,
            seed=seed,
            backend="kernel",
            paranoid=True,
        )
        result = sim.run(max_steps=600)
        assert result.steps > 0


def test_unison_sdr_kernel_lockstep_from_random_configs():
    for seed in range(3):
        net = grid(3, 4)
        sdr = SDR(Unison(net))
        cfg = sdr.random_configuration(Random(seed))
        sim = Simulator(
            sdr,
            DistributedRandomDaemon(0.5),
            config=cfg,
            seed=seed,
            backend="kernel",
            paranoid=True,
        )
        result = sim.run(max_steps=600)
        assert result.steps > 0
