"""Integration tests for the self-stabilizing composition ``U ∘ SDR``
(Theorems 6 and 7)."""

from random import Random

import pytest

from repro.analysis import bounds
from repro.core import (
    DistributedRandomDaemon,
    Simulator,
    SynchronousDaemon,
    Trace,
    measure_stabilization,
)
from repro.faults import clock_gradient, clock_split, fake_reset_wave
from repro.reset import SDR
from repro.topology import by_name, grid, ring
from repro.unison import Unison, increment_counts, safety_holds


def stabilize(net, cfg, seed, daemon=None, max_steps=500_000):
    sdr = SDR(Unison(net))
    daemon = daemon or DistributedRandomDaemon(0.5)
    sim = Simulator(sdr, daemon, config=cfg, seed=seed)
    detector, _ = measure_stabilization(sim, sdr.is_normal, max_steps=max_steps)
    return sdr, sim, detector


class TestConvergence:
    @pytest.mark.parametrize("topo", ["ring", "grid", "random", "star", "tree"])
    def test_converges_from_random_configuration(self, topo):
        net = by_name(topo, 9, seed=0)
        sdr = SDR(Unison(net))
        cfg = sdr.random_configuration(Random(1))
        _, sim, detector = stabilize(net, cfg, seed=1)
        assert detector.hit
        assert detector.rounds <= bounds.unison_rounds_bound(net.n)
        assert detector.moves <= bounds.unison_move_bound(net.n, net.diameter)

    @pytest.mark.parametrize("scenario", [clock_gradient, clock_split])
    def test_converges_from_adversarial_clocks(self, scenario):
        net = ring(10)
        sdr = SDR(Unison(net))
        cfg = scenario(sdr)
        _, sim, detector = stabilize(net, cfg, seed=2)
        assert detector.rounds <= bounds.unison_rounds_bound(net.n)

    def test_converges_from_fake_reset_wave(self):
        net = grid(3, 3)
        sdr = SDR(Unison(net))
        cfg = fake_reset_wave(sdr, Random(3))
        _, sim, detector = stabilize(net, cfg, seed=3)
        assert detector.rounds <= bounds.unison_rounds_bound(net.n)

    def test_synchronous_daemon(self):
        net = ring(8)
        sdr = SDR(Unison(net))
        cfg = sdr.random_configuration(Random(4))
        _, sim, detector = stabilize(net, cfg, seed=4, daemon=SynchronousDaemon())
        assert detector.rounds <= bounds.unison_rounds_bound(net.n)


class TestAfterStabilization:
    def test_safety_and_liveness_hold_after_stabilization(self):
        net = ring(8)
        sdr = SDR(Unison(net))
        cfg = sdr.random_configuration(Random(5))
        sdr, sim, detector = stabilize(net, cfg, seed=5)
        trace = Trace()
        sim.trace = trace
        trace.start(sim.cfg)
        for _ in range(400):
            sim.step()
            assert safety_holds(net, sim.cfg, sdr.input.period)
        counts = increment_counts(trace)
        assert all(counts.get(u, 0) >= 3 for u in net.processes())

    def test_composition_is_not_silent(self):
        """Unison is a dynamic specification: the composition keeps moving
        forever after stabilization (unlike FGA ∘ SDR)."""
        net = ring(6)
        sdr = SDR(Unison(net))
        cfg = sdr.random_configuration(Random(6))
        _, sim, _ = stabilize(net, cfg, seed=6)
        result = sim.run(max_steps=300)
        assert result.stop_reason == "budget"

    def test_no_sdr_rule_fires_after_normality(self):
        net = ring(7)
        sdr = SDR(Unison(net))
        cfg = sdr.random_configuration(Random(7))
        _, sim, _ = stabilize(net, cfg, seed=7)
        before = dict(sim.moves_per_rule)
        sim.run(max_steps=300)
        for rule in ("rule_RB", "rule_RF", "rule_C", "rule_R"):
            assert sim.moves_per_rule.get(rule, 0) == before.get(rule, 0)


class TestLegitimacyClosure:
    def test_normal_configurations_are_closed(self):
        """Normal configurations form an attractor (Corollary 5)."""
        net = ring(6)
        sdr = SDR(Unison(net))
        cfg = sdr.random_configuration(Random(8))
        _, sim, _ = stabilize(net, cfg, seed=8)
        for _ in range(200):
            sim.step()
            assert sdr.is_normal(sim.cfg)

    def test_already_normal_start_stays_normal(self):
        net = ring(6)
        sdr = SDR(Unison(net))
        sim = Simulator(sdr, DistributedRandomDaemon(0.5),
                        config=sdr.initial_configuration(), seed=9)
        detector, _ = measure_stabilization(sim, sdr.is_normal, max_steps=10)
        assert detector.step == 0
        assert detector.moves == 0
