"""Tests for clock-skew analytics."""

from random import Random

import pytest

from repro.core import Configuration, DistributedRandomDaemon, Simulator, measure_stabilization
from repro.reset import SDR
from repro.topology import line, ring
from repro.unison import Unison, edge_offset, max_edge_skew, phase_spread, safety_holds


def clocks(*values):
    return Configuration([{"c": v} for v in values])


class TestEdgeOffset:
    def test_signed_offsets(self):
        assert edge_offset(0, 1, 10) == 1
        assert edge_offset(1, 0, 10) == -1
        assert edge_offset(0, 9, 10) == -1  # wraparound
        assert edge_offset(9, 0, 10) == 1
        assert edge_offset(3, 3, 10) == 0

    def test_half_period_convention(self):
        assert edge_offset(0, 5, 10) == 5  # exactly K/2 stays positive


class TestMaxEdgeSkew:
    def test_safe_configuration_has_skew_at_most_one(self):
        net = ring(4)
        assert max_edge_skew(net, clocks(0, 1, 1, 0), 5) == 1
        assert max_edge_skew(net, clocks(2, 2, 2, 2), 5) == 0

    def test_unsafe_configuration_reports_larger_skew(self):
        net = line(2)
        assert max_edge_skew(net, clocks(0, 3), 10) == 3


class TestPhaseSpread:
    def test_flat_configuration(self):
        net = ring(5)
        assert phase_spread(net, clocks(4, 4, 4, 4, 4), 6) == 0

    def test_gradient_on_a_line(self):
        net = line(4)
        assert phase_spread(net, clocks(0, 1, 2, 3), 10) == 3

    def test_spread_bounded_by_diameter_after_stabilization(self):
        net = ring(8)
        sdr = SDR(Unison(net))
        cfg = sdr.random_configuration(Random(3))
        sim = Simulator(sdr, DistributedRandomDaemon(0.5), config=cfg, seed=3)
        measure_stabilization(sim, sdr.is_normal, max_steps=200_000)
        period = sdr.input.period
        for _ in range(150):
            sim.step()
            assert safety_holds(net, sim.cfg, period)
            assert phase_spread(net, sim.cfg, period) <= net.diameter + 1
