"""Unit and behavioral tests for Algorithm U (standalone)."""

from random import Random

import pytest

from repro.core import (
    AlgorithmError,
    Configuration,
    DistributedRandomDaemon,
    Network,
    Simulator,
    SynchronousDaemon,
    Trace,
)
from repro.topology import ring
from repro.unison import Unison, liveness_holds, safety_holds

PATH = Network([(0, 1), (1, 2)])


def clocks(*values):
    return Configuration([{"c": v} for v in values])


class TestParameters:
    def test_default_period_is_n_plus_one(self):
        assert Unison(PATH).period == 4

    def test_period_must_exceed_n(self):
        with pytest.raises(AlgorithmError, match="K > n"):
            Unison(PATH, period=3)
        Unison(PATH, period=4)  # boundary accepted


class TestPredicates:
    def test_p_ok_is_circular(self):
        u = Unison(PATH, period=5)
        assert u.p_ok(clocks(0, 4, 0), 0, 1)  # 4 ≡ -1 mod 5
        assert u.p_ok(clocks(0, 1, 0), 0, 1)
        assert not u.p_ok(clocks(0, 2, 0), 0, 1)

    def test_p_icorrect_checks_all_neighbors(self):
        u = Unison(PATH, period=5)
        assert u.p_icorrect(clocks(1, 1, 2), 1)
        assert not u.p_icorrect(clocks(1, 3, 2), 1)

    def test_p_up_requires_on_time_or_one_ahead(self):
        u = Unison(PATH, period=5)
        assert u.p_up(clocks(1, 1, 0), 0)
        assert u.p_up(clocks(1, 2, 0), 0)
        assert not u.p_up(clocks(1, 0, 0), 0)  # neighbor one behind

    def test_p_reset_and_reset_updates(self):
        u = Unison(PATH, period=5)
        assert u.p_reset(clocks(0, 1, 2), 0)
        assert not u.p_reset(clocks(3, 1, 2), 0)
        assert u.reset_updates(clocks(3, 1, 2), 0) == {"c": 0}

    def test_increment_wraps(self):
        u = Unison(PATH, period=4)
        assert u.execute("rule_U", clocks(3, 3, 3), 0) == {"c": 0}


class TestStandaloneExecution:
    def test_gamma_init_all_zero(self):
        cfg = Unison(PATH).initial_configuration()
        assert cfg.variable("c") == [0, 0, 0]

    @pytest.mark.parametrize("seed", range(3))
    def test_safety_invariant_from_gamma_init(self, seed):
        """Corollary 7: safety holds along any execution from γ_init."""
        net = ring(6)
        u = Unison(net)
        sim = Simulator(u, DistributedRandomDaemon(0.5), seed=seed)
        for _ in range(300):
            sim.step()
            assert safety_holds(net, sim.cfg, u.period)

    @pytest.mark.parametrize("seed", range(3))
    def test_liveness_from_gamma_init(self, seed):
        """Lemma 19: every process increments forever (bounded check)."""
        net = ring(6)
        u = Unison(net)
        trace = Trace()
        sim = Simulator(u, DistributedRandomDaemon(0.5), seed=seed, trace=trace)
        sim.run(max_steps=400)
        assert liveness_holds(trace, net.n, min_increments=5)

    def test_never_terminates_from_gamma_init(self):
        """Lemma 18: no terminal configuration is reachable from γ_init."""
        net = ring(5)
        u = Unison(net)
        sim = Simulator(u, SynchronousDaemon(), seed=0)
        result = sim.run(max_steps=200)
        assert result.stop_reason == "budget"
        assert not result.terminal

    def test_k_greater_than_n_is_necessary(self):
        """With K = n a ring can deadlock (the Lemma 18 counterexample):
        clocks 0,1,…,n−1 make every process one behind some neighbor."""
        net = ring(4)

        class TooSmall(Unison):
            def __init__(self, network):
                super().__init__(network, period=network.n + 1)
                self.period = network.n  # bypass the constructor guard

        u = TooSmall(net)
        cfg = clocks(0, 1, 2, 3)
        assert u.is_terminal(cfg)

    def test_gradient_wave_catches_up(self):
        """A gradient within the safety envelope lets late processes run."""
        net = Network([(0, 1), (1, 2), (2, 3)])
        u = Unison(net, period=6)
        cfg = Configuration([{"c": 2}, {"c": 1}, {"c": 1}, {"c": 0}])
        sim = Simulator(u, SynchronousDaemon(), config=cfg, seed=0)
        sim.run(max_steps=50)
        assert safety_holds(net, sim.cfg, 6)


class TestDisabledWhenDirty:
    def test_requirement_2c_shape(self):
        """With an incoherent neighbor, a process cannot tick (its own
        P_Up fails), matching Requirement 2c without SDR present."""
        u = Unison(PATH, period=5)
        cfg = clocks(0, 2, 2)
        assert not u.guard("rule_U", cfg, 0)
        assert not u.guard("rule_U", cfg, 1)
        assert u.guard("rule_U", cfg, 2)  # its own neighborhood is coherent

    def test_lemma20_move_bound_standalone(self):
        """Lemma 20: from a non-clean configuration, each process moves at
        most 3D times in standalone U."""
        net = ring(8)
        u = Unison(net, period=9)
        cfg = Configuration([{"c": 0 if i < 4 else 4} for i in range(8)])
        sim = Simulator(u, DistributedRandomDaemon(0.7), config=cfg, seed=2)
        sim.run(max_steps=5_000)
        assert max(sim.moves_per_process) <= 3 * net.diameter
