"""Edge-case coverage for unison: tiny networks, boundary periods,
single-process systems, and n=2 lines."""

from random import Random

import pytest

from repro.core import (
    DistributedRandomDaemon,
    Network,
    Simulator,
    SynchronousDaemon,
    measure_stabilization,
)
from repro.reset import SDR
from repro.topology import line, ring
from repro.unison import BoulinierUnison, Unison, safety_holds
from repro.analysis import bounds


class TestTinyNetworks:
    def test_two_process_line(self):
        net = line(2)
        sdr = SDR(Unison(net))  # K = 3
        assert sdr.input.period == 3
        for seed in range(5):
            cfg = sdr.random_configuration(Random(seed))
            sim = Simulator(sdr, DistributedRandomDaemon(0.5), config=cfg, seed=seed)
            detector, _ = measure_stabilization(sim, sdr.is_normal, max_steps=50_000)
            assert detector.rounds <= bounds.sdr_rounds_bound(2)

    def test_single_process_network(self):
        net = Network.single()
        u = Unison(net, period=2)
        sim = Simulator(u, SynchronousDaemon(), seed=0)
        # With no neighbors P_Up is vacuous: the clock free-runs.
        sim.run(max_steps=10)
        assert sim.move_count == 10

    def test_minimum_period_boundary(self):
        net = ring(5)
        sdr = SDR(Unison(net, period=6))  # K = n + 1 exactly
        cfg = sdr.random_configuration(Random(1))
        sim = Simulator(sdr, DistributedRandomDaemon(0.5), config=cfg, seed=1)
        detector, _ = measure_stabilization(sim, sdr.is_normal, max_steps=100_000)
        sim.run(max_steps=300)
        assert safety_holds(net, sim.cfg, 6)

    def test_huge_period(self):
        net = ring(4)
        sdr = SDR(Unison(net, period=1000))
        cfg = sdr.random_configuration(Random(2))
        sim = Simulator(sdr, DistributedRandomDaemon(0.5), config=cfg, seed=2)
        detector, _ = measure_stabilization(sim, sdr.is_normal, max_steps=100_000)
        assert detector.rounds <= bounds.sdr_rounds_bound(4)


class TestClockWraparound:
    def test_clocks_wrap_safely_at_period_boundary(self):
        net = ring(4)
        u = Unison(net, period=5)
        from repro.core import Configuration

        cfg = Configuration([{"c": 4}] * 4)
        sim = Simulator(u, SynchronousDaemon(), config=cfg, seed=0)
        sim.step()
        assert sim.cfg.variable("c") == [0, 0, 0, 0]
        for _ in range(20):
            sim.step()
            assert safety_holds(net, sim.cfg, 5)

    def test_mixed_wraparound_edge(self):
        net = line(2)
        u = Unison(net, period=5)
        from repro.core import Configuration

        cfg = Configuration([{"c": 4}, {"c": 0}])  # 0 is one behind (circular)
        assert u.p_icorrect(cfg, 0)
        assert u.p_up(cfg, 0)  # neighbor one ahead
        assert not u.p_up(cfg, 1)  # neighbor one behind


class TestBoulinierEdgeCases:
    def test_two_process_line_converges(self):
        net = line(2)
        algo = BoulinierUnison(net)
        for seed in range(5):
            cfg = algo.random_configuration(Random(seed))
            sim = Simulator(algo, DistributedRandomDaemon(0.5), config=cfg, seed=seed)
            detector, _ = measure_stabilization(sim, algo.is_legitimate, max_steps=100_000)
            assert detector.hit

    def test_deep_tail_start_climbs_out(self):
        net = line(3)
        algo = BoulinierUnison(net, period=10, alpha=5)
        from repro.core import Configuration

        cfg = Configuration([{"r": -5}, {"r": -3}, {"r": -1}])
        sim = Simulator(algo, SynchronousDaemon(), config=cfg, seed=0)
        detector, _ = measure_stabilization(sim, algo.is_legitimate, max_steps=10_000)
        assert detector.hit

    def test_alpha_one_behaves(self):
        net = ring(5)
        algo = BoulinierUnison(net, period=26, alpha=1)
        cfg = algo.random_configuration(Random(4))
        sim = Simulator(algo, DistributedRandomDaemon(0.5), config=cfg, seed=4)
        detector, _ = measure_stabilization(sim, algo.is_legitimate, max_steps=500_000)
        assert detector.hit
