"""Public API surface tests: everything advertised is importable and wired."""

import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.topology",
            "repro.reset",
            "repro.unison",
            "repro.alliance",
            "repro.baselines",
            "repro.faults",
            "repro.analysis",
            "repro.harness",
        ],
    )
    def test_subpackage_all_exports_resolve(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"

    def test_py_typed_marker_ships(self):
        import pathlib

        pkg_dir = pathlib.Path(repro.__file__).parent
        assert (pkg_dir / "py.typed").exists()


class TestEndToEndViaPublicApi:
    def test_readme_snippet(self):
        """The README quickstart snippet must keep working verbatim."""
        from random import Random

        from repro import SDR, Simulator, Unison, DistributedRandomDaemon, topology
        from repro.core import measure_stabilization

        net = topology.ring(10)
        algo = SDR(Unison(net))
        start = algo.random_configuration(Random(0))
        sim = Simulator(algo, DistributedRandomDaemon(0.5), config=start, seed=0)
        detector, _ = measure_stabilization(sim, algo.is_normal)
        assert detector.rounds <= 3 * net.n

    def test_every_documented_algorithm_instantiates(self):
        from repro import FGA, BoulinierUnison, TurauMIS, Unison, topology
        from repro.baselines import BfsTree, LeaderElection, MonoReset
        from repro.reset import SDR

        net = topology.ring(5)
        algos = [
            SDR(Unison(net)),
            SDR(FGA(net, 1, 0)),
            BoulinierUnison(net),
            TurauMIS(net),
            BfsTree(net),
            LeaderElection(net),
            MonoReset(Unison(net)),
        ]
        for algo in algos:
            cfg = algo.initial_configuration()
            assert len(cfg) == net.n
            for u in net.processes():
                algo.validate_state(cfg[u], u)
