"""Unit tests for graph properties used in unison parameter choices."""

import pytest

from repro.topology import (
    complete,
    cyclomatic_characteristic_exact,
    cyclomatic_characteristic_upper_bound,
    line,
    longest_chordless_cycle,
    lollipop,
    random_tree,
    ring,
    safe_unison_parameters,
)


class TestLongestChordlessCycle:
    def test_tree_convention(self):
        assert longest_chordless_cycle(line(6)) == 2
        assert longest_chordless_cycle(random_tree(10, seed=1)) == 2

    def test_ring_is_its_own_hole(self):
        assert longest_chordless_cycle(ring(7)) == 7

    def test_complete_graph_has_only_triangles(self):
        assert longest_chordless_cycle(complete(6)) == 3

    def test_lollipop(self):
        # Clique contributes triangles; the tail contributes no cycle.
        assert longest_chordless_cycle(lollipop(4, 3)) == 3


class TestCyclomaticCharacteristic:
    def test_tree_convention(self):
        assert cyclomatic_characteristic_upper_bound(line(5)) == 2
        assert cyclomatic_characteristic_exact(line(5)) == 2

    def test_ring_exact(self):
        # A cycle has exactly one fundamental cycle: the whole ring.
        assert cyclomatic_characteristic_exact(ring(5)) == 5

    def test_upper_bound_dominates_exact(self):
        for net in (ring(5), complete(5), lollipop(4, 2)):
            assert cyclomatic_characteristic_upper_bound(net) >= \
                cyclomatic_characteristic_exact(net)

    def test_exact_refuses_large_graphs(self):
        with pytest.raises(ValueError):
            cyclomatic_characteristic_exact(ring(11), max_n=10)

    def test_complete_exact_is_triangle(self):
        assert cyclomatic_characteristic_exact(complete(5)) == 3


class TestSafeParameters:
    @pytest.mark.parametrize("net", [ring(6), line(6), complete(5)])
    def test_parameters_meet_requirements(self, net):
        k, alpha = safe_unison_parameters(net)
        assert k > net.n
        assert alpha >= longest_chordless_cycle(net) - 2
        assert alpha >= 1
