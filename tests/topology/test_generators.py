"""Unit tests for topology generators."""

import networkx as nx
import pytest

from repro.core import TopologyError
from repro.topology import (
    TOPOLOGIES,
    binary_tree,
    by_name,
    caterpillar,
    complete,
    grid,
    hypercube,
    line,
    lollipop,
    random_connected,
    random_regular,
    random_tree,
    ring,
    star,
    torus,
)


def assert_connected(net):
    assert nx.is_connected(net.to_networkx())


class TestNamedShapes:
    def test_ring(self):
        net = ring(6)
        assert net.n == 6 and net.m == 6
        assert all(net.degree(u) == 2 for u in net.processes())
        assert net.diameter == 3

    def test_ring_too_small(self):
        with pytest.raises(TopologyError):
            ring(2)

    def test_line(self):
        net = line(5)
        assert net.n == 5 and net.m == 4
        assert net.diameter == 4

    def test_star(self):
        net = star(7)
        assert net.n == 7 and net.m == 6
        assert net.max_degree == 6
        assert net.diameter == 2

    def test_complete(self):
        net = complete(5)
        assert net.m == 10
        assert net.diameter == 1

    def test_grid(self):
        net = grid(3, 4)
        assert net.n == 12 and net.m == 3 * 3 + 4 * 2  # 17 edges
        assert net.diameter == 5

    def test_torus(self):
        net = torus(3, 3)
        assert net.n == 9
        assert all(net.degree(u) == 4 for u in net.processes())

    def test_torus_too_small(self):
        with pytest.raises(TopologyError):
            torus(2, 3)

    def test_binary_tree(self):
        net = binary_tree(3)
        assert net.n == 15
        assert net.m == 14

    def test_hypercube(self):
        net = hypercube(3)
        assert net.n == 8
        assert all(net.degree(u) == 3 for u in net.processes())

    def test_caterpillar(self):
        net = caterpillar(4, 2)
        assert net.n == 4 + 8
        assert_connected(net)

    def test_lollipop(self):
        net = lollipop(4, 3)
        assert net.n == 7
        assert net.max_degree == 4


class TestRandomShapes:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_connected_is_connected(self, seed):
        net = random_connected(15, p=0.1, seed=seed)
        assert net.n == 15
        assert_connected(net)

    def test_random_connected_seed_deterministic(self):
        a = random_connected(10, p=0.3, seed=4)
        b = random_connected(10, p=0.3, seed=4)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_random_connected_p_one_is_complete(self):
        net = random_connected(6, p=1.0, seed=0)
        assert net.m == 15

    def test_random_tree_is_tree(self):
        for seed in range(4):
            net = random_tree(12, seed=seed)
            assert net.m == net.n - 1
            assert_connected(net)

    def test_random_regular(self):
        net = random_regular(10, 3, seed=1)
        assert all(net.degree(u) == 3 for u in net.processes())
        assert_connected(net)

    def test_random_regular_invalid(self):
        with pytest.raises(TopologyError):
            random_regular(4, 5, seed=0)

    def test_invalid_probability(self):
        with pytest.raises(TopologyError):
            random_connected(5, p=1.5)


class TestRegistry:
    @pytest.mark.parametrize("name", sorted(TOPOLOGIES))
    def test_by_name_builds_connected_networks(self, name):
        net = by_name(name, 9, seed=2)
        assert net.n >= 9 if name == "grid" else net.n == 9
        assert_connected(net)

    def test_unknown_name(self):
        with pytest.raises(TopologyError, match="unknown topology"):
            by_name("donut", 9)
