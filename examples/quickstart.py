"""Quickstart: make asynchronous unison self-stabilizing with SDR.

This is the paper's headline pipeline in ~40 lines:

1. build an anonymous network;
2. wrap Algorithm U (unison) in Algorithm SDR (the cooperative reset);
3. start from an *arbitrary* configuration — the adversary's choice;
4. watch the composition stabilize within the proven bounds, then keep
   ticking safely forever.

Run:  python examples/quickstart.py
"""

from random import Random

from repro import DistributedRandomDaemon, SDR, Simulator, Unison, topology
from repro.analysis import bounds
from repro.core import measure_stabilization
from repro.unison import safety_holds

def main() -> None:
    net = topology.ring(10)
    print(f"network: {net}  (diameter D={net.diameter})")

    # The composition U ∘ SDR: SDR hosts U and resets it on inconsistency.
    algo = SDR(Unison(net))

    # Self-stabilization quantifies over *arbitrary* initial configurations:
    rng = Random(2024)
    start = algo.random_configuration(rng)
    print("corrupted clocks :", start.variable("c"))
    print("corrupted status :", start.variable("st"))

    sim = Simulator(algo, DistributedRandomDaemon(0.5), config=start, seed=7)
    detector, _ = measure_stabilization(sim, algo.is_normal)

    n = net.n
    print(
        f"stabilized in {detector.rounds} rounds "
        f"(theorem bound 3n = {bounds.unison_rounds_bound(n)}) "
        f"and {detector.moves} moves "
        f"(bound O(D n^2) = {bounds.unison_move_bound(n, net.diameter)})"
    )

    # After stabilization the unison specification holds forever.
    for _ in range(200):
        sim.step()
        assert safety_holds(net, sim.cfg, algo.input.period)
    print("post-stabilization clocks:", sim.cfg.variable("c"))
    print("safety held for 200 further steps — clocks tick in lockstep ±1.")


if __name__ == "__main__":
    main()
