"""Scenario: clock synchronization in a sensor grid with transient faults.

A 5×5 mesh of anonymous sensors runs the self-stabilizing unison
``U ∘ SDR`` as its slot-synchronization layer (the dynamic-specification
use case from the paper's introduction).  Radiation bursts periodically
corrupt a handful of nodes' registers — clocks *and* the reset layer's own
variables.  The demo shows each burst being absorbed: the cooperative
resets stay near the damage, and the grid re-synchronizes within the 3n
round bound every time.

Run:  python examples/clock_sync_sensor_grid.py
"""

from random import Random

from repro import DistributedRandomDaemon, SDR, Simulator, Unison, topology
from repro.analysis import bounds
from repro.core import measure_stabilization
from repro.faults import FaultPlan
from repro.harness.experiments import SdrMoveCounter
from repro.unison import safety_holds


def show_clocks(net, cfg, cols: int = 5) -> None:
    for row_start in range(0, net.n, cols):
        row = cfg.variable("c")[row_start : row_start + cols]
        print("   ", " ".join(f"{c:2d}" for c in row))


def main() -> None:
    net = topology.grid(5, 5)
    sdr = SDR(Unison(net))
    rng = Random(99)
    plan = FaultPlan(k=3, clustered=True)  # bursts hit one physical area

    cfg = sdr.initial_configuration()
    print(f"sensor grid: {net}, unison period K={sdr.input.period}\n")

    for burst in range(1, 4):
        cfg, victims = plan.apply(sdr, cfg, rng)
        print(f"burst {burst}: transient fault hits sensors {sorted(victims)}")

        counter = SdrMoveCounter(net.n)
        sim = Simulator(
            sdr, DistributedRandomDaemon(0.5), config=cfg, seed=burst,
            observers=[counter],
        )
        detector, _ = measure_stabilization(sim, sdr.is_normal)
        print(
            f"  recovered in {detector.rounds} rounds "
            f"(bound {bounds.sdr_rounds_bound(net.n)}), "
            f"{detector.moves} moves; "
            f"{counter.touched}/{net.n} sensors took part in a reset"
        )

        # Normal operation between bursts: everything stays safe.
        sim.run(max_steps=120)
        assert safety_holds(net, sim.cfg, sdr.input.period)
        print("  clocks after resynchronization:")
        show_clocks(net, sim.cfg)
        cfg = sim.cfg
        print()

    print("three bursts absorbed; the grid never needed outside help.")


if __name__ == "__main__":
    main()
