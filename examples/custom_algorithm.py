"""Tutorial: self-stabilize *your own* algorithm with SDR.

SDR turns any locally checkable algorithm satisfying the Section 3.5
requirements into a self-stabilizing one.  This example builds a greedy
**conflict-free channel assignment** (graph coloring, e.g. radio frequency
allocation) from scratch and hands it to SDR:

* ``P_ICorrect(u)``  — no neighbor uses my channel (locally checkable);
* ``P_reset(u)``     — my channel is my unique identifier (always proper);
* ``reset(u)``       — jump back to the identifier channel;
* one improvement rule — move to the smallest free channel, tie-broken by
  identifier so concurrent moves never create new conflicts (keeps
  ``P_ICorrect`` closed, Requirement 2a).

The runtime requirement checker validates the contract dynamically while
the composition stabilizes from arbitrary channel assignments.

Run:  python examples/custom_algorithm.py
"""

from random import Random

from repro import DistributedRandomDaemon, SDR, Simulator, topology
from repro.core import measure_stabilization
from repro.reset import InputAlgorithm, RequirementObserver


class ChannelAssignment(InputAlgorithm):
    """Greedy descending channel assignment (identified network)."""

    name = "channels"
    mutually_exclusive_rules = True

    # -- the SDR contract ------------------------------------------------
    def p_icorrect(self, cfg, u):
        return all(cfg[v]["chan"] != cfg[u]["chan"] for v in self.network.neighbors(u))

    def p_reset(self, cfg, u):
        return cfg[u]["chan"] == self.network.id_of(u)

    def reset_updates(self, cfg, u):
        return {"chan": self.network.id_of(u)}

    # -- the algorithm itself ---------------------------------------------
    def _smallest_free(self, cfg, u):
        taken = {cfg[v]["chan"] for v in self.network.neighbors(u)}
        chan = 0
        while chan in taken:
            chan += 1
        return chan

    def _wants_move(self, cfg, u):
        return self.p_icorrect(cfg, u) and self._smallest_free(cfg, u) < cfg[u]["chan"]

    def variables(self):
        return ("chan",)

    def rule_names(self):
        return ("rule_improve",)

    def guard(self, rule, cfg, u):
        self.check_rule(rule)
        if not (self.p_clean(cfg, u) and self._wants_move(cfg, u)):
            return False
        # Local tie-break: move only if no moving neighbor has a larger id
        # (keeps simultaneous moves conflict-free, so P_ICorrect is closed).
        my_id = self.network.id_of(u)
        return all(
            not self._wants_move(cfg, v) or self.network.id_of(v) < my_id
            for v in self.network.neighbors(u)
        )

    def execute(self, rule, cfg, u):
        self.check_rule(rule)
        return {"chan": self._smallest_free(cfg, u)}

    def initial_state(self, u):
        return {"chan": self.network.id_of(u)}

    def random_state(self, u, rng):
        return {"chan": rng.randrange(2 * self.network.n)}


def main() -> None:
    net = topology.random_connected(12, p=0.3, seed=3)
    algo = SDR(ChannelAssignment(net))

    start = algo.random_configuration(Random(1))  # arbitrary channels + statuses
    conflicts = sum(
        1 for u, v in net.edges() if start[u]["chan"] == start[v]["chan"]
    )
    print(f"network {net}; starting with {conflicts} channel conflicts")

    observer = RequirementObserver(algo)  # validates Requirements 1, 2a-2e live
    sim = Simulator(
        algo, DistributedRandomDaemon(0.5), config=start, seed=1,
        observers=[observer],
    )
    detector, _ = measure_stabilization(sim, algo.is_normal)
    print(f"conflict-free after {detector.rounds} rounds / {detector.moves} moves")

    sim.run(max_steps=5_000)  # let the improvement rule finish (it is silent)
    channels = sim.cfg.variable("chan")
    print("final channels:", channels)
    assert all(channels[u] != channels[v] for u, v in net.edges())
    print(f"channels used: {len(set(channels))} (graph degree Δ={net.max_degree})")
    print("requirement checker observed no violation — the contract holds.")


if __name__ == "__main__":
    main()
