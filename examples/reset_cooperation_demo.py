"""Visual walkthrough: two concurrent resets cooperating on a ring.

Two antipodal fault sites both detect inconsistencies and initiate resets
(SDR is multi-initiator).  The demo prints the ring after every step —
status (C / RB / RF), reset distance, and clock — so you can watch the two
broadcast waves grow toward each other, agree on a distance DAG instead of
fighting, feed back, and complete.  The alive-root count is shown shrinking
(Theorem 3: alive roots are never created, only consumed).

Run:  python examples/reset_cooperation_demo.py
"""

from repro import SDR, Simulator, SynchronousDaemon, Unison, topology
from repro.reset.analysis import alive_roots, dead_roots


def paint(sdr, cfg, step: int) -> None:
    n = sdr.network.n
    status = " ".join(f"{cfg[u]['st']:>2}" for u in range(n))
    dists = " ".join(f"{cfg[u]['d']:>2}" for u in range(n))
    clocks = " ".join(f"{cfg[u]['c']:>2}" for u in range(n))
    ar = len(alive_roots(sdr, cfg))
    dr = len(dead_roots(sdr, cfg))
    print(f"step {step:2d} | st: {status} | d: {dists} | c: {clocks} "
          f"| alive roots: {ar}  dead roots: {dr}")


def main() -> None:
    net = topology.ring(10)
    sdr = SDR(Unison(net))

    cfg = sdr.initial_configuration()
    cfg.set(0, "c", 4)  # fault site A
    cfg.set(5, "c", 8)  # fault site B, antipodal

    print("ring of 10; clocks corrupted at processes 0 and 5\n")
    sim = Simulator(sdr, SynchronousDaemon(), config=cfg, seed=0)
    paint(sdr, sim.cfg, 0)
    step = 0
    while not sdr.is_normal(sim.cfg):
        sim.step()
        step += 1
        paint(sdr, sim.cfg, step)
        if step > 100:
            raise RuntimeError("did not converge (unexpected)")

    print(
        f"\nnormal configuration reached in {sim.rounds.completed} rounds "
        f"/ {sim.move_count} moves; both resets ran concurrently and merged "
        "their broadcast waves at the DAG frontier instead of restarting "
        "each other."
    )
    initiations = sim.moves_per_rule.get("rule_R", 0)
    joins = sim.moves_per_rule.get("rule_RB", 0)
    print(f"rule_R initiations: {initiations}, rule_RB joins: {joins}")


if __name__ == "__main__":
    main()
