"""Scenario: self-stabilizing replica placement via (f,g)-alliances.

The paper motivates (f,g)-alliances with server allocation and quorum
placement (Gupta et al.): pick a set A of machines hosting a service so
that every client machine (u ∉ A) has at least f(u) = 2 replica neighbors
(fault-tolerant access) and every replica (v ∈ A) has at least g(v) = 1
replica neighbor (peer for state sync).  ``FGA ∘ SDR`` computes a
1-minimal such placement in a *silent*, self-stabilizing way: after any
corruption of the placement registers, the system converges back to a
valid minimal-by-deletion placement and then stops communicating.

Run:  python examples/alliance_server_placement.py
"""

from random import Random

from repro import DistributedRandomDaemon, FGA, SDR, Simulator, topology
from repro.alliance import is_alliance, is_one_minimal
from repro.analysis import bounds


def describe(net, members) -> None:
    print(f"  placement: {sorted(members)}  ({len(members)}/{net.n} machines)")
    worst_access = min(
        sum(1 for v in net.neighbors(u) if v in members)
        for u in net.processes()
        if u not in members
    )
    print(f"  every client sees >= {worst_access} replicas (need 2)")


def main() -> None:
    # A datacenter-ish topology: random connected graph, min degree >= 2.
    net = None
    for seed in range(100):
        candidate = topology.random_connected(16, p=0.28, seed=seed)
        if min(candidate.degrees) >= 2:
            net = candidate
            break
    assert net is not None
    print(f"cluster network: {net}")

    f = [2] * net.n  # clients need two replica neighbors
    g = [1] * net.n  # replicas need one replica peer
    sdr = SDR(FGA(net, f, g))

    # Start from garbage: the registers hold arbitrary junk.
    start = sdr.random_configuration(Random(5))
    sim = Simulator(sdr, DistributedRandomDaemon(0.5), config=start, seed=5)
    result = sim.run_to_termination()

    members = sdr.input.alliance(sim.cfg)
    print(f"\nconverged and went silent after {result.moves} moves, "
          f"{result.rounds} rounds (bound {bounds.fga_sdr_rounds_bound(net.n)})")
    describe(net, members)
    assert is_alliance(net, members, f, g)
    assert is_one_minimal(net, members, f, g)
    print("  placement is a 1-minimal (2,1)-alliance: dropping any single "
          "replica breaks a client's redundancy.")

    # Operator error: someone decommissions three replicas by hand.
    broken = sim.cfg.copy()
    for u in sorted(members)[:3]:
        broken.set(u, "col", False)
    print("\noperator decommissions three replicas — placement now "
          f"{'valid' if is_alliance(net, sdr.input.alliance(broken), f, g) else 'INVALID'}")

    sim2 = Simulator(sdr, DistributedRandomDaemon(0.5), config=broken, seed=6)
    result2 = sim2.run_to_termination()
    members2 = sdr.input.alliance(sim2.cfg)
    print(f"self-healed in {result2.moves} moves; new placement below")
    describe(net, members2)
    assert is_one_minimal(net, members2, f, g)


if __name__ == "__main__":
    main()
