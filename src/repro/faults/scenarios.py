"""Adversarial initial configurations for worst-case benchmarks.

Random configurations rarely exercise worst cases; these builders construct
structured adversarial starting points for the two instantiations:

* clock gradients and antipodal clock splits for unison (forcing long
  catch-up cascades or resets);
* fake in-progress resets for SDR (statuses and distances arranged as
  plausible-but-corrupt broadcast/feedback waves);
* hollowed-out alliances for FGA (all processes out of the alliance, the
  worst violation of ``realScr ≥ 0``).
"""

from __future__ import annotations

from random import Random

from ..core.configuration import Configuration
from ..reset.sdr import DIST, RB, RF, SDR, ST, C

__all__ = [
    "clock_gradient",
    "clock_split",
    "fake_reset_wave",
    "hollow_alliance",
]


def clock_gradient(sdr: SDR, clock_var: str = "c") -> Configuration:
    """Clocks proportional to the process index modulo the period.

    Produces many locally-incorrect edges in most topologies, seeding many
    concurrent resets — the multi-initiator scenario SDR coordinates.
    """
    period = getattr(sdr.input, "period")
    cfg = sdr.initial_configuration()
    for u in sdr.network.processes():
        cfg.set(u, clock_var, (3 * u) % period)
    return cfg


def clock_split(sdr: SDR, clock_var: str = "c") -> Configuration:
    """Half the processes at clock 0, half at the antipodal value.

    Edges inside each half are correct; edges across are maximally wrong.
    """
    period = getattr(sdr.input, "period")
    cfg = sdr.initial_configuration()
    far = period // 2
    for u in sdr.network.processes():
        cfg.set(u, clock_var, 0 if u < sdr.network.n // 2 else far)
    return cfg


def fake_reset_wave(sdr: SDR, rng: Random, fraction: float = 0.5) -> Configuration:
    """A corrupted in-progress reset: a region of RB/RF with BFS distances.

    Starts from ``γ_init`` and paints a connected region (a BFS ball around
    a random seed covering ``fraction`` of the network) with broadcast and
    feedback statuses whose distances mimic a real wave, but whose input
    states are *not* reset — exactly the inconsistent residue a transient
    fault can leave in SDR's own variables.
    """
    network = sdr.network
    cfg = sdr.initial_configuration()
    target = max(1, int(fraction * network.n))
    seed = rng.randrange(network.n)
    frontier = [seed]
    depth = {seed: 0}
    order = []
    while frontier and len(order) < target:
        u = frontier.pop(0)
        order.append(u)
        for v in network.neighbors(u):
            if v not in depth:
                depth[v] = depth[u] + 1
                frontier.append(v)
    for u in order:
        status = RB if rng.random() < 0.5 else RF
        cfg.set(u, ST, status)
        cfg.set(u, DIST, depth[u])
        # Scramble the input state so P_reset generally fails inside the wave.
        junk = sdr.input.random_state(u, rng)
        for var, value in junk.items():
            cfg.set(u, var, value)
    return cfg


def hollow_alliance(sdr: SDR, col_var: str = "col") -> Configuration:
    """Everybody out of the alliance: the maximal (f,g) violation.

    Recovery requires a network-wide reset back to the full alliance and a
    complete re-execution of the removal phase — FGA ∘ SDR's worst case.
    """
    cfg = sdr.initial_configuration()
    for u in sdr.network.processes():
        cfg.set(u, col_var, False)
    return cfg
