"""Declarative, seeded topology churn schedules.

Where :mod:`repro.faults.schedule` corrupts *register contents*, churn
mutates the *communication graph* mid-run: links appear and disappear
(``add_edge``/``drop_edge``), processes crash (silenced — state frozen,
every incident link removed, masked out of guard evaluation, daemon
selection, and move/round accounting) and later rejoin with arbitrary
state drawn from the algorithm's declared domains (``join`` — which is
exactly the self-stabilization premise: a joining process is
indistinguishable from an arbitrarily corrupted one).

Determinism is load-bearing, same as fault schedules: every occurrence
draws from a dedicated SHA-256-derived PRNG keyed on ``(seed, event
index, occurrence index)``.  Unlike faults, a churn draw is
*state-dependent* — which links can drop depends on which links exist —
so the bound schedule owns the canonical topology state (liveness
vector + current adjacency) and updates it at draw time.  Both engines
replay the identical occurrence stream, so dict, stepped-kernel, and
fused executions see byte-identical topology sequences under one seed.

Spec grammar reuses the fault timing surface (``at/every/storm/burst``
with ``start/count/gap/cadence/until``), the action carries ``k``::

    every=50,crash=1                 crash one process every 50 steps
    at=100,drop_edge=2               drop two links at step 100
    burst=200,count=3,gap=80,join=1  three rejoins at 200/280/360
    every=40,crash=1;every=60,join=1,connectivity=allow

``procs=a|b`` restricts the candidate pool (crash/join), ``clustered``
crashes a BFS-connected region, ``connectivity=preserve`` (the default)
refuses candidates that would increase the live subgraph's component
count; ``connectivity=allow`` permits disconnection, and every
occurrence records the resulting component count either way.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from random import Random
from typing import Iterator, Sequence

__all__ = [
    "ChurnEvent",
    "ChurnSchedule",
    "ChurnInfo",
    "BoundChurnSchedule",
    "parse_churn",
]

#: Occurrence actions, in spec-key form.
ACTIONS = ("crash", "join", "drop_edge", "add_edge")

#: Connectivity policies.
CONNECTIVITY = ("preserve", "allow")

_SEP = "\x1f"
_SEED_MASK = (1 << 63) - 1


def _occurrence_rng(seed: int, event: int, occurrence: int) -> Random:
    """The dedicated PRNG for one occurrence of one churn event.

    Keyed on identity, not on firing step (a pulled-forward occurrence
    draws like its nominally-timed twin), with a tag distinct from the
    fault stream so co-scheduled fault and churn events never share
    randomness.
    """
    payload = f"{seed}{_SEP}churn{_SEP}{event}{_SEP}{occurrence}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return Random(int.from_bytes(digest[:8], "big") & _SEED_MASK)


@dataclass(frozen=True)
class ChurnEvent:
    """One timed topology mutation pattern inside a schedule.

    Timing normalizes exactly like :class:`~repro.faults.schedule.FaultEvent`:
    every surface form becomes ``(start, gap, count)``.  ``action`` is what
    fires; ``k`` how many processes/links one occurrence touches.
    """

    action: str  # "crash" | "join" | "drop_edge" | "add_edge"
    kind: str  # "at" | "every" | "storm" | "burst"
    start: int
    gap: int = 0
    count: int | None = 1
    k: int = 1
    procs: tuple[int, ...] = ()
    clustered: bool = False

    def __post_init__(self):
        if self.action not in ACTIONS:
            raise ValueError(f"unknown churn action {self.action!r}")
        if self.kind not in ("at", "every", "storm", "burst"):
            raise ValueError(f"unknown churn event kind {self.kind!r}")
        if self.start < 0:
            raise ValueError("churn event start step must be >= 0")
        if self.count is not None and self.count < 1:
            raise ValueError("churn event count must be >= 1")
        if (self.count is None or self.count > 1) and self.gap < 1:
            raise ValueError("repeating churn events need gap >= 1")
        if self.k < 1:
            raise ValueError("churn events must touch at least one target (k >= 1)")
        if self.procs and self.action not in ("crash", "join"):
            raise ValueError("procs= applies only to crash/join churn events")
        if self.clustered and self.action != "crash":
            raise ValueError("clustered applies only to crash churn events")
        if self.procs and self.clustered:
            raise ValueError("explicit procs and clustered are mutually exclusive")

    def occurrence_steps(self) -> Iterator[int]:
        """Nominal firing steps, in order (infinite for unbounded events)."""
        step, i = self.start, 0
        while self.count is None or i < self.count:
            yield step
            step += self.gap
            i += 1

    def canonical(self) -> str:
        """The normalized spec clause for this event."""
        if self.kind == "at":
            parts = [f"at={self.start}"]
        elif self.kind == "every":
            parts = [f"every={self.gap}"]
            if self.start != self.gap:
                parts.append(f"start={self.start}")
            if self.count is not None:
                parts.append(f"count={self.count}")
        elif self.kind == "storm":
            last = self.start + (self.count - 1) * self.gap
            parts = [f"storm={self.start}-{last}", f"cadence={self.gap}"]
        else:  # burst
            parts = [f"burst={self.start}", f"count={self.count}", f"gap={self.gap}"]
        parts.append(f"{self.action}={self.k}")
        if self.procs:
            parts.append("procs=" + "|".join(str(p) for p in self.procs))
        if self.clustered:
            parts.append("clustered")
        return ",".join(parts)


@dataclass(frozen=True)
class ChurnInfo:
    """What the drivers hand to ``Probe.on_churn`` at each occurrence.

    ``dropped``/``added`` are the link deltas actually applied (crash
    reports its incident links under ``dropped``, join its reconnections
    under ``added``); ``components`` and ``live`` describe the live
    subgraph *after* the mutation.  ``step``/``moves``/``rounds`` are
    the execution's accounting totals at the mutated configuration.
    """

    step: int
    nominal_step: int
    burst: int
    action: str
    victims: tuple[int, ...]
    dropped: tuple[tuple[int, int], ...]
    added: tuple[tuple[int, int], ...]
    components: int
    live: int
    moves: int = 0
    rounds: int = 0


class ChurnSchedule:
    """An ordered collection of :class:`ChurnEvent`, plus seed and policy.

    ``seed=None`` defers to the execution (the harness binds with a
    trial-derived seed); an explicit seed pins the stream and joins the
    canonical spec.  ``connectivity`` is schedule-wide: ``preserve``
    (default) draws only candidates that keep the live subgraph's
    component count from growing, ``allow`` lets churn partition it.
    """

    def __init__(
        self,
        events: Sequence[ChurnEvent],
        seed: int | None = None,
        connectivity: str = "preserve",
    ):
        if not events:
            raise ValueError("a churn schedule needs at least one event")
        if connectivity not in CONNECTIVITY:
            raise ValueError(
                f"unknown connectivity policy {connectivity!r} "
                f"(expected one of {CONNECTIVITY})"
            )
        self.events = tuple(events)
        self.seed = seed
        self.connectivity = connectivity

    @classmethod
    def parse(cls, spec: str) -> "ChurnSchedule":
        return parse_churn(spec)

    @property
    def finite(self) -> bool:
        return all(e.count is not None for e in self.events)

    @property
    def total_occurrences(self) -> int | None:
        """Number of occurrences a full run fires (None if unbounded)."""
        if not self.finite:
            return None
        return sum(e.count for e in self.events)

    def canonical(self) -> str:
        """Normalized spec string — the *measured parameter* form."""
        parts = [e.canonical() for e in self.events]
        if self.connectivity != "preserve":
            parts.append(f"connectivity={self.connectivity}")
        if self.seed is not None:
            parts.append(f"seed={self.seed}")
        return ";".join(parts)

    def __repr__(self) -> str:
        return f"ChurnSchedule({self.canonical()!r})"

    def __eq__(self, other) -> bool:
        return isinstance(other, ChurnSchedule) and self.canonical() == other.canonical()

    def __hash__(self) -> int:
        return hash(self.canonical())

    def bind(self, algorithm, default_seed: int = 0) -> "BoundChurnSchedule":
        """Commit this schedule to one execution's algorithm and seed."""
        seed = self.seed if self.seed is not None else default_seed
        return BoundChurnSchedule(self, algorithm, seed)


@dataclass
class _Occurrence:
    """One committed mutation: identity, nominal step, drawn delta."""

    event: int
    index: int
    step: int
    #: Schedule-wide occurrence ordinal (0-based firing order).
    burst: int = 0
    action: str = ""
    victims: tuple[int, ...] = ()
    #: Undirected ``(u, v)`` pairs, ``u < v``, in application order.
    drops: tuple[tuple[int, int], ...] = ()
    adds: tuple[tuple[int, int], ...] = ()
    #: ``(process, variable, decoded value)`` triples for joins.
    assignments: tuple[tuple[int, str, object], ...] = ()
    #: Live-subgraph shape after the mutation.
    components: int = 0
    live: int = 0
    drawn: bool = field(default=False, repr=False)


def _count_components(adj, live) -> int:
    """Connected components of the live subgraph (dead processes excluded)."""
    seen = set()
    count = 0
    for s in range(len(adj)):
        if not live[s] or s in seen:
            continue
        count += 1
        stack = [s]
        seen.add(s)
        while stack:
            u = stack.pop()
            for v in adj[u]:
                if live[v] and v not in seen:
                    seen.add(v)
                    stack.append(v)
    return count


class BoundChurnSchedule:
    """A schedule bound to an algorithm and a seed — the applicable form.

    Owns the *canonical topology state*: the liveness vector, the current
    adjacency, and the deployment ("base") adjacency that joins reconnect
    into.  Draws happen at pop time and mutate this canonical state —
    including the shared :class:`~repro.core.graph.Network`, mirrored
    immediately so state-dependent draws (junk pointers sampled from a
    rejoined process's neighborhood) read the same topology regardless
    of which engine replays the stream.  The occurrence stream therefore
    depends only on the schedule and seed; engines mirror each
    occurrence's ``drops``/``adds``/``assignments`` into their own
    structures (:meth:`repro.core.kernel.csr.CSRAdjacency.apply_delta`
    plus the liveness mask on the kernel side — the dict side reads the
    already-mirrored ``Network`` directly).

    The pop protocol mirrors :class:`~repro.faults.schedule.BoundFaultSchedule`
    exactly, including terminal pull-forward: a silent system still
    experiences its churn.
    """

    def __init__(self, schedule: ChurnSchedule, algorithm, seed: int):
        self.schedule = schedule
        self.algorithm = algorithm
        self.seed = seed
        self.fired = 0
        network = algorithm.network
        #: The live :class:`~repro.core.graph.Network`, mirrored *at draw
        #: time*: every committed delta is applied here immediately, so
        #: state-dependent draws (a rejoined process's junk pointer is
        #: sampled from its current neighborhood) read identical topology
        #: no matter which engine replays the occurrence stream.
        self.network = network
        self.n = network.n
        #: Canonical liveness (all processes start live).
        self.live = [True] * self.n
        #: Canonical current adjacency (mutated at draw time).
        self.adj = [set(network.neighbors(u)) for u in range(self.n)]
        #: Deployment adjacency — the links a rejoining process reclaims.
        self.base = tuple(tuple(network.neighbors(u)) for u in range(self.n))
        self._preserve = schedule.connectivity == "preserve"
        self._variables = tuple(algorithm.variables())
        # Per-event cursors over the (possibly unbounded) occurrence steps.
        self._iters = [e.occurrence_steps() for e in schedule.events]
        self._next: list[int | None] = [next(it) for it in self._iters]
        self._counts = [0] * len(schedule.events)

    # ------------------------------------------------------------------
    def peek_next(self) -> int | None:
        """Nominal step of the earliest pending occurrence (None = done)."""
        pending = [s for s in self._next if s is not None]
        return min(pending) if pending else None

    @property
    def exhausted(self) -> bool:
        return self.peek_next() is None

    def _advance(self, event: int) -> _Occurrence:
        step = self._next[event]
        occ = _Occurrence(event, self._counts[event], step, burst=self.fired)
        self._counts[event] += 1
        try:
            self._next[event] = next(self._iters[event])
        except StopIteration:
            self._next[event] = None
        self.fired += 1
        self._draw(occ)
        return occ

    def pop_due(self, step: int, idle: bool = False) -> list[_Occurrence]:
        """All occurrences due at ``step`` (events in declaration order).

        ``idle=True`` signals a terminal configuration: when nothing is
        due but occurrences remain, the earliest is pulled forward.  Each
        returned occurrence keeps its *nominal* step for reporting, and
        its delta is already committed to the canonical state — callers
        must mirror every returned occurrence into their engine.
        """
        due: list[_Occurrence] = []
        while True:
            ready = [
                i for i, s in enumerate(self._next) if s is not None and s <= step
            ]
            if not ready:
                break
            event = min(ready, key=lambda i: (self._next[i], i))
            due.append(self._advance(event))
        if not due and idle:
            pending = [i for i, s in enumerate(self._next) if s is not None]
            if pending:
                event = min(pending, key=lambda i: (self._next[i], i))
                due.append(self._advance(event))
        return due

    # ------------------------------------------------------------------
    # Canonical-state queries (for drivers and posthoc sync)
    # ------------------------------------------------------------------
    def current_edges(self) -> tuple[tuple[int, int], ...]:
        """The canonical link set as sorted ``(u, v)`` pairs, ``u < v``."""
        return tuple(
            (u, v)
            for u in range((self.n))
            for v in sorted(self.adj[u])
            if u < v
        )

    def dead(self) -> tuple[int, ...]:
        """Currently crashed process indices, ascending."""
        return tuple(u for u in range(self.n) if not self.live[u])

    def components(self) -> int:
        """Component count of the canonical live subgraph."""
        return _count_components(self.adj, self.live)

    # ------------------------------------------------------------------
    # Draws (state-dependent, committed at pop time)
    # ------------------------------------------------------------------
    def _draw(self, occ: _Occurrence) -> None:
        if occ.drawn:
            return
        event = self.schedule.events[occ.event]
        rng = _occurrence_rng(self.seed, occ.event, occ.index)
        occ.action = event.action
        if event.action == "crash":
            self._draw_crash(occ, event, rng)
        elif event.action == "join":
            self._draw_join(occ, event, rng)
        elif event.action == "drop_edge":
            self._draw_drop(occ, event, rng)
        else:
            self._draw_add(occ, event, rng)
        occ.components = self.components()
        occ.live = sum(self.live)
        occ.drawn = True

    def _splits(self, u: int) -> bool:
        """Would silencing live process ``u`` grow the component count?"""
        before = _count_components(self.adj, self.live)
        self.live[u] = False
        after = _count_components(self.adj, self.live)
        self.live[u] = True
        return after > before

    def _crash_eligible(self, pool) -> list[int]:
        cands = [u for u in pool if self.live[u]]
        if sum(self.live) <= 1:
            return []  # never silence the last live process
        if self._preserve:
            cands = [u for u in cands if not self._splits(u)]
        return cands

    def _apply_crash(self, u: int, drops: list) -> None:
        self.live[u] = False
        for v in sorted(self.adj[u]):
            self.adj[v].discard(u)
            drops.append((u, v) if u < v else (v, u))
        self.adj[u].clear()

    def _draw_crash(self, occ: _Occurrence, event: ChurnEvent, rng: Random) -> None:
        pool = event.procs or range(self.n)
        victims: list[int] = []
        drops: list[tuple[int, int]] = []
        if event.clustered:
            cands = self._crash_eligible(pool)
            if cands:
                seed = cands[rng.randrange(len(cands))]
                frontier = sorted(self.adj[seed])
                self._apply_crash(seed, drops)
                victims.append(seed)
                seen = {seed}
                while len(victims) < event.k and frontier:
                    v = frontier.pop(rng.randrange(len(frontier)))
                    if v in seen:
                        continue
                    seen.add(v)
                    if v not in self._crash_eligible((v,)):
                        continue
                    neigh = sorted(self.adj[v])
                    self._apply_crash(v, drops)
                    victims.append(v)
                    frontier.extend(w for w in neigh if w not in seen)
        else:
            for _ in range(event.k):
                cands = self._crash_eligible(pool)
                if not cands:
                    break
                u = cands[rng.randrange(len(cands))]
                self._apply_crash(u, drops)
                victims.append(u)
        if drops:
            self.network.apply_delta(drops, ())
        occ.victims = tuple(sorted(victims))
        occ.drops = tuple(drops)

    def _draw_join(self, occ: _Occurrence, event: ChurnEvent, rng: Random) -> None:
        pool = event.procs or range(self.n)
        victims: list[int] = []
        adds: list[tuple[int, int]] = []
        assignments: list[tuple[int, str, object]] = []
        for _ in range(event.k):
            cands = [u for u in pool if not self.live[u]]
            if self._preserve:
                cands = [
                    u for u in cands
                    if any(self.live[v] for v in self.base[u]) or sum(self.live) == 0
                ]
            if not cands:
                break
            u = cands[rng.randrange(len(cands))]
            self.live[u] = True
            reclaimed = []
            for v in self.base[u]:
                if self.live[v] and v not in self.adj[u]:
                    self.adj[u].add(v)
                    self.adj[v].add(u)
                    reclaimed.append((u, v) if u < v else (v, u))
            # Mirror the reclaimed links before drawing junk: the junk
            # pointer domain is the process's *post-join* neighborhood.
            if reclaimed:
                self.network.apply_delta((), reclaimed)
                adds.extend(reclaimed)
            junk = self.algorithm.random_state(u, rng)
            for var in self._variables:
                assignments.append((u, var, junk[var]))
            victims.append(u)
        occ.victims = tuple(sorted(victims))
        occ.adds = tuple(adds)
        occ.assignments = tuple(assignments)

    def _draw_drop(self, occ: _Occurrence, event: ChurnEvent, rng: Random) -> None:
        drops: list[tuple[int, int]] = []
        for _ in range(event.k):
            cands = list(self.current_edges())
            if self._preserve:
                base = _count_components(self.adj, self.live)
                keep = []
                for u, v in cands:
                    self.adj[u].discard(v)
                    self.adj[v].discard(u)
                    if _count_components(self.adj, self.live) == base:
                        keep.append((u, v))
                    self.adj[u].add(v)
                    self.adj[v].add(u)
                cands = keep
            if not cands:
                break
            u, v = cands[rng.randrange(len(cands))]
            self.adj[u].discard(v)
            self.adj[v].discard(u)
            drops.append((u, v))
        if drops:
            self.network.apply_delta(drops, ())
        occ.drops = tuple(drops)

    def _draw_add(self, occ: _Occurrence, event: ChurnEvent, rng: Random) -> None:
        adds: list[tuple[int, int]] = []
        for _ in range(event.k):
            live = [u for u in range(self.n) if self.live[u]]
            cands = [
                (u, v)
                for i, u in enumerate(live)
                for v in live[i + 1:]
                if v not in self.adj[u]
            ]
            if not cands:
                break
            u, v = cands[rng.randrange(len(cands))]
            self.adj[u].add(v)
            self.adj[v].add(u)
            adds.append((u, v))
        if adds:
            self.network.apply_delta((), adds)
        occ.adds = tuple(adds)

    def info(self, occ: _Occurrence, step: int,
             moves: int = 0, rounds: int = 0) -> ChurnInfo:
        return ChurnInfo(
            step=step,
            nominal_step=occ.step,
            burst=occ.burst,
            action=occ.action,
            victims=occ.victims,
            dropped=occ.drops,
            added=occ.adds,
            components=occ.components,
            live=occ.live,
            moves=moves,
            rounds=rounds,
        )


# ----------------------------------------------------------------------
# The spec grammar (the CLI's --churn argument).
# ----------------------------------------------------------------------
_EVENT_KEYS = ("at", "every", "storm", "burst")
_INT_KEYS = ("start", "until", "count", "gap", "cadence", "seed")


def _parse_clause(clause: str) -> tuple[dict, int | None, str | None]:
    """One ';'-separated clause → (options, schedule seed, connectivity)."""
    opts: dict = {}
    seed = None
    connectivity = None
    for item in clause.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            if item == "clustered":
                opts["clustered"] = True
                continue
            raise ValueError(f"malformed churn spec item {item!r}")
        key, _, value = item.partition("=")
        key, value = key.strip(), value.strip()
        if key == "seed":
            seed = int(value)
        elif key == "connectivity":
            if value not in CONNECTIVITY:
                raise ValueError(
                    f"unknown connectivity policy {value!r} "
                    f"(expected one of {CONNECTIVITY})"
                )
            connectivity = value
        elif key == "storm":
            lo, sep, hi = value.partition("-")
            if not sep:
                raise ValueError(f"storm window must be A-B, got {value!r}")
            opts["storm"] = (int(lo), int(hi))
        elif key == "procs":
            opts["procs"] = tuple(int(p) for p in value.split("|") if p != "")
        elif key in ACTIONS:
            if "action" in opts:
                raise ValueError(
                    f"churn clauses take exactly one action, got both "
                    f"{opts['action']!r} and {key!r}"
                )
            opts["action"] = key
            opts["k"] = int(value)
        elif key in _INT_KEYS or key in _EVENT_KEYS:
            opts[key] = int(value)
        else:
            raise ValueError(f"unknown churn spec key {key!r}")
    return opts, seed, connectivity


def _clause_event(opts: dict) -> ChurnEvent:
    kinds = [k for k in _EVENT_KEYS if k in opts]
    if len(kinds) != 1:
        raise ValueError(
            f"each churn clause needs exactly one of {_EVENT_KEYS}, got {kinds}"
        )
    if "action" not in opts:
        raise ValueError(
            f"each churn clause needs exactly one action of {ACTIONS} "
            f"(e.g. crash=1)"
        )
    kind = kinds[0]
    target = dict(
        action=opts.pop("action"),
        k=opts.pop("k"),
        procs=opts.pop("procs", ()),
        clustered=opts.pop("clustered", False),
    )
    if kind == "at":
        event = ChurnEvent(kind="at", start=opts.pop("at"), **target)
    elif kind == "every":
        gap = opts.pop("every")
        start = opts.pop("start", gap)
        count = opts.pop("count", None)
        if "until" in opts:
            until = opts.pop("until")
            if until < start:
                raise ValueError("every: until must be >= start")
            count = (until - start) // gap + 1
        event = ChurnEvent(kind="every", start=start, gap=gap, count=count, **target)
    elif kind == "storm":
        lo, hi = opts.pop("storm")
        cadence = opts.pop("cadence", None)
        if cadence is None:
            raise ValueError("storm windows need cadence=K")
        if hi < lo:
            raise ValueError(f"storm window {lo}-{hi} is empty")
        event = ChurnEvent(
            kind="storm", start=lo, gap=cadence, count=(hi - lo) // cadence + 1,
            **target,
        )
    else:  # burst
        start = opts.pop("burst")
        count = opts.pop("count", None)
        gap = opts.pop("gap", None)
        if count is None or gap is None:
            raise ValueError("bursts need count=N and gap=G")
        event = ChurnEvent(kind="burst", start=start, gap=gap, count=count, **target)
    if opts:
        raise ValueError(f"churn spec options {sorted(opts)} don't apply to {kind!r}")
    return event


def parse_churn(spec: str) -> ChurnSchedule:
    """Parse and validate a ``--churn`` spec string.

    Raises :class:`ValueError` with a pointed message on any malformed
    spec — the CLI calls this before running anything.
    """
    if isinstance(spec, ChurnSchedule):
        return spec
    if not isinstance(spec, str) or not spec.strip():
        raise ValueError("empty churn spec")
    events: list[ChurnEvent] = []
    seed: int | None = None
    connectivity = "preserve"
    for clause in spec.split(";"):
        if not clause.strip():
            continue
        opts, clause_seed, clause_conn = _parse_clause(clause)
        if clause_seed is not None:
            seed = clause_seed
        if clause_conn is not None:
            connectivity = clause_conn
        if opts:
            events.append(_clause_event(opts))
    if not events:
        raise ValueError(f"churn spec {spec!r} declares no events")
    return ChurnSchedule(events, seed=seed, connectivity=connectivity)
