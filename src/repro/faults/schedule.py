"""Declarative, seeded mid-run fault schedules.

A :class:`FaultSchedule` describes *when* transient faults strike an
execution (at a fixed step, every ``k`` steps, across a storm window, or
as a repeated burst), *which* registers they hit (``k`` random processes,
an explicit process list, a BFS-clustered region, restricted to named
variables or a layer scope such as "only the input algorithm's state"),
and nothing else: the corrupted *values* are always drawn from the
algorithm's own declared domains via ``random_state``, because transient
faults in the model corrupt register contents, never code.

Determinism is the load-bearing property.  Binding a schedule to an
algorithm and a seed (:meth:`FaultSchedule.bind`) pre-commits every
occurrence's victims and replacement values to a dedicated PRNG stream
derived from ``(seed, event index, occurrence index)`` — independent of
the daemon's RNG, of the backend, and of *when* the occurrence actually
fires.  The dict engine, the fused kernel loop, and the batched driver
therefore apply byte-identical corruptions under the same seed, which is
what the cross-backend property suite asserts.

Schedules are written either programmatically or as a compact spec
string (the sweep CLI's ``--faults`` argument)::

    at=100,k=3,vars=c            one 3-process fault at step 100
    every=250,k=1                a 1-process fault every 250 steps
    storm=1000-2000,cadence=50,k=2
                                 a storm window: every 50 steps in [1000, 2000]
    burst=500,count=3,gap=100,k=2,scope=input
                                 3 bursts at steps 500/600/700, input layer only
    at=0,procs=1|4;at=64,k=2,clustered
                                 two events, ';'-separated

:func:`parse_schedule` validates a spec up front and
:meth:`FaultSchedule.canonical` renders the normalized form, so
equivalent spellings share one trial key (fault schedules change
results, hence they are *measured* parameters).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from random import Random
from typing import Iterator, Sequence

__all__ = [
    "FaultEvent",
    "FaultSchedule",
    "FaultInfo",
    "BoundFaultSchedule",
    "parse_schedule",
]

#: Layer scopes resolvable against a composed algorithm.
SCOPES = ("input", "reset")

_SEP = "\x1f"
_SEED_MASK = (1 << 63) - 1


def _occurrence_rng(seed: int, event: int, occurrence: int) -> Random:
    """The dedicated PRNG for one occurrence of one event.

    Keyed on identity, not on firing step, so a pulled-forward occurrence
    (see :meth:`BoundFaultSchedule.pop_due`) draws the same victims and
    values as its nominally-timed twin.  SHA-256, like the campaign
    engine's seed derivation, so the stream is stable across platforms.
    """
    payload = f"{seed}{_SEP}fault{_SEP}{event}{_SEP}{occurrence}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return Random(int.from_bytes(digest[:8], "big") & _SEED_MASK)


@dataclass(frozen=True)
class FaultEvent:
    """One timed corruption pattern inside a schedule.

    Every surface form normalizes to ``(start, gap, count)``:
    ``at=S`` is ``(S, 0, 1)``; ``every=K`` is ``(K, K, None)`` (unbounded);
    ``storm=A-B,cadence=C`` is ``(A, C, (B-A)//C + 1)``;
    ``burst=S,count=N,gap=G`` is ``(S, G, N)``.
    """

    kind: str  # "at" | "every" | "storm" | "burst"
    start: int
    gap: int = 0
    count: int | None = 1
    k: int = 1
    procs: tuple[int, ...] = ()
    variables: tuple[str, ...] = ()
    scope: str = ""
    clustered: bool = False

    def __post_init__(self):
        if self.kind not in ("at", "every", "storm", "burst"):
            raise ValueError(f"unknown fault event kind {self.kind!r}")
        if self.start < 0:
            raise ValueError("fault event start step must be >= 0")
        if self.count is not None and self.count < 1:
            raise ValueError("fault event count must be >= 1")
        if (self.count is None or self.count > 1) and self.gap < 1:
            raise ValueError("repeating fault events need gap >= 1")
        if self.k < 1 and not self.procs:
            raise ValueError("fault events must target at least one process")
        if self.procs and self.clustered:
            raise ValueError("explicit procs and clustered are mutually exclusive")
        if self.scope and self.scope not in SCOPES:
            raise ValueError(f"unknown scope {self.scope!r} (expected one of {SCOPES})")
        if self.scope and self.variables:
            raise ValueError("vars and scope are mutually exclusive")

    def occurrence_steps(self) -> Iterator[int]:
        """Nominal firing steps, in order (infinite for unbounded events)."""
        step, i = self.start, 0
        while self.count is None or i < self.count:
            yield step
            step += self.gap
            i += 1

    def canonical(self) -> str:
        """The normalized spec clause for this event."""
        if self.kind == "at":
            parts = [f"at={self.start}"]
        elif self.kind == "every":
            parts = [f"every={self.gap}"]
            if self.start != self.gap:
                parts.append(f"start={self.start}")
            if self.count is not None:
                parts.append(f"count={self.count}")
        elif self.kind == "storm":
            last = self.start + (self.count - 1) * self.gap
            parts = [f"storm={self.start}-{last}", f"cadence={self.gap}"]
        else:  # burst
            parts = [f"burst={self.start}", f"count={self.count}", f"gap={self.gap}"]
        if self.procs:
            parts.append("procs=" + "|".join(str(p) for p in self.procs))
        elif self.k != 1:
            parts.append(f"k={self.k}")
        if self.variables:
            parts.append("vars=" + "|".join(self.variables))
        if self.scope:
            parts.append(f"scope={self.scope}")
        if self.clustered:
            parts.append("clustered")
        return ",".join(parts)


@dataclass(frozen=True)
class FaultInfo:
    """What the drivers hand to ``Probe.on_fault`` at each injection.

    ``step``/``moves``/``rounds`` are the execution's accounting totals at
    the injected configuration (injection itself adds none of the three).
    ``nominal_step`` differs from ``step`` only when a terminal
    configuration pulled the occurrence forward.
    """

    step: int
    nominal_step: int
    burst: int
    victims: tuple[int, ...]
    variables: tuple[str, ...]
    moves: int = 0
    rounds: int = 0


class FaultSchedule:
    """An ordered collection of :class:`FaultEvent`, plus its seed.

    ``seed=None`` (the default) defers to the execution: the harness
    binds such schedules with a trial-derived seed, so every trial in a
    sweep sees independent — but individually reproducible — faults.  An
    explicit seed pins the stream and becomes part of the canonical spec
    (and hence of the trial key).
    """

    def __init__(self, events: Sequence[FaultEvent], seed: int | None = None):
        if not events:
            raise ValueError("a fault schedule needs at least one event")
        self.events = tuple(events)
        self.seed = seed

    @classmethod
    def parse(cls, spec: str) -> "FaultSchedule":
        return parse_schedule(spec)

    @property
    def finite(self) -> bool:
        return all(e.count is not None for e in self.events)

    @property
    def total_occurrences(self) -> int | None:
        """Number of injections a full run performs (None if unbounded)."""
        if not self.finite:
            return None
        return sum(e.count for e in self.events)

    def canonical(self) -> str:
        """Normalized spec string — the *measured parameter* form."""
        parts = [e.canonical() for e in self.events]
        if self.seed is not None:
            parts.append(f"seed={self.seed}")
        return ";".join(parts)

    def __repr__(self) -> str:
        return f"FaultSchedule({self.canonical()!r})"

    def __eq__(self, other) -> bool:
        return isinstance(other, FaultSchedule) and self.canonical() == other.canonical()

    def __hash__(self) -> int:
        return hash(self.canonical())

    def bind(self, algorithm, default_seed: int = 0) -> "BoundFaultSchedule":
        """Commit this schedule to one execution's algorithm and seed."""
        seed = self.seed if self.seed is not None else default_seed
        return BoundFaultSchedule(self, algorithm, seed)


@dataclass
class _Occurrence:
    """One committed injection: identity, nominal step, drawn corruption."""

    event: int
    index: int
    step: int
    #: Schedule-wide injection ordinal (0-based firing order).
    burst: int = 0
    victims: tuple[int, ...] = ()
    #: ``(process, variable, decoded value)`` triples, victims ascending.
    assignments: tuple[tuple[int, str, object], ...] = ()
    drawn: bool = field(default=False, repr=False)


class BoundFaultSchedule:
    """A schedule bound to an algorithm and a seed — the injectable form.

    The drivers own the protocol: at the top of every loop iteration they
    call :meth:`pop_due` with the current step count; each returned
    occurrence carries pre-drawn ``(process, variable, value)`` triples to
    apply to the current configuration (dict ``Configuration`` or kernel
    columns — values are decoded, the appliers encode).  When the
    execution goes terminal while occurrences remain, the next one is
    *pulled forward* to the current step: a silent algorithm would
    otherwise never experience its storm, and self-stabilization's whole
    claim is recovery from faults that strike legitimate configurations.
    """

    def __init__(self, schedule: FaultSchedule, algorithm, seed: int):
        self.schedule = schedule
        self.algorithm = algorithm
        self.seed = seed
        self.fired = 0
        self._allowed = tuple(
            resolve_variables(algorithm, e.variables, e.scope)
            for e in schedule.events
        )
        # Per-event cursors over the (possibly unbounded) occurrence steps.
        self._iters = [e.occurrence_steps() for e in schedule.events]
        self._next: list[int | None] = [next(it) for it in self._iters]
        self._counts = [0] * len(schedule.events)

    # ------------------------------------------------------------------
    def peek_next(self) -> int | None:
        """Nominal step of the earliest pending occurrence (None = done)."""
        pending = [s for s in self._next if s is not None]
        return min(pending) if pending else None

    @property
    def exhausted(self) -> bool:
        return self.peek_next() is None

    def _advance(self, event: int) -> _Occurrence:
        step = self._next[event]
        occ = _Occurrence(event, self._counts[event], step, burst=self.fired)
        self._counts[event] += 1
        try:
            self._next[event] = next(self._iters[event])
        except StopIteration:
            self._next[event] = None
        self.fired += 1
        self._draw(occ)
        return occ

    def pop_due(self, step: int, idle: bool = False) -> list[_Occurrence]:
        """All occurrences due at ``step`` (events in declaration order).

        ``idle=True`` signals a terminal configuration: when nothing is
        due but occurrences remain, the earliest is pulled forward so the
        schedule makes progress against silent algorithms.  Each returned
        occurrence keeps its *nominal* step for reporting.
        """
        due: list[_Occurrence] = []
        while True:
            ready = [
                i for i, s in enumerate(self._next) if s is not None and s <= step
            ]
            if not ready:
                break
            # Fire in (nominal step, event order), one at a time, so
            # overlapping events interleave deterministically.
            event = min(ready, key=lambda i: (self._next[i], i))
            due.append(self._advance(event))
        if not due and idle:
            pending = [i for i, s in enumerate(self._next) if s is not None]
            if pending:
                event = min(pending, key=lambda i: (self._next[i], i))
                due.append(self._advance(event))
        return due

    # ------------------------------------------------------------------
    def _draw(self, occ: _Occurrence) -> None:
        """Commit victims and replacement values for one occurrence."""
        if occ.drawn:
            return
        event = self.schedule.events[occ.event]
        rng = _occurrence_rng(self.seed, occ.event, occ.index)
        if event.procs:
            n = self.algorithm.network.n
            victims = [p for p in event.procs if 0 <= p < n]
        else:
            victims = _pick_victims(
                self.algorithm, rng, event.k, clustered=event.clustered
            )
        occ.victims = tuple(sorted(victims))
        allowed = self._allowed[occ.event]
        triples = []
        for u in occ.victims:
            junk = self.algorithm.random_state(u, rng)
            for var in allowed:
                triples.append((u, var, junk[var]))
        occ.assignments = tuple(triples)
        occ.drawn = True

    def info(self, occ: _Occurrence, step: int,
             moves: int = 0, rounds: int = 0) -> FaultInfo:
        return FaultInfo(
            step=step,
            nominal_step=occ.step,
            burst=occ.burst,
            victims=occ.victims,
            variables=tuple(self._allowed[occ.event]),
            moves=moves,
            rounds=rounds,
        )


def resolve_variables(algorithm, variables: Sequence[str], scope: str) -> tuple[str, ...]:
    """Resolve an event's variable restriction against one algorithm.

    Explicit names are validated against ``algorithm.variables()``; the
    named scopes resolve structurally: ``input`` is the composed input
    layer's variables, ``reset`` everything else (SDR's own registers).
    """
    declared = tuple(algorithm.variables())
    if variables:
        unknown = [v for v in variables if v not in declared]
        if unknown:
            raise ValueError(
                f"fault schedule targets unknown variable(s) {unknown} "
                f"(algorithm declares {sorted(declared)})"
            )
        return tuple(variables)
    if scope:
        inner = getattr(algorithm, "input", None)
        if inner is None:
            raise ValueError(
                f"scope={scope!r} needs a composed algorithm with an input "
                f"layer; {type(algorithm).__name__} has none"
            )
        input_vars = tuple(inner.variables())
        if scope == "input":
            return input_vars
        return tuple(v for v in declared if v not in set(input_vars))
    return declared


def _pick_victims(algorithm, rng: Random, k: int, clustered: bool) -> list[int]:
    """Victim selection, mirroring :class:`repro.faults.injector.FaultPlan`."""
    network = algorithm.network
    k = min(k, network.n)
    if not clustered:
        return rng.sample(range(network.n), k)
    seed = rng.randrange(network.n)
    victims = [seed]
    frontier = list(network.neighbors(seed))
    seen = {seed}
    while len(victims) < k and frontier:
        idx = rng.randrange(len(frontier))
        v = frontier.pop(idx)
        if v in seen:
            continue
        seen.add(v)
        victims.append(v)
        frontier.extend(w for w in network.neighbors(v) if w not in seen)
    return victims


# ----------------------------------------------------------------------
# The spec grammar (the CLI's --faults argument).
# ----------------------------------------------------------------------
_EVENT_KEYS = ("at", "every", "storm", "burst")
_INT_KEYS = ("k", "start", "until", "count", "gap", "cadence", "seed")


def _parse_clause(clause: str) -> tuple[dict, int | None]:
    """One ';'-separated clause → (option dict, optional schedule seed)."""
    opts: dict = {}
    seed = None
    for item in clause.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            if item == "clustered":
                opts["clustered"] = True
                continue
            raise ValueError(f"malformed fault spec item {item!r}")
        key, _, value = item.partition("=")
        key, value = key.strip(), value.strip()
        if key == "seed":
            seed = int(value)
        elif key == "storm":
            lo, sep, hi = value.partition("-")
            if not sep:
                raise ValueError(f"storm window must be A-B, got {value!r}")
            opts["storm"] = (int(lo), int(hi))
        elif key == "procs":
            opts["procs"] = tuple(int(p) for p in value.split("|") if p != "")
        elif key == "vars":
            opts["vars"] = tuple(v for v in value.split("|") if v)
        elif key == "scope":
            opts["scope"] = value
        elif key in _INT_KEYS or key in _EVENT_KEYS:
            opts[key] = int(value)
        else:
            raise ValueError(f"unknown fault spec key {key!r}")
    return opts, seed


def _clause_event(opts: dict) -> FaultEvent:
    kinds = [k for k in _EVENT_KEYS if k in opts]
    if len(kinds) != 1:
        raise ValueError(
            f"each fault clause needs exactly one of {_EVENT_KEYS}, got {kinds}"
        )
    kind = kinds[0]
    target = dict(
        k=opts.pop("k", 1),
        procs=opts.pop("procs", ()),
        variables=opts.pop("vars", ()),
        scope=opts.pop("scope", ""),
        clustered=opts.pop("clustered", False),
    )
    if kind == "at":
        event = FaultEvent("at", start=opts.pop("at"), **target)
    elif kind == "every":
        gap = opts.pop("every")
        start = opts.pop("start", gap)
        count = opts.pop("count", None)
        if "until" in opts:
            until = opts.pop("until")
            if until < start:
                raise ValueError("every: until must be >= start")
            count = (until - start) // gap + 1
        event = FaultEvent("every", start=start, gap=gap, count=count, **target)
    elif kind == "storm":
        lo, hi = opts.pop("storm")
        cadence = opts.pop("cadence", None)
        if cadence is None:
            raise ValueError("storm windows need cadence=K")
        if hi < lo:
            raise ValueError(f"storm window {lo}-{hi} is empty")
        event = FaultEvent(
            "storm", start=lo, gap=cadence, count=(hi - lo) // cadence + 1, **target
        )
    else:  # burst
        start = opts.pop("burst")
        count = opts.pop("count", None)
        gap = opts.pop("gap", None)
        if count is None or gap is None:
            raise ValueError("bursts need count=N and gap=G")
        event = FaultEvent("burst", start=start, gap=gap, count=count, **target)
    if opts:
        raise ValueError(f"fault spec options {sorted(opts)} don't apply to {kind!r}")
    return event


def parse_schedule(spec: str) -> FaultSchedule:
    """Parse and validate a ``--faults`` spec string.

    Raises :class:`ValueError` with a pointed message on any malformed
    spec — the CLI calls this before running anything.
    """
    if isinstance(spec, FaultSchedule):
        return spec
    if not isinstance(spec, str) or not spec.strip():
        raise ValueError("empty fault spec")
    events: list[FaultEvent] = []
    seed: int | None = None
    for clause in spec.split(";"):
        if not clause.strip():
            continue
        opts, clause_seed = _parse_clause(clause)
        if clause_seed is not None:
            seed = clause_seed
        if opts:
            events.append(_clause_event(opts))
    if not events:
        raise ValueError(f"fault spec {spec!r} declares no events")
    return FaultSchedule(events, seed=seed)
