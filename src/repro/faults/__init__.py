"""Transient-fault injection and adversarial initial configurations."""

from .injector import FaultPlan, corrupt_processes, corrupt_variables
from .scenarios import clock_gradient, clock_split, fake_reset_wave, hollow_alliance

__all__ = [
    "FaultPlan",
    "corrupt_processes",
    "corrupt_variables",
    "clock_gradient",
    "clock_split",
    "fake_reset_wave",
    "hollow_alliance",
]
