"""repro.faults — transient faults: injection, schedules, and recovery.

Fault model (Devismes & Johnen, ICDCS 2019, Section 2): a transient
fault corrupts the *register contents* of a process — any of its
declared variables may be overwritten with an arbitrary value drawn
from that variable's declared domain — but never the code, the
topology, or a process identity.  Everything in this package enforces
that contract: corrupted values come from ``algorithm.random_state``
(dict side) or the kernel schema's declared domains (vector side), so
an injection can never produce a configuration the algorithm itself
could not be started from.

Two injection surfaces:

* **Adversarial initial configurations** — :class:`FaultPlan`,
  :func:`corrupt_processes` / :func:`corrupt_variables`, and the
  structured scenario builders (:func:`clock_gradient`,
  :func:`clock_split`, :func:`fake_reset_wave`,
  :func:`hollow_alliance`) perturb γ0 before the run starts.
* **Mid-run fault schedules** — :class:`FaultSchedule` (declarative,
  seeded; parsed from specs like ``"every=200,k=3,scope=input"``) fires
  *during* the run, identically on the dict engine, the fused kernel
  loop, and batched cells.  :class:`RecoveryProbe` and
  :class:`SdrWaveProbe` (re-exported from :mod:`repro.probes`) measure
  per-burst recovery without leaving the fused loop.

A third surface relaxes the fixed-topology half of that contract in a
controlled way: **topology churn** (:class:`ChurnSchedule`,
:mod:`repro.faults.churn`) mutates the *graph* mid-run — links drop and
appear, processes crash and rejoin with arbitrary state — with the same
seeded, backend-identical occurrence discipline.
"""

from .churn import (
    BoundChurnSchedule,
    ChurnEvent,
    ChurnInfo,
    ChurnSchedule,
    parse_churn,
)
from .injector import FaultPlan, corrupt_processes, corrupt_variables
from .scenarios import clock_gradient, clock_split, fake_reset_wave, hollow_alliance
from .schedule import (
    BoundFaultSchedule,
    FaultEvent,
    FaultInfo,
    FaultSchedule,
    parse_schedule,
    resolve_variables,
)

__all__ = [
    # Initial-configuration corruption
    "FaultPlan",
    "corrupt_processes",
    "corrupt_variables",
    # Structured adversarial scenarios
    "clock_gradient",
    "clock_split",
    "fake_reset_wave",
    "hollow_alliance",
    # Mid-run fault schedules
    "FaultSchedule",
    "FaultEvent",
    "FaultInfo",
    "BoundFaultSchedule",
    "parse_schedule",
    "resolve_variables",
    # Mid-run topology churn
    "ChurnSchedule",
    "ChurnEvent",
    "ChurnInfo",
    "BoundChurnSchedule",
    "parse_churn",
]
