"""Transient-fault injection.

Self-stabilization promises recovery from *any* finite number of transient
faults.  The fault injector realizes the standard experimental protocol:
start from a legitimate configuration, corrupt the variables of ``k``
processes (values drawn from the algorithm's own variable domains via
``random_state``), and measure recovery.  Per-variable corruption is also
supported for finer-grained experiments (e.g. corrupting only the input
algorithm's state but not SDR's, or vice versa).
"""

from __future__ import annotations

from random import Random
from typing import Iterable, Sequence

from ..core.algorithm import Algorithm
from ..core.configuration import Configuration

__all__ = ["corrupt_processes", "corrupt_variables", "FaultPlan"]


def corrupt_processes(
    algorithm: Algorithm,
    cfg: Configuration,
    processes: Iterable[int],
    rng: Random,
    variables: Sequence[str] | None = None,
) -> Configuration:
    """Return a copy of ``cfg`` with the given processes' state corrupted.

    ``variables`` restricts which variables get corrupted (default: all of
    the algorithm's variables).  Values come from ``random_state`` so they
    stay within the declared domains — transient faults in the model can
    corrupt register *contents*, not the program.
    """
    targets = set(processes)
    allowed = tuple(variables) if variables is not None else algorithm.variables()
    corrupted = cfg.copy()
    for u in targets:
        junk = algorithm.random_state(u, rng)
        for var in allowed:
            corrupted.set(u, var, junk[var])
    return corrupted


def corrupt_variables(
    algorithm: Algorithm,
    cfg: Configuration,
    assignments: Iterable[tuple[int, str]],
    rng: Random,
) -> Configuration:
    """Corrupt an explicit list of ``(process, variable)`` registers."""
    corrupted = cfg.copy()
    for u, var in assignments:
        junk = algorithm.random_state(u, rng)
        corrupted.set(u, var, junk[var])
    return corrupted


class FaultPlan:
    """Reusable fault scenario: *which* processes get hit, and *how*.

    Parameters
    ----------
    k:
        Number of distinct processes to corrupt.
    variables:
        Optional restriction of the corrupted variables.
    clustered:
        When true, the ``k`` victims form a connected region around a
        random seed process (faults that hit one physical area); when
        false, victims are sampled uniformly.
    """

    def __init__(self, k: int, variables: Sequence[str] | None = None, clustered: bool = False):
        if k < 1:
            raise ValueError("a fault plan must corrupt at least one process")
        self.k = k
        self.variables = tuple(variables) if variables is not None else None
        self.clustered = clustered

    def pick_victims(self, algorithm: Algorithm, rng: Random) -> list[int]:
        """Choose the victim processes for one experiment run."""
        network = algorithm.network
        k = min(self.k, network.n)
        if not self.clustered:
            return rng.sample(range(network.n), k)
        seed = rng.randrange(network.n)
        victims = [seed]
        frontier = list(network.neighbors(seed))
        seen = {seed}
        while len(victims) < k and frontier:
            idx = rng.randrange(len(frontier))
            v = frontier.pop(idx)
            if v in seen:
                continue
            seen.add(v)
            victims.append(v)
            frontier.extend(w for w in network.neighbors(v) if w not in seen)
        return victims

    def apply(self, algorithm: Algorithm, cfg: Configuration, rng: Random) -> tuple[Configuration, list[int]]:
        """Corrupt a copy of ``cfg``; returns ``(corrupted, victims)``."""
        victims = self.pick_victims(algorithm, rng)
        corrupted = corrupt_processes(algorithm, cfg, victims, rng, self.variables)
        return corrupted, victims
