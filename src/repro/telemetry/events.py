"""Campaign lifecycle events: a structured, crash-tolerant JSONL log.

The campaign engine (:mod:`repro.engine.pool` / :mod:`repro.engine.resume`)
emits one event per lifecycle transition — campaign started/finished,
batch cell composed, trial finished/failed, periodic heartbeats — to a
pluggable *sink*.  The default sink is a JSONL file next to the result
store (``results.jsonl`` → ``results.events.jsonl``), written with the
same append-one-line-fsync discipline as the store itself, so a crashed
or still-running sweep leaves a log whose intact prefix is always
readable (:func:`read_events` tolerates a truncated tail exactly like
``ResultStore.iter_records``).

Event shape (schema version 1)::

    {"v": 1, "ts": <unix seconds>, "event": "<type>", ...payload}

Event types and their payloads:

``campaign_started``
    ``total`` (trial count), ``pending`` (not yet in the store),
    ``workers``, ``batch``, ``store`` (path or null).
``cell_composed``
    ``cell`` (cell key), ``trials``, ``kind`` ("batch").
``trial_finished``
    ``key``, ``status``, ``steps``, ``unit`` ("batch"/"serial"),
    ``fallback`` (bool: a batch cell that fell back to serial).
``trial_failed``
    ``key``, ``error`` (message string), ``reason``
    (``crash``/``timeout``/``error``/``budget``), ``retries`` (attempts
    beyond the first on the tier that finally failed).
``heartbeat``
    ``done``, ``total``, ``elapsed_s``, ``trials_per_s``, ``eta_s``
    (null until estimable), ``utilization`` (done workers' share of
    wall time; null when unknowable).
``campaign_finished``
    ``done``, ``total``, ``elapsed_s``, ``trials_per_s``,
    ``phase_stats`` (merged telemetry breakdown or null).

Events are observability output, never inputs: resume logic reads only
the result store, so deleting an event log loses history but can never
change what a campaign computes.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import IO, Iterator

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "EVENT_TYPES",
    "EventError",
    "EventSink",
    "JsonlEventSink",
    "MemoryEventSink",
    "events_path_for",
    "read_events",
    "validate_event",
]

EVENT_SCHEMA_VERSION = 1

#: Required payload fields per event type (beyond the ``v``/``ts``/
#: ``event`` envelope).  Extra fields are allowed; missing ones are not.
EVENT_TYPES = {
    "campaign_started": ("total", "pending", "workers", "batch", "store"),
    "cell_composed": ("cell", "trials", "kind"),
    "trial_finished": ("key", "status", "steps", "unit", "fallback"),
    "trial_failed": ("key", "error", "reason", "retries"),
    "heartbeat": ("done", "total", "elapsed_s", "trials_per_s", "eta_s"),
    "campaign_finished": ("done", "total", "elapsed_s", "trials_per_s"),
}


class EventError(ValueError):
    """An event violates the schema (unknown type / missing fields)."""


def validate_event(event: dict) -> dict:
    """Check an event against the schema; return it unchanged.

    Raises :class:`EventError` on an unknown type, a missing envelope
    field, or a missing required payload field.
    """
    for field in ("v", "ts", "event"):
        if field not in event:
            raise EventError(f"event missing envelope field {field!r}: {event!r}")
    if event["v"] != EVENT_SCHEMA_VERSION:
        raise EventError(
            f"unsupported event schema version {event['v']!r} "
            f"(expected {EVENT_SCHEMA_VERSION})"
        )
    etype = event["event"]
    required = EVENT_TYPES.get(etype)
    if required is None:
        raise EventError(f"unknown event type {etype!r}")
    missing = [f for f in required if f not in event]
    if missing:
        raise EventError(f"event {etype!r} missing fields {missing}: {event!r}")
    return event


def events_path_for(store_path: str | os.PathLike) -> Path:
    """The sidecar event-log path for a result store.

    ``results.jsonl`` → ``results.events.jsonl`` (the store's suffix is
    replaced, so the pair sorts together in a directory listing).
    """
    path = Path(store_path)
    return path.with_name(path.stem + ".events.jsonl")


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------
class EventSink:
    """Where lifecycle events go.  Subclasses override :meth:`emit`."""

    def emit(self, event_type: str, **payload) -> dict:
        """Stamp the envelope, validate, and record one event."""
        event = {
            "v": EVENT_SCHEMA_VERSION,
            "ts": round(time.time(), 3),
            "event": event_type,
            **payload,
        }
        validate_event(event)
        self._write(event)
        return event

    def _write(self, event: dict) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def close(self) -> None:
        """Release resources; emitting after close is an error."""

    def __enter__(self) -> "EventSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class MemoryEventSink(EventSink):
    """Keep events in a list — for tests and in-process consumers."""

    def __init__(self):
        self.events: list[dict] = []

    def _write(self, event: dict) -> None:
        self.events.append(event)


class JsonlEventSink(EventSink):
    """Append events to a JSONL file, one fsynced line per event.

    The same durability discipline as ``ResultStore.append``: a crash
    mid-write can corrupt at most the final line, which
    :func:`read_events` skips.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: IO[str] | None = open(self.path, "a", encoding="utf-8")

    def _write(self, event: dict) -> None:
        if self._fh is None:
            raise EventError(f"event sink for {self.path} is closed")
        line = json.dumps(event, sort_keys=True, separators=(",", ":"))
        self._fh.write(line + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def read_events(
    path: str | os.PathLike,
    *,
    strict: bool = False,
) -> Iterator[dict]:
    """Yield validated events from a JSONL log, oldest first.

    Tolerant by default: a missing file yields nothing, and reading
    stops silently at the first undecodable or schema-violating line —
    the signature a crashed writer leaves.  ``strict=True`` raises
    :class:`EventError` instead (corruption detection in tests).
    """
    path = Path(path)
    if not path.exists():
        return
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = validate_event(json.loads(line))
            except (json.JSONDecodeError, EventError) as exc:
                if strict:
                    raise EventError(
                        f"{path}:{lineno}: bad event line: {exc}"
                    ) from exc
                return
            yield event
