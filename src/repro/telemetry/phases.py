"""Phase-level wall-time accounting for the execution hot paths.

Where does a fused step's time go?  The drivers
(:meth:`repro.core.kernel.engine.KernelRuntime.run`, the batched
:func:`repro.core.kernel.batch.run_batch`, and the dict engine's
per-step path in :class:`repro.core.simulator.Simulator`) split one
step into a handful of phases — guard evaluation, daemon selection,
action application, round accounting, probe hooks, and (batched only)
compaction/re-tile — and, when telemetry is enabled, accumulate each
phase's wall time and invocation count into a :class:`PhaseStats`.

Design constraints, in order:

1. **Disabled must be free.**  The kill switch is module-level: a
   driver fetches :func:`collector` once per run; when it returns
   ``None`` the per-step cost is a few local boolean checks — no timer
   calls, no allocations.  (The overhead-guard test asserts the timer
   is never consulted.)
2. **Enabled must stay within ~2% of the fused loop.**  Per-phase
   timer pairs every step would cost microseconds against a ~20µs
   fused step, so timing is *stride-sampled*: one step in every
   ``stride`` (a power of two; default 16) is fully timed, the rest
   pay one mask test.  Sampled sums extrapolate to estimated totals
   (``est_s = sampled_s × stride``); rare phases (compaction) are
   timed exactly.  Phase *shares* are what the breakdown is for, and
   shares are unbiased under uniform sampling.
3. **Array-backed, no dicts in the hot path.**  ``times``/``counts``
   are flat per-phase slots indexed by the module's phase constants;
   drivers add with two list index operations, not attribute or dict
   lookups.

Telemetry never touches execution state: runs are byte-identical with
the switch on or off.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "PHASES",
    "GUARD",
    "DAEMON",
    "APPLY",
    "ROUNDS",
    "PROBE",
    "COMPACT",
    "DEFAULT_STRIDE",
    "PhaseStats",
    "enable",
    "disable",
    "enabled",
    "collector",
    "snapshot",
    "recording",
    "merge_snapshots",
]

#: Phase labels, indexed by the constants below.
PHASES = ("guard", "daemon", "apply", "rounds", "probe", "compact")
GUARD, DAEMON, APPLY, ROUNDS, PROBE, COMPACT = range(len(PHASES))

#: Phases recorded on every occurrence (not stride-sampled): their
#: sampled sums are already exact totals and must not be extrapolated.
EXACT_PHASES = frozenset({COMPACT})

#: Default sampling stride (power of two): one fully-timed step per 16.
DEFAULT_STRIDE = 16

#: The clock the drivers read.  A module attribute (not an import-time
#: binding in the drivers) so tests can substitute a counting fake and
#: assert the disabled path never consults it.
timer = time.perf_counter


class PhaseStats:
    """Flat per-phase accumulators: sampled seconds and sample counts.

    ``times[p]``/``counts[p]`` hold the summed wall seconds and the
    number of samples recorded for phase ``p``.  For stride-sampled
    phases the estimated total is ``times[p] * stride``; for phases in
    :data:`EXACT_PHASES` it is ``times[p]`` itself.  Plain Python lists
    beat numpy here: the hot path does single-slot ``+=`` updates,
    where ndarray scalar indexing costs more than the timed work.
    """

    __slots__ = ("times", "counts", "stride", "mask")

    def __init__(self, stride: int = DEFAULT_STRIDE):
        if stride < 1 or (stride & (stride - 1)):
            raise ValueError(f"stride must be a power of two >= 1, got {stride}")
        self.stride = stride
        #: ``step & mask == 0`` selects the sampled steps.
        self.mask = stride - 1
        self.times = [0.0] * len(PHASES)
        self.counts = [0] * len(PHASES)

    # ------------------------------------------------------------------
    def add(self, phase: int, seconds: float) -> None:
        """Record one sample (drivers inline this; kept for callers)."""
        self.times[phase] += seconds
        self.counts[phase] += 1

    def reset(self) -> None:
        self.times = [0.0] * len(PHASES)
        self.counts = [0] * len(PHASES)

    def mark(self) -> tuple[list[float], list[int]]:
        """A copy of the current accumulators, for :meth:`since`."""
        return list(self.times), list(self.counts)

    def since(self, mark: tuple[list[float], list[int]]) -> dict:
        """Snapshot of what accumulated after ``mark`` was taken."""
        times0, counts0 = mark
        return _snapshot_of(
            [t - t0 for t, t0 in zip(self.times, times0)],
            [c - c0 for c, c0 in zip(self.counts, counts0)],
            self.stride,
        )

    def absorb(self, snap: dict | None) -> None:
        """Fold a snapshot (e.g. a worker process's delta) into this.

        Only meaningful when the snapshot came from a *different*
        collector — absorbing an in-process delta would double count.
        Strides may differ; estimated seconds stay correct because each
        sample re-enters under this collector's stride via its recorded
        ``est_s`` (we fold estimated seconds scaled back to this
        stride's sampled domain).
        """
        if not snap:
            return
        for idx, name in enumerate(PHASES):
            entry = snap.get("phases", {}).get(name)
            if not entry:
                continue
            scale = 1 if idx in EXACT_PHASES else self.stride
            self.times[idx] += entry["est_s"] / scale
            self.counts[idx] += entry["samples"]

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-safe breakdown: per-phase samples, sampled and est. seconds."""
        return _snapshot_of(self.times, self.counts, self.stride)


def _snapshot_of(times: list[float], counts: list[int], stride: int) -> dict:
    phases = {}
    total = 0.0
    for idx, name in enumerate(PHASES):
        if not counts[idx] and not times[idx]:
            continue
        est = times[idx] * (1 if idx in EXACT_PHASES else stride)
        phases[name] = {
            "samples": counts[idx],
            "sampled_s": round(times[idx], 9),
            "est_s": round(est, 9),
        }
        total += est
    for entry in phases.values():
        entry["share"] = round(entry["est_s"] / total, 4) if total else 0.0
    return {"stride": stride, "phases": phases, "total_est_s": round(total, 9)}


def merge_snapshots(*snaps: dict | None) -> dict:
    """Sum several snapshots (e.g. per-worker deltas) into one breakdown.

    Estimated seconds and sample counts add; the merged snapshot keeps
    no single stride (strides may differ across inputs) and reports
    ``stride: None``.
    """
    phases: dict[str, dict] = {}
    for snap in snaps:
        if not snap:
            continue
        for name, entry in snap.get("phases", {}).items():
            slot = phases.setdefault(
                name, {"samples": 0, "sampled_s": 0.0, "est_s": 0.0}
            )
            slot["samples"] += entry["samples"]
            slot["sampled_s"] = round(slot["sampled_s"] + entry["sampled_s"], 9)
            slot["est_s"] = round(slot["est_s"] + entry["est_s"], 9)
    total = sum(entry["est_s"] for entry in phases.values())
    for entry in phases.values():
        entry["share"] = round(entry["est_s"] / total, 4) if total else 0.0
    return {"stride": None, "phases": phases, "total_est_s": round(total, 9)}


# ----------------------------------------------------------------------
# The kill switch
# ----------------------------------------------------------------------
_collector: PhaseStats | None = None


def enable(stride: int = DEFAULT_STRIDE) -> PhaseStats:
    """Install (and return) a fresh process-wide collector."""
    global _collector
    _collector = PhaseStats(stride)
    return _collector


def disable() -> None:
    """Remove the collector: drivers fall back to the zero-cost path."""
    global _collector
    _collector = None


def enabled() -> bool:
    return _collector is not None


def collector() -> PhaseStats | None:
    """The active collector, or ``None`` when telemetry is off.

    Drivers call this once per run (never per step) and branch on the
    result locally.
    """
    return _collector


def snapshot() -> dict | None:
    """The active collector's breakdown, or ``None`` when off."""
    return _collector.snapshot() if _collector is not None else None


@contextmanager
def recording(stride: int = DEFAULT_STRIDE) -> Iterator[PhaseStats]:
    """Scoped collection: enable for the block, restore the prior state.

    The previous collector (if any) is reinstated afterwards — its
    accumulators are untouched by the scoped run.
    """
    global _collector
    previous = _collector
    stats = PhaseStats(stride)
    _collector = stats
    try:
        yield stats
    finally:
        _collector = previous


# Opt-in via environment, so sweeps launched from scripts or CI pick up
# phase tracing without code changes (REPRO_TELEMETRY=0/false keeps it off).
if os.environ.get("REPRO_TELEMETRY", "").strip().lower() not in (
    "", "0", "false", "no", "off",
):
    enable()
