"""Live TTY progress for sweeps: one self-updating line, cheap to feed.

:class:`TtyProgress` is a drop-in ``progress(done, total, record)``
callback for :func:`repro.engine.resume.run_campaign` that repaints a
single status line in place (carriage return, no scrollback spam)::

    sweep ▏ 412/1000 41% ▏ 183.2 trials/s ▏ eta 3s ▏ central:140 distributed-random:272

It tracks throughput over the whole run, estimates the ETA from the
remaining count, and keeps a per-daemon tally from the records it sees.
Repaints are throttled (default 10 Hz) so million-trial sweeps don't
spend their time in terminal writes; the final state always paints.

This renderer is only for interactive terminals — the CLI falls back to
plain ``[done/total] key`` lines when stdout is not a TTY, which is also
what the CLI tests capture.
"""

from __future__ import annotations

import sys
import time
from typing import IO

__all__ = ["TtyProgress"]


class TtyProgress:
    """Single-line, in-place progress renderer (see module docstring)."""

    def __init__(
        self,
        stream: IO[str] | None = None,
        *,
        label: str = "sweep",
        min_interval: float = 0.1,
        clock=time.monotonic,
    ):
        self.stream = stream if stream is not None else sys.stderr
        self.label = label
        self.min_interval = min_interval
        self._clock = clock
        self._started = clock()
        self._last_paint = 0.0
        self._last_width = 0
        self._by_daemon: dict[str, int] = {}
        self.done = 0
        self.total = 0

    # ------------------------------------------------------------------
    def __call__(self, done: int, total: int, record: dict | None = None) -> None:
        self.done, self.total = done, total
        if record is not None:
            daemon = (record.get("spec") or {}).get("daemon")
            if daemon:
                self._by_daemon[daemon] = self._by_daemon.get(daemon, 0) + 1
        now = self._clock()
        if done < total and now - self._last_paint < self.min_interval:
            return
        self._last_paint = now
        self._paint(now)

    def _paint(self, now: float) -> None:
        elapsed = max(now - self._started, 1e-9)
        rate = self.done / elapsed
        parts = [
            f"{self.label}",
            f"{self.done}/{self.total} "
            f"{(100 * self.done // self.total) if self.total else 0}%",
            f"{rate:.1f} trials/s",
            f"eta {self._eta(rate)}",
        ]
        if self._by_daemon:
            tally = " ".join(
                f"{name}:{count}" for name, count in sorted(self._by_daemon.items())
            )
            parts.append(tally)
        line = " ▏ ".join(parts)
        pad = max(self._last_width - len(line), 0)
        self._last_width = len(line)
        self.stream.write("\r" + line + " " * pad)
        self.stream.flush()

    def _eta(self, rate: float) -> str:
        remaining = self.total - self.done
        if remaining <= 0:
            return "0s"
        if rate <= 0:
            return "?"
        seconds = remaining / rate
        if seconds < 60:
            return f"{seconds:.0f}s"
        if seconds < 3600:
            return f"{seconds / 60:.1f}m"
        return f"{seconds / 3600:.1f}h"

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Paint the final state and move to a fresh line."""
        self._paint(self._clock())
        self.stream.write("\n")
        self.stream.flush()

    def __enter__(self) -> "TtyProgress":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
