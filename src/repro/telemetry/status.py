"""Inspect a running or crashed sweep from its store + event log.

``python -m repro.harness status --store results.jsonl`` answers "how far
did it get, how fast was it going, and what broke?" without touching the
campaign process: the answer is assembled purely from the two append-only
sidecars a sweep leaves behind —

* the result store (every *landed* trial, crash-tolerant tail), and
* the event log (lifecycle events: totals, failures, heartbeats).

Both readers tolerate truncated tails, so this works mid-run and after a
crash alike.  A sweep that predates event logging still yields a useful
summary from the store alone (counts per algorithm/daemon); the event-only
fields (total, throughput, failures) are simply null.
"""

from __future__ import annotations

import os
from typing import Any

from .events import events_path_for, read_events
from .provenance import read_manifest

__all__ = ["summarize_status", "render_status"]


def summarize_status(store_path: str | os.PathLike) -> dict:
    """Aggregate a sweep's store + event log into one JSON-safe summary.

    Returned fields: ``store`` (path), ``records`` (landed trials),
    ``total`` (campaign size from events, else null), ``by_algorithm``
    and ``by_daemon`` tallies, ``failures`` (list of ``{key, error,
    reason, retries}``),
    ``last_event`` (type + age of the newest event), ``throughput``
    (latest heartbeat/finish metrics), ``running`` (best-effort: events
    exist and no ``campaign_finished`` yet), and ``manifest`` (the
    sidecar manifest's git/campaign identity, if present).
    """
    # Imported lazily: engine.store is telemetry-free and must stay so.
    from ..engine.store import ResultStore

    store = ResultStore(store_path)
    by_algorithm: dict[str, int] = {}
    by_daemon: dict[str, int] = {}
    records = 0
    for record in store.iter_records():
        records += 1
        spec = record.get("spec") or {}
        algorithm = spec.get("algorithm")
        if algorithm:
            by_algorithm[algorithm] = by_algorithm.get(algorithm, 0) + 1
        daemon = spec.get("daemon")
        if daemon:
            by_daemon[daemon] = by_daemon.get(daemon, 0) + 1

    total: int | None = None
    failures: list[dict] = []
    last_event: dict | None = None
    throughput: dict | None = None
    finished = False
    saw_events = False
    for event in read_events(events_path_for(store_path)):
        saw_events = True
        last_event = {"event": event["event"], "ts": event["ts"]}
        etype = event["event"]
        if etype == "campaign_started":
            total = event["total"]
            finished = False
        elif etype == "trial_failed":
            failures.append(
                {
                    "key": event["key"],
                    "error": event["error"],
                    "reason": event.get("reason", "error"),
                    "retries": event.get("retries", 0),
                }
            )
        elif etype in ("heartbeat", "campaign_finished"):
            throughput = {
                "done": event["done"],
                "total": event["total"],
                "elapsed_s": event["elapsed_s"],
                "trials_per_s": event["trials_per_s"],
                "eta_s": event.get("eta_s"),
            }
            if etype == "campaign_finished":
                finished = True

    manifest = read_manifest(store_path)
    manifest_summary = None
    if manifest:
        manifest_summary = {
            "git": manifest.get("git"),
            "campaign": manifest.get("campaign"),
            "created_at": manifest.get("created_at"),
        }

    return {
        "store": str(store_path),
        "records": records,
        "total": total,
        "by_algorithm": dict(sorted(by_algorithm.items())),
        "by_daemon": dict(sorted(by_daemon.items())),
        "failures": failures,
        "last_event": last_event,
        "throughput": throughput,
        "running": saw_events and not finished,
        "manifest": manifest_summary,
    }


def render_status(summary: dict) -> str:
    """Human-readable rendering of a :func:`summarize_status` summary."""
    lines = [f"store: {summary['store']}"]

    total = summary["total"]
    progress = f"{summary['records']} trials landed"
    if total is not None:
        pct = 100 * summary["records"] // total if total else 0
        progress += f" of {total} ({pct}%)"
    state = (
        "running (or crashed mid-run)" if summary["running"]
        else "finished" if summary["last_event"] is not None
        else "no event log"
    )
    lines.append(f"progress: {progress} — {state}")

    if summary["by_algorithm"]:
        tally = ", ".join(f"{k}: {v}" for k, v in summary["by_algorithm"].items())
        lines.append(f"by algorithm: {tally}")
    if summary["by_daemon"]:
        tally = ", ".join(f"{k}: {v}" for k, v in summary["by_daemon"].items())
        lines.append(f"by daemon: {tally}")

    throughput = summary["throughput"]
    if throughput:
        line = (
            f"throughput: {throughput['trials_per_s']:.1f} trials/s "
            f"over {throughput['elapsed_s']:.1f}s"
        )
        if summary["running"] and throughput.get("eta_s") is not None:
            line += f", eta ~{throughput['eta_s']:.0f}s"
        lines.append(line)

    for failure in summary["failures"]:
        reason = failure.get("reason", "error")
        retries = failure.get("retries", 0)
        lines.append(
            f"FAILED {failure['key']} [{reason}, {retries} retries]: "
            f"{failure['error']}"
        )

    manifest = summary["manifest"]
    if manifest:
        git = manifest.get("git") or {}
        campaign = manifest.get("campaign") or {}
        bits = []
        if git.get("sha"):
            sha = git["sha"][:12] + ("+dirty" if git.get("dirty") else "")
            bits.append(f"git {sha}")
        if campaign.get("grid_hash"):
            bits.append(f"grid {campaign['grid_hash'][:12]}")
        if manifest.get("created_at"):
            bits.append(f"created {manifest['created_at']}")
        if bits:
            lines.append("manifest: " + ", ".join(bits))

    return "\n".join(lines)
