"""repro.telemetry — observe the *runtime*, not just the simulation.

:mod:`repro.probes` made simulation state observable without leaving the
fused loop; this package makes the execution stack itself observable,
across three complementary layers:

* :mod:`~repro.telemetry.phases` — **phase tracing**: the fused kernel
  loop, the batched driver, and the dict engine accumulate per-phase
  wall time and invocation counts (guard-eval, daemon selection,
  apply/flip, round accounting, probe hooks, compaction/re-tile) into a
  flat array-backed :class:`PhaseStats`.  A module-level kill switch
  keeps the disabled cost to a handful of local attribute loads per
  step; enabled, the sampled timers stay within a ~2% fused-loop budget
  (asserted by ``benchmarks/bench_kernel.py --check``).
* :mod:`~repro.telemetry.events` — **campaign lifecycle events**:
  :mod:`repro.engine` emits structured trial/batch/heartbeat events to
  a pluggable sink (a crash-tolerant JSONL log next to the result
  store by default), so a running — or crashed — sweep can be inspected
  by ``python -m repro.harness status``.
* :mod:`~repro.telemetry.provenance` — **provenance manifests**: every
  sweep store and every ``BENCH_core.json`` regeneration gets a sidecar
  manifest (git SHA + dirty flag, package versions, numpy build info,
  CPU/host, campaign grid hash, telemetry phase breakdown) so any
  result row is explainable and two stores are comparable.

Determinism contract: telemetry is *write-only observation*.  Nothing
in this package touches an rng, a configuration, or a store record —
result stores stay byte-identical with telemetry on, off, or absent
(the overhead-guard tests assert it), and all wall-clock data lives in
sidecar files, never in records.
"""

from .events import (
    EVENT_SCHEMA_VERSION,
    EventError,
    JsonlEventSink,
    MemoryEventSink,
    events_path_for,
    read_events,
    validate_event,
)
from .phases import (
    PHASES,
    PhaseStats,
    collector,
    disable,
    enable,
    enabled,
    recording,
    snapshot,
)
from .progress import TtyProgress
from .provenance import (
    build_manifest,
    grid_hash,
    manifest_path_for,
    read_manifest,
    write_manifest,
)
from .status import render_status, summarize_status

__all__ = [
    # phases
    "PHASES",
    "PhaseStats",
    "collector",
    "enable",
    "disable",
    "enabled",
    "recording",
    "snapshot",
    # events
    "EVENT_SCHEMA_VERSION",
    "EventError",
    "JsonlEventSink",
    "MemoryEventSink",
    "events_path_for",
    "read_events",
    "validate_event",
    # provenance
    "build_manifest",
    "grid_hash",
    "manifest_path_for",
    "read_manifest",
    "write_manifest",
    # progress / status
    "TtyProgress",
    "summarize_status",
    "render_status",
]
