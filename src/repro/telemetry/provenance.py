"""Provenance manifests: which code/config/hardware produced a result.

Result stores are deliberately deterministic — no timestamps, hostnames,
or versions in the records, so the same campaign yields byte-identical
stores everywhere.  That determinism makes the records *comparable* but
not *explainable*: when a benchmark row regresses or two stores of the
same grid disagree, the first question is always "what code, on what
machine, against which numpy?".  Manifests answer it from a sidecar file
(``results.jsonl`` → ``results.manifest.json``) so the answer never
contaminates the records themselves.

Manifest fields (all best-effort — a field whose probe fails is null,
never an exception):

``schema``            manifest schema version (1)
``created_at``        ISO-8601 UTC creation time
``git``               ``{"sha": ..., "dirty": bool, "branch": ...}``
``versions``          python + repro + numpy (and scipy when present)
``numpy_config``      blas/lapack linkage summary from numpy
``host``              platform string, machine, cpu count, hostname
``campaign``          name/seed/size/``grid_hash`` of the campaign, if any
``phase_stats``       telemetry phase breakdown, if collection was on
``extra``             caller-supplied context (bench grid, CLI args, …)

:func:`grid_hash` is the campaign identity: a SHA-256 over the master
seed and every trial key, so two manifests agree on it iff their
campaigns expand to the same trials with the same seeds.
"""

from __future__ import annotations

import datetime
import hashlib
import json
import os
import platform
import socket
import subprocess
import sys
from pathlib import Path
from typing import Any

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "build_manifest",
    "git_info",
    "grid_hash",
    "manifest_path_for",
    "read_manifest",
    "write_manifest",
]

MANIFEST_SCHEMA_VERSION = 1


def manifest_path_for(path: str | os.PathLike) -> Path:
    """The sidecar manifest path for a store or benchmark report.

    ``results.jsonl`` → ``results.manifest.json``;
    ``BENCH_core.json`` → ``BENCH_core.manifest.json``.
    """
    path = Path(path)
    return path.with_name(path.stem + ".manifest.json")


def grid_hash(campaign: Any) -> str:
    """SHA-256 identity of a campaign's expanded grid.

    Covers the master seed and the sorted canonical trial keys — i.e.
    exactly what determines the result records.  Anything that changes a
    key (a new axis value, a renamed param) changes the hash; execution
    options, worker counts, and batching do not.
    """
    digest = hashlib.sha256()
    digest.update(f"seed={campaign.seed}".encode())
    for key in sorted(campaign.keys()):
        digest.update(b"\x00")
        digest.update(key.encode())
    return digest.hexdigest()


def git_info(cwd: str | os.PathLike | None = None) -> dict | None:
    """``{"sha", "dirty", "branch"}`` of the enclosing checkout, or None."""

    def git(*args: str) -> str | None:
        try:
            out = subprocess.run(
                ("git", *args),
                cwd=cwd,
                capture_output=True,
                text=True,
                timeout=10,
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        return out.stdout.strip() if out.returncode == 0 else None

    sha = git("rev-parse", "HEAD")
    if sha is None:
        return None
    status = git("status", "--porcelain")
    return {
        "sha": sha,
        "dirty": bool(status) if status is not None else None,
        "branch": git("rev-parse", "--abbrev-ref", "HEAD"),
    }


def _versions() -> dict:
    versions: dict[str, str | None] = {
        "python": platform.python_version(),
    }
    for module_name in ("repro", "numpy", "scipy"):
        try:
            module = __import__(module_name)
        except ImportError:
            continue
        versions[module_name] = getattr(module, "__version__", None)
    return versions


def _numpy_config() -> dict | None:
    """A compact summary of numpy's build configuration (BLAS linkage)."""
    try:
        import numpy as np

        config = np.show_config(mode="dicts")
    except Exception:
        return None
    try:
        deps = config.get("Build Dependencies", {})
        return {
            dep: {
                "name": info.get("name"),
                "version": info.get("version"),
                "found": info.get("found"),
            }
            for dep, info in deps.items()
            if isinstance(info, dict)
        } or None
    except AttributeError:
        return None


def _host() -> dict:
    try:
        hostname = socket.gethostname()
    except OSError:
        hostname = None
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "processor": platform.processor() or None,
        "cpu_count": os.cpu_count(),
        "hostname": hostname,
    }


def build_manifest(
    *,
    campaign: Any | None = None,
    phase_stats: dict | None = None,
    extra: dict | None = None,
    cwd: str | os.PathLike | None = None,
) -> dict:
    """Assemble a manifest dict describing the current run environment.

    ``campaign`` (a :class:`repro.engine.campaign.Campaign`) contributes
    its identity block; ``phase_stats`` is a telemetry snapshot (from
    :func:`repro.telemetry.phases.snapshot` or a merged worker
    breakdown); ``extra`` is arbitrary caller context stored verbatim.
    """
    manifest: dict[str, Any] = {
        "schema": MANIFEST_SCHEMA_VERSION,
        "created_at": datetime.datetime.now(datetime.timezone.utc)
        .isoformat(timespec="seconds"),
        "git": git_info(cwd),
        "versions": _versions(),
        "numpy_config": _numpy_config(),
        "host": _host(),
        "argv": list(sys.argv),
        "campaign": None,
        "phase_stats": phase_stats,
        "extra": extra or {},
    }
    if campaign is not None:
        manifest["campaign"] = {
            "name": campaign.name,
            "seed": campaign.seed,
            "size": campaign.size,
            "grid_hash": grid_hash(campaign),
        }
    return manifest


def write_manifest(
    target_path: str | os.PathLike,
    manifest: dict,
) -> Path:
    """Write ``manifest`` as the sidecar of ``target_path``; return its path.

    The write is atomic (temp file + ``os.replace``) so a concurrent
    reader never sees a half-written manifest.
    """
    path = manifest_path_for(target_path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    os.replace(tmp, path)
    return path


def read_manifest(target_path: str | os.PathLike) -> dict | None:
    """Load the sidecar manifest of a store/report, or None if absent.

    ``target_path`` may be the store/report itself or the manifest file.
    """
    path = Path(target_path)
    if path.suffix != ".json" or not path.name.endswith(".manifest.json"):
        path = manifest_path_for(path)
    if not path.exists():
        return None
    return json.loads(path.read_text(encoding="utf-8"))
