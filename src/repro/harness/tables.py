"""Minimal ASCII table rendering for experiment reports.

The benchmarks print the same rows EXPERIMENTS.md records; keeping the
renderer dependency-free makes the harness usable in any environment.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

__all__ = ["Table"]


def _fmt(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


class Table:
    """A titled, column-aligned ASCII table."""

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = list(columns)
        self.rows: list[list[str]] = []

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells for {len(self.columns)} columns"
            )
        self.rows.append([_fmt(v) for v in values])

    def extend(self, rows: Iterable[Sequence[Any]]) -> None:
        for row in rows:
            self.add_row(*row)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines = [self.title, "=" * max(len(self.title), len(header)), header, sep]
        for row in self.rows:
            lines.append(" | ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
