"""Persistence helpers for experiment data (CSV / JSON, stdlib only).

Sweeps produce :class:`~repro.harness.runner.Trial` records; these helpers
flatten them for downstream analysis outside Python (spreadsheets, R,
gnuplot) and dump :class:`~repro.harness.experiments.ExperimentResult`
tables losslessly.
"""

from __future__ import annotations

import csv
import json
import pathlib
from typing import Iterable, Sequence

from .experiments import ExperimentResult
from .runner import Trial

__all__ = ["trial_rows", "write_trials_csv", "write_result_json"]

_TRIAL_FIELDS = (
    "algorithm",
    "scenario",
    "daemon",
    "seed",
    "n",
    "m",
    "diameter",
    "max_degree",
    "rounds",
    "moves",
    "steps",
)


def trial_rows(trials: Iterable[Trial]) -> list[dict]:
    """Flatten trials to plain dicts (extras inlined with ``extra_`` prefix)."""
    rows = []
    for trial in trials:
        row = {field: getattr(trial, field) for field in _TRIAL_FIELDS}
        row["sdr_moves"] = trial.metrics.sdr_moves
        row["input_moves"] = trial.metrics.input_moves
        row["max_moves_per_process"] = trial.metrics.max_moves_per_process
        for key, value in trial.extra.items():
            if isinstance(value, (int, float, str, bool)):
                row[f"extra_{key}"] = value
        rows.append(row)
    return rows


def write_trials_csv(trials: Sequence[Trial], path: str | pathlib.Path) -> pathlib.Path:
    """Write a trial sweep to CSV; returns the path written."""
    path = pathlib.Path(path)
    rows = trial_rows(trials)
    if not rows:
        raise ValueError("no trials to write")
    fieldnames: list[str] = []
    for row in rows:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=fieldnames, restval="")
        writer.writeheader()
        writer.writerows(rows)
    return path


def write_result_json(result: ExperimentResult, path: str | pathlib.Path) -> pathlib.Path:
    """Dump an experiment result (table rows + figure series) as JSON."""
    path = pathlib.Path(path)
    payload = {
        "experiment_id": result.experiment_id,
        "claim": result.claim,
        "ok": result.ok,
        "columns": result.table.columns,
        "rows": result.table.rows,
        "figure": (
            {name: sorted(points) for name, points in result.figure.series.items()}
            if result.figure is not None
            else None
        ),
    }
    path.write_text(json.dumps(payload, indent=2, default=str) + "\n")
    return path
