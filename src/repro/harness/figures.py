"""Series data + ASCII rendering for the figure experiments (F1–F6).

A :class:`Figure` holds named series of ``(x, y)`` points; ``render()``
draws a terminal scatter plot (optionally log-log) and ``to_rows()`` emits
the underlying numbers for EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

__all__ = ["Figure"]

_MARKS = "ox+*#@%&"


class Figure:
    """Named (x, y) series with a dependency-free terminal renderer."""

    def __init__(self, title: str, xlabel: str = "x", ylabel: str = "y", loglog: bool = False):
        self.title = title
        self.xlabel = xlabel
        self.ylabel = ylabel
        self.loglog = loglog
        self.series: dict[str, list[tuple[float, float]]] = {}

    def add(self, name: str, points: Iterable[tuple[float, float]]) -> None:
        self.series.setdefault(name, []).extend(
            (float(x), float(y)) for x, y in points
        )

    def add_point(self, name: str, x: float, y: float) -> None:
        self.series.setdefault(name, []).append((float(x), float(y)))

    # ------------------------------------------------------------------
    def to_rows(self) -> list[tuple[str, float, float]]:
        rows = []
        for name, pts in self.series.items():
            for x, y in sorted(pts):
                rows.append((name, x, y))
        return rows

    # ------------------------------------------------------------------
    def render(self, width: int = 64, height: int = 18) -> str:
        """ASCII scatter plot of all series."""
        all_pts = [(x, y) for pts in self.series.values() for (x, y) in pts]
        if not all_pts:
            return f"{self.title}\n(empty figure)"

        def tx(v: float) -> float:
            return math.log10(v) if self.loglog and v > 0 else v

        xs = [tx(x) for x, _ in all_pts]
        ys = [tx(y) for _, y in all_pts]
        x0, x1 = min(xs), max(xs)
        y0, y1 = min(ys), max(ys)
        xr = (x1 - x0) or 1.0
        yr = (y1 - y0) or 1.0

        grid = [[" "] * width for _ in range(height)]
        for i, (name, pts) in enumerate(sorted(self.series.items())):
            mark = _MARKS[i % len(_MARKS)]
            for x, y in pts:
                col = int((tx(x) - x0) / xr * (width - 1))
                row = height - 1 - int((tx(y) - y0) / yr * (height - 1))
                grid[row][col] = mark

        scale = " (log-log)" if self.loglog else ""
        lines = [f"{self.title}{scale}", f"y: {self.ylabel}   x: {self.xlabel}"]
        lines.append("+" + "-" * width + "+")
        for row in grid:
            lines.append("|" + "".join(row) + "|")
        lines.append("+" + "-" * width + "+")
        legend = "   ".join(
            f"{_MARKS[i % len(_MARKS)]} {name}"
            for i, name in enumerate(sorted(self.series))
        )
        lines.append(f"legend: {legend}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
