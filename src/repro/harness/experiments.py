"""The per-claim experiment registry (see DESIGN.md §4 and EXPERIMENTS.md).

The paper's evaluation is analytical; every theorem bound and comparison
claim maps to one experiment here.  Each experiment function returns an
:class:`ExperimentResult` whose ``ok`` flag asserts the claim's empirical
counterpart (measured ≤ bound, or comparison direction), whose ``table``
holds the printable rows, and whose ``data`` keeps raw series for figures.

Benchmarks in ``benchmarks/`` call these functions with small default
grids; larger sweeps can be run directly, e.g.::

    from repro.harness import experiments
    print(experiments.experiment_t3_t4(sizes=(10, 20, 40), trials=5).table)

The sweep-shaped experiments (T3/T4, T5, T11, F1/F2) route their grids
through the :mod:`repro.engine` campaign engine and take ``workers=N`` to
fan out across processes and ``store=ResultStore(path)`` to persist and
resume.  T11 is the storm-recovery experiment the paper never ran: a
deterministic mid-run fault schedule (k corruptions every ``cadence``
steps) with per-burst recovery stopwatches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random
from typing import Any, Callable, Sequence

import numpy as np

from ..alliance.fga import FGA
from ..alliance.functions import INSTANCES, dominating_set
from ..alliance.spec import (
    is_fga_stable,
    is_minimal_dominating_set,
    is_one_minimal,
    one_minimality_guaranteed,
)
from ..alliance.turau import TurauMIS
from ..analysis import bounds
from ..analysis.stats import fit_power_law, summarize
from ..baselines.mono_reset import MonoReset
from ..adversary.search import AdversarialDaemon, delay_strategy
from ..core.daemon import (
    CentralDaemon,
    DistributedRandomDaemon,
    LocallyCentralDaemon,
    SynchronousDaemon,
)
from ..core.detectors import measure_stabilization
from ..core.simulator import Simulator
from ..faults.injector import corrupt_processes
from ..probes import Probe, StabilizationProbe
from ..reset.sdr import SDR, SDR_RULES
from ..topology import by_name
from ..unison.unison import Unison
from .runner import run_fga_trial
from .figures import Figure
from .tables import Table

__all__ = [
    "ExperimentResult",
    "SdrMoveCounter",
    "experiment_t1_t2",
    "experiment_t3_t4",
    "experiment_t5",
    "experiment_t6_t7",
    "experiment_t8",
    "experiment_t9",
    "experiment_t10",
    "experiment_t11",
    "experiment_t12",
    "experiment_t13",
    "figure_f1_f2",
    "figure_f3",
    "figure_f4",
    "figure_f5",
    "figure_f6",
    "figure_f7",
    "experiment_p1",
    "experiment_a1",
    "REGISTRY",
]


@dataclass
class ExperimentResult:
    """Outcome of one experiment: printable table, pass flag, raw data."""

    experiment_id: str
    claim: str
    table: Table
    ok: bool
    data: dict[str, Any] = field(default_factory=dict)
    figure: Figure | None = None

    def render(self) -> str:
        parts = [f"[{self.experiment_id}] {self.claim}", self.table.render()]
        if self.figure is not None:
            parts.append(self.figure.render())
        parts.append(f"RESULT: {'PASS' if self.ok else 'FAIL'}")
        return "\n\n".join(parts)


class SdrMoveCounter(Probe):
    """Two-tier probe tallying SDR-rule moves per process (Corollary 4).

    Per-step rule attribution used to force the decode tier; the fused
    drivers now expose the executed dispatch as
    ``ColumnView.chosen_rules``, so vectorizable executions count SDR
    moves without leaving the fused loop (one boolean gather per step).
    Adversarial-daemon experiments still fall back to the decode tier —
    both tiers produce identical counts.
    """

    name = "sdr-move-counter"

    def __init__(self, n: int):
        self.counts = np.zeros(n, dtype=np.int64)
        self.rules = set(SDR_RULES)
        #: Per-rule-index "is an SDR rule" lookup, resolved against the
        #: observed program's rule order on first vector-tier call.
        self._rule_mask: np.ndarray | None = None

    def wants_decode(self) -> bool:
        return False

    # Decode tier (dict backend, unvectorizable daemons, tracing) ------
    def on_step(self, sim, record) -> None:
        for u, rule in record.selection.items():
            if rule in self.rules:
                self.counts[u] += 1

    # Vector tier ------------------------------------------------------
    def on_columns(self, view) -> None:
        if view.phase == "start":
            return
        if self._rule_mask is None:
            self._rule_mask = np.array(
                [rule in self.rules for rule in view.program.rules],
                dtype=np.bool_,
            )
        # ``chosen`` holds unique process indices, so the fancy-indexed
        # increment needs no np.add.at.
        sdr_moves = view.chosen[self._rule_mask[view.chosen_rules]]
        self.counts[sdr_moves] += 1

    @property
    def touched(self) -> int:
        """Number of processes that executed at least one SDR rule."""
        return int(np.count_nonzero(self.counts))


def _measure(sim: Simulator, predicate, mask: str,
             max_steps: int) -> StabilizationProbe:
    """Fused-path stabilization measurement for the experiment bodies.

    Attaches a two-tier probe and runs: vectorized executions measure on
    the fused loop, everything else decodes per step — identical
    numbers.  Raises :class:`~repro.core.exceptions.NotStabilized` when
    the budget runs out.
    """
    probe = StabilizationProbe(predicate, mask=mask, name="legitimate")
    sim.add_probe(probe)
    sim.run(max_steps=max_steps)
    probe.require_hit()
    return probe


#: The delay heuristic moved to :mod:`repro.adversary.search` (it is the
#: decode-tier fallback score of every search strategy); keep the old
#: private name for the experiment bodies below.
_delay_strategy = delay_strategy


def _daemon_menu(network):
    return {
        "synchronous": SynchronousDaemon(),
        "central": CentralDaemon(),
        "locally-central": LocallyCentralDaemon(network),
        "distributed-random": DistributedRandomDaemon(0.5),
        "adversarial": AdversarialDaemon(delay_strategy),
    }


# ======================================================================
# T1/T2 — SDR layer bounds (Corollaries 4 and 5)
# ======================================================================
def experiment_t1_t2(
    sizes: Sequence[int] = (8, 12, 16),
    topologies: Sequence[str] = ("ring", "random", "tree"),
    trials: int = 3,
    daemons: Sequence[str] = ("distributed-random", "adversarial", "synchronous"),
) -> ExperimentResult:
    """Cor. 4: ≤ 3n+3 SDR moves per process; Cor. 5: normal config ≤ 3n rounds."""
    table = Table(
        "T1/T2 — SDR bounds (input: U), worst measurement per cell",
        ["topology", "n", "daemon", "max SDR moves/proc", "bound 3n+3",
         "rounds", "bound 3n", "ok"],
    )
    ok = True
    for topo in topologies:
        for n in sizes:
            net = by_name(topo, n, seed=1)
            for daemon_name in daemons:
                worst_moves = worst_rounds = 0
                for seed in range(trials):
                    sdr = SDR(Unison(net))
                    rng = Random(seed)
                    cfg = sdr.random_configuration(rng)
                    counter = SdrMoveCounter(net.n)
                    sim = Simulator(
                        sdr, _daemon_menu(net)[daemon_name], config=cfg,
                        seed=seed, probes=[counter],
                    )
                    detector, _ = measure_stabilization(sim, sdr.is_normal, max_steps=2_000_000)
                    # Run past stabilization: per-process SDR moves are a
                    # whole-execution bound, not just to stabilization.
                    sim.run(max_steps=20 * net.n)
                    worst_moves = max(worst_moves, max(counter.counts))
                    worst_rounds = max(worst_rounds, detector.rounds or 0)
                move_bound = bounds.sdr_moves_per_process_bound(net.n)
                round_bound = bounds.sdr_rounds_bound(net.n)
                cell_ok = worst_moves <= move_bound and worst_rounds <= round_bound
                ok &= cell_ok
                table.add_row(topo, net.n, daemon_name, worst_moves, move_bound,
                              worst_rounds, round_bound, cell_ok)
    return ExperimentResult(
        "T1/T2",
        "Any process executes ≤ 3n+3 SDR moves; normal configuration within ≤ 3n rounds",
        table,
        ok,
    )


# ======================================================================
# T3/T4 — U ∘ SDR stabilization bounds (Theorems 6 and 7)
# ======================================================================
def experiment_t3_t4(
    sizes: Sequence[int] = (8, 12, 16),
    topologies: Sequence[str] = ("ring", "grid", "random"),
    trials: int = 3,
    scenarios: Sequence[str] = ("random", "gradient", "split"),
    workers: int = 0,
    store=None,
) -> ExperimentResult:
    """Thm. 6: moves ≤ (3D+3)n²+(3D+1)(n−1)+1; Thm. 7: rounds ≤ 3n.

    The (topology × n × scenario × trial) sweep runs through the campaign
    engine: ``workers`` fans it out across processes, ``store`` (a
    :class:`repro.engine.ResultStore`) persists and resumes it.
    """
    from ..engine import Campaign, run_campaign
    from ..engine.reports import group_records

    campaign = Campaign(
        "t3-t4-unison-bounds", seed=0, algorithms=("unison",),
        topologies=tuple(topologies), sizes=tuple(sizes),
        scenarios=tuple(scenarios), trials=trials, topology_seed=2,
    )
    outcome = run_campaign(
        campaign, store=store, workers=workers, resume=store is not None
    )
    cells = group_records(outcome.records, ("topology", "n", "scenario"))

    table = Table(
        "T3/T4 — U ∘ SDR stabilization, worst measurement per cell",
        ["topology", "n", "D", "scenario", "moves", "move bound", "rounds",
         "round bound", "ok"],
    )
    ok = True
    for (topo, _, scenario), group in cells.items():
        # All records in a cell share the network, so n/D come from any one.
        n = group[0]["result"]["n"]
        diameter = group[0]["result"]["diameter"]
        worst_moves = max(r["result"]["moves"] for r in group)
        worst_rounds = max(r["result"]["rounds"] for r in group)
        mb = bounds.unison_move_bound(n, diameter)
        rb = bounds.unison_rounds_bound(n)
        cell_ok = worst_moves <= mb and worst_rounds <= rb
        ok &= cell_ok
        table.add_row(topo, n, diameter, scenario, worst_moves,
                      mb, worst_rounds, rb, cell_ok)
    return ExperimentResult(
        "T3/T4",
        "U ∘ SDR stabilizes within O(D·n²) moves and 3n rounds",
        table,
        ok,
    )


# ======================================================================
# T5 — comparison with the reset-tail baseline [11]
# ======================================================================
def experiment_t5(
    sizes: Sequence[int] = (8, 12, 16, 20),
    topology: str = "ring",
    trials: int = 3,
    scenario: str = "gradient",
    workers: int = 0,
    store=None,
) -> ExperimentResult:
    """§5.3: ours wins in moves (strictly, on average) and matches O(n) rounds.

    Both algorithms share one engine campaign (``workers``/``store`` as in
    :func:`experiment_t3_t4`), so the head-to-head grid can run in parallel
    and resume from a partial store.
    """
    from ..engine import Campaign, aggregate, run_campaign

    campaign = Campaign(
        "t5-unison-vs-boulinier", seed=0,
        algorithms=("unison", "boulinier"), topologies=(topology,),
        sizes=tuple(sizes), scenarios=(scenario,), trials=trials,
        topology_seed=3,
    )
    outcome = run_campaign(
        campaign, store=store, workers=workers, resume=store is not None
    )
    moves = aggregate(outcome.records, ("algorithm", "n"), "moves", "mean")
    rounds = aggregate(outcome.records, ("algorithm", "n"), "rounds", "mean")

    table = Table(
        "T5 — U ∘ SDR vs Boulinier-style baseline (means over seeds)",
        ["n", "ours moves", "baseline moves", "move ratio", "ours rounds",
         "baseline rounds", "ok"],
    )
    ok = True
    data: dict[str, list] = {"n": [], "ours_moves": [], "base_moves": []}
    for n in campaign.sizes:
        ours_m, base_m = moves[("unison", n)], moves[("boulinier", n)]
        ours_r, base_r = rounds[("unison", n)], rounds[("boulinier", n)]
        ratio = base_m / max(ours_m, 1)
        row_ok = base_m >= ours_m
        ok &= row_ok
        table.add_row(n, f"{ours_m:.0f}", f"{base_m:.0f}",
                      f"{ratio:.2f}x", f"{ours_r:.1f}", f"{base_r:.1f}", row_ok)
        data["n"].append(n)
        data["ours_moves"].append(ours_m)
        data["base_moves"].append(base_m)
    return ExperimentResult(
        "T5",
        "U ∘ SDR uses fewer moves than the reset-tail baseline at equal disorder",
        table,
        ok,
        data=data,
    )


# ======================================================================
# T6/T7 — FGA ∘ SDR bounds (Theorems 12/13/14)
# ======================================================================
def experiment_t6_t7(
    sizes: Sequence[int] = (8, 12, 16),
    topologies: Sequence[str] = ("random", "grid"),
    trials: int = 3,
    scenarios: Sequence[str] = ("random", "hollow"),
) -> ExperimentResult:
    """Thm. 12: silent, ≤ (n+1)(16mΔ+36m+27n) moves; Thm. 14: ≤ 8n+4 rounds."""
    table = Table(
        "T6/T7 — FGA ∘ SDR (dominating-set instance), worst per cell",
        ["topology", "n", "m", "Δ", "scenario", "moves", "move bound",
         "rounds", "round bound", "ok"],
    )
    ok = True
    for topo in topologies:
        for n in sizes:
            net = by_name(topo, n, seed=4)
            f, g = dominating_set(net)
            for scenario in scenarios:
                worst_moves = worst_rounds = 0
                alliances_ok = True
                for seed in range(trials):
                    trial = run_fga_trial(net, f, g, seed=seed, scenario=scenario)
                    worst_moves = max(worst_moves, trial.moves)
                    worst_rounds = max(worst_rounds, trial.rounds)
                    alliances_ok &= is_one_minimal(net, trial.extra["alliance"], f, g)
                mb = bounds.fga_sdr_move_bound(net.n, net.m, net.max_degree)
                rb = bounds.fga_sdr_rounds_bound(net.n)
                cell_ok = worst_moves <= mb and worst_rounds <= rb and alliances_ok
                ok &= cell_ok
                table.add_row(topo, net.n, net.m, net.max_degree, scenario,
                              worst_moves, mb, worst_rounds, rb, cell_ok)
    return ExperimentResult(
        "T6/T7",
        "FGA ∘ SDR is silent, 1-minimal, within O(Δ·n·m) moves and 8n+4 rounds",
        table,
        ok,
    )


# ======================================================================
# T8 — standalone FGA from γ_init (Cor. 11/12, Lemma 25)
# ======================================================================
def experiment_t8(
    sizes: Sequence[int] = (8, 12, 16),
    topologies: Sequence[str] = ("random", "ring"),
    trials: int = 3,
) -> ExperimentResult:
    """Standalone FGA from γ_init: total/per-process moves and round bounds."""
    table = Table(
        "T8 — standalone FGA from γ_init, worst per cell",
        ["topology", "n", "moves", "bound 16Δm+36m+24n", "max/proc",
         "per-proc bound", "rounds", "bound 5n+4", "ok"],
    )
    ok = True
    for topo in topologies:
        for n in sizes:
            net = by_name(topo, n, seed=5)
            f, g = dominating_set(net)
            worst_moves = worst_pp = worst_rounds = 0
            for seed in range(trials):
                fga = FGA(net, f, g)
                sim = Simulator(
                    fga, DistributedRandomDaemon(0.5),
                    config=fga.initial_configuration(), seed=seed,
                )
                result = sim.run_to_termination(max_steps=2_000_000)
                worst_moves = max(worst_moves, result.moves)
                worst_pp = max(worst_pp, max(sim.moves_per_process))
                worst_rounds = max(worst_rounds, result.rounds)
            mb = bounds.fga_standalone_move_bound(net.n, net.m, net.max_degree)
            ppb = bounds.fga_standalone_moves_per_process_bound(
                net.max_degree, net.max_degree
            )
            rb = bounds.fga_standalone_rounds_bound(net.n)
            cell_ok = worst_moves <= mb and worst_pp <= ppb and worst_rounds <= rb
            ok &= cell_ok
            table.add_row(topo, net.n, worst_moves, mb, worst_pp, ppb,
                          worst_rounds, rb, cell_ok)
    return ExperimentResult(
        "T8",
        "Standalone FGA terminates within 16Δm+36m+24n moves and 5n+4 rounds",
        table,
        ok,
    )


# ======================================================================
# T9 — the six alliance instances (Section 6.1)
# ======================================================================
def experiment_t9(
    n: int = 12,
    topology: str = "random",
    trials: int = 2,
) -> ExperimentResult:
    """Each classical instance is solved; outputs verified 1-minimal."""
    table = Table(
        "T9 — classical (f,g)-alliance instances via FGA ∘ SDR",
        ["instance", "n", "|A| (mean)", "moves (mean)", "rounds (mean)",
         "f>g (Thm 8)", "minimality ok"],
    )
    ok = True
    for name, factory in sorted(INSTANCES.items()):
        net = by_name(topology, n, seed=6)
        try:
            f, g = factory(net)
        except Exception:
            # Instance infeasible on this topology draw (degree too low);
            # retry on a denser graph.
            net = by_name("complete", max(n, 6), seed=6)
            f, g = factory(net)
        # Reproduction finding (see DESIGN.md): Theorem 8's 1-minimality
        # only follows when f > g pointwise; otherwise the published guards
        # enforce the weaker "FGA-1-minimality" (strict score margin).
        guaranteed = one_minimality_guaranteed(f, g)
        checker = is_one_minimal if guaranteed else is_fga_stable
        sizes, moves, rounds, minimal = [], [], [], True
        for seed in range(trials):
            trial = run_fga_trial(net, f, g, seed=seed, scenario="random")
            sizes.append(trial.extra["alliance_size"])
            moves.append(trial.moves)
            rounds.append(trial.rounds)
            minimal &= checker(net, trial.extra["alliance"], f, g)
        ok &= minimal
        mean = lambda xs: sum(xs) / len(xs)
        table.add_row(name, net.n, f"{mean(sizes):.1f}", f"{mean(moves):.0f}",
                      f"{mean(rounds):.1f}", guaranteed, minimal)
    return ExperimentResult(
        "T9",
        "The six instances of Section 6.1 are solved by FGA ∘ SDR "
        "(1-minimality verified where Theorem 8's f > g hypothesis holds; "
        "FGA-1-minimality otherwise — see the reproduction finding in "
        "DESIGN.md §6)",
        table,
        ok,
    )


# ======================================================================
# T10 — FGA(1,0) ∘ SDR vs Turau-style MIS
# ======================================================================
def experiment_t10(
    sizes: Sequence[int] = (8, 12, 16),
    topology: str = "random",
    trials: int = 3,
) -> ExperimentResult:
    """Both compute minimal dominating sets; the specialized baseline is
    cheaper in moves (the price of FGA's generality), both are correct."""
    table = Table(
        "T10 — minimal dominating set: FGA ∘ SDR vs Turau-style MIS",
        ["n", "FGA moves", "Turau moves", "FGA |A|", "Turau |A|",
         "both correct"],
    )
    ok = True
    for n in sizes:
        net = by_name(topology, n, seed=7)
        f, g = dominating_set(net)
        fga_moves, turau_moves, fga_sizes, turau_sizes = [], [], [], []
        correct = True
        for seed in range(trials):
            trial = run_fga_trial(net, f, g, seed=seed, scenario="random")
            fga_moves.append(trial.moves)
            fga_sizes.append(trial.extra["alliance_size"])
            correct &= is_one_minimal(net, trial.extra["alliance"], f, g)

            mis = TurauMIS(net)
            sim = Simulator(
                mis, DistributedRandomDaemon(0.5),
                config=mis.random_configuration(Random(seed)), seed=seed,
            )
            sim.run_to_termination(max_steps=1_000_000)
            members = mis.members(sim.cfg)
            turau_moves.append(sim.move_count)
            turau_sizes.append(len(members))
            correct &= is_minimal_dominating_set(net, members)
        ok &= correct
        mean = lambda xs: sum(xs) / len(xs)
        table.add_row(n, f"{mean(fga_moves):.0f}", f"{mean(turau_moves):.0f}",
                      f"{mean(fga_sizes):.1f}", f"{mean(turau_sizes):.1f}", correct)
    return ExperimentResult(
        "T10",
        "FGA(1,0) ∘ SDR and the Turau-style baseline both produce minimal "
        "dominating sets",
        table,
        ok,
    )


# ======================================================================
# Figures
# ======================================================================
def figure_f1_f2(
    sizes: Sequence[int] = (8, 12, 16, 24),
    topology: str = "ring",
    trials: int = 3,
    scenario: str = "gradient",
    workers: int = 0,
    store=None,
) -> ExperimentResult:
    """F1: rounds vs n; F2: moves vs n (log–log) with fitted exponents.

    The scaling sweep runs through the campaign engine (``workers`` for
    parallel fan-out, ``store`` for persist/resume) — this is the sweep the
    figure benchmarks exercise end-to-end.
    """
    from ..engine import Campaign, aggregate, run_campaign

    campaign = Campaign(
        "f1-f2-unison-scaling", seed=0,
        algorithms=("unison", "boulinier"), topologies=(topology,),
        sizes=tuple(sizes), scenarios=(scenario,), trials=trials,
        topology_seed=8,
    )
    outcome = run_campaign(
        campaign, store=store, workers=workers, resume=store is not None
    )
    moves = aggregate(outcome.records, ("algorithm", "n"), "moves", "mean")
    rounds = aggregate(outcome.records, ("algorithm", "n"), "rounds", "mean")

    fig = Figure("F2 — stabilization moves vs n", "n", "moves", loglog=True)
    table = Table(
        "F1/F2 — unison scaling (means over seeds)",
        ["n", "ours rounds", "base rounds", "ours moves", "base moves"],
    )
    ours_pts, base_pts = [], []
    for n in campaign.sizes:
        ours_m, base_m = moves[("unison", n)], moves[("boulinier", n)]
        ours_r, base_r = rounds[("unison", n)], rounds[("boulinier", n)]
        table.add_row(n, f"{ours_r:.1f}", f"{base_r:.1f}",
                      f"{ours_m:.0f}", f"{base_m:.0f}")
        ours_pts.append((n, ours_m))
        base_pts.append((n, base_m))
    fig.add("U o SDR", ours_pts)
    fig.add("boulinier", base_pts)
    ours_exp, _ = fit_power_law([p[0] for p in ours_pts], [max(p[1], 1) for p in ours_pts])
    base_exp, _ = fit_power_law([p[0] for p in base_pts], [max(p[1], 1) for p in base_pts])
    # Shape claim: the baseline grows at least as fast as ours.
    ok = base_exp >= ours_exp - 0.25
    return ExperimentResult(
        "F1/F2",
        "Move growth exponent: ours ≈ n^"
        f"{ours_exp:.2f}, baseline ≈ n^{base_exp:.2f}",
        table,
        ok,
        data={"ours_exponent": ours_exp, "base_exponent": base_exp},
        figure=fig,
    )


def figure_f3(
    n: int = 24,
    topology: str = "random",
    fault_counts: Sequence[int] = (1, 2, 4, 8),
    trials: int = 4,
) -> ExperimentResult:
    """F3 (ablation): multi-initiator concurrency vs number of faults.

    By design (Section 3.3) a reset floods the whole connected network —
    ``rule_RB`` makes even locally-correct processes join — so the
    *footprint* is always ``n`` once any reset starts.  What cooperation
    buys is concurrency without restarts: more fault sites mean more
    initiators (``rule_R``), yet the per-process reset work stays at one
    wave (≈ 3 SDR moves each: RB/R, RF, C) and recovery cost does not blow
    up with the fault count.
    """
    net = by_name(topology, n, seed=9)
    fig = Figure("F3 — initiators and cost vs fault count", "#faults", "count")
    table = Table(
        "F3 — cooperative multi-initiator resets (means over seeds)",
        ["#faults", "initiators (mean)", "footprint (mean)",
         "SDR moves/proc (max)", "rounds (mean)", "n"],
    )
    ok = True
    for k in fault_counts:
        initiators, footprints, per_proc, rounds = [], [], [], []
        for seed in range(trials):
            sdr = SDR(Unison(net))
            rng = Random(seed)
            cfg = corrupt_processes(
                sdr, sdr.initial_configuration(),
                rng.sample(range(net.n), k), rng,
            )
            counter = SdrMoveCounter(net.n)
            sim = Simulator(sdr, DistributedRandomDaemon(0.5), config=cfg,
                            seed=seed, probes=[counter])
            detector, _ = measure_stabilization(sim, sdr.is_normal, max_steps=1_000_000)
            initiators.append(sim.moves_per_rule.get("rule_R", 0))
            footprints.append(counter.touched)
            per_proc.append(max(counter.counts))
            rounds.append(detector.rounds or 0)
            # Per-process reset work stays one wave regardless of k.
            ok &= max(counter.counts) <= bounds.sdr_moves_per_process_bound(net.n)
        mean = lambda xs: sum(xs) / len(xs)
        fig.add_point("initiators", k, mean(initiators))
        fig.add_point("rounds", k, mean(rounds))
        table.add_row(k, f"{mean(initiators):.1f}", f"{mean(footprints):.1f}",
                      max(per_proc), f"{mean(rounds):.1f}", net.n)
    return ExperimentResult(
        "F3",
        "Concurrent resets cooperate: initiators scale with the fault sites "
        "while per-process reset work stays a single wave (footprint is "
        "global by design — Section 3.3)",
        table,
        ok,
        figure=fig,
    )


def figure_f4(
    sizes: Sequence[int] = (8, 12, 16, 24),
    topology: str = "random",
    trials: int = 3,
) -> ExperimentResult:
    """F4: FGA ∘ SDR rounds vs n against the 8n+4 line."""
    fig = Figure("F4 — FGA ∘ SDR rounds vs n", "n", "rounds")
    table = Table(
        "F4 — FGA ∘ SDR round scaling (worst over seeds)",
        ["n", "rounds (worst)", "bound 8n+4", "ok"],
    )
    ok = True
    for n in sizes:
        net = by_name(topology, n, seed=10)
        f, g = dominating_set(net)
        worst = 0
        for seed in range(trials):
            trial = run_fga_trial(net, f, g, seed=seed, scenario="random")
            worst = max(worst, trial.rounds)
        rb = bounds.fga_sdr_rounds_bound(net.n)
        row_ok = worst <= rb
        ok &= row_ok
        fig.add_point("measured", n, worst)
        fig.add_point("bound", n, rb)
        table.add_row(n, worst, rb, row_ok)
    return ExperimentResult(
        "F4", "FGA ∘ SDR rounds stay under the 8n+4 line", table, ok, figure=fig
    )


def figure_f5(
    n: int = 16,
    topology: str = "random",
    trials: int = 3,
) -> ExperimentResult:
    """F5 (ablation): daemon sensitivity of U ∘ SDR stabilization."""
    net = by_name(topology, n, seed=11)
    fig = Figure("F5 — moves by daemon", "daemon#", "moves")
    table = Table(
        "F5 — U ∘ SDR under different daemons (means over seeds)",
        ["daemon", "moves (mean)", "rounds (mean)", "within bounds"],
    )
    ok = True
    for i, daemon_name in enumerate(sorted(_daemon_menu(net))):
        moves, rounds = [], []
        for seed in range(trials):
            sdr = SDR(Unison(net))
            cfg = sdr.random_configuration(Random(seed))
            sim = Simulator(sdr, _daemon_menu(net)[daemon_name], config=cfg, seed=seed)
            probe = _measure(sim, sdr.is_normal, "normal_mask", 2_000_000)
            moves.append(probe.moves)
            rounds.append(probe.rounds)
        mean = lambda xs: sum(xs) / len(xs)
        within = max(moves) <= bounds.unison_move_bound(net.n, net.diameter) and \
            max(rounds) <= bounds.unison_rounds_bound(net.n)
        ok &= within
        fig.add_point(daemon_name, i, mean(moves))
        table.add_row(daemon_name, f"{mean(moves):.0f}", f"{mean(rounds):.1f}", within)
    return ExperimentResult(
        "F5", "Bounds hold under every daemon in the zoo", table, ok, figure=fig
    )


def figure_f6(
    sizes: Sequence[int] = (8, 12, 16, 24),
    topology: str = "random",
    trials: int = 3,
    faults: int = 2,
) -> ExperimentResult:
    """F6: cooperative multi-initiator SDR vs mono-initiator reset wave.

    Same input algorithm (U), same fault scenario; the mono-initiator
    baseline pays a whole-network wave per recovery.
    """
    fig = Figure("F6 — recovery moves: SDR vs mono-initiator", "n", "moves")
    table = Table(
        "F6 — recovery from k=2 faults (means over seeds)",
        ["n", "SDR moves", "mono moves", "SDR rounds", "mono rounds"],
    )
    data: dict[str, list] = {"n": [], "sdr": [], "mono": []}
    for n in sizes:
        net = by_name(topology, n, seed=12)
        sdr_m, mono_m, sdr_r, mono_r = [], [], [], []
        for seed in range(trials):
            rng = Random(seed)
            victims = rng.sample(range(net.n), min(faults, net.n))

            sdr = SDR(Unison(net))
            cfg = corrupt_processes(
                sdr, sdr.initial_configuration(), victims, Random(seed),
                variables=("c",),
            )
            sim = Simulator(sdr, DistributedRandomDaemon(0.5), config=cfg, seed=seed)
            det = _measure(sim, sdr.is_normal, "normal_mask", 1_000_000)
            sdr_m.append(det.moves)
            sdr_r.append(det.rounds)

            mono = MonoReset(Unison(net))
            cfg = corrupt_processes(
                mono, mono.initial_configuration(), victims, Random(seed),
                variables=("c",),
            )
            sim = Simulator(mono, DistributedRandomDaemon(0.5), config=cfg, seed=seed)
            det = _measure(sim, mono.is_normal, "normal_mask", 1_000_000)
            mono_m.append(det.moves)
            mono_r.append(det.rounds)
        mean = lambda xs: sum(xs) / len(xs)
        table.add_row(n, f"{mean(sdr_m):.0f}", f"{mean(mono_m):.0f}",
                      f"{mean(sdr_r):.1f}", f"{mean(mono_r):.1f}")
        fig.add_point("SDR", n, mean(sdr_m))
        fig.add_point("mono", n, mean(mono_m))
        data["n"].append(n)
        data["sdr"].append(mean(sdr_m))
        data["mono"].append(mean(mono_m))
    # Claim: at the largest size, localized cooperative resets are cheaper.
    ok = data["sdr"][-1] <= data["mono"][-1]
    return ExperimentResult(
        "F6",
        "Cooperative multi-initiator resets beat the mono-initiator wave on "
        "localized faults",
        table,
        ok,
        data=data,
        figure=fig,
    )


# ======================================================================
# P1 — structural properties (Theorem 3, Remarks 4/5)
# ======================================================================
def experiment_p1(
    sizes: Sequence[int] = (6, 8, 10),
    topologies: Sequence[str] = ("ring", "random"),
    trials: int = 3,
) -> ExperimentResult:
    """Alive roots never created; ≤ n+1 segments; rule language per segment."""
    from ..core.trace import Trace
    from ..reset.analysis import (
        alive_roots,
        segment_rule_sequences_ok,
        split_segments,
    )

    table = Table(
        "P1 — structural proof artifacts on recorded executions",
        ["topology", "n", "seed", "AR monotone", "segments", "bound n+1",
         "language ok"],
    )
    ok = True
    for topo in topologies:
        for n in sizes:
            net = by_name(topo, n, seed=13)
            for seed in range(trials):
                sdr = SDR(Unison(net))
                cfg = sdr.random_configuration(Random(seed))
                trace = Trace(record_configurations=True)
                sim = Simulator(sdr, DistributedRandomDaemon(0.5), config=cfg,
                                seed=seed, trace=trace)
                measure_stabilization(sim, sdr.is_normal, max_steps=500_000)
                sim.run(max_steps=5 * n)
                counts = [len(alive_roots(sdr, c)) for c in trace.configurations]
                monotone = all(a >= b for a, b in zip(counts, counts[1:]))
                segments = split_segments(sdr, trace)
                lang_ok = segment_rule_sequences_ok(sdr, trace)
                row_ok = monotone and len(segments) <= bounds.segments_bound(n) and lang_ok
                ok &= row_ok
                table.add_row(topo, n, seed, monotone, len(segments),
                              bounds.segments_bound(n), lang_ok)
    return ExperimentResult(
        "P1",
        "No alive root is ever created; executions split into ≤ n+1 segments "
        "whose per-process SDR rule sequences match Theorem 4's language",
        table,
        ok,
    )


# ======================================================================
# A1 — safe-convergence ablation (related work: Carrier et al. [16])
# ======================================================================
def experiment_a1(
    sizes: Sequence[int] = (8, 12, 16),
    topology: str = "random",
    trials: int = 3,
) -> ExperimentResult:
    """A1 (extension): how quickly does FGA ∘ SDR become *feasible*?

    Carrier et al. [16] advocate *safe convergence*: reach some valid
    (not necessarily minimal) alliance fast, then keep refining.  FGA ∘ SDR
    does not claim safe convergence, but its reset discipline gives a
    related two-phase behaviour we can measure: starting from the hollow
    alliance (maximal violation), the reset wave restores the full alliance
    (feasible) long before the removal phase reaches 1-minimality.  This
    experiment reports both stopwatch readings.
    """
    from ..alliance.spec import is_alliance

    table = Table(
        "A1 — rounds to feasibility vs rounds to 1-minimal termination "
        "(hollow start, means over seeds)",
        ["n", "rounds to alliance", "rounds to terminal", "feasible early"],
    )
    ok = True
    for n in sizes:
        net = by_name(topology, n, seed=14)
        f, g = dominating_set(net)
        to_alliance, to_terminal = [], []
        for seed in range(trials):
            sdr = SDR(FGA(net, f, g))
            from ..faults.scenarios import hollow_alliance

            cfg = hollow_alliance(sdr)
            sim = Simulator(sdr, DistributedRandomDaemon(0.5), config=cfg, seed=seed)
            detector, _ = measure_stabilization(
                sim,
                lambda c: is_alliance(net, {u for u in net.processes() if c[u]["col"]}, f, g),
                max_steps=2_000_000,
                name="feasible",
            )
            to_alliance.append(detector.rounds or 0)
            result = sim.run_to_termination(max_steps=2_000_000)
            to_terminal.append(result.rounds)
        mean = lambda xs: sum(xs) / len(xs)
        early = mean(to_alliance) <= mean(to_terminal)
        ok &= early
        table.add_row(n, f"{mean(to_alliance):.1f}", f"{mean(to_terminal):.1f}", early)
    return ExperimentResult(
        "A1",
        "Feasibility (any valid alliance) is restored well before 1-minimal "
        "termination — the two-phase behaviour related work calls safe "
        "convergence",
        table,
        ok,
    )


# ======================================================================
# T11 — repeated fault storms vs recovery cost (beyond the paper)
# ======================================================================
def experiment_t11(
    n: int = 16,
    topology: str = "ring",
    trials: int = 3,
    fault_counts: Sequence[int] = (1, 2, 4),
    cadences: Sequence[int] = (30, 80),
    bursts: int = 3,
    workers: int = 0,
    store=None,
) -> ExperimentResult:
    """Repeated k-fault storms: recovery stays within the from-scratch bounds.

    The paper analyses a single arbitrary initial configuration; this
    experiment measures what SDR composition gives *operationally*: a
    deterministic :class:`~repro.faults.schedule.FaultSchedule` corrupts
    ``k`` random processes' input-layer registers every ``cadence`` steps
    (``bursts`` times), mid-run, inside the fused loop, and a
    :class:`~repro.probes.RecoveryProbe` stopwatches each burst to
    re-stabilization.  The claim checked: every burst is absorbed, and
    *clean* recovery never exceeds the from-scratch stabilization round
    bound (3n for ``U ∘ SDR``, 8n+4 for ``FGA ∘ SDR``) — recovery from
    k faults is never harder than a cold start.  "Clean" restricts the
    bound to bursts whose recovery window contains no further
    injection: at short cadences a new burst strikes mid-recovery, so
    the open stopwatch's delta spans several disturbances, and
    self-stabilization only bounds convergence *after faults cease*.
    The last burst of every overlap group is always a clean measurement
    from an arbitrary configuration; the raw worst over all bursts is
    still reported.  The (algorithm × k × cadence) grid runs through
    the campaign engine, so ``workers``/``store`` fan out and resume as
    usual, and the schedule is part of every trial key.
    """
    from ..engine import Campaign, run_campaign

    round_bound = {
        "unison": bounds.unison_rounds_bound(n),
        "fga": bounds.fga_sdr_rounds_bound(n),
    }
    table = Table(
        "T11 — k-fault storms vs per-burst recovery (means over seeds)",
        ["algorithm", "k", "cadence", "bursts", "recovered",
         "worst rounds", "clean worst", "mean rounds", "mean moves",
         "bound", "ok"],
    )

    def clean_worst_rounds(summary) -> int | None:
        """Worst rounds over bursts with no injection mid-recovery."""
        records = summary["records"]
        worst = None
        for i, rec in enumerate(records):
            if not rec["recovered"]:
                continue
            end = rec["injected_step"] + rec["steps"]
            if i + 1 < len(records) and records[i + 1]["injected_step"] < end:
                continue  # the next burst struck before this one recovered
            worst = rec["rounds"] if worst is None else max(worst, rec["rounds"])
        return worst
    fig = Figure("T11 — worst recovery rounds vs fault count", "k", "rounds")
    ok = True
    data: dict[str, list] = {"cells": []}
    for algorithm in ("unison", "fga"):
        for k in fault_counts:
            for cadence in cadences:
                spec = (f"burst=40,count={bursts},gap={cadence},"
                        f"k={k},scope=input")
                campaign = Campaign(
                    f"t11-storm-{algorithm}-k{k}-c{cadence}", seed=0,
                    algorithms=(algorithm,), topologies=(topology,),
                    sizes=(n,), scenarios=("random",), trials=trials,
                    topology_seed=4,
                    params=(("faults", spec), ("max_steps", 2_000_000)),
                )
                outcome = run_campaign(
                    campaign, store=store, workers=workers,
                    resume=store is not None,
                )
                summaries = [
                    r["result"]["extra"]["recovery"] for r in outcome.records
                ]
                fired = sum(s["bursts"] for s in summaries)
                recovered = sum(s["recovered"] for s in summaries)
                worst = [s["worst_rounds"] for s in summaries
                         if s["worst_rounds"] is not None]
                clean = [w for w in map(clean_worst_rounds, summaries)
                         if w is not None]
                means_r = [s["mean_rounds"] for s in summaries
                           if s["mean_rounds"] is not None]
                means_m = [s["mean_moves"] for s in summaries
                           if s["mean_moves"] is not None]
                worst_rounds = max(worst) if worst else 0
                clean_worst = max(clean) if clean else 0
                mean = lambda xs: sum(xs) / len(xs) if xs else 0.0
                rb = round_bound[algorithm]
                # Every burst absorbed (it may land on an already-terminal
                # config and enable nothing — that still counts recovered)
                # and clean recovery never costlier than a cold start.
                row_ok = recovered == fired and clean_worst <= rb
                ok &= row_ok
                table.add_row(algorithm, k, cadence, fired, recovered,
                              worst_rounds, clean_worst,
                              f"{mean(means_r):.1f}",
                              f"{mean(means_m):.1f}", rb, row_ok)
                if cadence == cadences[0]:
                    fig.add_point(algorithm, k, clean_worst)
                data["cells"].append({
                    "algorithm": algorithm, "k": k, "cadence": cadence,
                    "faults": spec, "bursts": fired, "recovered": recovered,
                    "worst_rounds": worst_rounds,
                    "clean_worst_rounds": clean_worst,
                    "mean_rounds": mean(means_r),
                    "mean_moves": mean(means_m),
                })
    return ExperimentResult(
        "T11",
        "Under repeated k-fault storms, every burst is absorbed and "
        "clean per-burst recovery rounds (no injection mid-recovery) "
        "stay within the from-scratch stabilization bounds",
        table,
        ok,
        data=data,
        figure=fig,
    )


def experiment_t12(
    n: int = 16,
    topology: str = "ring",
    trials: int = 3,
    cadences: Sequence[int] = (40, 100),
    mixes: Sequence[str] = ("crash-join", "link-flap"),
    events: int = 2,
    workers: int = 0,
    store=None,
) -> ExperimentResult:
    """Topology churn: dynamic networks recover within the static bounds.

    The paper's model fixes the topology; this experiment relaxes that
    half of the contract in the way self-stabilization theory already
    licenses: a deterministic, connectivity-preserving
    :class:`~repro.faults.churn.ChurnSchedule` mutates the network
    mid-run — processes crash (state frozen, links removed) and rejoin
    with arbitrary registers (indistinguishable from a transient fault
    striking a fresh process), or links flap (drop/appear) — and a
    :class:`~repro.probes.RecoveryProbe` stopwatches each occurrence to
    re-legitimacy *of the live subsystem*.  The claim checked: every
    occurrence is absorbed, and clean recovery (no further churn
    mid-recovery) never exceeds the from-scratch stabilization round
    bound of the *static* network (3n for ``U ∘ SDR``, 8n+4 for
    ``FGA ∘ SDR``) — a topology event is never costlier than a cold
    start.  Each (algorithm × mix × cadence) cell interleaves ``events``
    occurrences of each kind ``cadence`` steps apart, runs through the
    campaign engine (churn cells always execute serially — see
    :func:`repro.harness.runner.can_batch`), and the churn spec is part
    of every trial key.
    """
    from ..engine import Campaign, run_campaign

    round_bound = {
        "unison": bounds.unison_rounds_bound(n),
        "fga": bounds.fga_sdr_rounds_bound(n),
    }
    mix_events = {
        "crash-join": ("crash", "join"),
        "link-flap": ("drop_edge", "add_edge"),
    }
    for mix in mixes:
        if mix not in mix_events:
            raise ValueError(
                f"unknown churn mix {mix!r}; choose from {sorted(mix_events)}"
            )
    table = Table(
        "T12 — topology churn vs per-occurrence recovery (means over seeds)",
        ["algorithm", "mix", "cadence", "events", "recovered",
         "worst rounds", "clean worst", "mean rounds", "components",
         "bound", "ok"],
    )

    def clean_worst_rounds(summary) -> int | None:
        """Worst rounds over occurrences with no churn mid-recovery."""
        records = summary["records"]
        worst = None
        for i, rec in enumerate(records):
            if not rec["recovered"]:
                continue
            end = rec["injected_step"] + rec["steps"]
            if i + 1 < len(records) and records[i + 1]["injected_step"] < end:
                continue  # the next occurrence struck mid-recovery
            worst = rec["rounds"] if worst is None else max(worst, rec["rounds"])
        return worst

    fig = Figure("T12 — worst clean recovery rounds vs churn cadence",
                 "cadence", "rounds")
    ok = True
    data: dict[str, list] = {"cells": []}
    for algorithm in ("unison", "fga"):
        for mix in mixes:
            first, second = mix_events[mix]
            for cadence in cadences:
                spec = (
                    f"burst=40,count={events},gap={2 * cadence},{first}=1;"
                    f"burst={40 + cadence},count={events},"
                    f"gap={2 * cadence},{second}=1"
                )
                campaign = Campaign(
                    f"t12-churn-{algorithm}-{mix}-c{cadence}", seed=0,
                    algorithms=(algorithm,), topologies=(topology,),
                    sizes=(n,), scenarios=("random",), trials=trials,
                    topology_seed=4,
                    params=(("churn", spec), ("max_steps", 2_000_000)),
                )
                outcome = run_campaign(
                    campaign, store=store, workers=workers,
                    resume=store is not None,
                )
                summaries = [
                    r["result"]["extra"]["recovery"] for r in outcome.records
                ]
                finals = [
                    r["result"]["extra"]["churn_final"]
                    for r in outcome.records
                ]
                fired = sum(s["bursts"] for s in summaries)
                recovered = sum(s["recovered"] for s in summaries)
                worst = [s["worst_rounds"] for s in summaries
                         if s["worst_rounds"] is not None]
                clean = [w for w in map(clean_worst_rounds, summaries)
                         if w is not None]
                means_r = [s["mean_rounds"] for s in summaries
                           if s["mean_rounds"] is not None]
                worst_rounds = max(worst) if worst else 0
                clean_worst = max(clean) if clean else 0
                mean = lambda xs: sum(xs) / len(xs) if xs else 0.0
                components = max(f["components"] for f in finals)
                rb = round_bound[algorithm]
                # Every occurrence absorbed, clean recovery within the
                # static cold-start bound, and preserve-policy churn
                # never partitioned the live subsystem.
                row_ok = (
                    recovered == fired
                    and clean_worst <= rb
                    and components == 1
                )
                ok &= row_ok
                table.add_row(algorithm, mix, cadence, fired, recovered,
                              worst_rounds, clean_worst,
                              f"{mean(means_r):.1f}", components, rb, row_ok)
                if mix == mixes[0]:
                    fig.add_point(algorithm, cadence, clean_worst)
                data["cells"].append({
                    "algorithm": algorithm, "mix": mix, "cadence": cadence,
                    "churn": spec, "occurrences": fired,
                    "recovered": recovered,
                    "worst_rounds": worst_rounds,
                    "clean_worst_rounds": clean_worst,
                    "mean_rounds": mean(means_r),
                    "components": components,
                })
    return ExperimentResult(
        "T12",
        "Under connectivity-preserving topology churn (crash/join and "
        "link flapping), every occurrence is absorbed and clean "
        "per-occurrence recovery rounds stay within the static "
        "from-scratch stabilization bounds",
        table,
        ok,
        data=data,
        figure=fig,
    )


# ======================================================================
# T13 — adversarial schedule search vs random scheduling (U ∘ SDR)
# ======================================================================
def experiment_t13(
    sizes: Sequence[int] = (8, 16, 32),
    topology: str = "ring",
    scenario: str = "split",
    strategies: Sequence[str] = ("greedy", "beam-3x3"),
    random_trials: int = 100,
    workers: int = 0,
    store=None,
) -> ExperimentResult:
    """Adversarial schedule search stress-tests Theorem 6/7 empirically.

    The paper's move bound quantifies over *all* unfair schedules, but
    random daemons only sample friendly ones.  This experiment runs the
    :mod:`repro.adversary` searches (via the ``adversary`` trial param,
    part of every trial key) against a ``random_trials``-seed
    distributed-random baseline on the same deterministic ``scenario``
    configuration, per size.  Claims checked per size: the beam search
    finds strictly more moves than the *best* random schedule, greedy
    at least matches the random median, every searched execution stays
    within the Theorem 6 move bound and Theorem 7 round bound (searched
    schedules are still legal unfair-daemon executions), and every
    found schedule's certificate replays byte-identically on the dict
    backend (asserted by the runner before the trial record lands).
    """
    from ..engine import Campaign, run_campaign

    table = Table(
        "T13 — adversarial schedule search vs 100-seed random baseline "
        "(U ∘ SDR)",
        ["n", "schedule", "moves", "rounds", "rnd max", "rnd med",
         "move bound", "round bound", "replay", "ok"],
    )
    fig = Figure("T13 — moves to stabilization: search vs random", "n",
                 "moves")
    ok = True
    data: dict[str, list] = {"cells": []}
    for n in sizes:
        baseline = Campaign(
            f"t13-baseline-n{n}", seed=0, algorithms=("unison",),
            topologies=(topology,), sizes=(n,), scenarios=(scenario,),
            trials=random_trials, topology_seed=4,
        )
        outcome = run_campaign(baseline, store=store, workers=workers,
                               resume=store is not None)
        random_moves = sorted(r["result"]["moves"] for r in outcome.records)
        rnd_max = random_moves[-1]
        rnd_med = random_moves[len(random_moves) // 2]
        fig.add_point("random-max", n, rnd_max)
        searched: dict[str, int] = {}
        for strategy in strategies:
            campaign = Campaign(
                f"t13-adversary-{strategy}-n{n}", seed=0,
                algorithms=("unison",), topologies=(topology,), sizes=(n,),
                scenarios=(scenario,), trials=1, topology_seed=4,
                params=(("adversary", strategy),),
            )
            outcome = run_campaign(campaign, store=store, workers=workers,
                                   resume=store is not None)
            record = outcome.records[0]["result"]
            moves, rounds = record["moves"], record["rounds"]
            diameter = record["diameter"]
            move_bound = bounds.unison_move_bound(n, diameter)
            round_bound = bounds.unison_rounds_bound(n)
            replay_ok = record["extra"]["adversary"]["replay"]["ok"]
            beats = (moves > rnd_max if strategy.startswith("beam")
                     else moves >= rnd_med)
            row_ok = (beats and moves <= move_bound
                      and rounds <= round_bound and replay_ok)
            ok &= row_ok
            searched[strategy] = moves
            table.add_row(n, strategy, moves, rounds, rnd_max, rnd_med,
                          move_bound, round_bound, replay_ok, row_ok)
            fig.add_point(strategy, n, moves)
            data["cells"].append({
                "n": n, "strategy": strategy, "moves": moves,
                "rounds": rounds, "random_max": rnd_max,
                "random_median": rnd_med, "move_bound": move_bound,
                "round_bound": round_bound, "replay_ok": replay_ok,
                "digest": record["extra"]["adversary"]["digest"],
            })
        table.add_row(n, "distributed-random", rnd_max, "-", rnd_max,
                      rnd_med, bounds.unison_move_bound(n, diameter),
                      bounds.unison_rounds_bound(n), "-", True)
    return ExperimentResult(
        "T13",
        "Beam search finds strictly worse-than-any-sampled-random "
        "executions of U ∘ SDR while every searched schedule stays "
        "within the Theorem 6/7 bounds and replays on the dict backend",
        table,
        ok,
        data=data,
        figure=fig,
    )


# ======================================================================
# F7 — adversarial schedules vs the 8n+4 FGA ∘ SDR round bound
# ======================================================================
def figure_f7(
    sizes: Sequence[int] = (8, 12, 16),
    topology: str = "ring",
    instance: str = "dominating-set",
    strategies: Sequence[str] = ("greedy", "beam-3x3"),
    random_trials: int = 25,
    workers: int = 0,
    store=None,
) -> ExperimentResult:
    """Theorem 14 under searched schedules: rounds stay within 8n+4.

    Sweeps the adversarial searches over ``FGA ∘ SDR`` and plots their
    stabilization rounds against the Theorem 14 bound, next to a
    distributed-random baseline.  The searches maximize *moves* — the
    figure shows that even move-maximizing schedules leave the round
    complexity far under ``8n+4``, and every searched schedule's
    certificate replays on the dict backend.
    """
    from ..engine import Campaign, run_campaign

    table = Table(
        "F7 — FGA ∘ SDR rounds under searched schedules vs Theorem 14",
        ["n", "schedule", "rounds", "moves", "bound 8n+4", "replay", "ok"],
    )
    fig = Figure("F7 — FGA ∘ SDR rounds: search vs bound", "n", "rounds")
    ok = True
    data: dict[str, list] = {"cells": []}
    for n in sizes:
        round_bound = bounds.fga_sdr_rounds_bound(n)
        fig.add_point("bound", n, round_bound)
        baseline = Campaign(
            f"f7-baseline-n{n}", seed=0, algorithms=("fga",),
            topologies=(topology,), sizes=(n,), scenarios=("random",),
            trials=random_trials, topology_seed=4,
            params=(("instance", instance),),
        )
        outcome = run_campaign(baseline, store=store, workers=workers,
                               resume=store is not None)
        worst_rounds = max(r["result"]["rounds"] for r in outcome.records)
        fig.add_point("random-worst", n, worst_rounds)
        table.add_row(n, "distributed-random (worst)", worst_rounds, "-",
                      round_bound, "-", worst_rounds <= round_bound)
        ok &= worst_rounds <= round_bound
        for strategy in strategies:
            campaign = Campaign(
                f"f7-adversary-{strategy}-n{n}", seed=0,
                algorithms=("fga",), topologies=(topology,), sizes=(n,),
                scenarios=("random",), trials=1, topology_seed=4,
                params=(("instance", instance), ("adversary", strategy)),
            )
            outcome = run_campaign(campaign, store=store, workers=workers,
                                   resume=store is not None)
            record = outcome.records[0]["result"]
            rounds, moves = record["rounds"], record["moves"]
            replay_ok = record["extra"]["adversary"]["replay"]["ok"]
            row_ok = rounds <= round_bound and replay_ok
            ok &= row_ok
            table.add_row(n, strategy, rounds, moves, round_bound,
                          replay_ok, row_ok)
            fig.add_point(strategy, n, rounds)
            data["cells"].append({
                "n": n, "strategy": strategy, "rounds": rounds,
                "moves": moves, "round_bound": round_bound,
                "replay_ok": replay_ok,
            })
    return ExperimentResult(
        "F7",
        "Move-maximizing searched schedules keep FGA ∘ SDR stabilization "
        "within the Theorem 14 round bound (8n+4), certificates replaying "
        "on the dict backend",
        table,
        ok,
        data=data,
        figure=fig,
    )


#: Experiment registry for programmatic access (id → callable).
REGISTRY: dict[str, Callable[..., ExperimentResult]] = {
    "T1/T2": experiment_t1_t2,
    "T3/T4": experiment_t3_t4,
    "T5": experiment_t5,
    "T6/T7": experiment_t6_t7,
    "T8": experiment_t8,
    "T9": experiment_t9,
    "T10": experiment_t10,
    "T11": experiment_t11,
    "T12": experiment_t12,
    "T13": experiment_t13,
    "F1/F2": figure_f1_f2,
    "F3": figure_f3,
    "F4": figure_f4,
    "F5": figure_f5,
    "F6": figure_f6,
    "F7": figure_f7,
    "P1": experiment_p1,
    "A1": experiment_a1,
}
