"""Experiment harness: trial runners, per-claim experiments, tables, figures.

Layered as follows (bottom-up):

* :mod:`~repro.harness.runner` — single-trial runners plus the
  descriptor-driven :func:`run_trial` entry point that executes one
  :class:`repro.engine.TrialSpec`;
* :mod:`repro.engine` — the campaign engine: declarative parameter grids,
  deterministic per-trial seed derivation, a multiprocessing executor with
  serial fallback, an append-only JSONL result store, and resume (run only
  the grid cells missing from the store);
* :mod:`~repro.harness.experiments` — the per-claim experiment registry;
  the sweep-shaped ones (T3/T4, T5, F1/F2) route their grids through the
  engine and accept ``workers``/``store`` arguments;
* :mod:`~repro.harness.tables` / :mod:`~repro.harness.figures` /
  :mod:`~repro.harness.io` — dependency-free reporting and persistence.

``python -m repro.harness`` runs experiments by id;
``python -m repro.harness sweep --grid n=8,16 --workers 4 --out r.jsonl
--resume`` drives arbitrary campaign grids through the engine from the
command line.
"""

from . import experiments
from .experiments import REGISTRY, ExperimentResult
from .figures import Figure
from .runner import (
    Trial,
    run_boulinier_trial,
    run_fga_trial,
    run_trial,
    run_unison_trial,
    sweep,
)
from .tables import Table

__all__ = [
    "experiments",
    "REGISTRY",
    "ExperimentResult",
    "Figure",
    "Table",
    "Trial",
    "run_trial",
    "run_unison_trial",
    "run_boulinier_trial",
    "run_fga_trial",
    "sweep",
]
