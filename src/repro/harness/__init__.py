"""Experiment harness: trial runners, per-claim experiments, tables, figures."""

from . import experiments
from .experiments import REGISTRY, ExperimentResult
from .figures import Figure
from .runner import Trial, run_boulinier_trial, run_fga_trial, run_unison_trial, sweep
from .tables import Table

__all__ = [
    "experiments",
    "REGISTRY",
    "ExperimentResult",
    "Figure",
    "Table",
    "Trial",
    "run_unison_trial",
    "run_boulinier_trial",
    "run_fga_trial",
    "sweep",
]
