"""Single-trial runners shared by the experiments and benchmarks.

A *trial* fixes (topology, algorithm, initial-configuration scenario,
daemon, seed), runs to stabilization (or termination), and reports a flat
record of measurements.  Sweeps iterate trials over parameter grids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random
from typing import TYPE_CHECKING, Any, Callable

from ..alliance.fga import FGA
from ..alliance.functions import instance_by_name
from ..analysis.metrics import RunMetrics, collect_metrics
from ..core.daemon import Daemon, make_daemon
from ..core.detectors import measure_stabilization
from ..core.graph import Network
from ..core.simulator import Simulator
from ..faults.injector import corrupt_processes
from ..faults.scenarios import clock_gradient, clock_split, fake_reset_wave, hollow_alliance
from ..reset.sdr import SDR
from ..topology import by_name
from ..unison.boulinier import BoulinierUnison
from ..unison.unison import CLOCK, Unison

if TYPE_CHECKING:  # descriptor type only — the engine imports this module
    from ..engine.campaign import TrialSpec

__all__ = [
    "Trial",
    "run_trial",
    "run_unison_trial",
    "run_boulinier_trial",
    "run_fga_trial",
    "sweep",
]


@dataclass(frozen=True)
class Trial:
    """Flat record of one stabilization measurement."""

    algorithm: str
    scenario: str
    daemon: str
    seed: int
    n: int
    m: int
    diameter: int
    max_degree: int
    rounds: int
    moves: int
    steps: int
    metrics: RunMetrics
    extra: dict[str, Any] = field(default_factory=dict)


def _make_daemon(spec: str | Daemon, network: Network) -> Daemon:
    if isinstance(spec, Daemon):
        return spec
    return make_daemon(spec, network)


def _unison_start(sdr: SDR, scenario: str, rng: Random):
    if scenario == "random":
        return sdr.random_configuration(rng)
    if scenario == "gradient":
        return clock_gradient(sdr)
    if scenario == "split":
        return clock_split(sdr)
    if scenario == "fake-wave":
        return fake_reset_wave(sdr, rng)
    if scenario.startswith("faults:"):
        k = int(scenario.split(":", 1)[1])
        cfg = sdr.initial_configuration()
        victims = rng.sample(range(sdr.network.n), min(k, sdr.network.n))
        return corrupt_processes(sdr, cfg, victims, rng)
    raise ValueError(f"unknown unison scenario {scenario!r}")


def run_unison_trial(
    network: Network,
    seed: int = 0,
    daemon: str | Daemon = "distributed-random",
    scenario: str = "random",
    period: int | None = None,
    max_steps: int = 2_000_000,
    backend: str = "auto",
) -> Trial:
    """Run ``U ∘ SDR`` to its first normal configuration.

    ``backend`` selects the simulator's execution engine (``"auto"`` runs
    the array kernel when available); results are backend-independent.
    """
    rng = Random(seed)
    sdr = SDR(Unison(network, period=period))
    cfg = _unison_start(sdr, scenario, rng)
    sim = Simulator(sdr, _make_daemon(daemon, network), config=cfg, seed=seed,
                    backend=backend)
    detector, _ = measure_stabilization(sim, sdr.is_normal, max_steps=max_steps)
    return Trial(
        algorithm="U o SDR",
        scenario=scenario,
        daemon=sim.daemon.name,
        seed=seed,
        n=network.n,
        m=network.m,
        diameter=network.diameter,
        max_degree=network.max_degree,
        rounds=detector.rounds or 0,
        moves=detector.moves or 0,
        steps=detector.step or 0,
        metrics=collect_metrics(sim),
    )


def run_boulinier_trial(
    network: Network,
    seed: int = 0,
    daemon: str | Daemon = "distributed-random",
    period: int | None = None,
    alpha: int | None = None,
    scenario: str = "random",
    max_steps: int = 5_000_000,
    backend: str = "auto",
) -> Trial:
    """Run the reset-tail baseline to its first legitimate configuration.

    The ``gradient``/``split`` scenarios mirror the ``U ∘ SDR`` ones on the
    shared clock variable so head-to-head comparisons start from the same
    amount of clock disorder.
    """
    rng = Random(seed)
    algo = BoulinierUnison(network, period=period, alpha=alpha)
    if scenario == "random":
        cfg = algo.random_configuration(rng)
    elif scenario == "gradient":
        cfg = algo.initial_configuration()
        for u in network.processes():
            cfg.set(u, "r", (3 * u) % algo.period)
    elif scenario == "split":
        cfg = algo.initial_configuration()
        far = algo.period // 2
        for u in network.processes():
            cfg.set(u, "r", 0 if u < network.n // 2 else far)
    else:
        raise ValueError(f"unknown boulinier scenario {scenario!r}")
    sim = Simulator(algo, _make_daemon(daemon, network), config=cfg, seed=seed,
                    backend=backend)
    detector, _ = measure_stabilization(sim, algo.is_legitimate, max_steps=max_steps)
    return Trial(
        algorithm="boulinier",
        scenario=scenario,
        daemon=sim.daemon.name,
        seed=seed,
        n=network.n,
        m=network.m,
        diameter=network.diameter,
        max_degree=network.max_degree,
        rounds=detector.rounds or 0,
        moves=detector.moves or 0,
        steps=detector.step or 0,
        metrics=collect_metrics(sim),
        extra={"period": algo.period, "alpha": algo.alpha},
    )


def run_fga_trial(
    network: Network,
    f,
    g,
    seed: int = 0,
    daemon: str | Daemon = "distributed-random",
    scenario: str = "random",
    max_steps: int = 5_000_000,
    backend: str = "auto",
) -> Trial:
    """Run ``FGA ∘ SDR`` to termination (the composition is silent)."""
    rng = Random(seed)
    sdr = SDR(FGA(network, f, g))
    if scenario == "random":
        cfg = sdr.random_configuration(rng)
    elif scenario == "init":
        cfg = sdr.initial_configuration()
    elif scenario == "hollow":
        cfg = hollow_alliance(sdr)
    elif scenario.startswith("faults:"):
        k = int(scenario.split(":", 1)[1])
        cfg = sdr.initial_configuration()
        victims = rng.sample(range(network.n), min(k, network.n))
        cfg = corrupt_processes(sdr, cfg, victims, rng)
    else:
        raise ValueError(f"unknown FGA scenario {scenario!r}")
    sim = Simulator(sdr, _make_daemon(daemon, network), config=cfg, seed=seed,
                    backend=backend)
    result = sim.run_to_termination(max_steps=max_steps)
    alliance = sdr.input.alliance(sim.cfg)
    return Trial(
        algorithm="FGA o SDR",
        scenario=scenario,
        daemon=sim.daemon.name,
        seed=seed,
        n=network.n,
        m=network.m,
        diameter=network.diameter,
        max_degree=network.max_degree,
        rounds=result.rounds,
        moves=result.moves,
        steps=result.steps,
        metrics=collect_metrics(sim),
        extra={"alliance_size": len(alliance), "alliance": frozenset(alliance)},
    )


def run_trial(spec: "TrialSpec", seed: int | None = None) -> Trial:
    """Descriptor-driven entry point used by :mod:`repro.engine`.

    ``spec`` names the algorithm, topology family (built via
    :func:`repro.topology.by_name` with ``spec.topology_seed``), scenario,
    daemon, and any extra keyword params; ``seed`` is the trial's PRNG seed
    (the engine derives it from the campaign seed and the spec key; when
    omitted, the replicate index is used so bare specs stay runnable).
    """
    params = spec.kwargs() if hasattr(spec, "kwargs") else dict(spec.params)
    network = by_name(spec.topology, spec.n, seed=spec.topology_seed)
    if seed is None:
        seed = spec.trial
    if spec.algorithm == "unison":
        return run_unison_trial(
            network, seed=seed, daemon=spec.daemon, scenario=spec.scenario, **params
        )
    if spec.algorithm == "boulinier":
        return run_boulinier_trial(
            network, seed=seed, daemon=spec.daemon, scenario=spec.scenario, **params
        )
    if spec.algorithm == "fga":
        instance = params.pop("instance", "dominating-set")
        f, g = instance_by_name(instance, network)
        return run_fga_trial(
            network, f, g, seed=seed, daemon=spec.daemon, scenario=spec.scenario,
            **params,
        )
    raise ValueError(
        f"unknown trial algorithm {spec.algorithm!r}; "
        "choose from 'unison', 'boulinier', 'fga'"
    )


def sweep(
    trial_fn: Callable[..., Trial],
    networks: list[Network],
    seeds: range | list[int],
    **kwargs,
) -> list[Trial]:
    """Run ``trial_fn`` over the (network × seed) grid."""
    trials = []
    for network in networks:
        for seed in seeds:
            trials.append(trial_fn(network, seed=seed, **kwargs))
    return trials
