"""Single-trial and batched-trial runners for experiments and benchmarks.

A *trial* fixes (topology, algorithm, initial-configuration scenario,
daemon, seed), runs to stabilization (or termination), and reports a flat
record of measurements.  Sweeps iterate trials over parameter grids.

Two execution fast paths keep trials off the per-step Python boundary:

* single trials detect stabilization with the *fused* kernel loop when
  the program provides a vectorized legitimacy mask (identical records,
  no per-step configuration decode);
* :func:`run_trial_batch` runs a whole campaign cell's replicates as one
  tiled multi-trial simulation (:mod:`repro.core.kernel.batch`), with
  results record-identical to serial runs.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from random import Random
from typing import TYPE_CHECKING, Any, Callable, Sequence

from ..alliance.fga import FGA
from ..alliance.functions import instance_by_name
from ..analysis.metrics import RunMetrics, collect_metrics
from ..core.daemon import DAEMON_KINDS, Daemon, make_daemon
from ..core.detectors import measure_stabilization
from ..core.exceptions import NotStabilized, UnbatchableError
from ..core.graph import Network
from ..core.simulator import Simulator
from ..faults.injector import corrupt_processes
from ..faults.scenarios import clock_gradient, clock_split, fake_reset_wave, hollow_alliance
from ..reset.sdr import SDR
from ..topology import by_name
from ..unison.boulinier import BoulinierUnison
from ..unison.unison import CLOCK, Unison

if TYPE_CHECKING:  # descriptor type only — the engine imports this module
    from ..engine.campaign import TrialSpec

__all__ = [
    "Trial",
    "run_trial",
    "run_trial_batch",
    "can_batch",
    "run_unison_trial",
    "run_boulinier_trial",
    "run_fga_trial",
    "sweep",
]

#: Default step budgets, shared between the serial runners' signatures
#: and the batched runner's param handling — one source of truth, so a
#: batched and a serial execution of the same spec always stop at the
#: same budget (the stores' byte-identity depends on it).
UNISON_MAX_STEPS = 2_000_000
BOULINIER_MAX_STEPS = 5_000_000
FGA_MAX_STEPS = 5_000_000


@dataclass(frozen=True)
class Trial:
    """Flat record of one stabilization measurement."""

    algorithm: str
    scenario: str
    daemon: str
    seed: int
    n: int
    m: int
    diameter: int
    max_degree: int
    rounds: int
    moves: int
    steps: int
    metrics: RunMetrics
    extra: dict[str, Any] = field(default_factory=dict)


def _make_daemon(spec: str | Daemon, network: Network) -> Daemon:
    if isinstance(spec, Daemon):
        return spec
    return make_daemon(spec, network)


#: ``program.mask_attr`` combinations already warned about — one warning
#: per combination, like the simulator's backend="auto" fallback warning.
_MASK_FALLBACK_WARNED: set[str] = set()


def _stabilization(
    sim: Simulator, predicate, mask_attr: str, max_steps: int
) -> tuple[int, int, int]:
    """``(steps, rounds, moves)`` at the first legitimate configuration.

    Prefers the fused kernel loop with the program's vectorized
    legitimacy mask (``mask_attr``) — same stopping step and accounting
    as the observer-based detector, but no per-step decode.  Falls back
    to :func:`~repro.core.detectors.measure_stabilization` whenever
    fusion is off (dict backend, tracing, non-vector daemon, …) — or,
    loudly, when the kernel program lacks the expected mask (a rename or
    an unported mask would otherwise silently cost the fast path).
    """
    mask_fn = (
        getattr(sim._program, mask_attr, None)
        if sim._program is not None
        else None
    )
    if sim._program is not None and mask_fn is None:
        key = f"{type(sim._program).__name__}.{mask_attr}"
        if key not in _MASK_FALLBACK_WARNED:
            _MASK_FALLBACK_WARNED.add(key)
            logging.getLogger(__name__).warning(
                "kernel program %s provides no %s; stabilization detection "
                "falls back to per-step decoding (slower, same results)",
                type(sim._program).__name__,
                mask_attr,
            )
    if mask_fn is not None and sim.fusion_available:
        result = sim.run_until_mask(mask_fn, max_steps)
        if result.stop_reason != "predicate":
            raise NotStabilized(
                f"predicate 'legitimate' not reached within {max_steps} steps",
                steps=result.steps,
            )
        return result.steps, result.rounds, result.moves
    detector, _ = measure_stabilization(sim, predicate, max_steps=max_steps)
    return detector.step or 0, detector.rounds or 0, detector.moves or 0


def _unison_start(sdr: SDR, scenario: str, rng: Random):
    if scenario == "random":
        return sdr.random_configuration(rng)
    if scenario == "gradient":
        return clock_gradient(sdr)
    if scenario == "split":
        return clock_split(sdr)
    if scenario == "fake-wave":
        return fake_reset_wave(sdr, rng)
    if scenario.startswith("faults:"):
        k = int(scenario.split(":", 1)[1])
        cfg = sdr.initial_configuration()
        victims = rng.sample(range(sdr.network.n), min(k, sdr.network.n))
        return corrupt_processes(sdr, cfg, victims, rng)
    raise ValueError(f"unknown unison scenario {scenario!r}")


def _boulinier_start(algo: BoulinierUnison, scenario: str, rng: Random):
    network = algo.network
    if scenario == "random":
        return algo.random_configuration(rng)
    if scenario == "gradient":
        cfg = algo.initial_configuration()
        for u in network.processes():
            cfg.set(u, "r", (3 * u) % algo.period)
        return cfg
    if scenario == "split":
        cfg = algo.initial_configuration()
        far = algo.period // 2
        for u in network.processes():
            cfg.set(u, "r", 0 if u < network.n // 2 else far)
        return cfg
    raise ValueError(f"unknown boulinier scenario {scenario!r}")


def _fga_start(sdr: SDR, scenario: str, rng: Random):
    network = sdr.network
    if scenario == "random":
        return sdr.random_configuration(rng)
    if scenario == "init":
        return sdr.initial_configuration()
    if scenario == "hollow":
        return hollow_alliance(sdr)
    if scenario.startswith("faults:"):
        k = int(scenario.split(":", 1)[1])
        cfg = sdr.initial_configuration()
        victims = rng.sample(range(network.n), min(k, network.n))
        return corrupt_processes(sdr, cfg, victims, rng)
    raise ValueError(f"unknown FGA scenario {scenario!r}")


def run_unison_trial(
    network: Network,
    seed: int = 0,
    daemon: str | Daemon = "distributed-random",
    scenario: str = "random",
    period: int | None = None,
    max_steps: int = UNISON_MAX_STEPS,
    backend: str = "auto",
) -> Trial:
    """Run ``U ∘ SDR`` to its first normal configuration.

    ``backend`` selects the simulator's execution engine (``"auto"`` runs
    the array kernel when available); results are backend-independent.
    """
    rng = Random(seed)
    sdr = SDR(Unison(network, period=period))
    cfg = _unison_start(sdr, scenario, rng)
    sim = Simulator(sdr, _make_daemon(daemon, network), config=cfg, seed=seed,
                    backend=backend)
    steps, rounds, moves = _stabilization(sim, sdr.is_normal, "normal_mask",
                                          max_steps)
    return Trial(
        algorithm="U o SDR",
        scenario=scenario,
        daemon=sim.daemon.name,
        seed=seed,
        n=network.n,
        m=network.m,
        diameter=network.diameter,
        max_degree=network.max_degree,
        rounds=rounds,
        moves=moves,
        steps=steps,
        metrics=collect_metrics(sim),
    )


def run_boulinier_trial(
    network: Network,
    seed: int = 0,
    daemon: str | Daemon = "distributed-random",
    period: int | None = None,
    alpha: int | None = None,
    scenario: str = "random",
    max_steps: int = BOULINIER_MAX_STEPS,
    backend: str = "auto",
) -> Trial:
    """Run the reset-tail baseline to its first legitimate configuration.

    The ``gradient``/``split`` scenarios mirror the ``U ∘ SDR`` ones on the
    shared clock variable so head-to-head comparisons start from the same
    amount of clock disorder.
    """
    rng = Random(seed)
    algo = BoulinierUnison(network, period=period, alpha=alpha)
    cfg = _boulinier_start(algo, scenario, rng)
    sim = Simulator(algo, _make_daemon(daemon, network), config=cfg, seed=seed,
                    backend=backend)
    steps, rounds, moves = _stabilization(sim, algo.is_legitimate,
                                          "legitimate_mask", max_steps)
    return Trial(
        algorithm="boulinier",
        scenario=scenario,
        daemon=sim.daemon.name,
        seed=seed,
        n=network.n,
        m=network.m,
        diameter=network.diameter,
        max_degree=network.max_degree,
        rounds=rounds,
        moves=moves,
        steps=steps,
        metrics=collect_metrics(sim),
        extra={"period": algo.period, "alpha": algo.alpha},
    )


def run_fga_trial(
    network: Network,
    f,
    g,
    seed: int = 0,
    daemon: str | Daemon = "distributed-random",
    scenario: str = "random",
    max_steps: int = FGA_MAX_STEPS,
    backend: str = "auto",
) -> Trial:
    """Run ``FGA ∘ SDR`` to termination (the composition is silent)."""
    rng = Random(seed)
    sdr = SDR(FGA(network, f, g))
    cfg = _fga_start(sdr, scenario, rng)
    sim = Simulator(sdr, _make_daemon(daemon, network), config=cfg, seed=seed,
                    backend=backend)
    result = sim.run_to_termination(max_steps=max_steps)
    alliance = sdr.input.alliance(sim.cfg)
    return Trial(
        algorithm="FGA o SDR",
        scenario=scenario,
        daemon=sim.daemon.name,
        seed=seed,
        n=network.n,
        m=network.m,
        diameter=network.diameter,
        max_degree=network.max_degree,
        rounds=result.rounds,
        moves=result.moves,
        steps=result.steps,
        metrics=collect_metrics(sim),
        extra={"alliance_size": len(alliance), "alliance": frozenset(alliance)},
    )


def run_trial(spec: "TrialSpec", seed: int | None = None) -> Trial:
    """Descriptor-driven entry point used by :mod:`repro.engine`.

    ``spec`` names the algorithm, topology family (built via
    :func:`repro.topology.by_name` with ``spec.topology_seed``), scenario,
    daemon, and any extra keyword params; ``seed`` is the trial's PRNG seed
    (the engine derives it from the campaign seed and the spec key; when
    omitted, the replicate index is used so bare specs stay runnable).
    """
    params = spec.kwargs() if hasattr(spec, "kwargs") else dict(spec.params)
    network = by_name(spec.topology, spec.n, seed=spec.topology_seed)
    if seed is None:
        seed = spec.trial
    if spec.algorithm == "unison":
        return run_unison_trial(
            network, seed=seed, daemon=spec.daemon, scenario=spec.scenario, **params
        )
    if spec.algorithm == "boulinier":
        return run_boulinier_trial(
            network, seed=seed, daemon=spec.daemon, scenario=spec.scenario, **params
        )
    if spec.algorithm == "fga":
        instance = params.pop("instance", "dominating-set")
        f, g = instance_by_name(instance, network)
        return run_fga_trial(
            network, f, g, seed=seed, daemon=spec.daemon, scenario=spec.scenario,
            **params,
        )
    raise ValueError(
        f"unknown trial algorithm {spec.algorithm!r}; "
        "choose from 'unison', 'boulinier', 'fga'"
    )


# ----------------------------------------------------------------------
# Batched cells
# ----------------------------------------------------------------------
#: Algorithms the batched runner can tile.
_BATCH_ALGORITHMS = frozenset({"unison", "boulinier", "fga"})


def can_batch(spec: "TrialSpec") -> bool:
    """Whether a cell of replicates of ``spec`` can run as one batch.

    Requires a tileable kernel program for the algorithm, a daemon with
    an exact vector twin (every standard kind qualifies), and numpy —
    and no explicit ``backend=dict`` request: batching never changes
    results, but it *does* run on the array kernel, and a user who asked
    for the dict engine (timing it, debugging it) must get it.
    """
    if spec.algorithm not in _BATCH_ALGORITHMS:
        return False
    if spec.daemon not in DAEMON_KINDS:
        return False
    if dict(spec.params).get("backend") == "dict":
        return False
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def run_trial_batch(specs: Sequence["TrialSpec"], seeds: Sequence[int]) -> list[Trial]:
    """Run one campaign cell's replicate trials as a single tiled batch.

    ``specs`` must share everything but the replicate index (one cell);
    ``seeds`` are the per-trial PRNG seeds in the same order.  Results
    are record-identical to ``[run_trial(spec, seed) for …]`` — each
    trial's daemon consumes its own seeded stream in serial order, and
    per-trial accounting freezes at the trial's own stopping step.
    Raises :class:`~repro.core.exceptions.UnbatchableError` when the
    cell cannot be batched (callers fall back to serial trials).
    """
    spec = specs[0]
    if any(s.cell_key() != spec.cell_key() for s in specs[1:]):
        raise ValueError("run_trial_batch requires specs from one grid cell")
    from ..core.kernel.batch import run_batch

    network = by_name(spec.topology, spec.n, seed=spec.topology_seed)
    params = spec.kwargs()
    params.pop("backend", None)  # execution option; batching implies kernel
    daemons = [make_daemon(spec.daemon, network) for _ in specs]

    if spec.algorithm == "unison":
        sdr = SDR(Unison(network, period=params.pop("period", None)))
        max_steps = params.pop("max_steps", UNISON_MAX_STEPS)
        _reject_params(spec, params)
        cfgs = [_unison_start(sdr, spec.scenario, Random(seed)) for seed in seeds]
        program = _require_program(sdr)
        result = run_batch(
            program, cfgs, daemons, [Random(seed) for seed in seeds], network,
            max_steps=max_steps,
            until=lambda prog, cols: prog.normal_mask(cols),
            exclusion_name=sdr.name if sdr.mutually_exclusive_rules else None,
        )
        _require_hits(result.outcomes, max_steps)
        return [
            _batch_trial("U o SDR", spec, seed, network, daemon, outcome)
            for seed, daemon, outcome in zip(seeds, daemons, result.outcomes)
        ]

    if spec.algorithm == "boulinier":
        algo = BoulinierUnison(
            network,
            period=params.pop("period", None),
            alpha=params.pop("alpha", None),
        )
        max_steps = params.pop("max_steps", BOULINIER_MAX_STEPS)
        _reject_params(spec, params)
        cfgs = [
            _boulinier_start(algo, spec.scenario, Random(seed)) for seed in seeds
        ]
        program = _require_program(algo)
        result = run_batch(
            program, cfgs, daemons, [Random(seed) for seed in seeds], network,
            max_steps=max_steps,
            until=lambda prog, cols: prog.legitimate_mask(cols),
            exclusion_name=algo.name if algo.mutually_exclusive_rules else None,
        )
        _require_hits(result.outcomes, max_steps)
        extra = {"period": algo.period, "alpha": algo.alpha}
        return [
            _batch_trial("boulinier", spec, seed, network, daemon, outcome,
                         extra=dict(extra))
            for seed, daemon, outcome in zip(seeds, daemons, result.outcomes)
        ]

    if spec.algorithm == "fga":
        instance = params.pop("instance", "dominating-set")
        max_steps = params.pop("max_steps", FGA_MAX_STEPS)
        _reject_params(spec, params)
        f, g = instance_by_name(instance, network)
        sdr = SDR(FGA(network, f, g))
        cfgs = [_fga_start(sdr, spec.scenario, Random(seed)) for seed in seeds]
        program = _require_program(sdr)
        result = run_batch(
            program, cfgs, daemons, [Random(seed) for seed in seeds], network,
            max_steps=max_steps,
            exclusion_name=sdr.name if sdr.mutually_exclusive_rules else None,
        )
        trials = []
        for t, (seed, daemon, outcome) in enumerate(
            zip(seeds, daemons, result.outcomes)
        ):
            if outcome.stop_reason != "terminal":
                raise NotStabilized(
                    f"no terminal configuration within {max_steps} steps",
                    steps=outcome.steps,
                )
            alliance = sdr.input.alliance(result.configuration(t))
            trials.append(
                _batch_trial(
                    "FGA o SDR", spec, seed, network, daemon, outcome,
                    extra={
                        "alliance_size": len(alliance),
                        "alliance": frozenset(alliance),
                    },
                )
            )
        return trials

    raise ValueError(f"algorithm {spec.algorithm!r} cannot run batched")


def _require_program(algorithm):
    program = algorithm.kernel_program()
    if program is None:
        raise UnbatchableError(
            f"{algorithm.name}: no kernel program — cell cannot be batched"
        )
    return program


def _reject_params(spec: "TrialSpec", params: dict) -> None:
    if params:
        # Unknown params fall back to serial execution, where they raise
        # the genuine TypeError (or get handled by a future runner).
        raise UnbatchableError(
            f"unexpected params {sorted(params)} for batched "
            f"{spec.algorithm!r} trials"
        )


def _require_hits(outcomes, max_steps: int) -> None:
    for outcome in outcomes:
        if not outcome.hit:
            raise NotStabilized(
                f"predicate 'legitimate' not reached within {max_steps} steps",
                steps=outcome.steps,
            )


def _batch_trial(
    algorithm: str,
    spec: "TrialSpec",
    seed: int,
    network: Network,
    daemon: Daemon,
    outcome,
    extra: dict | None = None,
) -> Trial:
    return Trial(
        algorithm=algorithm,
        scenario=spec.scenario,
        daemon=daemon.name,
        seed=seed,
        n=network.n,
        m=network.m,
        diameter=network.diameter,
        max_degree=network.max_degree,
        rounds=outcome.rounds,
        moves=outcome.moves,
        steps=outcome.steps,
        metrics=RunMetrics(
            steps=outcome.steps,
            moves=outcome.moves,
            rounds=outcome.rounds,
            moves_per_process=outcome.moves_per_process,
            moves_per_rule=outcome.moves_per_rule,
        ),
        extra=extra if extra is not None else {},
    )


def sweep(
    trial_fn: Callable[..., Trial],
    networks: list[Network],
    seeds: range | list[int],
    **kwargs,
) -> list[Trial]:
    """Run ``trial_fn`` over the (network × seed) grid."""
    trials = []
    for network in networks:
        for seed in seeds:
            trials.append(trial_fn(network, seed=seed, **kwargs))
    return trials
