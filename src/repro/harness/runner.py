"""Single-trial and batched-trial runners for experiments and benchmarks.

A *trial* fixes (topology, algorithm, initial-configuration scenario,
daemon, seed), runs to stabilization (or termination), and reports a flat
record of measurements.  Sweeps iterate trials over parameter grids.

Two execution fast paths keep trials off the per-step Python boundary:

* single trials detect stabilization with the *fused* kernel loop when
  the program provides a vectorized legitimacy mask (identical records,
  no per-step configuration decode);
* :func:`run_trial_batch` runs a whole campaign cell's replicates as one
  tiled multi-trial simulation (:mod:`repro.core.kernel.batch`), with
  results record-identical to serial runs.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from random import Random
from typing import TYPE_CHECKING, Any, Callable, Sequence

from ..alliance.fga import FGA
from ..alliance.functions import instance_by_name
from ..analysis.metrics import RunMetrics, collect_metrics
from ..core.daemon import DAEMON_KINDS, Daemon, make_daemon
from ..core.exceptions import NotStabilized, UnbatchableError
from ..core.graph import Network
from ..core.simulator import Simulator
from ..faults.injector import corrupt_processes
from ..faults.scenarios import clock_gradient, clock_split, fake_reset_wave, hollow_alliance
from ..faults.churn import parse_churn
from ..faults.schedule import parse_schedule
from ..probes import RecoveryProbe, SdrWaveProbe, StabilizationProbe
from ..probes.stabilization import resolve_mask
from ..reset.sdr import SDR
from ..topology import by_name
from ..unison.boulinier import BoulinierUnison
from ..unison.unison import CLOCK, Unison

if TYPE_CHECKING:  # descriptor type only — the engine imports this module
    from ..engine.campaign import TrialSpec

__all__ = [
    "Trial",
    "run_trial",
    "run_trial_batch",
    "can_batch",
    "run_unison_trial",
    "run_boulinier_trial",
    "run_fga_trial",
    "sweep",
]

#: Default step budgets, shared between the serial runners' signatures
#: and the batched runner's param handling — one source of truth, so a
#: batched and a serial execution of the same spec always stop at the
#: same budget (the stores' byte-identity depends on it).
UNISON_MAX_STEPS = 2_000_000
BOULINIER_MAX_STEPS = 5_000_000
FGA_MAX_STEPS = 5_000_000


@dataclass(frozen=True)
class Trial:
    """Flat record of one stabilization measurement."""

    algorithm: str
    scenario: str
    daemon: str
    seed: int
    n: int
    m: int
    diameter: int
    max_degree: int
    rounds: int
    moves: int
    steps: int
    metrics: RunMetrics
    extra: dict[str, Any] = field(default_factory=dict)


def _make_daemon(spec: str | Daemon, network: Network) -> Daemon:
    if isinstance(spec, Daemon):
        return spec
    return make_daemon(spec, network)


#: Recognized mode values of the trial runners' ``probe`` execution
#: option.  Anything else is parsed as a *named probe selection*
#: (``"accounting:100"`` — see :mod:`repro.probes.registry`): an
#: auxiliary vector-tier probe attached for observation only, whose
#: samples never enter the result record.
PROBE_MODES = ("auto", "decode")


def _check_probe_mode(probe: str) -> None:
    from ..probes.registry import is_named_probe

    if probe not in PROBE_MODES and not is_named_probe(probe):
        from ..probes.registry import PROBE_NAMES

        raise ValueError(
            f"unknown probe mode {probe!r}; choose from {PROBE_MODES} "
            f"or a named selection of {PROBE_NAMES} (optionally 'name:arg')"
        )


def _named_probes(probe: str, n: int) -> list:
    """The auxiliary probes a ``probe`` selection asks for (often none)."""
    if probe in PROBE_MODES:
        return []
    from ..probes.registry import make_probe

    return [make_probe(probe, n)]


def _stabilization(
    sim: Simulator, predicate, mask_attr: str, max_steps: int,
    probe: str = "auto",
) -> tuple[int, int, int]:
    """``(steps, rounds, moves)`` at the first legitimate configuration.

    Attaches a :class:`~repro.probes.StabilizationProbe` carrying both
    tiers of the legitimacy notion: the program's vectorized mask
    (``mask_attr`` — rides the fused kernel loop, no per-step decode)
    and the ``predicate`` closure (the decode tier, used whenever
    fusion is off: dict backend, tracing, non-vector daemon, or
    ``probe="decode"`` forcing the per-step path).  Measurements are
    identical on both tiers — the probe-equivalence property suite
    asserts byte-equality.
    """
    measure = StabilizationProbe(
        predicate,
        mask=mask_attr if probe != "decode" else None,
        name="legitimate",
    )
    sim.add_probe(measure)
    result = sim.run(max_steps=max_steps)
    if not measure.hit:
        raise NotStabilized(
            f"predicate 'legitimate' not reached within {max_steps} steps",
            steps=result.steps,
        )
    return measure.step, measure.rounds, measure.moves


def _fault_probes(finite, total, *, mask_attr=None, predicate=None,
                  terminal=False, probe: str = "auto", waves: bool = True):
    """Fresh ``(RecoveryProbe, SdrWaveProbe | None)`` for one trial.

    ``finite``/``total`` describe the trial's combined disturbance
    workload (fault bursts plus churn occurrences).  Finite schedules
    stop the run once every burst recovered (the stabilization
    predicate must *not* stop a fault trial — the workload is recovery,
    not first convergence); silent compositions instead stop at the
    natural re-termination after the last burst, so their probe never
    requests a stop.
    """
    recovery = RecoveryProbe(
        None if terminal else predicate,
        mask=mask_attr if (mask_attr is not None and probe != "decode") else None,
        terminal=terminal,
        expected=total if finite else None,
        stop=finite and not terminal,
    )
    return recovery, (SdrWaveProbe() if waves else None)


def _require_recovered(finite, total, bounds, recovery, result) -> None:
    """Finite schedules must fully recover; unbounded ones run to budget.

    ``bounds`` are the trial's bound schedules (fault and/or churn) —
    the terminal carve-out needs them all exhausted.
    """
    if not finite or recovery.all_recovered:
        return
    if result.stop_reason == "terminal" and all(b.exhausted for b in bounds):
        # A pulled-forward burst can leave a terminal configuration
        # terminal (the drawn junk matched the current registers); no
        # observation follows the break, so that burst stays open.
        return
    open_bursts = len(recovery.bursts) - recovery.recovered_count
    pending = (total or 0) - len(recovery.bursts)
    raise NotStabilized(
        f"fault schedule not absorbed within {result.steps} steps "
        f"({open_bursts} bursts unrecovered, {pending} not yet fired)",
        steps=result.steps,
    )


def _serial_fault_trial(
    algorithm_label: str,
    algo,
    network: Network,
    cfg,
    daemon: str | Daemon,
    scenario: str,
    seed: int,
    faults,
    *,
    max_steps: int,
    backend: str,
    probe: str,
    churn=None,
    mask_attr: str | None = None,
    predicate=None,
    terminal: bool = False,
    waves: bool = True,
    extra_fn=None,
) -> Trial:
    """One trial whose measured workload is recovery from disturbances.

    ``faults`` (register corruption) and ``churn`` (topology mutation)
    each bind to the trial seed (unless a spec pins its own ``seed=``
    clause), fire mid-run on whichever backend executes, and share one
    :class:`~repro.probes.RecoveryProbe`: every fault burst and every
    churn occurrence arms a stopwatch, and the per-burst recovery
    series lands in ``Trial.extra`` — byte-identical across dict,
    fused, and batched execution.  (Churn trials never batch — see
    :func:`can_batch` — so the batched path stays fault-only.)
    """
    fault_sched = parse_schedule(faults) if faults is not None else None
    churn_sched = parse_churn(churn) if churn is not None else None
    bound = (
        fault_sched.bind(algo, default_seed=seed)
        if fault_sched is not None else None
    )
    churn_bound = (
        churn_sched.bind(algo, default_seed=seed)
        if churn_sched is not None else None
    )
    scheds = [s for s in (fault_sched, churn_sched) if s is not None]
    finite = all(s.finite for s in scheds)
    total = sum(s.total_occurrences for s in scheds) if finite else None
    recovery, wave = _fault_probes(
        finite, total, mask_attr=mask_attr, predicate=predicate,
        terminal=terminal, probe=probe, waves=waves,
    )
    probes = [recovery] + ([wave] if wave is not None else [])
    probes += _named_probes(probe, network.n)
    # Snapshot the seed topology's descriptors now: churn mutates the
    # network in place, and a crashed-for-good process leaves the final
    # graph disconnected (diameter undefined).  The trial record
    # describes the experiment's *parameter* topology; the final shape
    # lands in ``extra["churn_final"]``.
    topo = (network.n, network.m, network.diameter, network.max_degree)
    sim = Simulator(algo, _make_daemon(daemon, network), config=cfg, seed=seed,
                    backend=backend, fuse=probe != "decode",
                    probes=probes, faults=bound, churn=churn_bound)
    result = sim.run(max_steps=max_steps)
    bounds = [b for b in (bound, churn_bound) if b is not None]
    _require_recovered(finite, total, bounds, recovery, result)
    extra = dict(extra_fn(sim)) if extra_fn is not None else {}
    if fault_sched is not None:
        extra["faults"] = fault_sched.canonical()
    if churn_bound is not None:
        extra["churn"] = churn_sched.canonical()
        dead = churn_bound.dead()
        extra["churn_final"] = {
            "fired": churn_bound.fired,
            "live": churn_bound.n - len(dead),
            "dead": list(dead),
            "components": churn_bound.components(),
            "edges": len(churn_bound.current_edges()),
        }
    extra["recovery"] = recovery.summary()
    if wave is not None:
        extra["sdr_waves"] = wave.summary()
    return Trial(
        algorithm=algorithm_label,
        scenario=scenario,
        daemon=sim.daemon.name,
        seed=seed,
        n=topo[0],
        m=topo[1],
        diameter=topo[2],
        max_degree=topo[3],
        rounds=result.rounds,
        moves=result.moves,
        steps=result.steps,
        metrics=collect_metrics(sim),
        extra=extra,
    )


# ----------------------------------------------------------------------
# Adversarial schedule search (the ``adversary`` trial param)
# ----------------------------------------------------------------------
def _adversary_daemon(adversary: str, daemon, backend: str, faults, churn,
                      network: Network, stop_mask: str | None = None):
    """Validate an ``adversary=`` trial and build its search daemon.

    The adversary *is* the scheduler, so it replaces the daemon (the
    ``daemon`` param must stay at its default) and runs on the kernel
    backend: the column-tier search has no dict twin, and silently
    degrading to the scored fallback would make results depend on an
    execution option.  Cross-backend confidence comes from the
    certificate instead — every found schedule is replay-verified on the
    dict backend before the trial returns.  Disturbance schedules don't
    compose with search (a fault mid-rollout would invalidate every
    snapshot score), so ``faults``/``churn`` are rejected.

    ``stop_mask`` is the trial's legitimacy mask (the one its
    stabilization probe rides): the search treats configurations
    satisfying it as terminal, since the measured run stops there.
    """
    from ..adversary.search import make_search_daemon

    if faults is not None or churn is not None:
        raise ValueError(
            "adversary search does not compose with faults/churn schedules"
        )
    if isinstance(daemon, Daemon) or daemon != "distributed-random":
        raise ValueError(
            f"adversary={adversary!r} replaces the daemon; leave the "
            f"daemon param at its default (got {daemon!r})"
        )
    if backend == "dict":
        raise ValueError(
            "adversary search requires the kernel backend; replay its "
            "certificate on the dict backend instead (done automatically)"
        )
    search = make_search_daemon(adversary, network)
    search.strategy.stop_mask = stop_mask
    return search, "kernel"


def _maybe_write_certificate(cert) -> str | None:
    """Write the certificate under ``$REPRO_CERT_DIR`` when set (CI artifacts)."""
    from ..adversary.certificates import write_certificate

    cert_dir = os.environ.get("REPRO_CERT_DIR")
    if not cert_dir:
        return None
    os.makedirs(cert_dir, exist_ok=True)
    slug = re.sub(
        r"[^A-Za-z0-9.]+", "-", f"{cert.algorithm}-{cert.strategy}"
    ).strip("-").lower()
    path = os.path.join(cert_dir, f"{slug}-n{cert.n}-s{cert.seed}.jsonl")
    write_certificate(cert, path)
    return path


def _adversary_extra(daemon: Daemon, adversary: str, label: str, algo,
                     initial, final, rounds: int, seed: int,
                     network: Network) -> dict:
    """Certificate + dict-backend replay verification of a finished search.

    Raises :class:`~repro.adversary.certificates.CertificateError` if the
    replay diverges in any way — a found schedule that the reference
    interpreter cannot reproduce is not a result.
    """
    from ..adversary.certificates import certificate_from_daemon, verify_certificate

    cert = certificate_from_daemon(
        daemon, algorithm=label, seed=seed, initial=initial, final=final,
        rounds=rounds,
        meta={"spec": adversary, "m": network.m, "diameter": network.diameter},
    )
    report = verify_certificate(cert, algo, initial, backend="dict")
    out = {
        "strategy": getattr(daemon, "spec", daemon.name),
        "spec": adversary,
        "digest": cert.digest(),
        "initial_hash": cert.initial_hash,
        "final_hash": cert.final_hash,
        "replay": {
            "backend": report.backend,
            "ok": report.ok,
            "steps": report.steps,
            "moves": report.moves,
            "rounds": report.rounds,
        },
    }
    path = _maybe_write_certificate(cert)
    if path is not None:
        out["certificate_path"] = path
    return out


def _unison_start(sdr: SDR, scenario: str, rng: Random):
    if scenario == "random":
        return sdr.random_configuration(rng)
    if scenario == "gradient":
        return clock_gradient(sdr)
    if scenario == "split":
        return clock_split(sdr)
    if scenario == "fake-wave":
        return fake_reset_wave(sdr, rng)
    if scenario.startswith("faults:"):
        k = int(scenario.split(":", 1)[1])
        cfg = sdr.initial_configuration()
        victims = rng.sample(range(sdr.network.n), min(k, sdr.network.n))
        return corrupt_processes(sdr, cfg, victims, rng)
    raise ValueError(f"unknown unison scenario {scenario!r}")


def _boulinier_start(algo: BoulinierUnison, scenario: str, rng: Random):
    network = algo.network
    if scenario == "random":
        return algo.random_configuration(rng)
    if scenario == "gradient":
        cfg = algo.initial_configuration()
        for u in network.processes():
            cfg.set(u, "r", (3 * u) % algo.period)
        return cfg
    if scenario == "split":
        cfg = algo.initial_configuration()
        far = algo.period // 2
        for u in network.processes():
            cfg.set(u, "r", 0 if u < network.n // 2 else far)
        return cfg
    raise ValueError(f"unknown boulinier scenario {scenario!r}")


def _fga_start(sdr: SDR, scenario: str, rng: Random):
    network = sdr.network
    if scenario == "random":
        return sdr.random_configuration(rng)
    if scenario == "init":
        return sdr.initial_configuration()
    if scenario == "hollow":
        return hollow_alliance(sdr)
    if scenario.startswith("faults:"):
        k = int(scenario.split(":", 1)[1])
        cfg = sdr.initial_configuration()
        victims = rng.sample(range(network.n), min(k, network.n))
        return corrupt_processes(sdr, cfg, victims, rng)
    raise ValueError(f"unknown FGA scenario {scenario!r}")


def run_unison_trial(
    network: Network,
    seed: int = 0,
    daemon: str | Daemon = "distributed-random",
    scenario: str = "random",
    period: int | None = None,
    max_steps: int = UNISON_MAX_STEPS,
    backend: str = "auto",
    probe: str = "auto",
    faults=None,
    churn=None,
    adversary: str | None = None,
) -> Trial:
    """Run ``U ∘ SDR`` to its first normal configuration.

    ``backend`` selects the simulator's execution engine (``"auto"`` runs
    the array kernel when available); ``probe`` selects the measurement
    tier (``"auto"`` rides the fused loop on a vectorized legitimacy
    mask, ``"decode"`` forces the per-step decoded path); results are
    independent of both.  ``faults`` (a schedule spec or
    :class:`~repro.faults.FaultSchedule`) switches the trial to the
    recovery workload: the schedule injects mid-run, the per-burst
    recovery series and SDR wave counters land in ``Trial.extra``, and
    a finite schedule must be fully absorbed within ``max_steps``.
    ``churn`` (a spec string or :class:`~repro.faults.ChurnSchedule`)
    likewise switches to the recovery workload with mid-run topology
    mutation — recovery then means every *live* process is normal; the
    two compose freely in one trial.  ``adversary`` (a strategy spec —
    ``greedy``, ``beam``, ``beam-WxH``, ``delay``) replaces the daemon
    with a schedule search (:mod:`repro.adversary`): the trial runs on
    the kernel backend, and the found schedule's certificate is
    replay-verified on the dict backend before the record lands in
    ``Trial.extra["adversary"]``.
    """
    _check_probe_mode(probe)
    rng = Random(seed)
    sdr = SDR(Unison(network, period=period))
    cfg = _unison_start(sdr, scenario, rng)
    if adversary is not None:
        daemon, backend = _adversary_daemon(
            adversary, daemon, backend, faults, churn, network,
            stop_mask="normal_mask",
        )
    if faults is not None or churn is not None:
        return _serial_fault_trial(
            "U o SDR", sdr, network, cfg, daemon, scenario, seed, faults,
            max_steps=max_steps, backend=backend, probe=probe, churn=churn,
            mask_attr="normal_mask", predicate=sdr.is_normal,
        )
    sim = Simulator(sdr, _make_daemon(daemon, network), config=cfg, seed=seed,
                    backend=backend, fuse=probe != "decode",
                    probes=_named_probes(probe, network.n))
    steps, rounds, moves = _stabilization(sim, sdr.is_normal, "normal_mask",
                                          max_steps, probe=probe)
    extra: dict[str, Any] = {}
    if adversary is not None:
        extra["adversary"] = _adversary_extra(
            sim.daemon, adversary, "U o SDR", sdr, cfg, sim.cfg, rounds,
            seed, network,
        )
    return Trial(
        algorithm="U o SDR",
        scenario=scenario,
        daemon=sim.daemon.name,
        seed=seed,
        n=network.n,
        m=network.m,
        diameter=network.diameter,
        max_degree=network.max_degree,
        rounds=rounds,
        moves=moves,
        steps=steps,
        metrics=collect_metrics(sim),
        extra=extra,
    )


def run_boulinier_trial(
    network: Network,
    seed: int = 0,
    daemon: str | Daemon = "distributed-random",
    period: int | None = None,
    alpha: int | None = None,
    scenario: str = "random",
    max_steps: int = BOULINIER_MAX_STEPS,
    backend: str = "auto",
    probe: str = "auto",
    faults=None,
    churn=None,
    adversary: str | None = None,
) -> Trial:
    """Run the reset-tail baseline to its first legitimate configuration.

    The ``gradient``/``split`` scenarios mirror the ``U ∘ SDR`` ones on the
    shared clock variable so head-to-head comparisons start from the same
    amount of clock disorder.  ``faults`` (and/or ``churn``) switches to
    the recovery workload (no SDR wave counters — the baseline has no
    reset layer).  ``adversary`` replaces the daemon with a schedule
    search, as in :func:`run_unison_trial`.
    """
    _check_probe_mode(probe)
    rng = Random(seed)
    algo = BoulinierUnison(network, period=period, alpha=alpha)
    cfg = _boulinier_start(algo, scenario, rng)
    if adversary is not None:
        daemon, backend = _adversary_daemon(
            adversary, daemon, backend, faults, churn, network,
            stop_mask="legitimate_mask",
        )
    if faults is not None or churn is not None:
        return _serial_fault_trial(
            "boulinier", algo, network, cfg, daemon, scenario, seed, faults,
            max_steps=max_steps, backend=backend, probe=probe, churn=churn,
            mask_attr="legitimate_mask", predicate=algo.is_legitimate,
            waves=False,
            extra_fn=lambda sim: {"period": algo.period, "alpha": algo.alpha},
        )
    sim = Simulator(algo, _make_daemon(daemon, network), config=cfg, seed=seed,
                    backend=backend, fuse=probe != "decode",
                    probes=_named_probes(probe, network.n))
    steps, rounds, moves = _stabilization(sim, algo.is_legitimate,
                                          "legitimate_mask", max_steps,
                                          probe=probe)
    extra: dict[str, Any] = {"period": algo.period, "alpha": algo.alpha}
    if adversary is not None:
        extra["adversary"] = _adversary_extra(
            sim.daemon, adversary, "boulinier", algo, cfg, sim.cfg, rounds,
            seed, network,
        )
    return Trial(
        algorithm="boulinier",
        scenario=scenario,
        daemon=sim.daemon.name,
        seed=seed,
        n=network.n,
        m=network.m,
        diameter=network.diameter,
        max_degree=network.max_degree,
        rounds=rounds,
        moves=moves,
        steps=steps,
        metrics=collect_metrics(sim),
        extra=extra,
    )


def run_fga_trial(
    network: Network,
    f,
    g,
    seed: int = 0,
    daemon: str | Daemon = "distributed-random",
    scenario: str = "random",
    max_steps: int = FGA_MAX_STEPS,
    backend: str = "auto",
    probe: str = "auto",
    faults=None,
    churn=None,
    adversary: str | None = None,
) -> Trial:
    """Run ``FGA ∘ SDR`` to termination (the composition is silent).

    The composition terminates rather than hitting a predicate, so
    ``probe="decode"`` here simply forces the step-by-step loop
    (``fuse=False``) — the measurement itself needs no probe.
    ``faults`` (and/or ``churn``) switches to the recovery workload:
    recovery means the configuration is terminal again, and a finite
    schedule's last burst ends the run at the natural re-termination.
    ``adversary`` replaces the daemon with a schedule search, as in
    :func:`run_unison_trial`.
    """
    _check_probe_mode(probe)
    rng = Random(seed)
    sdr = SDR(FGA(network, f, g))
    cfg = _fga_start(sdr, scenario, rng)
    if adversary is not None:
        daemon, backend = _adversary_daemon(
            adversary, daemon, backend, faults, churn, network
        )
    if faults is not None or churn is not None:
        def fga_extra(sim):
            alliance = sdr.input.alliance(sim.cfg)
            return {"alliance_size": len(alliance),
                    "alliance": frozenset(alliance)}

        return _serial_fault_trial(
            "FGA o SDR", sdr, network, cfg, daemon, scenario, seed, faults,
            max_steps=max_steps, backend=backend, probe=probe, churn=churn,
            terminal=True, extra_fn=fga_extra,
        )
    sim = Simulator(sdr, _make_daemon(daemon, network), config=cfg, seed=seed,
                    backend=backend, fuse=probe != "decode",
                    probes=_named_probes(probe, network.n))
    result = sim.run_to_termination(max_steps=max_steps)
    alliance = sdr.input.alliance(sim.cfg)
    extra: dict[str, Any] = {
        "alliance_size": len(alliance), "alliance": frozenset(alliance),
    }
    if adversary is not None:
        extra["adversary"] = _adversary_extra(
            sim.daemon, adversary, "FGA o SDR", sdr, cfg, sim.cfg,
            result.rounds, seed, network,
        )
    return Trial(
        algorithm="FGA o SDR",
        scenario=scenario,
        daemon=sim.daemon.name,
        seed=seed,
        n=network.n,
        m=network.m,
        diameter=network.diameter,
        max_degree=network.max_degree,
        rounds=result.rounds,
        moves=result.moves,
        steps=result.steps,
        metrics=collect_metrics(sim),
        extra=extra,
    )


def run_trial(spec: "TrialSpec", seed: int | None = None) -> Trial:
    """Descriptor-driven entry point used by :mod:`repro.engine`.

    ``spec`` names the algorithm, topology family (built via
    :func:`repro.topology.by_name` with ``spec.topology_seed``), scenario,
    daemon, and any extra keyword params; ``seed`` is the trial's PRNG seed
    (the engine derives it from the campaign seed and the spec key; when
    omitted, the replicate index is used so bare specs stay runnable).
    """
    params = spec.kwargs() if hasattr(spec, "kwargs") else dict(spec.params)
    network = by_name(spec.topology, spec.n, seed=spec.topology_seed)
    if seed is None:
        seed = spec.trial
    if spec.algorithm == "unison":
        return run_unison_trial(
            network, seed=seed, daemon=spec.daemon, scenario=spec.scenario, **params
        )
    if spec.algorithm == "boulinier":
        return run_boulinier_trial(
            network, seed=seed, daemon=spec.daemon, scenario=spec.scenario, **params
        )
    if spec.algorithm == "fga":
        instance = params.pop("instance", "dominating-set")
        f, g = instance_by_name(instance, network)
        return run_fga_trial(
            network, f, g, seed=seed, daemon=spec.daemon, scenario=spec.scenario,
            **params,
        )
    raise ValueError(
        f"unknown trial algorithm {spec.algorithm!r}; "
        "choose from 'unison', 'boulinier', 'fga'"
    )


# ----------------------------------------------------------------------
# Batched cells
# ----------------------------------------------------------------------
#: Algorithms the batched runner can tile.
_BATCH_ALGORITHMS = frozenset({"unison", "boulinier", "fga"})


def can_batch(spec: "TrialSpec") -> bool:
    """Whether a cell of replicates of ``spec`` can run as one batch.

    Requires a tileable kernel program for the algorithm, a daemon with
    an exact vector twin (every standard kind qualifies), and numpy —
    and no explicit ``backend=dict`` or ``probe=decode`` request:
    batching never changes results, but it *does* run on the array
    kernel with vectorized measurement, and a user who asked for the
    dict engine or the decoded measurement path (timing it, debugging
    it) must get it.  Named probe selections (``probe="accounting:100"``)
    do batch: every registered probe is vector-capable, and the batch
    runner attaches one instance per replicate.
    """
    if spec.algorithm not in _BATCH_ALGORITHMS:
        return False
    if spec.daemon not in DAEMON_KINDS:
        return False
    if str(spec.daemon).partition(":")[0] == "adversarial":
        # Search daemons have no vector twin (they *are* the scheduler,
        # driving the runtime through snapshots); adversary trials
        # always run serially.
        return False
    params = dict(spec.params)
    if params.get("backend") == "dict" or params.get("probe") == "decode":
        return False
    if params.get("adversary"):
        return False
    if params.get("churn"):
        # Topology churn mutates per-trial network state (CSR deltas,
        # liveness masks) that the tiled batch layout cannot isolate;
        # churn trials always run serially.
        return False
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def run_trial_batch(
    specs: Sequence["TrialSpec"],
    seeds: Sequence[int],
    probes: Sequence[Sequence] | None = None,
) -> list[Trial]:
    """Run one campaign cell's replicate trials as a single tiled batch.

    ``specs`` must share everything but the replicate index (one cell);
    ``seeds`` are the per-trial PRNG seeds in the same order.  Results
    are record-identical to ``[run_trial(spec, seed) for …]`` — each
    trial's daemon consumes its own seeded stream in serial order, and
    per-trial accounting freezes at the trial's own stopping step.
    ``probes`` (optional, one sequence of vector-tier probes per trial)
    is forwarded to :func:`repro.core.kernel.batch.run_batch`: each
    trial's probes observe its block of the tiled buffers inline.

    Raises :class:`~repro.core.exceptions.UnbatchableError` when the
    cell cannot be batched (callers fall back to serial trials).  When
    one replicate exhausts its step budget, the raised
    :class:`~repro.core.exceptions.NotStabilized` carries the
    stabilizing siblings' finished :class:`Trial` results in its
    ``partial`` attribute — callers land those instead of re-running
    the cell.
    """
    spec = specs[0]
    if any(s.cell_key() != spec.cell_key() for s in specs[1:]):
        raise ValueError("run_trial_batch requires specs from one grid cell")
    from ..core.kernel.batch import run_batch

    network = by_name(spec.topology, spec.n, seed=spec.topology_seed)
    params = spec.kwargs()
    # Execution options: batching implies the kernel backend with
    # vectorized measurement (can_batch routed explicit opt-outs away).
    params.pop("backend", None)
    probe_sel = params.pop("probe", "auto")
    if probe_sel == "decode":
        raise UnbatchableError(
            "probe='decode' requests per-step decoded measurement — "
            "cell cannot be batched"
        )
    if probe_sel != "auto":
        # A named probe selection: one instance per replicate (probes are
        # stateful), merged with any caller-provided per-trial probes.
        from ..probes.registry import make_probe

        named = [[make_probe(probe_sel, spec.n)] for _ in specs]
        if probes is None:
            probes = named
        else:
            probes = [
                list(existing) + named[t]
                for t, existing in enumerate(probes)
            ]
    daemons = [make_daemon(spec.daemon, network) for _ in specs]
    faults_spec = params.pop("faults", None)
    fault_sched = parse_schedule(faults_spec) if faults_spec is not None else None

    if spec.algorithm == "unison":
        sdr = SDR(Unison(network, period=params.pop("period", None)))
        max_steps = params.pop("max_steps", UNISON_MAX_STEPS)
        _reject_params(spec, params)
        cfgs = [_unison_start(sdr, spec.scenario, Random(seed)) for seed in seeds]
        program = _require_program(sdr)
        until = _batch_until("normal_mask")
        ok = lambda t, outcome: outcome.hit
        failure = f"predicate 'legitimate' not reached within {max_steps} steps"
        extra_fn = None
        bounds = None
        if fault_sched is not None:
            bounds, recoveries, wave_probes, probes = _batch_fault_kit(
                fault_sched, sdr, seeds, probes, mask_attr="normal_mask",
            )
            until = None
            ok = _batch_fault_ok(fault_sched, bounds, recoveries)
            failure = f"fault schedule not absorbed within {max_steps} steps"
            extra_fn = _batch_fault_extra(fault_sched, recoveries, wave_probes)
        result = run_batch(
            program, cfgs, daemons, [Random(seed) for seed in seeds], network,
            max_steps=max_steps,
            until=until,
            exclusion_name=sdr.name if sdr.mutually_exclusive_rules else None,
            probes=probes,
            faults=bounds,
        )
        return _batch_trials(
            "U o SDR", spec, seeds, network, daemons, result.outcomes,
            ok=ok, failure=failure, extra_fn=extra_fn,
        )

    if spec.algorithm == "boulinier":
        algo = BoulinierUnison(
            network,
            period=params.pop("period", None),
            alpha=params.pop("alpha", None),
        )
        max_steps = params.pop("max_steps", BOULINIER_MAX_STEPS)
        _reject_params(spec, params)
        cfgs = [
            _boulinier_start(algo, spec.scenario, Random(seed)) for seed in seeds
        ]
        program = _require_program(algo)
        extra = {"period": algo.period, "alpha": algo.alpha}
        until = _batch_until("legitimate_mask")
        ok = lambda t, outcome: outcome.hit
        failure = f"predicate 'legitimate' not reached within {max_steps} steps"
        extra_fn = lambda t: dict(extra)
        bounds = None
        if fault_sched is not None:
            bounds, recoveries, wave_probes, probes = _batch_fault_kit(
                fault_sched, algo, seeds, probes, mask_attr="legitimate_mask",
                waves=False,
            )
            until = None
            ok = _batch_fault_ok(fault_sched, bounds, recoveries)
            failure = f"fault schedule not absorbed within {max_steps} steps"
            extra_fn = _batch_fault_extra(
                fault_sched, recoveries, wave_probes, base_fn=extra_fn,
            )
        result = run_batch(
            program, cfgs, daemons, [Random(seed) for seed in seeds], network,
            max_steps=max_steps,
            until=until,
            exclusion_name=algo.name if algo.mutually_exclusive_rules else None,
            probes=probes,
            faults=bounds,
        )
        return _batch_trials(
            "boulinier", spec, seeds, network, daemons, result.outcomes,
            ok=ok, failure=failure, extra_fn=extra_fn,
        )

    if spec.algorithm == "fga":
        instance = params.pop("instance", "dominating-set")
        max_steps = params.pop("max_steps", FGA_MAX_STEPS)
        _reject_params(spec, params)
        f, g = instance_by_name(instance, network)
        sdr = SDR(FGA(network, f, g))
        cfgs = [_fga_start(sdr, spec.scenario, Random(seed)) for seed in seeds]
        program = _require_program(sdr)
        ok = lambda t, outcome: outcome.stop_reason == "terminal"
        failure = f"no terminal configuration within {max_steps} steps"
        bounds = None
        if fault_sched is not None:
            bounds, recoveries, wave_probes, probes = _batch_fault_kit(
                fault_sched, sdr, seeds, probes, terminal=True,
            )
            ok = _batch_fault_ok(fault_sched, bounds, recoveries)
            failure = f"fault schedule not absorbed within {max_steps} steps"
        result = run_batch(
            program, cfgs, daemons, [Random(seed) for seed in seeds], network,
            max_steps=max_steps,
            exclusion_name=sdr.name if sdr.mutually_exclusive_rules else None,
            probes=probes,
            faults=bounds,
        )

        def fga_extra(t: int) -> dict:
            alliance = sdr.input.alliance(result.configuration(t))
            return {"alliance_size": len(alliance),
                    "alliance": frozenset(alliance)}

        extra_fn = fga_extra
        if fault_sched is not None:
            extra_fn = _batch_fault_extra(
                fault_sched, recoveries, wave_probes, base_fn=fga_extra,
            )
        return _batch_trials(
            "FGA o SDR", spec, seeds, network, daemons, result.outcomes,
            ok=ok, failure=failure, extra_fn=extra_fn,
        )

    raise ValueError(f"algorithm {spec.algorithm!r} cannot run batched")


def _require_program(algorithm):
    program = algorithm.kernel_program()
    if program is None:
        raise UnbatchableError(
            f"{algorithm.name}: no kernel program — cell cannot be batched"
        )
    return program


def _reject_params(spec: "TrialSpec", params: dict) -> None:
    if params:
        # Unknown params fall back to serial execution, where they raise
        # the genuine TypeError (or get handled by a future runner).
        raise UnbatchableError(
            f"unexpected params {sorted(params)} for batched "
            f"{spec.algorithm!r} trials"
        )


def _batch_fault_kit(sched, algo, seeds, probes, *, mask_attr=None,
                     terminal=False, waves=True):
    """Per-trial fault bindings and probes for one batched cell.

    Bound schedules and probes are stateful, so every replicate gets a
    fresh binding (seeded by its own trial seed) and fresh probe
    instances, exactly as the serial path does.  Returns ``(bounds,
    recoveries, wave_probes, probes)`` with the fault probes prepended
    to any caller-provided per-trial probe lists (serial order:
    recovery, waves, then named selections).
    """
    bounds = [sched.bind(algo, default_seed=seed) for seed in seeds]
    recoveries, wave_probes, fault_lists = [], [], []
    for _ in seeds:
        recovery, wave = _fault_probes(
            sched.finite, sched.total_occurrences,
            mask_attr=mask_attr, terminal=terminal, waves=waves,
        )
        recoveries.append(recovery)
        wave_probes.append(wave)
        fault_lists.append([recovery] + ([wave] if wave is not None else []))
    if probes is None:
        merged = fault_lists
    else:
        merged = [
            fault_lists[t] + list(existing) for t, existing in enumerate(probes)
        ]
    return bounds, recoveries, wave_probes, merged


def _batch_fault_ok(sched, bounds, recoveries):
    """Success notion for fault cells — mirrors :func:`_require_recovered`."""

    def ok(t, outcome) -> bool:
        if not sched.finite or recoveries[t].all_recovered:
            return True
        return outcome.stop_reason == "terminal" and bounds[t].exhausted

    return ok


def _batch_fault_extra(sched, recoveries, wave_probes, base_fn=None):
    def extra(t: int) -> dict:
        out = dict(base_fn(t)) if base_fn is not None else {}
        out["faults"] = sched.canonical()
        out["recovery"] = recoveries[t].summary()
        if wave_probes[t] is not None:
            out["sdr_waves"] = wave_probes[t].summary()
        return out

    return extra


def _batch_until(mask_attr: str):
    """A per-process freeze mask resolved through the probe protocol.

    Resolution happens against the *tiled* program at first evaluation;
    a program lacking the expected mask makes the cell unbatchable (the
    caller then falls back to serial trials, whose decode-tier probes
    need no mask).
    """

    def until(prog, cols):
        mask_fn = resolve_mask(prog, mask_attr)
        if mask_fn is None:
            raise UnbatchableError(
                f"kernel program {type(prog).__name__} provides no "
                f"{mask_attr} — cell cannot be batched"
            )
        return mask_fn(cols)

    return until


def _batch_trials(
    algorithm: str,
    spec: "TrialSpec",
    seeds: Sequence[int],
    network: Network,
    daemons: Sequence[Daemon],
    outcomes,
    *,
    ok,
    failure: str,
    extra_fn=None,
) -> list[Trial]:
    """Per-trial records of one batch; partial results ride the failure.

    Builds a :class:`Trial` for every outcome satisfying ``ok``.  When
    all do, returns them in trial order; otherwise raises
    :class:`~repro.core.exceptions.NotStabilized` with the finished
    trials attached as ``partial`` ``(index, Trial)`` pairs, so callers
    can land the stabilizing siblings without re-running the cell.
    """
    finished: list[tuple[int, Trial]] = []
    first_bad = None
    for t, (seed, daemon, outcome) in enumerate(zip(seeds, daemons, outcomes)):
        if ok(t, outcome):
            finished.append((t, _batch_trial(
                algorithm, spec, seed, network, daemon, outcome,
                extra=extra_fn(t) if extra_fn is not None else None,
            )))
        elif first_bad is None:
            first_bad = outcome
    if first_bad is not None:
        raise NotStabilized(failure, steps=first_bad.steps, partial=finished)
    return [trial for _, trial in finished]


def _batch_trial(
    algorithm: str,
    spec: "TrialSpec",
    seed: int,
    network: Network,
    daemon: Daemon,
    outcome,
    extra: dict | None = None,
) -> Trial:
    return Trial(
        algorithm=algorithm,
        scenario=spec.scenario,
        daemon=daemon.name,
        seed=seed,
        n=network.n,
        m=network.m,
        diameter=network.diameter,
        max_degree=network.max_degree,
        rounds=outcome.rounds,
        moves=outcome.moves,
        steps=outcome.steps,
        metrics=RunMetrics(
            steps=outcome.steps,
            moves=outcome.moves,
            rounds=outcome.rounds,
            moves_per_process=outcome.moves_per_process,
            moves_per_rule=outcome.moves_per_rule,
        ),
        extra=extra if extra is not None else {},
    )


def sweep(
    trial_fn: Callable[..., Trial],
    networks: list[Network],
    seeds: range | list[int],
    **kwargs,
) -> list[Trial]:
    """Run ``trial_fn`` over the (network × seed) grid."""
    trials = []
    for network in networks:
        for seed in seeds:
            trials.append(trial_fn(network, seed=seed, **kwargs))
    return trials
