"""Command-line entry point: run experiments by id and print their reports.

Usage::

    python -m repro.harness            # list experiments
    python -m repro.harness T5 F3      # run selected experiments
    python -m repro.harness all        # run everything (slow)
"""

from __future__ import annotations

import sys

from .experiments import REGISTRY


def main(argv: list[str]) -> int:
    if not argv:
        print("Available experiments (pass ids, or 'all'):")
        for key in REGISTRY:
            print(f"  {key}")
        return 0
    wanted = list(REGISTRY) if argv == ["all"] else argv
    failed = []
    for key in wanted:
        if key not in REGISTRY:
            print(f"unknown experiment {key!r}; available: {', '.join(REGISTRY)}")
            return 2
        result = REGISTRY[key]()
        print(result.render())
        print()
        if not result.ok:
            failed.append(key)
    if failed:
        print(f"FAILED experiments: {', '.join(failed)}")
        return 1
    print("All selected experiments PASSED.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
