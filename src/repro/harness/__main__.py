"""Command-line entry point: run experiments by id, or sweep a campaign grid.

Usage::

    python -m repro.harness            # list experiments
    python -m repro.harness T5 F3      # run selected experiments
    python -m repro.harness all        # run everything (slow)

    # campaign sweeps through the engine (parallel, persistent, resumable):
    python -m repro.harness sweep \
        --grid algorithm=unison,boulinier --grid topology=ring,random \
        --grid n=8,16,32 --grid scenario=gradient \
        --trials 5 --seed 7 --workers 4 --out results.jsonl --resume

    # inspect a running or crashed sweep from its sidecars:
    python -m repro.harness status results.jsonl

Sweep results are JSONL records keyed by trial descriptor; the same grid
and seed produce byte-identical stores for any ``--workers`` value, and
``--resume`` re-runs only trials missing from ``--out``.  A sweep with
``--out`` also maintains two telemetry sidecars next to the store: a
JSONL event log (``<store>.events.jsonl`` — campaign lifecycle,
per-trial completions, heartbeats) and a provenance manifest
(``<store>.manifest.json`` — git identity, package versions, host, grid
hash).  Wall-clock data lives only in the sidecars; store records stay
byte-identical with telemetry on or off.

``--backend {auto,dict,kernel}`` selects the simulator execution engine
for every trial (array kernel vs dict reference); ``--probe`` selects
the measurement tier (``auto`` rides the fused loop, ``decode`` forces
the per-step decoded observer path) or attaches a named auxiliary probe
(``accounting:100``, ``trace:50``, ``sdr-moves``).  Measured
moves/rounds/steps are independent of all of these; only wall time
differs.

``--faults SPEC`` attaches a deterministic fault schedule (see
:mod:`repro.faults.schedule`) to every trial — unlike backend/probe it
*changes* what is measured, so it is part of each trial's key.
``--churn SPEC`` does the same for topology churn (see
:mod:`repro.faults.churn`): links drop/appear and processes crash/rejoin
mid-run; churn cells always execute serially (never batched).
``--adversary STRATEGY`` replaces every trial's daemon with an
adversarial schedule search (:mod:`repro.adversary`) — also part of the
trial key; adversary cells run serially on the kernel backend and every
found schedule is replay-verified on the dict backend.
``--trial-timeout`` / ``--max-retries`` enable the supervised
crash-tolerant executor (:class:`repro.engine.pool.FailurePolicy`):
failing trials are retried, degraded batch → serial → dict, and finally
quarantined — the sweep completes the rest of the grid and exits
nonzero, printing the quarantine report.
"""

from __future__ import annotations

import argparse
import sys

from .experiments import REGISTRY

#: --grid axis spellings → Campaign field (singular and plural accepted).
_GRID_AXES = {
    "algorithm": "algorithms",
    "algorithms": "algorithms",
    "topology": "topologies",
    "topologies": "topologies",
    "n": "sizes",
    "size": "sizes",
    "sizes": "sizes",
    "scenario": "scenarios",
    "scenarios": "scenarios",
    "daemon": "daemons",
    "daemons": "daemons",
}


def _parse_scalar(text: str):
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def _build_campaign(args):
    from ..core.daemon import DAEMON_KINDS, daemon_kind_known
    from ..engine import Campaign
    from ..topology import TOPOLOGIES

    axes: dict[str, tuple] = {}
    for entry in args.grid:
        name, _, values = entry.partition("=")
        if not values:
            raise ValueError(f"--grid expects AXIS=V1[,V2...], got {entry!r}")
        try:
            field = _GRID_AXES[name.strip()]
        except KeyError:
            raise ValueError(
                f"unknown grid axis {name!r}; choose from {sorted(set(_GRID_AXES))}"
            ) from None
        # Repeated flags for one axis merge (deduplicated, order kept).
        merged = list(axes.get(field, ()))
        merged += [v for v in (v.strip() for v in values.split(","))
                   if v and v not in merged]
        axes[field] = tuple(merged)
    if "sizes" in axes:
        axes["sizes"] = tuple(int(v) for v in axes["sizes"])
    # Fail on bad axis values before any trial runs, not from a worker.
    unknown = [t for t in axes.get("topologies", ()) if t not in TOPOLOGIES]
    if unknown:
        raise ValueError(
            f"unknown topology(ies) {unknown}; choose from {sorted(TOPOLOGIES)}"
        )
    unknown = [d for d in axes.get("daemons", ()) if not daemon_kind_known(d)]
    if unknown:
        raise ValueError(
            f"unknown daemon(s) {unknown}; choose from {list(DAEMON_KINDS)} "
            "(adversarial takes an optional ':<strategy>' suffix)"
        )
    params: dict[str, object] = {}
    for entry in args.param:
        key, sep, value = entry.partition("=")
        if not sep or not key.strip():
            raise ValueError(f"--param expects KEY=VALUE, got {entry!r}")
        params[key.strip()] = _parse_scalar(value)  # last --param wins
    if getattr(args, "backend", None):
        params["backend"] = args.backend
    if getattr(args, "probe", None):
        params["probe"] = args.probe
    if getattr(args, "faults", None):
        # Validate the schedule grammar before any trial runs.  The spec
        # is stored verbatim (not canonicalized): it changes measured
        # results, so it is part of every trial key, and the key must
        # match what the user typed / what a resume re-types.
        from ..faults.schedule import parse_schedule

        parse_schedule(args.faults)
        params["faults"] = args.faults
    if getattr(args, "churn", None):
        # Same contract as --faults: validate up front, store verbatim —
        # churn changes measured results, so the spec is a measured
        # param in every trial key (and forces serial execution; see
        # repro.harness.runner.can_batch).
        from ..faults.churn import parse_churn

        parse_churn(args.churn)
        params["churn"] = args.churn
    if getattr(args, "adversary", None):
        # Same contract again: validate the strategy spec up front,
        # store it verbatim.  The search replaces the scheduler, so the
        # spec changes measured results and keys every trial; it also
        # forces serial kernel-backend execution (see
        # repro.harness.runner.can_batch / _adversary_daemon).
        from ..adversary.search import known_strategy

        if not known_strategy(args.adversary):
            from ..adversary.search import STRATEGY_KINDS

            raise ValueError(
                f"unknown adversary strategy {args.adversary!r}; choose "
                f"from {list(STRATEGY_KINDS)} (beam takes optional "
                "-W, -WxH, -WxHxB suffixes, e.g. beam-3x3)"
            )
        if params.get("backend") == "dict":
            raise ValueError(
                "--adversary requires the kernel backend; replay the "
                "emitted certificate to cross-check the dict backend"
            )
        params["adversary"] = args.adversary
    return Campaign(
        name=args.name,
        seed=args.seed,
        trials=args.trials,
        topology_seed=args.topology_seed,
        params=tuple(params.items()),
        **axes,
    )


def _check_probe_selection(probe: str) -> None:
    """Reject a bad ``--probe`` before any trial runs, not from a worker.

    Mode names are checked directly; a named selection is instantiated
    once (throwaway size) so malformed arguments like ``accounting:xx``
    fail here too.
    """
    from .runner import PROBE_MODES, _check_probe_mode

    _check_probe_mode(probe)
    if probe not in PROBE_MODES:
        from ..probes.registry import make_probe

        make_probe(probe, 2)


def _safe_to_compact(store) -> bool:
    """Only rewrite a store whose every line parses.

    Non-strict reads stop at the first bad line (crash-truncation
    tolerance), so rewriting after a *mid-file* corrupt line would silently
    drop every valid record behind it — possibly other campaigns' data.
    This run's records were already appended, so skipping the cosmetic
    reordering loses nothing.
    """
    from ..engine import StoreError

    try:
        store.load(strict=True)
        return True
    except StoreError:
        pass
    try:
        parsed = len(store.load())
    except StoreError:
        parsed = -1
    with store.path.open("r", encoding="utf-8") as fh:
        lines = sum(1 for line in fh if line.strip())
    if parsed == lines - 1:
        return True  # a lone crash-truncated tail line; rewriting drops it
    # Corruption is not just a trailing partial line: keep the append-only
    # file untouched rather than guess.
    print(f"warning: {store.path} has unreadable records; "
          "skipping grid-order compaction")
    return False


def run_sweep(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness sweep",
        description="Run a campaign grid through the repro.engine subsystem.",
    )
    parser.add_argument(
        "--grid", action="append", default=[], metavar="AXIS=V1[,V2...]",
        help="grid axis (repeatable): algorithm, topology, n, scenario, daemon",
    )
    parser.add_argument("--trials", type=int, default=1,
                        help="replicates per grid cell (default 1)")
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign master seed (default 0)")
    parser.add_argument("--topology-seed", type=int, default=0,
                        help="seed for the topology generators (default 0)")
    parser.add_argument("--name", default="sweep", help="campaign name")
    parser.add_argument("--param", action="append", default=[], metavar="KEY=VALUE",
                        help="extra trial kwarg, e.g. period=12 or instance=dominating-set")
    parser.add_argument("--backend", default=None, choices=("auto", "dict", "kernel"),
                        help="simulator execution backend for every trial "
                             "(default: auto — array kernel when available)")
    parser.add_argument("--probe", default=None, metavar="SEL",
                        help="measurement tier (auto: fused vectorized "
                             "legitimacy mask; decode: per-step decoded "
                             "observer path) or a named auxiliary probe, "
                             "e.g. accounting:100, trace:50, sdr-moves "
                             "(stored results are identical for all of them)")
    parser.add_argument("--faults", default=None, metavar="SPEC",
                        help="fault schedule injected mid-run into every "
                             "trial, e.g. 'burst=50,count=3,gap=100,k=2,"
                             "scope=input'; part of the trial key (it "
                             "changes measured results)")
    parser.add_argument("--churn", default=None, metavar="SPEC",
                        help="topology churn schedule applied mid-run to "
                             "every trial, e.g. 'every=100,crash=1;"
                             "every=150,join=1'; part of the trial key "
                             "(it changes measured results) and forces "
                             "serial execution")
    parser.add_argument("--adversary", default=None, metavar="STRATEGY",
                        help="replace every trial's daemon with an "
                             "adversarial schedule search (greedy, beam, "
                             "beam-WxH, delay); part of the trial key, "
                             "forces serial kernel-backend execution, and "
                             "each found schedule is replay-verified on "
                             "the dict backend")
    parser.add_argument("--trial-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-trial wall-clock deadline; enables the "
                             "supervised crash-tolerant executor")
    parser.add_argument("--max-retries", type=int, default=None, metavar="N",
                        help="retries per failing unit before degrading "
                             "batch -> serial -> dict and quarantining "
                             "(default 2); enables the supervised executor")
    parser.add_argument("--workers", type=int, default=0,
                        help="worker processes; 0 or 1 runs serially in-process")
    parser.add_argument("--no-batch", action="store_true",
                        help="run every trial separately instead of batching "
                             "a cell's replicates into one vectorized run "
                             "(results are identical either way)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="JSONL result store to append to")
    parser.add_argument("--resume", action="store_true",
                        help="skip trials already present in --out")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-trial progress lines")
    args = parser.parse_args(argv)

    from ..engine import FailurePolicy, ResultStore, run_campaign, summary_table

    try:
        if args.probe is not None:
            _check_probe_selection(args.probe)
        campaign = _build_campaign(args)
        policy = None
        if args.trial_timeout is not None or args.max_retries is not None:
            policy = FailurePolicy(
                trial_timeout=args.trial_timeout,
                max_retries=args.max_retries if args.max_retries is not None
                else FailurePolicy.max_retries,
            )
    except (ValueError, TypeError) as exc:
        print(f"error: {exc}")
        return 2
    if args.resume and args.out is None:
        print("error: --resume needs --out")
        return 2

    store = ResultStore(args.out) if args.out else None

    from ..core.exceptions import ReproError
    from ..telemetry import TtyProgress
    from ..telemetry.events import JsonlEventSink, events_path_for
    from ..telemetry.provenance import build_manifest, write_manifest

    # Telemetry sidecars ride the store: an append-only event log for
    # the campaign lifecycle, and a provenance manifest written before
    # the first trial (so even a crashed sweep records what ran) and
    # refreshed afterwards with the phase breakdown.
    events = None
    if store is not None:
        events = JsonlEventSink(events_path_for(store.path))
        write_manifest(store.path, build_manifest(campaign=campaign))

    renderer = None
    if not args.quiet and sys.stderr.isatty():
        renderer = TtyProgress(label=campaign.name)

    def progress(done: int, total: int, record: dict) -> None:
        if renderer is not None:
            renderer(done, total, record)
        elif not args.quiet:
            print(f"[{done}/{total}] {record['key']}")

    try:
        outcome = run_campaign(
            campaign, store=store, workers=args.workers,
            resume=args.resume, progress=progress,
            batch=not args.no_batch, events=events, policy=policy,
        )
    except (ReproError, ValueError) as exc:
        # Completed trials are already in --out; rerun with --resume to
        # finish after fixing the grid.
        print(f"error: {exc}")
        return 1
    finally:
        if renderer is not None:
            renderer.close()
        if events is not None:
            events.close()

    if store is not None:
        from ..telemetry import phases

        write_manifest(
            store.path,
            build_manifest(campaign=campaign, phase_stats=phases.snapshot()),
        )

    if store is not None and _safe_to_compact(store):
        # Compact to deterministic grid order (atomic rewrite): equal grids
        # yield byte-identical stores for any worker count or resume split.
        ours = {record["key"] for record in outcome.records}
        foreign = [
            record for record in store.iter_records()
            if not (record.get("key") in ours
                    and record.get("campaign_seed") == campaign.seed)
        ]
        store.rewrite(foreign + outcome.records)

    print()
    print(summary_table(
        outcome.records,
        group_by=("algorithm", "topology", "n", "scenario", "daemon"),
        title=f"campaign {campaign.name!r} (seed {campaign.seed}, mean per cell)",
    ).render())
    ran, skipped = outcome.ran, outcome.skipped
    where = f" -> {args.out}" if args.out else ""
    print(f"\n{ran} trial(s) run, {skipped} already stored{where}")
    if outcome.failures:
        # The rest of the grid completed; report the quarantine and exit
        # nonzero so CI notices without losing the landed records.
        print(f"\n{len(outcome.failures)} trial(s) quarantined:")
        for failure in outcome.failures:
            print(f"  {failure['key']} [{failure['reason']}, "
                  f"{failure['retries']} retries]: {failure['error']}")
        return 1
    return 0


def run_status(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness status",
        description="Summarize a sweep from its store and telemetry "
                    "sidecars (works mid-run and after a crash).",
    )
    parser.add_argument("store", metavar="STORE",
                        help="the sweep's --out JSONL result store")
    parser.add_argument("--json", action="store_true",
                        help="print the raw JSON summary instead of text")
    args = parser.parse_args(argv)

    import os

    from ..telemetry.events import events_path_for
    from ..telemetry.provenance import manifest_path_for
    from ..telemetry.status import render_status, summarize_status

    # A sweep that failed before its first landed trial leaves only the
    # sidecars (the store file is created lazily) — that is exactly when
    # a status check matters most, so any of the three files will do.
    known = (args.store, events_path_for(args.store), manifest_path_for(args.store))
    if not any(os.path.exists(p) for p in known):
        print(f"error: no result store (or telemetry sidecars) at {args.store}")
        return 2
    summary = summarize_status(args.store)
    if args.json:
        import json

        print(json.dumps(summary, indent=2))
    else:
        print(render_status(summary))
    return 1 if summary["failures"] else 0


def main(argv: list[str]) -> int:
    if argv and argv[0] == "sweep":
        return run_sweep(argv[1:])
    if argv and argv[0] == "status":
        return run_status(argv[1:])
    if not argv:
        print("Available experiments (pass ids, or 'all'; or use 'sweep'):")
        for key in REGISTRY:
            print(f"  {key}")
        return 0
    wanted = list(REGISTRY) if argv == ["all"] else argv
    failed = []
    for key in wanted:
        if key not in REGISTRY:
            print(f"unknown experiment {key!r}; available: {', '.join(REGISTRY)}")
            return 2
        result = REGISTRY[key]()
        print(result.render())
        print()
        if not result.ok:
            failed.append(key)
    if failed:
        print(f"FAILED experiments: {', '.join(failed)}")
        return 1
    print("All selected experiments PASSED.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
