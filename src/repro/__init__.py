"""repro — reproduction of *Self-Stabilizing Distributed Cooperative Reset*.

Devismes & Johnen, ICDCS 2019 (HAL hal-01976276v3).

The package implements, from scratch:

* the locally shared memory model with composite atomicity
  (:mod:`repro.core`): networks, guarded-rule algorithms, daemons
  (including the distributed unfair daemon family), atomic steps, and
  exact move/round accounting;
* **SDR**, the paper's multi-initiator cooperative self-stabilizing reset
  (:mod:`repro.reset`), plus its proof artifacts as executable analyses;
* **U ∘ SDR**, self-stabilizing asynchronous unison (:mod:`repro.unison`),
  with the Boulinier-style reset-tail baseline;
* **FGA ∘ SDR**, silent self-stabilizing 1-minimal (f,g)-alliance
  (:mod:`repro.alliance`), with the six classical instances and a
  Turau-style MIS baseline;
* substrates: topology generators (:mod:`repro.topology`), fault injection
  (:mod:`repro.faults`), adversarial schedule search
  (:mod:`repro.adversary`), bound formulas and statistics
  (:mod:`repro.analysis`), capability-tiered measurement probes
  (:mod:`repro.probes`), and the experiment harness
  (:mod:`repro.harness`).
"""

from . import adversary, alliance, analysis, faults, probes, topology, unison
from .adversary import (
    BeamAdversary,
    GreedyAdversary,
    ScheduleCertificate,
    SearchDaemon,
)
from .alliance import FGA, TurauMIS
from .core import (
    Algorithm,
    CentralDaemon,
    Composition,
    Configuration,
    Daemon,
    DistributedRandomDaemon,
    LocallyCentralDaemon,
    Network,
    NotStabilized,
    ReproError,
    RunResult,
    ScriptedDaemon,
    Simulator,
    StabilizationDetector,
    SynchronousDaemon,
    Trace,
    WeaklyFairDaemon,
    make_daemon,
    measure_stabilization,
)
from .probes import (
    AccountingProbe,
    Probe,
    StabilizationProbe,
    StopProbe,
    TraceProbe,
)
from .reset import SDR, InputAlgorithm, RequirementObserver, check_requirements
from .unison import BoulinierUnison, Unison

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "Network",
    "Configuration",
    "Algorithm",
    "Composition",
    "Simulator",
    "RunResult",
    "Trace",
    "Daemon",
    "SynchronousDaemon",
    "CentralDaemon",
    "LocallyCentralDaemon",
    "DistributedRandomDaemon",
    "WeaklyFairDaemon",
    "AdversarialDaemon",
    "ScriptedDaemon",
    "SearchDaemon",
    "GreedyAdversary",
    "BeamAdversary",
    "ScheduleCertificate",
    "make_daemon",
    "StabilizationDetector",
    "measure_stabilization",
    "Probe",
    "StabilizationProbe",
    "StopProbe",
    "AccountingProbe",
    "TraceProbe",
    "ReproError",
    "NotStabilized",
    # the paper's algorithms
    "SDR",
    "InputAlgorithm",
    "RequirementObserver",
    "check_requirements",
    "Unison",
    "BoulinierUnison",
    "FGA",
    "TurauMIS",
    # subpackages
    "topology",
    "unison",
    "alliance",
    "adversary",
    "faults",
    "analysis",
    "probes",
]


def __getattr__(name: str):
    # Forward the AdversarialDaemon deprecation shim (moved to
    # repro.adversary.search) without importing it eagerly.
    if name == "AdversarialDaemon":
        from .core import daemon

        return daemon.AdversarialDaemon
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
