"""Round accounting via the neutralization definition (paper, Section 2.4).

A process ``v`` is *neutralized* during a step ``γi ↦ γi+1`` if ``v`` is
enabled in ``γi``, not enabled in ``γi+1``, and not activated in that step.
The first round of an execution is the minimal prefix in which every process
enabled in the first configuration either executes a rule or is neutralized;
subsequent rounds are defined inductively on the remaining suffix.

:class:`RoundCounter` implements this definition *exactly*: it tracks the
set of processes that still owe a move-or-neutralization for the current
round and closes the round the moment that set empties.
:class:`ArrayRoundCounter` is its vectorized twin for the fused kernel
loop: the owing set becomes a per-process boolean column updated with a
handful of numpy operations per step, and the two interconvert losslessly
so an execution can move between the step-by-step and fused drivers
mid-flight without disturbing the count.
"""

from __future__ import annotations

from typing import Iterable

try:  # ArrayRoundCounter only; the set-based counter stays numpy-free.
    import numpy as np
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    np = None  # type: ignore[assignment]

__all__ = ["RoundCounter", "ArrayRoundCounter"]


class RoundCounter:
    """Incremental, definition-faithful round counter.

    Usage: call :meth:`start` with the processes enabled in ``γ0``; after
    every step, call :meth:`observe_step` with the activated set and the
    enabled sets before/after the step.  :attr:`completed` is the number of
    full rounds elapsed so far.
    """

    def __init__(self):
        self.completed = 0
        self._pending: set[int] = set()
        self._started = False

    def start(self, enabled_now: Iterable[int]) -> None:
        """Begin counting with the first configuration's enabled set."""
        self._pending = set(enabled_now)
        self._started = True
        self.completed = 0

    @property
    def pending(self) -> frozenset[int]:
        """Processes still owing a move/neutralization in the current round."""
        return frozenset(self._pending)

    def observe_step(
        self,
        activated: Iterable[int],
        enabled_before: Iterable[int],
        enabled_after: Iterable[int],
    ) -> int:
        """Account one step; returns the number of rounds completed by it.

        A pending process is resolved when it is activated, or when it flips
        from enabled to disabled without being activated (neutralization).
        When the pending set empties, the round ends *at this step's
        post-configuration* and the next round's pending set is exactly the
        processes enabled there.
        """
        if not self._started:
            raise RuntimeError("RoundCounter.start() was not called")
        if not self._pending:
            # γ0 was terminal, or counting resumed at a terminal suffix.
            return 0

        # Reuse caller-provided snapshots: the simulator already holds the
        # activated selection (a dict) and frozen enabled sets, so only wrap
        # plain iterables — no throwaway copies on the hot path.
        if not isinstance(activated, (set, frozenset, dict)):
            activated = frozenset(activated)
        if not isinstance(enabled_before, (set, frozenset)):
            enabled_before = frozenset(enabled_before)
        if not isinstance(enabled_after, (set, frozenset)):
            enabled_after = frozenset(enabled_after)

        resolved = {
            v
            for v in self._pending
            if v in activated or (v in enabled_before and v not in enabled_after)
        }
        self._pending -= resolved

        if self._pending:
            return 0
        # Round boundary: the suffix starts at the post-step configuration.
        self.completed += 1
        self._pending = set(enabled_after)
        return 1

    def resume(self, completed: int, pending: Iterable[int]) -> None:
        """Restore counter state (used when leaving the fused kernel loop)."""
        self.completed = completed
        self._pending = set(pending)
        self._started = True

    def rebase(self, enabled_now: Iterable[int]) -> int:
        """Re-anchor the pending set after an in-place configuration change.

        Fault injection rewrites the configuration *between* steps: no
        process moves, but guards flip arbitrarily.  Pending processes the
        fault disabled are neutralized (resolved); faults add no new
        debt to the current round.  If that resolves the whole pending
        set, the round closes at the injected configuration and the next
        round starts from its enabled set — mirroring
        :meth:`observe_step`'s boundary rule.  Returns rounds completed.
        """
        if not self._started:
            raise RuntimeError("RoundCounter.start() was not called")
        enabled_now = set(enabled_now)
        if not self._pending:
            # Terminal suffix (or fresh boundary) woken by the fault: a new
            # round starts at the injected configuration, nothing completes.
            self._pending = enabled_now
            return 0
        self._pending &= enabled_now
        if self._pending:
            return 0
        self.completed += 1
        self._pending = enabled_now
        return 1


class ArrayRoundCounter:
    """:class:`RoundCounter` over per-process boolean columns.

    Semantics are identical — the pending *set* becomes a pending *mask*
    (the enabled-since-round-start bitmap) and one step's resolution is
    four boolean array operations instead of a set comprehension.  The
    fused kernel loop drives this class; conversions to and from
    :class:`RoundCounter` bridge executions that mix the two drivers.
    """

    __slots__ = ("completed", "_pending", "_scratch", "_started", "_has_pending")

    def __init__(self, n: int):
        self.completed = 0
        self._pending = np.zeros(n, dtype=np.bool_)
        self._scratch = np.empty(n, dtype=np.bool_)
        self._started = False
        self._has_pending = False

    # ------------------------------------------------------------------
    @classmethod
    def from_counter(cls, counter: RoundCounter, n: int) -> "ArrayRoundCounter":
        """Seed from a set-based counter (mid-execution states included)."""
        arc = cls(n)
        arc.completed = counter.completed
        pending = list(counter.pending)
        arc._pending[pending] = True
        arc._started = counter._started
        arc._has_pending = bool(pending)
        return arc

    def into_counter(self, counter: RoundCounter) -> None:
        """Write this counter's state back into a set-based counter."""
        counter.resume(self.completed, np.flatnonzero(self._pending).tolist())

    # ------------------------------------------------------------------
    def start(self, enabled_mask) -> None:
        self._pending[:] = enabled_mask
        self._started = True
        self._has_pending = bool(enabled_mask.any())
        self.completed = 0

    def observe_step(self, activated_idx, enabled_before, enabled_after) -> int:
        """Account one step; masks are per-process booleans.

        ``activated_idx`` is the index vector of activated processes;
        ``enabled_before``/``enabled_after`` the enabled masks around the
        step.  Mirrors :meth:`RoundCounter.observe_step` exactly.
        """
        if not self._started:
            raise RuntimeError("ArrayRoundCounter.start() was not called")
        if not self._has_pending:
            return 0
        pending, scratch = self._pending, self._scratch
        # pending &= ~(activated ∪ (enabled_before ∖ enabled_after))
        pending[activated_idx] = False
        np.logical_not(enabled_after, out=scratch)
        scratch &= enabled_before
        np.logical_not(scratch, out=scratch)
        pending &= scratch
        if pending.any():
            return 0
        self.completed += 1
        pending[:] = enabled_after
        self._has_pending = bool(enabled_after.any())
        return 1

    def rebase(self, enabled_now) -> int:
        """Vectorized twin of :meth:`RoundCounter.rebase` (fault injection)."""
        if not self._started:
            raise RuntimeError("ArrayRoundCounter.start() was not called")
        pending = self._pending
        if not self._has_pending:
            pending[:] = enabled_now
            self._has_pending = bool(enabled_now.any())
            return 0
        pending &= enabled_now
        if pending.any():
            return 0
        self.completed += 1
        pending[:] = enabled_now
        self._has_pending = bool(enabled_now.any())
        return 1
