"""Round accounting via the neutralization definition (paper, Section 2.4).

A process ``v`` is *neutralized* during a step ``γi ↦ γi+1`` if ``v`` is
enabled in ``γi``, not enabled in ``γi+1``, and not activated in that step.
The first round of an execution is the minimal prefix in which every process
enabled in the first configuration either executes a rule or is neutralized;
subsequent rounds are defined inductively on the remaining suffix.

:class:`RoundCounter` implements this definition *exactly*: it tracks the
set of processes that still owe a move-or-neutralization for the current
round and closes the round the moment that set empties.
"""

from __future__ import annotations

from typing import Iterable

__all__ = ["RoundCounter"]


class RoundCounter:
    """Incremental, definition-faithful round counter.

    Usage: call :meth:`start` with the processes enabled in ``γ0``; after
    every step, call :meth:`observe_step` with the activated set and the
    enabled sets before/after the step.  :attr:`completed` is the number of
    full rounds elapsed so far.
    """

    def __init__(self):
        self.completed = 0
        self._pending: set[int] = set()
        self._started = False

    def start(self, enabled_now: Iterable[int]) -> None:
        """Begin counting with the first configuration's enabled set."""
        self._pending = set(enabled_now)
        self._started = True
        self.completed = 0

    @property
    def pending(self) -> frozenset[int]:
        """Processes still owing a move/neutralization in the current round."""
        return frozenset(self._pending)

    def observe_step(
        self,
        activated: Iterable[int],
        enabled_before: Iterable[int],
        enabled_after: Iterable[int],
    ) -> int:
        """Account one step; returns the number of rounds completed by it.

        A pending process is resolved when it is activated, or when it flips
        from enabled to disabled without being activated (neutralization).
        When the pending set empties, the round ends *at this step's
        post-configuration* and the next round's pending set is exactly the
        processes enabled there.
        """
        if not self._started:
            raise RuntimeError("RoundCounter.start() was not called")
        if not self._pending:
            # γ0 was terminal, or counting resumed at a terminal suffix.
            return 0

        # Reuse caller-provided snapshots: the simulator already holds the
        # activated selection (a dict) and frozen enabled sets, so only wrap
        # plain iterables — no throwaway copies on the hot path.
        if not isinstance(activated, (set, frozenset, dict)):
            activated = frozenset(activated)
        if not isinstance(enabled_before, (set, frozenset)):
            enabled_before = frozenset(enabled_before)
        if not isinstance(enabled_after, (set, frozenset)):
            enabled_after = frozenset(enabled_after)

        resolved = {
            v
            for v in self._pending
            if v in activated or (v in enabled_before and v not in enabled_after)
        }
        self._pending -= resolved

        if self._pending:
            return 0
        # Round boundary: the suffix starts at the post-step configuration.
        self.completed += 1
        self._pending = set(enabled_after)
        return 1
