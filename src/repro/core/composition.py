"""Generic algorithm composition ``A ∘ B`` (paper, Section 2.5).

The composition of two algorithms is the algorithm whose local program
consists of all variables and rules of both.  :class:`Composition` realizes
this for any number of components whose variable names are disjoint; each
component's guards see the merged per-process state, so components may read
(but, by the model, never write) each other's variables.

The paper's central composition ``I ∘ SDR`` is *not* built with this class
— SDR's guards are parameterized by the input algorithm's predicates, so
:class:`repro.reset.sdr.SDR` owns its input component directly.  This
generic class serves the baselines (e.g. the BFS-tree + reset-wave stack of
the mono-initiator baseline) and user experiments.
"""

from __future__ import annotations

from random import Random
from typing import Any, Sequence

from .algorithm import Algorithm
from .configuration import Configuration
from .exceptions import AlgorithmError

__all__ = ["Composition"]


class Composition(Algorithm):
    """Union of several component algorithms on the same network.

    Rule labels are namespaced ``"<component-name>:<rule>"`` to keep them
    unambiguous in traces and move accounting.
    """

    def __init__(self, components: Sequence[Algorithm], name: str | None = None):
        if not components:
            raise AlgorithmError("a composition needs at least one component")
        networks = {id(c.network) for c in components}
        if len(networks) != 1:
            raise AlgorithmError("all composed algorithms must share one network")
        super().__init__(components[0].network)

        self.components = tuple(components)
        names = [c.name for c in self.components]
        if len(set(names)) != len(names):
            raise AlgorithmError(f"component names must be unique, got {names}")
        self.name = name if name is not None else " o ".join(reversed(names))

        seen: dict[str, str] = {}
        for comp in self.components:
            for var in comp.variables():
                if var in seen:
                    raise AlgorithmError(
                        f"variable {var!r} declared by both {seen[var]!r} and {comp.name!r}"
                    )
                seen[var] = comp.name
        self._variables = tuple(seen)

        self._rules: tuple[str, ...] = tuple(
            f"{comp.name}:{rule}" for comp in self.components for rule in comp.rule_names()
        )
        self._rule_owner: dict[str, tuple[Algorithm, str]] = {
            f"{comp.name}:{rule}": (comp, rule)
            for comp in self.components
            for rule in comp.rule_names()
        }
        self.guard_locality = max(c.guard_locality for c in self.components)

    # ------------------------------------------------------------------
    def variables(self) -> tuple[str, ...]:
        return self._variables

    def rule_names(self) -> tuple[str, ...]:
        return self._rules

    def guard(self, rule: str, cfg: Configuration, u: int) -> bool:
        comp, local_rule = self._rule_owner[rule]
        return comp.guard(local_rule, cfg, u)

    def execute(self, rule: str, cfg: Configuration, u: int) -> dict[str, Any]:
        comp, local_rule = self._rule_owner[rule]
        return comp.execute(local_rule, cfg, u)

    def initial_state(self, u: int) -> dict[str, Any]:
        state: dict[str, Any] = {}
        for comp in self.components:
            state.update(comp.initial_state(u))
        return state

    def random_state(self, u: int, rng: Random) -> dict[str, Any]:
        state: dict[str, Any] = {}
        for comp in self.components:
            state.update(comp.random_state(u, rng))
        return state

    def rule_set(self):
        """Merged IR definition, when *every* component declares one.

        Component rule sets concatenate with labels namespaced
        ``"<component-name>:<rule>"`` — the same labels the dict methods
        use — so the generated kernel program is trace-compatible with
        the dict backend.  Any unported component keeps the whole
        composition on the dict backend.
        """
        from ..ir import merge_rule_sets

        parts = []
        for comp in self.components:
            rs = comp.rule_set()
            if rs is None:
                return None
            parts.append((comp.name, rs))
        return merge_rule_sets(self.name, self.network, parts)

    def component(self, name: str) -> Algorithm:
        """Look up a component by its algorithm name."""
        for comp in self.components:
            if comp.name == name:
                return comp
        raise AlgorithmError(f"no component named {name!r} in {self.name!r}")
