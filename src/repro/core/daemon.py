"""Daemons (schedulers) of the locally shared memory model.

A daemon decides, in every step, which non-empty subset of the enabled
processes is activated (paper, Section 2.2).  The *distributed unfair*
daemon is the weakest assumption: any non-empty subset may be activated and
no fairness is guaranteed.  Consequently every daemon below produces
executions that are legal under the distributed unfair daemon; the zoo
exists to drive benchmarks toward interesting corners of that ∀-quantifier:

* :class:`SynchronousDaemon` — everybody moves (classic lower-bound driver);
* :class:`CentralDaemon` — exactly one process moves per step (sequential);
* :class:`LocallyCentralDaemon` — no two neighbors move in the same step;
* :class:`DistributedRandomDaemon` — independent coin per enabled process;
* :class:`WeaklyFairDaemon` — bounded waiting for continuously enabled
  processes (models the weakly fair daemon assumption of related work);
* :class:`ScriptedDaemon` — exact replay for unit tests (and the replay
  vehicle of adversarial schedule certificates).

The greedy scored ``AdversarialDaemon`` moved to
:mod:`repro.adversary.search`, where it is the decode-tier fallback of
the schedule-search daemons; importing it from here still works through
a deprecation shim.  :func:`make_daemon` accepts ``adversarial`` and
``adversarial:<strategy>`` (e.g. ``adversarial:greedy``,
``adversarial:beam-2x2``, ``adversarial:delay``) and builds the search
daemon lazily.

All daemons honor the contract checked by the simulator: return a non-empty
subset of the enabled processes, each mapped to one of its enabled rules.
"""

from __future__ import annotations

import abc
from random import Random
from typing import Callable, Mapping, Sequence

from .configuration import Configuration
from .exceptions import DaemonError

__all__ = [
    "Daemon",
    "SynchronousDaemon",
    "CentralDaemon",
    "LocallyCentralDaemon",
    "DistributedRandomDaemon",
    "WeaklyFairDaemon",
    "AdversarialDaemon",
    "ScriptedDaemon",
    "DAEMON_KINDS",
    "make_daemon",
    "daemon_kind_known",
]

EnabledMap = Mapping[int, tuple[str, ...]]
Selection = dict[int, str]


class Daemon(abc.ABC):
    """Scheduling strategy: picks activated processes and their rules."""

    name: str = "daemon"

    #: How to pick among several enabled rules of one activated process.
    #: ``"first"`` is deterministic (rule declaration order); ``"random"``
    #: models the nondeterministic choice allowed by the model.
    rule_choice: str = "first"

    @abc.abstractmethod
    def select(
        self,
        cfg: Configuration,
        enabled: EnabledMap,
        rng: Random,
        step: int,
    ) -> Selection:
        """Choose the activated processes (non-empty) and one rule each."""

    # ------------------------------------------------------------------
    def _pick_rule(self, rules: tuple[str, ...], rng: Random) -> str:
        if self.rule_choice == "random" and len(rules) > 1:
            return rules[rng.randrange(len(rules))]
        return rules[0]

    def reset(self) -> None:
        """Clear internal scheduling state (between executions)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SynchronousDaemon(Daemon):
    """Activates every enabled process in every step."""

    name = "synchronous"

    def select(self, cfg, enabled, rng, step):
        return {u: self._pick_rule(rules, rng) for u, rules in enabled.items()}


class CentralDaemon(Daemon):
    """Activates exactly one enabled process per step.

    Parameters
    ----------
    priority:
        Optional scoring callback ``priority(cfg, u, rules) -> float``; the
        enabled process with the highest score is activated (ties broken by
        index).  Without it the choice is uniformly random.
    """

    name = "central"

    def __init__(self, priority: Callable[[Configuration, int, tuple[str, ...]], float] | None = None):
        self._priority = priority

    def select(self, cfg, enabled, rng, step):
        candidates = sorted(enabled)
        if self._priority is None:
            u = candidates[rng.randrange(len(candidates))]
        else:
            u = max(candidates, key=lambda p: (self._priority(cfg, p, enabled[p]), -p))
        return {u: self._pick_rule(enabled[u], rng)}


class LocallyCentralDaemon(Daemon):
    """Activates a maximal set of enabled processes, no two of them neighbors.

    Requires the network at construction to know adjacency.  A greedy pass
    over a random permutation yields a maximal independent set within the
    enabled processes.
    """

    name = "locally-central"

    def __init__(self, network):
        self._network = network

    def select(self, cfg, enabled, rng, step):
        order = list(enabled)
        rng.shuffle(order)
        chosen: Selection = {}
        blocked: set[int] = set()
        for u in order:
            if u in blocked:
                continue
            chosen[u] = self._pick_rule(enabled[u], rng)
            blocked.add(u)
            blocked.update(self._network.neighbors(u))
        return chosen


class DistributedRandomDaemon(Daemon):
    """Includes each enabled process independently with probability ``p``.

    If the coin flips exclude everyone, one enabled process is activated
    uniformly at random so the step is legal (the daemon must be
    "distributed": at least one process moves).
    """

    name = "distributed-random"

    def __init__(self, p: float = 0.5):
        if not 0.0 < p <= 1.0:
            raise DaemonError(f"activation probability must be in (0, 1], got {p}")
        self.p = p

    def select(self, cfg, enabled, rng, step):
        chosen = {
            u: self._pick_rule(rules, rng)
            for u, rules in enabled.items()
            if rng.random() < self.p
        }
        if not chosen:
            candidates = sorted(enabled)
            u = candidates[rng.randrange(len(candidates))]
            chosen[u] = self._pick_rule(enabled[u], rng)
        return chosen

    def __repr__(self) -> str:
        return f"DistributedRandomDaemon(p={self.p})"


class WeaklyFairDaemon(Daemon):
    """Random daemon with bounded waiting.

    A process continuously enabled for ``patience`` consecutive steps is
    forcibly activated, which realizes weak fairness (every continuously
    enabled process is eventually activated).
    """

    name = "weakly-fair"

    def __init__(self, p: float = 0.5, patience: int = 8):
        if patience < 1:
            raise DaemonError("patience must be >= 1")
        self.p = p
        self.patience = patience
        self._waiting: dict[int, int] = {}

    def reset(self) -> None:
        self._waiting.clear()

    def select(self, cfg, enabled, rng, step):
        # Age the waiting counters: processes no longer enabled start over.
        self._waiting = {u: self._waiting.get(u, 0) + 1 for u in enabled}
        chosen: Selection = {}
        for u, rules in enabled.items():
            overdue = self._waiting[u] >= self.patience
            if overdue or rng.random() < self.p:
                chosen[u] = self._pick_rule(rules, rng)
                self._waiting[u] = 0
        if not chosen:
            candidates = sorted(enabled)
            u = candidates[rng.randrange(len(candidates))]
            chosen[u] = self._pick_rule(enabled[u], rng)
            self._waiting[u] = 0
        return chosen


def __getattr__(name: str):
    # Deprecation shim: AdversarialDaemon moved to repro.adversary.search
    # (its tie-break now uses the canonical ``(score, -u, rule)`` key).
    if name == "AdversarialDaemon":
        import warnings

        from ..adversary.search import AdversarialDaemon

        warnings.warn(
            "repro.core.daemon.AdversarialDaemon moved to "
            "repro.adversary.search; import it from repro.adversary",
            DeprecationWarning,
            stacklevel=2,
        )
        return AdversarialDaemon
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class ScriptedDaemon(Daemon):
    """Replays a fixed list of selections; raises when the script diverges.

    Each script entry is either a mapping ``{u: rule}`` or a collection of
    process indices (their first enabled rule is used).  Intended for unit
    tests that exercise hand-constructed executions.
    """

    name = "scripted"

    def __init__(self, script: Sequence[Mapping[int, str] | Sequence[int]]):
        self._script = list(script)

    def select(self, cfg, enabled, rng, step):
        if step >= len(self._script):
            raise DaemonError(f"scripted daemon exhausted at step {step}")
        entry = self._script[step]
        if isinstance(entry, Mapping):
            chosen = dict(entry)
        else:
            chosen = {}
            for u in entry:
                if u not in enabled:
                    raise DaemonError(f"scripted activation of disabled process {u} at step {step}")
                chosen[u] = enabled[u][0]
        for u, rule in chosen.items():
            if u not in enabled or rule not in enabled[u]:
                raise DaemonError(
                    f"scripted daemon picked disabled move ({u}, {rule}) at step {step}"
                )
        if not chosen:
            raise DaemonError(f"scripted daemon selected nothing at step {step}")
        return chosen


_FACTORIES = {
    "synchronous": lambda network: SynchronousDaemon(),
    "central": lambda network: CentralDaemon(),
    "locally-central": lambda network: LocallyCentralDaemon(network),
    "distributed-random": lambda network: DistributedRandomDaemon(),
    "weakly-fair": lambda network: WeaklyFairDaemon(),
}


#: Daemon names :func:`make_daemon` accepts (for up-front CLI validation).
#: ``adversarial`` additionally takes a ``:<strategy>`` suffix.
DAEMON_KINDS = tuple(sorted((*_FACTORIES, "adversarial")))


def make_daemon(kind: str, network=None) -> Daemon:
    """Instantiate a daemon by name (used by the experiment harness).

    ``kind`` may carry a ``:<argument>`` suffix; only ``adversarial``
    accepts one (the search-strategy spec, default ``greedy``), resolved
    lazily through :func:`repro.adversary.search.make_search_daemon`.
    """
    name, _, arg = kind.partition(":")
    if name == "adversarial":
        from ..adversary.search import make_search_daemon

        return make_search_daemon(arg or None, network)
    if arg:
        raise DaemonError(
            f"daemon {name!r} takes no {arg!r} argument "
            "(only 'adversarial:<strategy>' is parameterized)"
        )
    try:
        factory = _FACTORIES[kind]
    except KeyError:
        raise DaemonError(
            f"unknown daemon {kind!r}; choose from {sorted(DAEMON_KINDS)}"
        ) from None
    return factory(network)


def daemon_kind_known(kind: str) -> bool:
    """Whether :func:`make_daemon` would accept ``kind`` (CLI validation)."""
    name, _, arg = kind.partition(":")
    if name == "adversarial":
        from ..adversary.search import known_strategy

        return known_strategy(arg or None)
    return not arg and name in _FACTORIES
