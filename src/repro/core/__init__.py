"""Simulation kernel for the locally shared memory model with composite atomicity.

This subpackage implements the computational model of the paper (Section 2):
networks, configurations, guarded-rule algorithms, daemons, atomic steps,
and move/round accounting.  Everything else in :mod:`repro` builds on it.
"""

from .algorithm import Algorithm
from .composition import Composition
from .configuration import Configuration
from .daemon import (
    CentralDaemon,
    Daemon,
    DistributedRandomDaemon,
    LocallyCentralDaemon,
    ScriptedDaemon,
    SynchronousDaemon,
    WeaklyFairDaemon,
    daemon_kind_known,
    make_daemon,
)
from .detectors import StabilizationDetector, measure_stabilization
from .exceptions import (
    AlgorithmError,
    DaemonError,
    ModelViolation,
    NotStabilized,
    ReproError,
    RequirementViolation,
    TopologyError,
)
from .graph import Network
from .rounds import RoundCounter
from .simulator import BACKENDS, RunResult, Simulator
from .trace import StepRecord, Trace


def __getattr__(name: str):
    # Forward the AdversarialDaemon deprecation shim (moved to
    # repro.adversary.search) without importing it eagerly.
    if name == "AdversarialDaemon":
        from . import daemon

        return daemon.AdversarialDaemon
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Algorithm",
    "BACKENDS",
    "Composition",
    "Configuration",
    "Daemon",
    "SynchronousDaemon",
    "CentralDaemon",
    "LocallyCentralDaemon",
    "DistributedRandomDaemon",
    "WeaklyFairDaemon",
    "AdversarialDaemon",
    "ScriptedDaemon",
    "make_daemon",
    "daemon_kind_known",
    "StabilizationDetector",
    "measure_stabilization",
    "Network",
    "RoundCounter",
    "RunResult",
    "Simulator",
    "StepRecord",
    "Trace",
    "ReproError",
    "TopologyError",
    "AlgorithmError",
    "DaemonError",
    "ModelViolation",
    "RequirementViolation",
    "NotStabilized",
]
