"""Stabilization detectors: the legacy observer-shaped measurement API.

The *stabilization time* of a self-stabilizing algorithm is the maximum
time, over every execution, to reach a legitimate configuration (paper,
Section 2.4).  Measurement now lives in :mod:`repro.probes` — a
capability-tiered protocol whose vectorized tier rides the fused kernel
loop.  This module keeps the original API working on top of it:

* :class:`StabilizationDetector` is a decode-tier
  :class:`~repro.probes.stabilization.StabilizationProbe` with the
  legacy constructor and observer-callable behavior (it never requests
  a stop itself — callers drive the run, as they always did);
* :func:`measure_stabilization` runs a simulator to the first hit of a
  plain configuration predicate, exactly as before.

Both force per-step decoding (a bare predicate cannot be vectorized);
pass a :class:`~repro.probes.stabilization.StabilizationProbe` with a
``mask`` to :meth:`Simulator.add_probe` to measure on the fused path::

    probe = StabilizationProbe(sdr.is_normal, mask="normal_mask")
    sim.add_probe(probe)
    sim.run(max_steps=...)        # fused end-to-end
    probe.require_hit()

For *closed* predicates (attractors — the case for every legitimacy
notion in the paper) the first hit is the stabilization point.  The
detector still keeps counting violations after the hit so tests can
assert closure empirically for predicates claimed closed.
"""

from __future__ import annotations

from typing import Callable

from ..probes.stabilization import StabilizationProbe
from .configuration import Configuration
from .exceptions import NotStabilized
from .simulator import RunResult, Simulator

__all__ = ["StabilizationDetector", "measure_stabilization"]

Predicate = Callable[[Configuration], bool]


class StabilizationDetector(StabilizationProbe):
    """Decode-tier probe recording when a configuration predicate first holds.

    Attributes (``None`` until the predicate first holds):

    * ``step`` — number of steps executed before the first hit (0 when the
      initial configuration already satisfies the predicate);
    * ``rounds`` — complete rounds elapsed at the first hit;
    * ``moves`` — total moves executed at the first hit;
    * ``violations_after_hit`` — number of later configurations violating
      the predicate (must stay 0 for closed predicates).

    Never requests a stop itself (legacy contract: callers drive the
    run via ``stop_when`` or extra :meth:`Simulator.run` calls).
    """

    def __init__(self, predicate: Predicate, name: str = "legitimate"):
        super().__init__(predicate, name=name, stop=False)


def measure_stabilization(
    simulator: Simulator,
    predicate: Predicate,
    max_steps: int = 1_000_000,
    run_past: int = 0,
    name: str = "legitimate",
) -> tuple[StabilizationDetector, RunResult]:
    """Run ``simulator`` until ``predicate`` holds; return detector + result.

    ``run_past`` continues the execution for that many extra steps after the
    first hit (or until terminal), letting closure assertions observe the
    suffix.  Raises :class:`~repro.core.exceptions.NotStabilized` when the
    budget is exhausted first.
    """
    detector = StabilizationDetector(predicate, name=name)
    simulator.add_probe(detector)
    result = simulator.run(max_steps=max_steps, stop_when=lambda sim: detector.hit)
    if not detector.hit:
        raise NotStabilized(
            f"predicate {name!r} not reached within {max_steps} steps",
            steps=result.steps,
        )
    if run_past > 0 and not simulator.is_terminal():
        result = simulator.run(max_steps=run_past)
    return detector, result
