"""Stabilization detectors: observers that watch for legitimate configurations.

The *stabilization time* of a self-stabilizing algorithm is the maximum
time, over every execution, to reach a legitimate configuration (paper,
Section 2.4).  :class:`StabilizationDetector` plugs into the simulator's
observer hook and records the step, round, and move counts at the first
configuration satisfying a caller-supplied legitimacy predicate.

For *closed* predicates (attractors — the case for every legitimacy notion
in the paper) the first hit is the stabilization point.  The detector still
keeps counting violations after the hit so tests can assert closure
empirically for predicates claimed closed.
"""

from __future__ import annotations

from typing import Callable

from .configuration import Configuration
from .exceptions import NotStabilized
from .simulator import RunResult, Simulator
from .trace import StepRecord

__all__ = ["StabilizationDetector", "measure_stabilization"]

Predicate = Callable[[Configuration], bool]


class StabilizationDetector:
    """Observer recording when a configuration predicate first holds.

    Attributes (``None`` until the predicate first holds):

    * ``step`` — number of steps executed before the first hit (0 when the
      initial configuration already satisfies the predicate);
    * ``rounds`` — complete rounds elapsed at the first hit;
    * ``moves`` — total moves executed at the first hit;
    * ``violations_after_hit`` — number of later configurations violating
      the predicate (must stay 0 for closed predicates).
    """

    def __init__(self, predicate: Predicate, name: str = "legitimate"):
        self.predicate = predicate
        self.name = name
        self.step: int | None = None
        self.rounds: int | None = None
        self.moves: int | None = None
        self.violations_after_hit = 0

    @property
    def hit(self) -> bool:
        return self.step is not None

    def on_start(self, sim: Simulator) -> None:
        if self.predicate(sim.cfg):
            self.step, self.rounds, self.moves = 0, 0, 0

    def __call__(self, sim: Simulator, record: StepRecord) -> None:
        holds = self.predicate(sim.cfg)
        if self.hit:
            if not holds:
                self.violations_after_hit += 1
            return
        if holds:
            self.step = sim.step_count
            self.rounds = sim.rounds.completed
            self.moves = sim.move_count

    def require_hit(self) -> None:
        if not self.hit:
            raise NotStabilized(f"predicate {self.name!r} never held")

    def __repr__(self) -> str:
        return (
            f"StabilizationDetector({self.name!r}, step={self.step}, "
            f"rounds={self.rounds}, moves={self.moves})"
        )


def measure_stabilization(
    simulator: Simulator,
    predicate: Predicate,
    max_steps: int = 1_000_000,
    run_past: int = 0,
    name: str = "legitimate",
) -> tuple[StabilizationDetector, RunResult]:
    """Run ``simulator`` until ``predicate`` holds; return detector + result.

    ``run_past`` continues the execution for that many extra steps after the
    first hit (or until terminal), letting closure assertions observe the
    suffix.  Raises :class:`~repro.core.exceptions.NotStabilized` when the
    budget is exhausted first.
    """
    detector = StabilizationDetector(predicate, name=name)
    detector.on_start(simulator)
    simulator.observers.append(detector)
    result = simulator.run(max_steps=max_steps, stop_when=lambda sim: detector.hit)
    if not detector.hit:
        raise NotStabilized(
            f"predicate {name!r} not reached within {max_steps} steps",
            steps=result.steps,
        )
    if run_past > 0 and not simulator.is_terminal():
        result = simulator.run(max_steps=run_past)
    return detector, result
