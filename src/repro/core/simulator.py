"""The execution engine for the locally shared memory model.

:class:`Simulator` drives executions ``γ0 ↦ γ1 ↦ …`` of an
:class:`~repro.core.algorithm.Algorithm` under a
:class:`~repro.core.daemon.Daemon`, with composite atomicity: all processes
activated in a step compute their actions against the same frozen pre-step
configuration, then all updates are installed at once.

Execution backends
------------------
Two interchangeable backends implement the step relation:

* ``"dict"`` — the reference engine.  States are per-process dicts, guards
  are evaluated process by process through ``Algorithm.guard``, and the
  enabled set is maintained *incrementally*: after a step in which the set
  ``S`` moved, only processes within graph distance ``guard_locality`` of
  ``S`` can change enabled status.
* ``"kernel"`` — the array engine (:mod:`repro.core.kernel`).  Algorithms
  that declare a typed variable schema (``Algorithm.kernel_program``)
  execute on flat numpy columns over CSR adjacency; guards become
  vectorized masks and actions mutate a double buffer.  Orders of
  magnitude less interpreter work per step on non-trivial networks.

``backend="auto"`` (the default) picks the kernel whenever the algorithm
provides a program and numpy is importable, and falls back to the dict
engine otherwise.  The two backends are observationally identical: both
present the enabled map to daemons in ascending process order (a contract
this class guarantees), so with equal seeds they produce step-for-step
identical traces — equality that the backend-equivalence property tests
assert and that ``paranoid`` mode machine-checks in-process.

``paranoid`` mode is backend-specific validation: under the dict backend
it recomputes the enabled set from scratch each step and cross-checks the
incremental bookkeeping; under the kernel backend it runs the dict
reference *in lockstep* — every step applies the same selection to both
engines and compares configurations, enabled sets, and accounting, so
kernel/reference equivalence is machine-checked, not assumed.

Accounting follows the paper exactly: *moves* are rule executions, *rounds*
follow the neutralization definition (see :mod:`repro.core.rounds`).
"""

from __future__ import annotations

import logging
from random import Random
from typing import Any, Callable, Iterable, Sequence

from ..telemetry import phases as telemetry
from .algorithm import Algorithm
from .configuration import Configuration, state_equal
from .daemon import Daemon
from .exceptions import AlgorithmError, DaemonError, ModelViolation, NotStabilized
from .rounds import RoundCounter
from .trace import StepRecord, Trace

__all__ = ["Simulator", "RunResult", "BACKENDS"]

#: Recognized values of the ``backend`` parameter.
BACKENDS = ("auto", "dict", "kernel")

_logger = logging.getLogger(__name__)

#: Algorithm names already warned about (one warning per algorithm, not
#: one per simulator — campaigns construct thousands of simulators).
_FALLBACK_WARNED: set[str] = set()


def _warn_auto_fallback(name: str) -> None:
    if name not in _FALLBACK_WARNED:
        _FALLBACK_WARNED.add(name)
        _logger.warning(
            "algorithm %r provides no kernel program (or numpy is missing); "
            "backend='auto' is falling back to the dict engine — declare a "
            "repro.ir rule set (see repro/unison/kernelized.py) to use the "
            "array kernel",
            name,
        )


#: Algorithm names already warned about handwritten kernel programs.
_HANDWRITTEN_WARNED: set[str] = set()


def _warn_handwritten_program(name: str) -> None:
    if name not in _HANDWRITTEN_WARNED:
        _HANDWRITTEN_WARNED.add(name)
        _logger.warning(
            "algorithm %r supplies a handwritten kernel program; handwritten "
            "numpy twins are deprecated — declare a repro.ir rule set and "
            "let rule_set().compile_kernel() generate the program (see "
            "repro/unison/kernelized.py)",
            name,
        )


class RunResult:
    """Summary of a (partial) execution produced by :meth:`Simulator.run`.

    Attributes
    ----------
    steps: number of atomic steps executed.
    moves: total number of moves (rule executions).
    rounds: number of complete rounds elapsed.
    terminal: whether the final configuration is terminal.
    stop_reason: ``"terminal"``, ``"predicate"``, ``"probe"`` or
        ``"budget"`` (``"probe"`` = an attached probe requested the stop).
    """

    __slots__ = ("steps", "moves", "rounds", "terminal", "stop_reason")

    def __init__(self, steps: int, moves: int, rounds: int, terminal: bool, stop_reason: str):
        self.steps = steps
        self.moves = moves
        self.rounds = rounds
        self.terminal = terminal
        self.stop_reason = stop_reason

    def __repr__(self) -> str:
        return (
            f"RunResult(steps={self.steps}, moves={self.moves}, rounds={self.rounds}, "
            f"terminal={self.terminal}, stop_reason={self.stop_reason!r})"
        )


class _LazyConfigView:
    """Configuration façade handed to daemons under the kernel backend.

    Decoding the columns into dicts costs O(n·|vars|); the built-in
    daemons never read the configuration, so the proxy defers decoding
    until an attribute or item is actually touched (priority/strategy
    callbacks still see full :class:`Configuration` semantics).
    """

    __slots__ = ("_sim",)

    def __init__(self, sim: "Simulator"):
        self._sim = sim

    def _materialize(self) -> Configuration:
        return self._sim.cfg

    def __getattr__(self, name):
        return getattr(self._materialize(), name)

    def __getitem__(self, u):
        return self._materialize()[u]

    def __len__(self):
        return len(self._materialize())

    def __iter__(self):
        return iter(self._materialize())


#: Sentinel: the vectorized daemon twin has not been resolved yet.
_VEC_UNRESOLVED = object()


class Simulator:
    """Executes one algorithm on one network under one daemon.

    Parameters
    ----------
    algorithm:
        The algorithm to run (bound to its network).
    daemon:
        Scheduling strategy; defaults to a fresh
        :class:`~repro.core.daemon.DistributedRandomDaemon` is *not*
        provided implicitly — pass one explicitly to keep runs reproducible.
    config:
        Initial configuration ``γ0``; defaults to the algorithm's
        ``initial_configuration()``.
    seed / rng:
        Randomness for the daemon (and nothing else).  Provide at most one.
    strict:
        Assert daemon contract and (when the algorithm declares it) pairwise
        mutual exclusion of rules.
    paranoid:
        Backend-specific cross-checking (slow; for tests).  Dict backend:
        recompute the enabled set from scratch every step and compare with
        the incremental bookkeeping.  Kernel backend: run the dict
        reference in lockstep and compare configurations, enabled sets and
        rule choices after every step.
    backend:
        ``"auto"`` (default), ``"dict"`` or ``"kernel"``.  ``"kernel"``
        requires the algorithm to provide a kernel program (see
        ``Algorithm.kernel_program``) and numpy to be installed; ``"auto"``
        falls back to ``"dict"`` when either is missing (logging one
        warning per algorithm so silent slowdowns stay visible).
    fuse:
        Allow :meth:`run` to use the fused kernel loop (vectorized
        daemons + array-native accounting) when nothing observes
        individual steps.  Results are identical either way; pass
        ``False`` to force the step-by-step loop (benchmark baselines,
        debugging).
    trace:
        Optional :class:`~repro.core.trace.Trace` to record into.
    observers:
        Deprecated (use ``probes``).  Callables ``observer(simulator,
        record)`` invoked after every step; an optional
        ``on_start(simulator)`` attribute is invoked before the first
        step.  Any attached observer forces the step-by-step loop; wrap
        one in :class:`repro.probes.LegacyObserverProbe` (or port it to
        a :class:`repro.probes.Probe`) to migrate.
    probes:
        :class:`repro.probes.Probe` instances observing the execution.
        Probes whose ``wants_decode()`` is false are served *inside*
        the fused kernel loop (their ``on_columns`` hook), so
        measurement does not cost the fast path; any probe wanting
        decoded records keeps the step-by-step loop (its ``on_step``
        hook — today's observer contract).
    faults:
        Optional mid-run fault schedule: a
        :class:`repro.faults.schedule.FaultSchedule`, an already-bound
        schedule, or a spec string (see :mod:`repro.faults.schedule`).
        Unbound schedules without an explicit seed bind to this
        simulator's ``seed`` (0 when constructed from ``rng``), so dict
        and kernel executions with equal seeds inject byte-identical
        corruption.  Occurrences fire inside :meth:`run`'s driving loops
        (all of them — dict, kernel step-by-step, fused) between steps:
        they add no steps/moves, rebase the round counter, and notify
        probes via ``on_fault``.
    churn:
        Optional mid-run topology churn: a
        :class:`repro.faults.churn.ChurnSchedule`, an already-bound
        schedule, or a spec string (see :mod:`repro.faults.churn`).
        Seed binding follows the ``faults`` convention.  Occurrences
        mutate the network between steps on every driving loop — links
        drop/appear, processes crash (state frozen, edges removed,
        excluded from guards/daemon/accounting via :attr:`dead`) and
        rejoin with domain-random state — identically across backends;
        probes are notified via ``on_churn``.  The simulator's
        :class:`~repro.core.graph.Network` is mutated in place (the
        fused loop syncs it from the schedule's canonical state on
        exit), so construct churn trials on a fresh network.

    Notes
    -----
    Daemons observe the enabled map in ascending process order on both
    backends — relying on that order is safe and keeps traces
    backend-independent.  Under the kernel backend, :attr:`cfg` is a
    decoded *snapshot* of the columnar state: reading it is always
    current, but mutating it does not write through to the execution
    state (mutate initial configurations before construction instead).
    """

    def __init__(
        self,
        algorithm: Algorithm,
        daemon: Daemon,
        config: Configuration | None = None,
        seed: int | None = None,
        rng: Random | None = None,
        strict: bool = True,
        paranoid: bool = False,
        backend: str = "auto",
        fuse: bool = True,
        trace: Trace | None = None,
        observers: Sequence[Callable[["Simulator", StepRecord], Any]] = (),
        probes: Sequence[Any] = (),
        faults: Any = None,
        churn: Any = None,
    ):
        if seed is not None and rng is not None:
            raise ValueError("provide either seed or rng, not both")
        self.algorithm = algorithm
        self.network = algorithm.network
        self.daemon = daemon
        self.rng = rng if rng is not None else Random(seed)
        self.strict = strict
        self.paranoid = paranoid
        self.fuse = fuse
        self.trace = trace
        self.observers = list(observers)
        self.probes = list(probes)
        self._vec_daemon: Any = _VEC_UNRESOLVED
        self.faults = self._resolve_faults(faults, seed)
        self.churn = self._resolve_churn(churn, seed)
        #: Crashed-and-not-rejoined process ids under topology churn
        #: (kept out of the enabled set on every backend).
        self.dead: set[int] = set()

        cfg = config.copy() if config is not None else algorithm.initial_configuration()
        if len(cfg) != self.network.n:
            raise ValueError(
                f"configuration has {len(cfg)} states for {self.network.n} processes"
            )

        self.backend = self._resolve_backend(backend)
        self._cfg: Configuration | None = cfg
        self._cfg_dirty = False
        self._kernel = None
        self._shadow: Configuration | None = None
        if self.backend == "kernel":
            from .kernel.engine import KernelRuntime

            self._kernel = KernelRuntime(self._program, cfg)
            self._cfg_view = _LazyConfigView(self)
            if self.paranoid:
                self._shadow = cfg.copy()

        self.step_count = 0
        self.move_count = 0
        self.moves_per_process = [0] * self.network.n
        self.moves_per_rule: dict[str, int] = {}
        self.rounds = RoundCounter()

        self.daemon.reset()
        self._enabled: dict[int, tuple[str, ...]] = {}
        if self.backend == "kernel":
            self._enabled = self._kernel.enabled_map()
            self._check_exclusion_kernel()
            if self._shadow is not None:
                self._compare_shadow_enabled()
        else:
            self._recompute_all_enabled()
        self._enabled_snapshot = tuple(self._enabled)
        self.rounds.start(self._enabled)

        if self.trace is not None:
            self.trace.start(self.cfg)
        for obs in self.observers:
            on_start = getattr(obs, "on_start", None)
            if on_start is not None:
                on_start(self)
        for probe in self.probes:
            probe.on_start(self)

    def add_probe(self, probe) -> None:
        """Attach a :class:`repro.probes.Probe` to a live simulator.

        The probe observes the current configuration (``on_start``)
        immediately, then every subsequent step on whichever tier the
        execution runs.
        """
        probe.on_start(self)
        self.probes.append(probe)

    # ------------------------------------------------------------------
    # Backend selection
    # ------------------------------------------------------------------
    def _resolve_backend(self, requested: str) -> str:
        if requested not in BACKENDS:
            raise ValueError(f"unknown backend {requested!r}; choose from {BACKENDS}")
        if requested == "dict":
            self._program = None
            return "dict"
        self._program = self.algorithm.kernel_program()
        if self._program is not None:
            inner = getattr(self._program, "inner", self._program)
            if not getattr(inner, "ir_generated", False):
                _warn_handwritten_program(self.algorithm.name)
            return "kernel"
        if requested == "kernel":
            raise AlgorithmError(
                f"{self.algorithm.name}: backend='kernel' requires the algorithm "
                "to provide a kernel program (typed variable schema) and numpy "
                "to be installed; use backend='auto' to fall back gracefully"
            )
        # Loud-but-once: the fallback is silent per run, but the first run
        # of each unported algorithm names itself in the log.
        _warn_auto_fallback(self.algorithm.name)
        return "dict"

    # ------------------------------------------------------------------
    # Configuration access
    # ------------------------------------------------------------------
    @property
    def cfg(self) -> Configuration:
        """Current configuration (decoded on demand under the kernel)."""
        if self._cfg_dirty:
            self._cfg = self._kernel.decode()
            self._cfg_dirty = False
        return self._cfg

    # ------------------------------------------------------------------
    # Enabled-set maintenance (dict backend)
    # ------------------------------------------------------------------
    def _enabled_rules_checked(self, u: int) -> tuple[str, ...]:
        rules = self.algorithm.enabled_rules(self.cfg, u)
        if (
            self.strict
            and self.algorithm.mutually_exclusive_rules
            and len(rules) > 1
        ):
            raise ModelViolation(
                f"{self.algorithm.name}: rules {rules} simultaneously enabled at "
                f"process {u}, but the algorithm declares mutual exclusion"
            )
        return rules

    def _recompute_all_enabled(self) -> None:
        self._enabled = {}
        dead = self.dead
        for u in self.network.processes():
            if u in dead:
                continue  # crashed: frozen state, never enabled
            rules = self._enabled_rules_checked(u)
            if rules:
                self._enabled[u] = rules

    def _affected_by(self, moved: Iterable[int]) -> set[int]:
        """Processes whose guards may change after ``moved`` updated."""
        frontier = set(moved)
        affected = set(frontier)
        neighbors = self.network.neighbors
        for _ in range(self.algorithm.guard_locality):
            nxt: set[int] = set()
            for u in frontier:
                nxt.update(neighbors(u))
            nxt -= affected
            affected |= nxt
            frontier = nxt
        return affected

    def _update_enabled(self, moved: Iterable[int]) -> None:
        enabled = self._enabled
        inserted = False
        dead = self.dead
        for u in self._affected_by(moved):
            if u in dead:
                enabled.pop(u, None)
                continue
            rules = self._enabled_rules_checked(u)
            if rules:
                inserted = inserted or u not in enabled
                enabled[u] = rules
            else:
                enabled.pop(u, None)
        if inserted:
            # Keep the ascending-order contract daemons observe; updates
            # in place and removals preserve it, only insertions break it.
            self._enabled = dict(sorted(enabled.items()))
        if self.paranoid:
            incremental = dict(self._enabled)
            self._recompute_all_enabled()
            if incremental != self._enabled:
                raise ModelViolation(
                    "incremental enabled-set bookkeeping diverged from full "
                    f"recomputation: {incremental} != {self._enabled}"
                )
            # _recompute_all_enabled iterates processes() → already ascending.

    def _check_exclusion_kernel(self) -> None:
        if not (self.strict and self.algorithm.mutually_exclusive_rules):
            return
        if self._kernel.max_enabled_rules > 1:
            offender = next(
                (u, rules) for u, rules in self._enabled.items() if len(rules) > 1
            )
            raise ModelViolation(
                f"{self.algorithm.name}: rules {offender[1]} simultaneously enabled "
                f"at process {offender[0]}, but the algorithm declares mutual exclusion"
            )

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def _resolve_faults(self, faults: Any, seed: int | None):
        """Coerce the ``faults`` argument into a bound schedule (or None)."""
        if faults is None:
            return None
        from ..faults.schedule import BoundFaultSchedule, FaultSchedule, parse_schedule

        if isinstance(faults, BoundFaultSchedule):
            return faults
        if isinstance(faults, str):
            faults = parse_schedule(faults)
        if not isinstance(faults, FaultSchedule):
            raise TypeError(
                f"faults must be a FaultSchedule, a bound schedule, or a "
                f"spec string, not {type(faults).__name__}"
            )
        return faults.bind(self.algorithm, default_seed=seed if seed is not None else 0)

    def _inject_occurrences(self, due) -> None:
        """Apply fired occurrences to the live configuration, no step."""
        if self.backend == "kernel":
            for occ in due:
                self._kernel.inject(occ.assignments)
            self._cfg_dirty = True
            if self._shadow is not None:
                for occ in due:
                    for u, var, value in occ.assignments:
                        self._shadow.set(u, var, value)
            self._enabled = self._kernel.enabled_map()
            self._check_exclusion_kernel()
            if self._shadow is not None:
                self._compare_shadow_enabled()
        else:
            victims: set[int] = set()
            for occ in due:
                for u, var, value in occ.assignments:
                    self.cfg.set(u, var, value)
                victims.update(occ.victims)
            self._update_enabled(victims)
        self._enabled_snapshot = tuple(self._enabled)
        self.rounds.rebase(self._enabled)
        if self.probes:
            for occ in due:
                info = self.faults.info(
                    occ, step=self.step_count, moves=self.move_count,
                    rounds=self.rounds.completed,
                )
                for probe in self.probes:
                    probe.on_fault(info)

    def _poll_faults(self) -> bool:
        """Fire due fault occurrences; ``False`` = re-poll before stepping.

        Mirrors the fused loop's injection block exactly: due occurrences
        (nominal step reached, or one pulled forward at a terminal
        configuration) corrupt the state between steps.  A pull-forward
        from a *finite* schedule that enables nothing answers ``False``
        so the driving loop polls again — a finite schedule always plays
        out in full before the run can end terminal.  An infinite
        schedule whose pull wakes nobody falls through (``True``) and
        the run ends terminal, exactly like the fused driver.
        """
        sched = self.faults
        if sched is None or sched.exhausted:
            return True
        idle = not self._enabled
        due = sched.pop_due(self.step_count, idle=idle)
        if not due:
            return True
        self._inject_occurrences(due)
        return not (idle and not self._enabled and sched.schedule.finite)

    # ------------------------------------------------------------------
    # Topology churn
    # ------------------------------------------------------------------
    def _resolve_churn(self, churn: Any, seed: int | None):
        """Coerce the ``churn`` argument into a bound schedule (or None)."""
        if churn is None:
            return None
        from ..faults.churn import BoundChurnSchedule, ChurnSchedule, parse_churn

        if isinstance(churn, BoundChurnSchedule):
            return churn
        if isinstance(churn, str):
            churn = parse_churn(churn)
        if not isinstance(churn, ChurnSchedule):
            raise TypeError(
                f"churn must be a ChurnSchedule, a bound schedule, or a "
                f"spec string, not {type(churn).__name__}"
            )
        return churn.bind(self.algorithm, default_seed=seed if seed is not None else 0)

    def _apply_churn_occurrences(self, due) -> None:
        """Mirror fired churn occurrences into every live structure, no step.

        The bound schedule already committed each occurrence's delta to
        its canonical state — including the shared :class:`Network`,
        which it mirrors at draw time so state-dependent draws see the
        same topology on every backend.  This applies the delta to the
        executing engine and the dead set, recomputes the enabled set
        from scratch (a topology change can flip guards anywhere),
        rebases the round counter, and notifies probes.
        """
        for occ in due:
            if occ.action == "crash":
                self.dead.update(occ.victims)
            elif occ.action == "join":
                self.dead.difference_update(occ.victims)
        if self.backend == "kernel":
            for occ in due:
                self._kernel.apply_churn(occ)
            self._cfg_dirty = True
            # A resolved vectorized daemon twin snapshots CSR arrays at
            # construction; keep it current for any later fused stretch.
            if self._vec_daemon is not _VEC_UNRESOLVED and self._vec_daemon is not None:
                self._vec_daemon.refresh_topology(self._program.csr)
            if self._shadow is not None:
                for occ in due:
                    for u, var, value in occ.assignments:
                        self._shadow.set(u, var, value)
            self._enabled = self._kernel.enabled_map()
            self._check_exclusion_kernel()
            if self._shadow is not None:
                self._compare_shadow_enabled()
        else:
            for occ in due:
                for u, var, value in occ.assignments:
                    self.cfg.set(u, var, value)
            self._recompute_all_enabled()
        self._enabled_snapshot = tuple(self._enabled)
        self.rounds.rebase(self._enabled)
        if self.probes:
            for occ in due:
                info = self.churn.info(
                    occ, step=self.step_count, moves=self.move_count,
                    rounds=self.rounds.completed,
                )
                for probe in self.probes:
                    probe.on_churn(info)

    def _poll_churn(self) -> bool:
        """Fire due churn occurrences; ``False`` = re-poll before stepping.

        Mirrors the fused loop's churn block exactly (and
        :meth:`_poll_faults`, which must run first — the fused loop
        checks faults before churn both at the loop top and in the
        terminal pull-forward).  Same finite-schedule contract as the
        fault poll: a pulled occurrence that wakes nobody (an
        ``add_edge`` at a silent fixpoint is the common case) forces a
        re-poll until the schedule exhausts or the system wakes.
        """
        sched = self.churn
        if sched is None or sched.exhausted:
            return True
        idle = not self._enabled
        due = sched.pop_due(self.step_count, idle=idle)
        if not due:
            return True
        self._apply_churn_occurrences(due)
        return not (idle and not self._enabled and sched.schedule.finite)

    def _sync_churn_topology(self) -> None:
        """Adopt the bound schedule's canonical topology after a fused run.

        The schedule mirrors every link delta into the shared
        :class:`~repro.core.graph.Network` at draw time, so the edge
        diff below is normally empty (it is kept as a cheap invariant
        repair); the :attr:`dead` set, which only the stepped loops
        track occurrence by occurrence, always catches up here.
        """
        current = set(self.churn.current_edges())
        have = {tuple(sorted(e)) for e in self.network.edges()}
        drops = sorted(have - current)
        adds = sorted(current - have)
        if drops or adds:
            self.network.apply_delta(drops, adds)
        self.dead = set(self.churn.dead())

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def enabled(self) -> dict[int, tuple[str, ...]]:
        """Enabled processes mapped to their enabled rules (do not mutate)."""
        return self._enabled

    def is_terminal(self) -> bool:
        return not self._enabled

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def step(self) -> StepRecord | None:
        """Execute one atomic step; returns ``None`` at a terminal config."""
        advanced = self._advance()
        if advanced is None:
            return None
        selection, enabled_before, enabled_after = advanced
        record = StepRecord(
            index=self.step_count - 1,
            selection=dict(selection),
            enabled_before=enabled_before,
            enabled_after=enabled_after,
            rounds_completed=self.rounds.completed,
        )
        # Same stride-sampled phase timing as the fused drivers; the
        # index matches _advance's so one step's phases share a sample.
        stats = telemetry.collector()
        sampling = (
            stats is not None and ((self.step_count - 1) & stats.mask) == 0
        )
        if sampling:
            t_mark = telemetry.timer()
        if self.trace is not None:
            self.trace.append(record, self.cfg)
        for obs in self.observers:
            obs(self, record)
        for probe in self.probes:
            probe.on_step(self, record)
        if sampling:
            stats.times[telemetry.PROBE] += telemetry.timer() - t_mark
            stats.counts[telemetry.PROBE] += 1
        return record

    def _step_fast(self) -> None:
        """:meth:`step` minus :class:`StepRecord` construction.

        Used by :meth:`run` when no trace and no observers are attached —
        the per-step record would be built only to be discarded.
        """
        self._advance()

    def _advance(self) -> tuple[dict[int, str], tuple[int, ...], tuple[int, ...]] | None:
        """The step relation: select, apply, account.  ``None`` at terminal."""
        if not self._enabled:
            return None

        # Stride-sampled phase timing, shared with the fused drivers (see
        # repro.telemetry.phases); when telemetry is off this costs one
        # None check per step.
        stats = telemetry.collector()
        sampling = stats is not None and (self.step_count & stats.mask) == 0
        if sampling:
            ttimes, tcounts = stats.times, stats.counts
            t_mark = telemetry.timer()

        enabled_before = self._enabled_snapshot
        daemon_cfg = self._cfg_view if self.backend == "kernel" else self.cfg
        selection = self.daemon.select(daemon_cfg, self._enabled, self.rng, self.step_count)
        if self.strict:
            self._check_selection(selection)
        if sampling:
            t_now = telemetry.timer()
            ttimes[telemetry.DAEMON] += t_now - t_mark
            tcounts[telemetry.DAEMON] += 1
            t_mark = t_now

        if self.backend == "kernel":
            self._kernel.apply(selection)
            self._cfg_dirty = True
            if sampling:
                t_now = telemetry.timer()
                ttimes[telemetry.APPLY] += t_now - t_mark
                tcounts[telemetry.APPLY] += 1
                t_mark = t_now
            self._enabled = self._kernel.enabled_map()
            self._check_exclusion_kernel()
            if self._shadow is not None:
                self._lockstep_check(selection)
        else:
            # Composite atomicity: compute every action against the frozen
            # pre-step configuration, then install all updates at once.
            updates = {
                u: self.algorithm.execute(rule, self.cfg, u)
                for u, rule in selection.items()
            }
            self.cfg.apply(updates)
            if sampling:
                t_now = telemetry.timer()
                ttimes[telemetry.APPLY] += t_now - t_mark
                tcounts[telemetry.APPLY] += 1
                t_mark = t_now
            self._update_enabled(selection)
        if sampling:
            t_now = telemetry.timer()
            ttimes[telemetry.GUARD] += t_now - t_mark
            tcounts[telemetry.GUARD] += 1
            t_mark = t_now

        enabled_after = tuple(self._enabled)
        self._enabled_snapshot = enabled_after
        self.rounds.observe_step(selection, enabled_before, enabled_after)
        if sampling:
            ttimes[telemetry.ROUNDS] += telemetry.timer() - t_mark
            tcounts[telemetry.ROUNDS] += 1

        self.step_count += 1
        self.move_count += len(selection)
        moves_per_process = self.moves_per_process
        moves_per_rule = self.moves_per_rule
        for u, rule in selection.items():
            moves_per_process[u] += 1
            moves_per_rule[rule] = moves_per_rule.get(rule, 0) + 1
        return selection, enabled_before, enabled_after

    def _lockstep_check(self, selection: dict[int, str]) -> None:
        """Advance the dict reference with the same selection and compare."""
        shadow = self._shadow
        updates = {
            u: self.algorithm.execute(rule, shadow, u)
            for u, rule in selection.items()
        }
        shadow.apply(updates)
        decoded = self.cfg
        for u in self.network.processes():
            if not state_equal(decoded[u], shadow[u]):
                raise ModelViolation(
                    f"kernel backend diverged from the dict reference at process "
                    f"{u} after step {self.step_count}: kernel={decoded[u]} "
                    f"reference={shadow[u]}"
                )
        self._compare_shadow_enabled()

    def _compare_shadow_enabled(self) -> None:
        shadow = self._shadow
        reference_enabled = {
            u: rules
            for u in self.network.processes()
            if u not in self.dead
            and (rules := self.algorithm.enabled_rules(shadow, u))
        }
        if reference_enabled != self._enabled:
            raise ModelViolation(
                "kernel enabled set diverged from the dict reference after "
                f"step {self.step_count}: kernel={self._enabled} "
                f"reference={reference_enabled}"
            )

    def _check_selection(self, selection: dict[int, str]) -> None:
        if not selection:
            raise DaemonError("daemon selected an empty set at a non-terminal configuration")
        for u, rule in selection.items():
            if u not in self._enabled:
                raise DaemonError(f"daemon activated disabled process {u}")
            if rule not in self._enabled[u]:
                raise DaemonError(f"daemon picked disabled rule {rule!r} at process {u}")

    # ------------------------------------------------------------------
    # Fused kernel loop
    # ------------------------------------------------------------------
    def _vectorized_daemon(self):
        """The daemon's array twin, or ``None`` (resolved once, cached)."""
        if self._vec_daemon is _VEC_UNRESOLVED:
            if self.backend == "kernel":
                from .kernel.daemons import vectorize

                self._vec_daemon = vectorize(self.daemon, self.network)
            else:
                self._vec_daemon = None
        return self._vec_daemon

    @property
    def fusion_available(self) -> bool:
        """Whether :meth:`run` will use the fused kernel loop.

        Requires the kernel backend, a vectorizable daemon, ``fuse`` left
        on, and no per-step Python boundary crossing: no trace, no
        legacy observers, no paranoid lockstep, and every attached probe
        advertising the array-native tier (``wants_decode()`` false —
        such probes are served *inside* the fused loop).  (A
        ``stop_when`` predicate also disables fusion — it must observe
        the simulator between steps; express it as a
        :class:`repro.probes.StopProbe` mask to keep the fast path.)
        """
        return (
            self.backend == "kernel"
            and self.fuse
            and not self.paranoid
            and self.trace is None
            and not self.observers
            and all(not probe.wants_decode() for probe in self.probes)
            and self._vectorized_daemon() is not None
        )

    def _run_fused(self, max_steps: int, until=None) -> RunResult:
        """Drive the kernel's fused loop and merge its accounting back."""
        from .rounds import ArrayRoundCounter

        vec = self._vectorized_daemon()
        vec.load_state(self.daemon)
        rounds = ArrayRoundCounter.from_counter(self.rounds, self.network.n)
        check = self.strict and self.algorithm.mutually_exclusive_rules
        view = None
        if self.probes or self.faults is not None or self.churn is not None:
            # Faults and churn need the view too: its steps preset
            # anchors the schedules' absolute step clock on resumed
            # executions.
            from ..probes.view import ColumnView

            view = ColumnView(self._program)
            view.steps = self.step_count
            view.moves = self.move_count
        result = self._kernel.run(
            vec,
            self.rng,
            max_steps,
            until=until,
            rounds=rounds,
            exclusion_name=self.algorithm.name if check else None,
            probes=self.probes,
            view=view,
            faults=self.faults,
            churn=self.churn,
        )
        vec.store_state(self.daemon)
        rounds.into_counter(self.rounds)
        if self.faults is not None and self.faults.fired:
            self._cfg_dirty = True  # zero-step runs can still have injected
        if self.churn is not None and self.churn.fired:
            self._sync_churn_topology()
            self._cfg_dirty = True
        if result.steps:
            self.step_count += result.steps
            self.move_count += result.moves
            self.moves_per_process = [
                have + int(delta)
                for have, delta in zip(
                    self.moves_per_process, result.moves_per_process.tolist()
                )
            ]
            moves_per_rule = self.moves_per_rule
            for rule, count in result.moves_per_rule.items():
                moves_per_rule[rule] = moves_per_rule.get(rule, 0) + count
            self._cfg_dirty = True
        self._enabled = self._kernel.enabled_map()
        self._enabled_snapshot = tuple(self._enabled)
        for probe in self.probes:
            probe.on_finish(self)
        return RunResult(
            steps=self.step_count,
            moves=self.move_count,
            rounds=self.rounds.completed,
            terminal=not self._enabled,
            stop_reason=result.stop_reason,
        )

    def run_until_mask(self, mask_fn, max_steps: int = 1_000_000) -> RunResult:
        """Fused :meth:`run` with a vectorized convergence predicate.

        ``mask_fn(columns) -> bool ndarray`` is the per-process legitimacy
        mask (e.g. a kernel program's ``normal_mask``); the run stops the
        first time it holds everywhere — evaluated on the initial
        configuration too, exactly like ``stop_when`` — with stop reason
        ``"predicate"``.  Only valid while :attr:`fusion_available`.
        (The experiment runners measure through
        :class:`repro.probes.StabilizationProbe` instead, which also
        records the hit accounting and closure violations.)
        """
        if not self.fusion_available:
            raise RuntimeError(
                "run_until_mask requires the fused kernel loop "
                "(check Simulator.fusion_available first)"
            )
        return self._run_fused(max_steps, until=mask_fn)

    # ------------------------------------------------------------------
    # Driving loops
    # ------------------------------------------------------------------
    def run(
        self,
        max_steps: int = 1_000_000,
        stop_when: Callable[["Simulator"], bool] | None = None,
    ) -> RunResult:
        """Run until terminal, ``stop_when(self)``, a probe stop, or budget.

        ``stop_when`` (and every attached probe's ``done()``) is
        evaluated on the initial configuration too, so a condition
        already satisfied stops immediately with zero steps; a
        probe-requested stop reports ``stop_reason="probe"``.

        When the kernel backend is active and nothing needs to observe
        individual *decoded* steps (no ``stop_when``, trace, legacy
        observers, decode-tier probes, or paranoid mode) the loop runs
        *fused* inside the kernel — see :attr:`fusion_available` — with
        identical results and rng consumption, decoding to Python only
        on exit.  Vector-tier probes are served inside that loop.
        """
        if stop_when is None and self.fusion_available:
            return self._run_fused(max_steps)
        probes = self.probes
        stop_reason = "budget"
        if stop_when is not None and stop_when(self):
            stop_reason = "predicate"
        elif probes and any(probe.done() for probe in probes):
            stop_reason = "probe"
        else:
            stepper = (
                self._step_fast
                if self.trace is None and not self.observers and not probes
                else self.step
            )
            executed = 0
            # Loop order mirrors the fused driver exactly: fault poll,
            # churn poll, terminal check, budget check, step, stop
            # checks.  (Each poll fires due occurrences and, at a
            # terminal configuration, pulls one forward; a ``False``
            # poll means a finite-schedule pull left the configuration
            # terminal with occurrences still pending, so the loop
            # re-polls — the run only ends terminal once no schedule
            # can disturb it again.)
            while True:
                if not self._poll_faults():
                    continue
                if not self._poll_churn():
                    continue
                if self.is_terminal():
                    stop_reason = "terminal"
                    break
                if executed >= max_steps:
                    stop_reason = "budget"
                    break
                stepper()
                executed += 1
                if stop_when is not None and stop_when(self):
                    stop_reason = "predicate"
                    break
                if probes and any(probe.done() for probe in probes):
                    stop_reason = "probe"
                    break
        for probe in probes:
            probe.on_finish(self)
        return RunResult(
            steps=self.step_count,
            moves=self.move_count,
            rounds=self.rounds.completed,
            terminal=self.is_terminal(),
            stop_reason=stop_reason,
        )

    def run_to_termination(self, max_steps: int = 1_000_000) -> RunResult:
        """Run until a terminal configuration; raise if the budget runs out.

        Use for silent algorithms (e.g. ``FGA ∘ SDR``) where every execution
        is finite.
        """
        result = self.run(max_steps=max_steps)
        if not result.terminal:
            raise NotStabilized(
                f"no terminal configuration within {max_steps} steps", steps=result.steps
            )
        return result
