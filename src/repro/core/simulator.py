"""The execution engine for the locally shared memory model.

:class:`Simulator` drives executions ``γ0 ↦ γ1 ↦ …`` of an
:class:`~repro.core.algorithm.Algorithm` under a
:class:`~repro.core.daemon.Daemon`, with composite atomicity: all processes
activated in a step compute their actions against the same frozen pre-step
configuration, then all updates are installed at once.

The engine maintains the set of enabled processes *incrementally*: after a
step in which the set ``S`` moved, only processes within graph distance
``guard_locality`` of ``S`` can change enabled status (every algorithm in
the paper reads only its closed neighborhood).  A ``paranoid`` mode
recomputes the enabled set from scratch each step and cross-checks, which
the test suite uses to validate the optimization.

Accounting follows the paper exactly: *moves* are rule executions, *rounds*
follow the neutralization definition (see :mod:`repro.core.rounds`).
"""

from __future__ import annotations

from random import Random
from typing import Any, Callable, Iterable, Sequence

from .algorithm import Algorithm
from .configuration import Configuration
from .daemon import Daemon
from .exceptions import DaemonError, ModelViolation, NotStabilized
from .rounds import RoundCounter
from .trace import StepRecord, Trace

__all__ = ["Simulator", "RunResult"]


class RunResult:
    """Summary of a (partial) execution produced by :meth:`Simulator.run`.

    Attributes
    ----------
    steps: number of atomic steps executed.
    moves: total number of moves (rule executions).
    rounds: number of complete rounds elapsed.
    terminal: whether the final configuration is terminal.
    stop_reason: ``"terminal"``, ``"predicate"`` or ``"budget"``.
    """

    __slots__ = ("steps", "moves", "rounds", "terminal", "stop_reason")

    def __init__(self, steps: int, moves: int, rounds: int, terminal: bool, stop_reason: str):
        self.steps = steps
        self.moves = moves
        self.rounds = rounds
        self.terminal = terminal
        self.stop_reason = stop_reason

    def __repr__(self) -> str:
        return (
            f"RunResult(steps={self.steps}, moves={self.moves}, rounds={self.rounds}, "
            f"terminal={self.terminal}, stop_reason={self.stop_reason!r})"
        )


class Simulator:
    """Executes one algorithm on one network under one daemon.

    Parameters
    ----------
    algorithm:
        The algorithm to run (bound to its network).
    daemon:
        Scheduling strategy; defaults to a fresh
        :class:`~repro.core.daemon.DistributedRandomDaemon` is *not*
        provided implicitly — pass one explicitly to keep runs reproducible.
    config:
        Initial configuration ``γ0``; defaults to the algorithm's
        ``initial_configuration()``.
    seed / rng:
        Randomness for the daemon (and nothing else).  Provide at most one.
    strict:
        Assert daemon contract and (when the algorithm declares it) pairwise
        mutual exclusion of rules.
    paranoid:
        Recompute the enabled set from scratch every step and compare with
        the incremental bookkeeping (slow; for tests).
    trace:
        Optional :class:`~repro.core.trace.Trace` to record into.
    observers:
        Callables ``observer(simulator, record)`` invoked after every step;
        an optional ``on_start(simulator)`` attribute is invoked before the
        first step.  Stabilization detectors plug in here.
    """

    def __init__(
        self,
        algorithm: Algorithm,
        daemon: Daemon,
        config: Configuration | None = None,
        seed: int | None = None,
        rng: Random | None = None,
        strict: bool = True,
        paranoid: bool = False,
        trace: Trace | None = None,
        observers: Sequence[Callable[["Simulator", StepRecord], Any]] = (),
    ):
        if seed is not None and rng is not None:
            raise ValueError("provide either seed or rng, not both")
        self.algorithm = algorithm
        self.network = algorithm.network
        self.daemon = daemon
        self.rng = rng if rng is not None else Random(seed)
        self.strict = strict
        self.paranoid = paranoid
        self.trace = trace
        self.observers = list(observers)

        self.cfg = config.copy() if config is not None else algorithm.initial_configuration()
        if len(self.cfg) != self.network.n:
            raise ValueError(
                f"configuration has {len(self.cfg)} states for {self.network.n} processes"
            )

        self.step_count = 0
        self.move_count = 0
        self.moves_per_process = [0] * self.network.n
        self.moves_per_rule: dict[str, int] = {}
        self.rounds = RoundCounter()

        self.daemon.reset()
        self._enabled: dict[int, tuple[str, ...]] = {}
        self._recompute_all_enabled()
        self.rounds.start(self._enabled)

        if self.trace is not None:
            self.trace.start(self.cfg)
        for obs in self.observers:
            on_start = getattr(obs, "on_start", None)
            if on_start is not None:
                on_start(self)

    # ------------------------------------------------------------------
    # Enabled-set maintenance
    # ------------------------------------------------------------------
    def _enabled_rules_checked(self, u: int) -> tuple[str, ...]:
        rules = self.algorithm.enabled_rules(self.cfg, u)
        if (
            self.strict
            and self.algorithm.mutually_exclusive_rules
            and len(rules) > 1
        ):
            raise ModelViolation(
                f"{self.algorithm.name}: rules {rules} simultaneously enabled at "
                f"process {u}, but the algorithm declares mutual exclusion"
            )
        return rules

    def _recompute_all_enabled(self) -> None:
        self._enabled = {}
        for u in self.network.processes():
            rules = self._enabled_rules_checked(u)
            if rules:
                self._enabled[u] = rules

    def _affected_by(self, moved: Iterable[int]) -> set[int]:
        """Processes whose guards may change after ``moved`` updated."""
        frontier = set(moved)
        affected = set(frontier)
        for _ in range(self.algorithm.guard_locality):
            nxt: set[int] = set()
            for u in frontier:
                nxt.update(self.network.neighbors(u))
            nxt -= affected
            affected |= nxt
            frontier = nxt
        return affected

    def _update_enabled(self, moved: Iterable[int]) -> None:
        for u in self._affected_by(moved):
            rules = self._enabled_rules_checked(u)
            if rules:
                self._enabled[u] = rules
            else:
                self._enabled.pop(u, None)
        if self.paranoid:
            incremental = dict(self._enabled)
            self._recompute_all_enabled()
            if incremental != self._enabled:
                raise ModelViolation(
                    "incremental enabled-set bookkeeping diverged from full "
                    f"recomputation: {incremental} != {self._enabled}"
                )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def enabled(self) -> dict[int, tuple[str, ...]]:
        """Enabled processes mapped to their enabled rules (do not mutate)."""
        return self._enabled

    def is_terminal(self) -> bool:
        return not self._enabled

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def step(self) -> StepRecord | None:
        """Execute one atomic step; returns ``None`` at a terminal config."""
        if not self._enabled:
            return None

        enabled_before = tuple(sorted(self._enabled))
        selection = self.daemon.select(self.cfg, self._enabled, self.rng, self.step_count)
        if self.strict:
            self._check_selection(selection)

        # Composite atomicity: compute every action against the frozen
        # pre-step configuration, then install all updates at once.
        updates = {
            u: self.algorithm.execute(rule, self.cfg, u)
            for u, rule in selection.items()
        }
        self.cfg.apply(updates)
        self._update_enabled(selection)

        enabled_after = tuple(sorted(self._enabled))
        self.rounds.observe_step(selection, enabled_before, enabled_after)

        self.step_count += 1
        self.move_count += len(selection)
        for u, rule in selection.items():
            self.moves_per_process[u] += 1
            self.moves_per_rule[rule] = self.moves_per_rule.get(rule, 0) + 1

        record = StepRecord(
            index=self.step_count - 1,
            selection=dict(selection),
            enabled_before=enabled_before,
            enabled_after=enabled_after,
            rounds_completed=self.rounds.completed,
        )
        if self.trace is not None:
            self.trace.append(record, self.cfg)
        for obs in self.observers:
            obs(self, record)
        return record

    def _check_selection(self, selection: dict[int, str]) -> None:
        if not selection:
            raise DaemonError("daemon selected an empty set at a non-terminal configuration")
        for u, rule in selection.items():
            if u not in self._enabled:
                raise DaemonError(f"daemon activated disabled process {u}")
            if rule not in self._enabled[u]:
                raise DaemonError(f"daemon picked disabled rule {rule!r} at process {u}")

    # ------------------------------------------------------------------
    # Driving loops
    # ------------------------------------------------------------------
    def run(
        self,
        max_steps: int = 1_000_000,
        stop_when: Callable[["Simulator"], bool] | None = None,
    ) -> RunResult:
        """Run until terminal, until ``stop_when(self)`` holds, or budget.

        ``stop_when`` is evaluated on the initial configuration too, so a
        predicate already satisfied stops immediately with zero steps.
        """
        stop_reason = "budget"
        if stop_when is not None and stop_when(self):
            stop_reason = "predicate"
        elif self.is_terminal():
            stop_reason = "terminal"
        else:
            for _ in range(max_steps):
                self.step()
                if stop_when is not None and stop_when(self):
                    stop_reason = "predicate"
                    break
                if self.is_terminal():
                    stop_reason = "terminal"
                    break
        return RunResult(
            steps=self.step_count,
            moves=self.move_count,
            rounds=self.rounds.completed,
            terminal=self.is_terminal(),
            stop_reason=stop_reason,
        )

    def run_to_termination(self, max_steps: int = 1_000_000) -> RunResult:
        """Run until a terminal configuration; raise if the budget runs out.

        Use for silent algorithms (e.g. ``FGA ∘ SDR``) where every execution
        is finite.
        """
        result = self.run(max_steps=max_steps)
        if not result.terminal:
            raise NotStabilized(
                f"no terminal configuration within {max_steps} steps", steps=result.steps
            )
        return result
