"""Communication network abstraction.

The paper models the system as a simple undirected connected graph
``G = (V, E)`` where ``V`` is the set of processes and ``E`` the set of
communication links (Section 2.1).  :class:`Network` freezes such a graph
into an index-based adjacency structure optimised for the hot path of the
simulator: guard evaluation repeatedly iterates over closed neighborhoods.

The structure is immutable under normal operation; the one sanctioned
mutation surface is :meth:`Network.apply_delta`, used by topology churn
(:mod:`repro.faults.churn`) to drop/add links mid-run.  The process set
(and hence every index and identifier) never changes — a crashed process
merely loses all of its links — and every derived view (adjacency
tuples, degree vector, cached CSR, cached diameter) is rebuilt or
invalidated atomically so no reader can observe a stale topology.

Processes are identified *internally* by integers ``0 .. n-1``.  This does
not contradict the anonymity assumption of the paper: anonymous algorithms
simply never read those indices (they correspond to the paper's "indirect
naming" / local labels ``N(u)``), whereas identified algorithms such as FGA
receive an explicit ``ids`` assignment.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

import networkx as nx

from .exceptions import TopologyError

__all__ = ["Network"]


class Network:
    """An immutable, validated communication graph.

    Parameters
    ----------
    edges:
        Iterable of ``(u, v)`` pairs over hashable node names, or a
        :class:`networkx.Graph`.  Node names are mapped to dense indices
        ``0..n-1`` in sorted order when sortable (insertion order otherwise).
    ids:
        Optional mapping from node name to a unique integer identifier, used
        by identified-network algorithms (e.g. FGA).  Defaults to the dense
        index itself.  Anonymous algorithms must not read identifiers.

    Examples
    --------
    >>> net = Network([(0, 1), (1, 2)])
    >>> net.n, net.m
    (3, 2)
    >>> net.neighbors(1)
    (0, 2)
    >>> net.closed_neighbors(1)
    (1, 0, 2)
    """

    __slots__ = (
        "_graph",
        "_names",
        "_index_of",
        "_adj",
        "_closed_adj",
        "_adj_sets",
        "_ids",
        "_degrees",
        "_diameter",
        "_csr",
    )

    def __init__(
        self,
        edges: Iterable[tuple[object, object]] | nx.Graph,
        ids: Mapping[object, int] | None = None,
    ):
        if isinstance(edges, nx.Graph):
            graph = nx.Graph(edges)
        else:
            graph = nx.Graph()
            graph.add_edges_from(edges)
        if graph.number_of_nodes() == 0:
            raise TopologyError("the network must contain at least one process")
        if any(u == v for u, v in graph.edges()):
            raise TopologyError("self-loops are not allowed (simple graph required)")
        if not nx.is_connected(graph):
            raise TopologyError("the network must be connected")

        try:
            names: list = sorted(graph.nodes())
        except TypeError:
            names = list(graph.nodes())
        self._names: tuple = tuple(names)
        self._index_of = {name: i for i, name in enumerate(self._names)}
        self._graph = graph

        adjacency: list[tuple[int, ...]] = []
        for name in self._names:
            neigh = sorted(self._index_of[w] for w in graph.neighbors(name))
            adjacency.append(tuple(neigh))
        self._adj: tuple[tuple[int, ...], ...] = tuple(adjacency)
        self._closed_adj: tuple[tuple[int, ...], ...] = tuple(
            (u, *neigh) for u, neigh in enumerate(self._adj)
        )
        self._adj_sets: tuple[frozenset[int], ...] = tuple(
            frozenset(a) for a in self._adj
        )
        self._degrees: tuple[int, ...] = tuple(len(a) for a in self._adj)
        self._csr = None

        if ids is None:
            self._ids: tuple[int, ...] = tuple(range(len(self._names)))
        else:
            try:
                assigned = tuple(int(ids[name]) for name in self._names)
            except KeyError as missing:
                raise TopologyError(f"ids mapping misses node {missing}") from None
            if len(set(assigned)) != len(assigned):
                raise TopologyError("process identifiers must be unique")
            self._ids = assigned

        self._diameter: int | None = None

    # ------------------------------------------------------------------
    # Sizes and identifiers
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of processes (the paper's ``n``)."""
        return len(self._names)

    @property
    def m(self) -> int:
        """Number of edges (the paper's ``m``)."""
        return self._graph.number_of_edges()

    @property
    def names(self) -> tuple:
        """Original node names, in index order."""
        return self._names

    @property
    def ids(self) -> tuple[int, ...]:
        """Unique process identifiers, in index order (identified networks)."""
        return self._ids

    def id_of(self, u: int) -> int:
        """Identifier of process ``u`` (used only by identified algorithms)."""
        return self._ids[u]

    def index_of(self, name: object) -> int:
        """Dense index of the process originally named ``name``."""
        return self._index_of[name]

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------
    def neighbors(self, u: int) -> tuple[int, ...]:
        """Open neighborhood ``N(u)``."""
        return self._adj[u]

    def closed_neighbors(self, u: int) -> tuple[int, ...]:
        """Closed neighborhood ``N[u]`` (``u`` first, then its neighbors)."""
        return self._closed_adj[u]

    def degree(self, u: int) -> int:
        """Degree ``δ_u`` of process ``u``."""
        return self._degrees[u]

    @property
    def max_degree(self) -> int:
        """Maximum degree ``Δ`` of the network."""
        return max(self._degrees)

    @property
    def degrees(self) -> tuple[int, ...]:
        return self._degrees

    def are_neighbors(self, u: int, v: int) -> bool:
        return v in self._adj_sets[u]

    # ------------------------------------------------------------------
    # Topology churn (the only sanctioned mutation surface)
    # ------------------------------------------------------------------
    def apply_delta(
        self,
        drops: Iterable[tuple[int, int]] = (),
        adds: Iterable[tuple[int, int]] = (),
    ) -> None:
        """Mutate the link set in place: remove ``drops``, insert ``adds``.

        Both arguments are iterables of undirected index pairs.  The
        process set is fixed — churn silences processes by removing
        their links, it never deletes them — so the result may be
        disconnected; connectivity policy is the churn scheduler's job,
        not this method's.  Dropping an absent link or adding a present
        or degenerate one is a :class:`TopologyError`.  All derived
        views (adjacency, degrees, CSR cache, diameter cache) are
        rebuilt before returning.
        """
        drops = tuple(drops)
        adds = tuple(adds)
        for u, v in drops:
            if v not in self._adj_sets[u]:
                raise TopologyError(f"cannot drop absent link ({u}, {v})")
        for u, v in adds:
            if u == v:
                raise TopologyError(f"self-loop ({u}, {u}) is not allowed")
            if v in self._adj_sets[u]:
                raise TopologyError(f"cannot add present link ({u}, {v})")
        names = self._names
        for u, v in drops:
            self._graph.remove_edge(names[u], names[v])
        for u, v in adds:
            self._graph.add_edge(names[u], names[v])
        self._rebuild_adjacency()

    def _rebuild_adjacency(self) -> None:
        """Re-derive every adjacency view from ``_graph`` and drop caches."""
        adjacency = []
        for name in self._names:
            neigh = sorted(self._index_of[w] for w in self._graph.neighbors(name))
            adjacency.append(tuple(neigh))
        self._adj = tuple(adjacency)
        self._closed_adj = tuple((u, *neigh) for u, neigh in enumerate(self._adj))
        self._adj_sets = tuple(frozenset(a) for a in self._adj)
        self._degrees = tuple(len(a) for a in self._adj)
        self._csr = None
        self._diameter = None

    def csr(self) -> tuple:
        """Adjacency in CSR form: ``(indptr, indices)`` numpy int64 arrays.

        ``indices[indptr[u]:indptr[u+1]]`` are the neighbors of ``u`` in
        ascending order.  Built once and cached; this is the layout the
        array-backed execution kernel (:mod:`repro.core.kernel`) drives.
        Requires numpy.
        """
        if self._csr is None:
            import numpy as np

            indptr = np.zeros(self.n + 1, dtype=np.int64)
            np.cumsum(self._degrees, out=indptr[1:])
            indices = np.fromiter(
                (v for neigh in self._adj for v in neigh),
                dtype=np.int64,
                count=2 * self.m,
            )
            self._csr = (indptr, indices)
        return self._csr

    @property
    def diameter(self) -> int:
        """Network diameter ``D`` (cached; ``0`` for a single process)."""
        if self._diameter is None:
            if self.n == 1:
                self._diameter = 0
            else:
                self._diameter = nx.diameter(self._graph)
        return self._diameter

    # ------------------------------------------------------------------
    # Interop and dunder helpers
    # ------------------------------------------------------------------
    def to_networkx(self) -> nx.Graph:
        """A *copy* of the underlying graph relabeled to dense indices."""
        relabel = {name: i for i, name in enumerate(self._names)}
        return nx.relabel_nodes(self._graph, relabel, copy=True)

    def processes(self) -> range:
        """Iterable over process indices ``0..n-1``."""
        return range(self.n)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Edges as index pairs ``(u, v)`` with ``u < v``."""
        for u in range(self.n):
            for v in self._adj[u]:
                if u < v:
                    yield (u, v)

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:
        return f"Network(n={self.n}, m={self.m}, Δ={self.max_degree})"

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_networkx(cls, graph: nx.Graph, ids: Mapping[object, int] | None = None) -> "Network":
        """Build a :class:`Network` from a :class:`networkx.Graph`."""
        return cls(graph, ids=ids)

    @classmethod
    def single(cls) -> "Network":
        """The one-process network (no edges)."""
        graph = nx.Graph()
        graph.add_node(0)
        return cls(graph)

    def with_ids(self, ids: Sequence[int]) -> "Network":
        """A copy of this network with explicit identifiers (index order)."""
        mapping = {name: int(ids[i]) for i, name in enumerate(self._names)}
        return Network(self._graph, ids=mapping)
