"""Configurations of the locally shared memory model.

A *configuration* is a vector holding the state (the values of the locally
shared variables) of every process (paper, Section 2.2).  States are plain
``dict`` objects mapping variable names to values; this keeps algorithms
easy to write and inspect while remaining fast enough for the network sizes
the benchmarks use.

The simulator enforces composite atomicity *around* this class: within one
step every activated process computes its updates from the same frozen
pre-step configuration, and all updates are applied together afterwards.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Mapping, Sequence

__all__ = ["Configuration", "freeze_state", "state_equal"]

State = dict


def freeze_state(state: Mapping[str, Any]) -> tuple:
    """Hashable snapshot of a single process state (sorted name/value pairs)."""
    return tuple(sorted(state.items()))


def state_equal(a: Mapping[str, Any], b: Mapping[str, Any]) -> bool:
    """Structural equality of two process states (no intermediate copies)."""
    if a is b:
        return True
    if type(a) is dict and type(b) is dict:
        return a == b
    if len(a) != len(b):
        return False
    sentinel = object()
    return all(b.get(k, sentinel) == v for k, v in a.items())


class Configuration:
    """The global state of the system: one variable dict per process.

    The class intentionally exposes list-like access (``cfg[u]`` returns the
    state dict of process ``u``) because that is exactly how guards in the
    paper read the system: "a Boolean predicate involving the state of the
    process and that of its neighbors".

    Mutation discipline
    -------------------
    Guards must treat the configuration as read-only.  The simulator applies
    updates through :meth:`apply`, which replaces whole per-process states;
    observers that need history should request snapshots via :meth:`copy` or
    :meth:`snapshot`.
    """

    __slots__ = ("_states",)

    def __init__(self, states: Sequence[Mapping[str, Any]]):
        self._states: list[dict] = [dict(s) for s in states]

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------
    def __getitem__(self, u: int) -> dict:
        return self._states[u]

    def __len__(self) -> int:
        return len(self._states)

    def __iter__(self) -> Iterator[dict]:
        return iter(self._states)

    def get(self, u: int, var: str) -> Any:
        """Value of variable ``var`` at process ``u``."""
        return self._states[u][var]

    def states(self) -> list[dict]:
        """The live list of state dicts (do not mutate from guards)."""
        return self._states

    def variable(self, var: str) -> list[Any]:
        """The vector of values of ``var`` across all processes."""
        return [s[var] for s in self._states]

    # ------------------------------------------------------------------
    # Mutation (simulator only)
    # ------------------------------------------------------------------
    def apply(self, updates: Mapping[int, Mapping[str, Any]]) -> None:
        """Atomically install per-process variable updates.

        ``updates`` maps process index to a dict of new variable values.
        Unmentioned variables keep their values; unmentioned processes are
        untouched.  This realizes the paper's atomic step semantics when the
        simulator has computed all updates from the frozen pre-step states.
        """
        for u, new_values in updates.items():
            self._states[u].update(new_values)

    def set(self, u: int, var: str, value: Any) -> None:
        """Directly set one variable (used by fault injection, not steps)."""
        self._states[u][var] = value

    # ------------------------------------------------------------------
    # Snapshots and comparison
    # ------------------------------------------------------------------
    def copy(self) -> "Configuration":
        """Deep-enough copy (per-process dicts are copied, values shared)."""
        return Configuration(self._states)

    def snapshot(self) -> tuple[tuple, ...]:
        """A hashable, immutable image of the whole configuration."""
        return tuple(freeze_state(s) for s in self._states)

    def restrict(self, variables: Sequence[str]) -> "Configuration":
        """Projection of the configuration onto a subset of variables.

        This is the paper's ``γ|A`` notation: the configuration of a
        sub-algorithm within a composition.
        """
        return Configuration([{v: s[v] for v in variables} for s in self._states])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return self._states == other._states

    def __repr__(self) -> str:
        if len(self._states) <= 8:
            body = ", ".join(f"{u}:{s}" for u, s in enumerate(self._states))
        else:
            shown = ", ".join(f"{u}:{s}" for u, s in enumerate(self._states[:4]))
            body = f"{shown}, … ({len(self._states)} processes)"
        return f"Configuration({body})"

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, n: int, factory: Callable[[int], Mapping[str, Any]]) -> "Configuration":
        """Construct a configuration by calling ``factory(u)`` per process."""
        return cls([factory(u) for u in range(n)])
