"""Execution traces: step records and optional configuration history.

The complexity analysis of the paper quantifies over *executions*
``e = γ0 γ1 …`` (maximal sequences of steps).  :class:`StepRecord` captures
what happened in one step ``γi ↦ γi+1`` — which processes were activated
with which rules — and :class:`Trace` accumulates records plus optional
configuration snapshots, which the proof-artifact analysis (segments, reset
branches, rule languages) consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

from .configuration import Configuration

__all__ = ["StepRecord", "Trace"]


@dataclass(frozen=True)
class StepRecord:
    """What happened in one atomic step.

    Attributes
    ----------
    index:
        Step number, starting at 0 for the step ``γ0 ↦ γ1``.
    selection:
        Mapping from activated process to the rule label it executed.
    enabled_before:
        Processes enabled in the pre-step configuration (sorted tuple);
        needed for the neutralization-based round accounting.
    enabled_after:
        Processes enabled in the post-step configuration (sorted tuple).
    rounds_completed:
        Number of full rounds completed once this step was applied.
    """

    index: int
    selection: Mapping[int, str]
    enabled_before: tuple[int, ...]
    enabled_after: tuple[int, ...]
    rounds_completed: int

    @property
    def moves(self) -> int:
        """Number of moves in this step (one per activated process)."""
        return len(self.selection)

    def executed(self, u: int) -> bool:
        """Whether process ``u`` moved in this step."""
        return u in self.selection


class Trace:
    """Accumulated execution history.

    Parameters
    ----------
    record_configurations:
        When true, a snapshot of every configuration (including ``γ0``) is
        kept.  This is memory-heavy and intended for analysis and tests on
        small systems; benchmarks leave it off.
    """

    def __init__(self, record_configurations: bool = False):
        self.records: list[StepRecord] = []
        self.record_configurations = record_configurations
        self.configurations: list[Configuration] = []

    # ------------------------------------------------------------------
    def start(self, cfg: Configuration) -> None:
        if self.record_configurations:
            self.configurations.append(cfg.copy())

    def append(self, record: StepRecord, cfg_after: Configuration) -> None:
        self.records.append(record)
        if self.record_configurations:
            self.configurations.append(cfg_after.copy())

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[StepRecord]:
        return iter(self.records)

    def moves_of(self, u: int) -> int:
        """Total number of moves process ``u`` performed."""
        return sum(1 for r in self.records if u in r.selection)

    def rules_of(self, u: int) -> list[str]:
        """The sequence of rule labels ``u`` executed, in order."""
        return [r.selection[u] for r in self.records if u in r.selection]

    def steps_with_rule(self, rule: str) -> list[int]:
        """Indices of steps in which some process executed ``rule``."""
        return [r.index for r in self.records if rule in r.selection.values()]

    def configuration(self, i: int) -> Configuration:
        """Snapshot ``γ_i`` (requires ``record_configurations=True``)."""
        if not self.record_configurations:
            raise ValueError("trace was not recording configurations")
        return self.configurations[i]

    def pairs(self) -> Iterator[tuple[Configuration, StepRecord, Configuration]]:
        """Iterate ``(γi, step, γi+1)`` triples (requires snapshots)."""
        if not self.record_configurations:
            raise ValueError("trace was not recording configurations")
        for i, record in enumerate(self.records):
            yield self.configurations[i], record, self.configurations[i + 1]
