"""Distributed algorithms as guarded-rule programs.

A distributed algorithm in the locally shared memory model is one local
program per process, each a finite set of rules ``⟨label⟩ : ⟨guard⟩ →
⟨action⟩`` (paper, Section 2.2).  :class:`Algorithm` captures exactly that:
subclasses declare variable names and rule labels, and implement ``guard``
and ``execute`` per rule.

Conventions
-----------
* Guards are pure: they read the configuration (their own closed
  neighborhood only — see :attr:`Algorithm.guard_locality`) and must not
  mutate it.
* ``execute`` returns the *new values of the executing process's own
  variables* as a dict; it must not write to other processes (the model
  forbids writing neighbors' registers).
* All algorithms are parameterized by the :class:`~repro.core.graph.Network`
  they run on, fixed at construction.
"""

from __future__ import annotations

import abc
from random import Random
from typing import Any, Mapping

from .configuration import Configuration
from .exceptions import AlgorithmError
from .graph import Network

__all__ = ["Algorithm"]


class Algorithm(abc.ABC):
    """Base class for guarded-rule distributed algorithms.

    Subclasses must provide:

    * :attr:`name` — short human-readable algorithm name;
    * :meth:`variables` — names of the locally shared variables;
    * :meth:`rule_names` — labels of the rules, in a fixed order;
    * :meth:`guard` / :meth:`execute` — rule semantics;
    * :meth:`initial_state` — the pre-defined initial state ``γ_init``;
    * :meth:`random_state` — an arbitrary state drawn from the variable
      domains (used to build the "arbitrary initial configuration" that
      self-stabilization quantifies over, and by fault injection).
    """

    #: Human-readable name, overridden by subclasses.
    name: str = "algorithm"

    #: Maximum graph distance a guard may look at.  Every algorithm in the
    #: paper is distance-1 (closed neighborhood); the simulator relies on
    #: this to maintain the enabled set incrementally.
    guard_locality: int = 1

    #: Whether the rules are pairwise mutually exclusive (at most one rule
    #: enabled per process in any configuration).  SDR proves this
    #: (Lemma 5); when ``True`` the simulator asserts it in strict mode.
    mutually_exclusive_rules: bool = False

    def __init__(self, network: Network):
        self.network = network

    # ------------------------------------------------------------------
    # Declaration
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def variables(self) -> tuple[str, ...]:
        """Names of the locally shared variables of every process."""

    @abc.abstractmethod
    def rule_names(self) -> tuple[str, ...]:
        """Labels of the rules of the local program."""

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def guard(self, rule: str, cfg: Configuration, u: int) -> bool:
        """Evaluate the guard of ``rule`` at process ``u`` in ``cfg``."""

    @abc.abstractmethod
    def execute(self, rule: str, cfg: Configuration, u: int) -> dict[str, Any]:
        """Compute the action of ``rule`` at ``u``.

        Returns the new values of (a subset of) ``u``'s own variables,
        reading neighbor states from the frozen pre-step ``cfg``.
        """

    # ------------------------------------------------------------------
    # Configurations
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def initial_state(self, u: int) -> dict[str, Any]:
        """The pre-defined initial state of process ``u`` (``γ_init``)."""

    @abc.abstractmethod
    def random_state(self, u: int, rng: Random) -> dict[str, Any]:
        """An arbitrary state of ``u``, uniform-ish over variable domains."""

    def rule_set(self):
        """Declarative IR definition of this algorithm, or ``None``.

        Algorithms ported to the rule language return a
        :class:`repro.ir.rules.RuleSet` stating their guards and actions
        once as expression trees; both execution backends are *compiled*
        from it (``compile_dict()`` for the per-process contract,
        ``compile_kernel()`` for the array kernel).  The default is
        ``None``: dict methods only, no kernel backend.
        """
        return None

    def kernel_program(self):
        """Array-backed execution program for :mod:`repro.core.kernel`.

        The default routes through :meth:`rule_set`: algorithms that
        declare one get a generated
        :class:`~repro.core.kernel.programs.KernelProgram` whose guards
        and actions operate on flat per-variable columns; the simulator
        then offers ``backend="kernel"`` (and ``backend="auto"`` prefers
        it).  ``None`` means no rule set (or numpy missing): dict backend
        only.  Overriding this with a handwritten program still works but
        is deprecated — the simulator warns once per algorithm.
        """
        rs = self.rule_set()
        return None if rs is None else rs.compile_kernel()

    def initial_configuration(self) -> Configuration:
        """``γ_init``: every process in its pre-defined initial state."""
        return Configuration.build(self.network.n, self.initial_state)

    def random_configuration(self, rng: Random) -> Configuration:
        """An arbitrary configuration (self-stabilization's starting point)."""
        return Configuration.build(self.network.n, lambda u: self.random_state(u, rng))

    # ------------------------------------------------------------------
    # Derived queries
    # ------------------------------------------------------------------
    def enabled_rules(self, cfg: Configuration, u: int) -> tuple[str, ...]:
        """Labels of the rules enabled at ``u`` in ``cfg``."""
        return tuple(r for r in self.rule_names() if self.guard(r, cfg, u))

    def is_enabled(self, cfg: Configuration, u: int) -> bool:
        """Whether at least one rule of ``u`` is enabled in ``cfg``."""
        return any(self.guard(r, cfg, u) for r in self.rule_names())

    def enabled_processes(self, cfg: Configuration) -> list[int]:
        """The paper's ``Enabled(γ)``: processes with an enabled rule."""
        return [u for u in self.network.processes() if self.is_enabled(cfg, u)]

    def is_terminal(self, cfg: Configuration) -> bool:
        """Whether no rule is enabled at any process."""
        return not any(self.is_enabled(cfg, u) for u in self.network.processes())

    # ------------------------------------------------------------------
    # Validation helpers
    # ------------------------------------------------------------------
    def validate_state(self, state: Mapping[str, Any], u: int) -> None:
        """Check that ``state`` declares exactly this algorithm's variables."""
        expected = set(self.variables())
        actual = set(state)
        if expected != actual:
            raise AlgorithmError(
                f"{self.name}: process {u} state has variables {sorted(actual)}, "
                f"expected {sorted(expected)}"
            )

    def check_rule(self, rule: str) -> None:
        if rule not in self.rule_names():
            raise AlgorithmError(f"{self.name}: unknown rule {rule!r}")

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n={self.network.n})"
