"""Exception hierarchy for the :mod:`repro` package.

All library-raised errors derive from :class:`ReproError` so that callers can
catch everything coming out of the simulator with a single ``except`` clause
while still being able to distinguish configuration mistakes from runtime
model violations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class TopologyError(ReproError):
    """The supplied communication graph is unusable.

    Raised for disconnected graphs, graphs with self-loops, empty graphs, or
    generator parameters that cannot produce a valid topology.
    """


class AlgorithmError(ReproError):
    """An algorithm definition is inconsistent.

    Examples: duplicate variable names in a composition, a rule name that
    does not exist, or an action writing to an undeclared variable.
    """


class DaemonError(ReproError):
    """A daemon violated the scheduling contract.

    A daemon must activate a non-empty subset of the enabled processes and
    must pick, for every activated process, one of its enabled rules.
    """


class ModelViolation(ReproError):
    """The execution violated a property the model guarantees.

    Raised by the simulator's ``paranoid`` cross-checks (e.g. the incremental
    enabled-set maintenance disagreeing with a full recomputation) and by the
    mutual-exclusion assertion for algorithms whose rules are proven pairwise
    mutually exclusive.
    """


class RequirementViolation(ReproError):
    """An input algorithm broke one of SDR's requirements (Section 3.5).

    The runtime requirement checker (:mod:`repro.reset.requirements`) raises
    this when it observes, along a concrete execution, a violation of
    Requirement 1 or 2a-2e of the paper.
    """


class UnbatchableError(ReproError, ValueError):
    """A campaign cell cannot run as one tiled multi-trial batch.

    Raised by the *pre-validation* of batched execution — a program that
    does not tile, a daemon without a vector twin, unexpected trial
    params.  The executor catches exactly this type and falls back to
    serial trials; genuine runtime defects inside a batch propagate.
    """


class NotStabilized(ReproError):
    """An execution exhausted its step budget before reaching its target.

    Carries the number of executed steps for diagnosis.  When a *batched*
    multi-trial execution fails, ``partial`` carries the sibling trials
    that did stabilize as ``(index, result)`` pairs — the executor lands
    those records before propagating the failure, instead of re-running
    the whole cell.
    """

    def __init__(
        self, message: str, steps: int | None = None, partial=(),
    ):
        super().__init__(message)
        self.steps = steps
        self.partial = tuple(partial)
