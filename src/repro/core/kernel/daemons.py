"""Vectorized daemon programs for the fused kernel run loop.

The dict daemons (:mod:`repro.core.daemon`) observe the enabled map as a
``{process: rules}`` dict and return a selection dict — fine at the
boundary, but inside the fused loop both dicts are pure overhead.  Each
class here is the array twin of one scheduler: it consumes *enabled
process indices* (ascending, trial-local) and returns the *chosen*
indices, touching no Python dicts.

The twins are drop-in replacements, not approximations: every one draws
from the **same seeded** :class:`random.Random` **stream in the same
order** as its dict counterpart, so a fused execution is step-for-step
identical to the step-by-step one (the property suite asserts equality
of traces, accounting, and post-run generator state).  Stream identity
is delivered by :class:`RandomStream`:

* :class:`MTStream` mirrors CPython's Mersenne Twister with numpy's
  ``MT19937`` bit generator seeded from ``Random.getstate()`` — the
  ``random()`` doubles (two 32-bit words via ``genrand_res53``), the
  ``getrandbits``-based ``_randbelow`` rejection loop, and Fisher–Yates
  ``shuffle`` are reproduced word for word, and ``close()`` writes the
  advanced state back into the Python ``Random``.  Coin vectors for a
  whole step then cost one ``random_raw`` call instead of one Python
  method call per enabled process.
* :class:`PyStream` is the always-correct fallback (numpy too old, or
  the mirror self-test fails): it simply calls into the wrapped
  ``Random``.

:func:`vectorize` maps a daemon instance to its twin, or ``None`` when
the daemon cannot be vectorized (scripted/adversarial daemons, a
priority-scored central daemon, ``rule_choice="random"``, or a daemon
subclass with overridden behavior) — the simulator then keeps the
step-by-step path.
"""

from __future__ import annotations

from random import Random

import numpy as np

from ..daemon import (
    CentralDaemon,
    Daemon,
    DistributedRandomDaemon,
    LocallyCentralDaemon,
    SynchronousDaemon,
    WeaklyFairDaemon,
)

__all__ = [
    "RandomStream",
    "MTStream",
    "PyStream",
    "open_stream",
    "VectorDaemon",
    "VectorSynchronous",
    "VectorCentral",
    "VectorDistributedRandom",
    "VectorWeaklyFair",
    "VectorLocallyCentral",
    "vectorize",
]

#: 1 / 2**53 — the genrand_res53 scale factor of CPython's random().
_RES53 = 1.0 / 9007199254740992.0


# ======================================================================
# Random streams
# ======================================================================
class RandomStream:
    """Draws from a ``Random``'s stream; vectorized where possible.

    The three operations are exactly the ones the daemon zoo performs:
    ``random_vec(k)`` (k independent coins), ``randrange(n)`` (CPython's
    ``_randbelow`` consumption), and ``shuffle(list)``.  ``close()``
    must leave the wrapped ``Random`` exactly where a step-by-step
    execution would have left it.
    """

    def random_vec(self, k: int) -> np.ndarray:
        raise NotImplementedError

    def randrange(self, n: int) -> int:
        raise NotImplementedError

    def shuffle(self, x: list) -> None:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


class PyStream(RandomStream):
    """Fallback stream: every draw goes through the Python ``Random``."""

    __slots__ = ("rng",)

    def __init__(self, rng: Random):
        self.rng = rng

    def random_vec(self, k: int) -> np.ndarray:
        random = self.rng.random
        return np.fromiter((random() for _ in range(k)), dtype=np.float64, count=k)

    def randrange(self, n: int) -> int:
        return self.rng.randrange(n)

    def shuffle(self, x: list) -> None:
        self.rng.shuffle(x)

    def close(self) -> None:
        pass


class MTStream(RandomStream):
    """numpy mirror of a CPython ``Random``'s Mersenne Twister stream.

    ``numpy.random.Generator(MT19937).random(k)`` produces *bit-for-bit*
    the sequence ``[rng.random() for _ in range(k)]`` — both implement
    ``genrand_res53`` over the same twister — so a whole step's coins are
    one C call.  The bit generator is never pre-fetched: its position is
    always the exact number of 32-bit words the mirrored ``Random`` would
    have consumed, making ``close()`` a direct state write-back.
    """

    __slots__ = ("_rng", "_gauss", "_bg", "_gen", "_dirty")

    def __init__(self, rng: Random):
        version, internal, gauss = rng.getstate()
        if version != 3:
            raise ValueError(f"unsupported Random state version {version}")
        self._rng = rng
        self._gauss = gauss
        self._bg = np.random.MT19937()
        self._bg.state = {
            "bit_generator": "MT19937",
            "state": {
                "key": np.array(internal[:-1], dtype=np.uint32),
                "pos": internal[-1],
            },
        }
        self._gen = np.random.Generator(self._bg)
        self._dirty = False

    # ------------------------------------------------------------------
    def random_vec(self, k: int) -> np.ndarray:
        """``k`` doubles, exactly as ``[rng.random() for _ in range(k)]``."""
        self._dirty = True
        return self._gen.random(k)

    def randrange(self, n: int) -> int:
        """CPython's ``_randbelow_with_getrandbits`` word for word."""
        k = n.bit_length()
        if k > 32:  # pragma: no cover - enabled sets are far smaller
            raise OverflowError("randrange bound exceeds one MT word")
        shift = 32 - k
        self._dirty = True
        raw = self._bg.random_raw
        while True:
            r = int(raw(1)[0]) >> shift
            if r < n:
                return r

    def shuffle(self, x: list) -> None:
        """Fisher–Yates exactly as ``Random.shuffle``.

        One raw word per draw keeps the stream exact but costs a C call
        per element — scalar-heavy daemons use :class:`PyStream` instead.
        """
        randbelow = self.randrange
        for i in reversed(range(1, len(x))):
            j = randbelow(i + 1)
            x[i], x[j] = x[j], x[i]

    def close(self) -> None:
        """Write the advanced twister state back into the ``Random``."""
        if not self._dirty:
            return
        state = self._bg.state["state"]
        internal = tuple(int(w) for w in state["key"]) + (int(state["pos"]),)
        self._rng.setstate((3, internal, self._gauss))
        self._dirty = False


_MIRROR_OK: bool | None = None


def _mirror_ok() -> bool:
    """One-time self-test that :class:`MTStream` tracks this interpreter."""
    global _MIRROR_OK
    if _MIRROR_OK is None:
        try:
            probe, ref = Random(987654321), Random(987654321)
            stream = MTStream(probe)
            ok = np.array_equal(
                stream.random_vec(8),
                np.array([ref.random() for _ in range(8)]),
            )
            ok = ok and all(stream.randrange(7) == ref.randrange(7) for _ in range(8))
            a, b = list(range(23)), list(range(23))
            stream.shuffle(a)
            ref.shuffle(b)
            ok = ok and a == b
            stream.close()
            ok = ok and probe.getstate() == ref.getstate()
            _MIRROR_OK = bool(ok)
        except Exception:
            _MIRROR_OK = False
    return _MIRROR_OK


def open_stream(rng: Random, scalar: bool = False) -> RandomStream:
    """The fastest stream whose draws provably match ``rng``'s.

    ``scalar=True`` requests a stream for scalar-heavy consumers
    (shuffles, single randranges): the Python ``Random`` itself wins
    there, so no mirror is set up.  The mirror requires a *vanilla*
    ``random.Random`` — exact type, like :func:`vectorize`'s daemon
    checks — since a subclass overriding ``random()`` (or
    ``SystemRandom``, which has no twister state at all) would make the
    mirrored stream diverge from the one step-by-step execution draws;
    such generators get the always-correct :class:`PyStream`.
    """
    if not scalar and type(rng) is Random and _mirror_ok():
        return MTStream(rng)
    return PyStream(rng)


# ======================================================================
# Vector daemons
# ======================================================================
class VectorDaemon:
    """Array twin of one dict daemon: picks the activated index vector.

    ``select`` receives the enabled process indices in ascending order
    (trial-local) and returns the chosen subset, ascending, non-empty.
    Rule choice is not part of the contract: fused execution requires
    ``rule_choice == "first"``, where the rule is determined by the
    guard masks alone.
    """

    #: Whether ``select`` ever draws from the stream (synchronous does
    #: not, letting callers skip stream setup entirely).
    uses_rng: bool = True

    #: Whether draws are scalar-dominated (shuffles, single randranges):
    #: such daemons get a plain :class:`PyStream`, coin-vector daemons
    #: the :class:`MTStream` mirror.
    scalar_stream: bool = False

    def select(self, enabled_idx: np.ndarray, stream: RandomStream) -> np.ndarray:
        raise NotImplementedError

    # State bridging with the dict daemon instance (weakly-fair only).
    def load_state(self, daemon: Daemon) -> None:
        """Import mutable scheduling state from the dict daemon."""

    def store_state(self, daemon: Daemon) -> None:
        """Export mutable scheduling state back into the dict daemon."""

    def refresh_topology(self, csr) -> None:
        """Adopt a churn-mutated adjacency (no-op for topology-blind
        daemons).  The fused loop calls this after every applied churn
        occurrence with the program's patched
        :class:`~repro.core.kernel.csr.CSRAdjacency`."""


class VectorSynchronous(VectorDaemon):
    """Everybody moves; no randomness."""

    uses_rng = False

    def select(self, enabled_idx, stream):
        return enabled_idx


class VectorCentral(VectorDaemon):
    """One uniformly random enabled process per step (no priority)."""

    scalar_stream = True

    def select(self, enabled_idx, stream):
        j = stream.randrange(enabled_idx.shape[0])
        return enabled_idx[j : j + 1]


class VectorDistributedRandom(VectorDaemon):
    """Independent coin per enabled process, exactly one draw each."""

    __slots__ = ("p",)

    def __init__(self, p: float):
        self.p = p

    def select(self, enabled_idx, stream):
        coins = stream.random_vec(enabled_idx.shape[0])
        chosen = enabled_idx[coins < self.p]
        if chosen.shape[0] == 0:
            j = stream.randrange(enabled_idx.shape[0])
            chosen = enabled_idx[j : j + 1]
        return chosen


class VectorWeaklyFair(VectorDaemon):
    """Coin daemon with bounded waiting, counters as one int column.

    The dict daemon short-circuits ``overdue or rng.random() < p`` — an
    overdue process consumes *no* coin — so the twin draws coins only
    for the non-overdue enabled processes, in ascending order.
    """

    __slots__ = ("p", "patience", "_waiting", "_mask", "_last_enabled")

    def __init__(self, p: float, patience: int, n: int):
        self.p = p
        self.patience = patience
        self._waiting = np.zeros(n, dtype=np.int64)
        self._mask = np.zeros(n, dtype=np.bool_)
        self._last_enabled: np.ndarray | None = None

    def select(self, enabled_idx, stream):
        mask, waiting = self._mask, self._waiting
        mask.fill(False)
        mask[enabled_idx] = True
        np.add(waiting, 1, out=waiting, where=mask)
        waiting[~mask] = 0
        self._last_enabled = enabled_idx

        overdue = waiting[enabled_idx] >= self.patience
        accept = overdue
        fresh = ~overdue
        count = int(fresh.sum())
        if count:
            accept = overdue.copy()
            accept[fresh] = stream.random_vec(count) < self.p
        chosen = enabled_idx[accept]
        if chosen.shape[0] == 0:
            j = stream.randrange(enabled_idx.shape[0])
            chosen = enabled_idx[j : j + 1]
        waiting[chosen] = 0
        return chosen

    def load_state(self, daemon):
        self._waiting.fill(0)
        for u, count in daemon._waiting.items():
            self._waiting[u] = count
        self._last_enabled = None

    def store_state(self, daemon):
        if self._last_enabled is not None:
            waiting = self._waiting
            daemon._waiting = {
                int(u): int(waiting[u]) for u in self._last_enabled.tolist()
            }


class VectorLocallyCentral(VectorDaemon):
    """Greedy maximal independent set over a shuffled enabled order."""

    scalar_stream = True

    __slots__ = ("_indptr", "_indices", "_blocked")

    def __init__(self, network):
        indptr, indices = network.csr()
        self._indptr = indptr
        self._indices = indices
        self._blocked = np.zeros(network.n, dtype=np.bool_)

    def select(self, enabled_idx, stream):
        order = enabled_idx.tolist()
        stream.shuffle(order)
        blocked = self._blocked
        blocked.fill(False)
        indptr, indices = self._indptr, self._indices
        chosen = []
        for u in order:
            if blocked[u]:
                continue
            chosen.append(u)
            blocked[u] = True
            blocked[indices[indptr[u] : indptr[u + 1]]] = True
        chosen.sort()
        return np.asarray(chosen, dtype=np.int64)

    def refresh_topology(self, csr) -> None:
        """Track churn: the dict twin reads ``network.neighbors`` live,
        so the snapshot must follow every topology mutation."""
        self._indptr = csr.indptr
        self._indices = csr.indices


def vectorize(daemon: Daemon, network) -> VectorDaemon | None:
    """The array twin of ``daemon``, or ``None`` when not vectorizable.

    Exact-type checks on purpose: a subclass overriding ``select`` would
    silently change scheduling, so unknown types fall back to the
    step-by-step path rather than guessing.
    """
    if daemon.rule_choice != "first":
        return None
    kind = type(daemon)
    if kind is SynchronousDaemon:
        return VectorSynchronous()
    if kind is CentralDaemon and daemon._priority is None:
        return VectorCentral()
    if kind is DistributedRandomDaemon:
        return VectorDistributedRandom(daemon.p)
    if kind is WeaklyFairDaemon:
        return VectorWeaklyFair(daemon.p, daemon.patience, network.n)
    if kind is LocallyCentralDaemon:
        return VectorLocallyCentral(network)
    return None
