"""Typed variable schemas: the bridge between state dicts and columns.

The dict backend stores one ``{variable: value}`` dict per process.  The
array backend instead keeps one flat column (numpy array) per variable,
indexed by process id.  A :class:`Schema` declares, per variable, how its
values map to machine integers/booleans, and provides lossless round-trip
conversion between the two representations — the paranoid lockstep check
and the trace machinery rely on ``decode(encode(cfg)) == cfg`` exactly
(python ``int``/``bool``/original enum objects come back out, never numpy
scalars).
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

import numpy as np

from ..configuration import Configuration
from ..exceptions import AlgorithmError

__all__ = ["Var", "Schema"]


class Var:
    """One locally shared variable with a typed column representation.

    ``kind`` is one of:

    * ``"int"`` — values are (unbounded-in-principle) python ints, stored
      as int64;
    * ``"bool"`` — python bools, stored as numpy bool;
    * ``"enum"`` — values from a fixed tuple ``values``, stored as the
      int8 index into that tuple;
    * ``"opt_index"`` — a process index or ``None`` (the paper's ⊥),
      stored as int64 with ``-1`` for ``None``.
    """

    __slots__ = ("name", "kind", "dtype", "values", "_code_of")

    def __init__(self, name: str, kind: str, values: tuple = ()):
        if kind not in ("int", "bool", "enum", "opt_index"):
            raise AlgorithmError(f"unknown schema variable kind {kind!r}")
        self.name = name
        self.kind = kind
        self.values = values
        if kind == "bool":
            self.dtype = np.bool_
        elif kind == "enum":
            if not values:
                raise AlgorithmError(f"enum variable {name!r} needs values")
            self.dtype = np.int8
        else:
            self.dtype = np.int64
        self._code_of = {v: i for i, v in enumerate(values)} if kind == "enum" else None

    # ------------------------------------------------------------------
    @classmethod
    def int(cls, name: str) -> "Var":
        return cls(name, "int")

    @classmethod
    def bool(cls, name: str) -> "Var":
        return cls(name, "bool")

    @classmethod
    def enum(cls, name: str, values: Iterable) -> "Var":
        return cls(name, "enum", tuple(values))

    @classmethod
    def opt_index(cls, name: str) -> "Var":
        return cls(name, "opt_index")

    # ------------------------------------------------------------------
    def encode_column(self, states: list[Mapping[str, Any]]) -> np.ndarray:
        name, n = self.name, len(states)
        if self.kind == "bool":
            return np.fromiter((s[name] for s in states), dtype=np.bool_, count=n)
        if self.kind == "enum":
            code_of = self._code_of
            try:
                return np.fromiter(
                    (code_of[s[name]] for s in states), dtype=np.int8, count=n
                )
            except KeyError as bad:
                raise AlgorithmError(
                    f"value {bad} of variable {name!r} is outside the "
                    f"declared enum domain {self.values}"
                ) from None
        if self.kind == "opt_index":
            return np.fromiter(
                (-1 if s[name] is None else s[name] for s in states),
                dtype=np.int64,
                count=n,
            )
        return np.fromiter((s[name] for s in states), dtype=np.int64, count=n)

    def encode_value(self, value: Any) -> int:
        """One state value → its machine integer (see :meth:`encode_column`)."""
        if self.kind == "enum":
            try:
                return self._code_of[value]
            except KeyError:
                raise AlgorithmError(
                    f"value {value!r} of variable {self.name!r} is outside "
                    f"the declared enum domain {self.values}"
                ) from None
        if self.kind == "opt_index":
            return -1 if value is None else value
        return value

    def decode_value(self, code) -> Any:
        """One machine integer → the state value (inverse of :meth:`encode_value`)."""
        if self.kind == "enum":
            return self.values[code]
        if self.kind == "opt_index":
            return None if code < 0 else int(code)
        if self.kind == "bool":
            return bool(code)
        return int(code)

    def decode_column(self, column: np.ndarray) -> list:
        raw = column.tolist()  # python ints/bools
        if self.kind == "enum":
            values = self.values
            return [values[c] for c in raw]
        if self.kind == "opt_index":
            return [None if c < 0 else c for c in raw]
        return raw

    def __repr__(self) -> str:
        return f"Var({self.name!r}, {self.kind!r})"


class Schema:
    """Ordered collection of :class:`Var` declarations for one algorithm."""

    __slots__ = ("vars", "names")

    def __init__(self, *variables: Var):
        self.vars: tuple[Var, ...] = tuple(variables)
        self.names: tuple[str, ...] = tuple(v.name for v in self.vars)
        if len(set(self.names)) != len(self.names):
            raise AlgorithmError(f"duplicate variables in schema: {self.names}")

    def encode(self, cfg: Configuration) -> dict[str, np.ndarray]:
        """Configuration → one typed column per variable."""
        states = cfg.states()
        return {var.name: var.encode_column(states) for var in self.vars}

    def decode(self, columns: Mapping[str, np.ndarray]) -> Configuration:
        """Columns → Configuration with plain python values."""
        decoded = {var.name: var.decode_column(columns[var.name]) for var in self.vars}
        n = len(next(iter(decoded.values()))) if decoded else 0
        names = self.names
        return Configuration(
            [{name: decoded[name][u] for name in names} for u in range(n)]
        )

    # ------------------------------------------------------------------
    # Batched (tiled) layouts
    # ------------------------------------------------------------------
    def encode_tiled(self, cfgs) -> dict[str, np.ndarray]:
        """Several same-size configurations → flat trial-major columns.

        Trial ``t`` occupies slots ``[t·n, (t+1)·n)``.  Values of
        ``opt_index`` variables are *globalized* (trial-local process
        index ``p`` becomes ``t·n + p``) so programs can keep comparing
        them against the tiled adjacency; :meth:`decode_block` reverses
        the offset.
        """
        n = len(cfgs[0])
        state_lists = [cfg.states() for cfg in cfgs]
        out: dict[str, np.ndarray] = {}
        for var in self.vars:
            column = np.concatenate(
                [var.encode_column(states) for states in state_lists]
            )
            if var.kind == "opt_index":
                offsets = np.repeat(
                    np.arange(len(cfgs), dtype=np.int64) * n, n
                )
                column = np.where(column >= 0, column + offsets, column)
            out[var.name] = column
        return out

    def decode_block(
        self, columns: Mapping[str, np.ndarray], trial: int, n: int
    ) -> Configuration:
        """One trial's block of a tiled layout → a trial-local Configuration."""
        lo, hi = trial * n, (trial + 1) * n
        decoded = {}
        for var in self.vars:
            block = columns[var.name][lo:hi]
            if var.kind == "opt_index":
                block = np.where(block >= 0, block - lo, block)
            decoded[var.name] = var.decode_column(block)
        names = self.names
        return Configuration(
            [{name: decoded[name][u] for name in names} for u in range(n)]
        )

    def __repr__(self) -> str:
        return f"Schema({', '.join(map(repr, self.vars))})"
