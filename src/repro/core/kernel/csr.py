"""CSR adjacency with vectorized neighborhood reductions.

Guards in the locally shared memory model are neighborhood quantifiers:
``∀v ∈ N(u)``, ``∃v ∈ N(u)``, ``#{v ∈ N(u) | …}``, ``min …``.  With the
adjacency flattened to CSR (``indptr``/``indices`` from
:meth:`repro.core.graph.Network.csr`), each such quantifier over *every*
process at once becomes one gather over the edge array plus one segmented
reduction — no python-level loop over processes or neighbors.

The reductions use ``ufunc.reduceat`` over the edge array.  ``reduceat``
mis-handles empty segments, but a :class:`~repro.core.graph.Network` is
connected, so for ``n ≥ 2`` every process has degree ≥ 1 and every
segment is non-empty; the single-process network (no edges at all) is
special-cased to the vacuous value of each quantifier.
"""

from __future__ import annotations

import numpy as np

__all__ = ["CSRAdjacency"]


class CSRAdjacency:
    """Flattened neighborhoods of a :class:`~repro.core.graph.Network`.

    Attributes
    ----------
    indptr, indices:
        CSR layout; ``indices[indptr[u]:indptr[u+1]]`` = ``N(u)`` ascending.
    edge_src:
        For each edge slot, the process whose neighborhood it belongs to
        (``indices[i]`` is a neighbor of ``edge_src[i]``).
    deg:
        Per-process degree vector.
    """

    __slots__ = ("n", "indptr", "indices", "edge_src", "deg", "_starts", "_no_edges")

    def __init__(self, network):
        indptr, indices = network.csr()
        self.n: int = network.n
        self.indptr = indptr
        self.indices = indices
        self.deg = np.diff(indptr)
        self.edge_src = np.repeat(np.arange(self.n, dtype=np.int64), self.deg)
        self._starts = indptr[:-1]
        self._no_edges = indices.shape[0] == 0  # the single-process network

    # ------------------------------------------------------------------
    # Gathers
    # ------------------------------------------------------------------
    def pull(self, column: np.ndarray) -> np.ndarray:
        """Per edge slot: the *neighbor's* value of ``column``."""
        return column[self.indices]

    def own(self, column: np.ndarray) -> np.ndarray:
        """Per edge slot: the *owner's* value of ``column``."""
        return column[self.edge_src]

    # ------------------------------------------------------------------
    # Segmented reductions (edge space → process space)
    # ------------------------------------------------------------------
    def count_neigh(self, edge_flags: np.ndarray) -> np.ndarray:
        """``#{v ∈ N(u) | flag}`` for every ``u`` (int64 vector)."""
        if self._no_edges:
            return np.zeros(self.n, dtype=np.int64)
        return np.add.reduceat(edge_flags.astype(np.int64, copy=False), self._starts)

    def all_neigh(self, edge_flags: np.ndarray) -> np.ndarray:
        """``∀v ∈ N(u): flag`` (vacuously true for isolated processes)."""
        if self._no_edges:
            return np.ones(self.n, dtype=np.bool_)
        return np.logical_and.reduceat(edge_flags, self._starts)

    def any_neigh(self, edge_flags: np.ndarray) -> np.ndarray:
        """``∃v ∈ N(u): flag``."""
        if self._no_edges:
            return np.zeros(self.n, dtype=np.bool_)
        return np.logical_or.reduceat(edge_flags, self._starts)

    def min_neigh(
        self, edge_values: np.ndarray, edge_mask: np.ndarray, default
    ) -> np.ndarray:
        """``min{value(v) | v ∈ N(u), mask}`` with ``default`` when empty."""
        masked = np.where(edge_mask, edge_values, default)
        out = np.full(self.n, default, dtype=masked.dtype)
        np.minimum.at(out, self.edge_src, masked)
        return out
