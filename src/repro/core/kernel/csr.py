"""CSR adjacency with vectorized neighborhood reductions.

Guards in the locally shared memory model are neighborhood quantifiers:
``∀v ∈ N(u)``, ``∃v ∈ N(u)``, ``#{v ∈ N(u) | …}``, ``min …``.  With the
adjacency flattened to CSR (``indptr``/``indices`` from
:meth:`repro.core.graph.Network.csr`), each such quantifier over *every*
process at once becomes one gather over the edge array plus one segmented
reduction — no python-level loop over processes or neighbors.

The reductions use ``ufunc.reduceat`` over the edge array.  ``reduceat``
mis-handles empty segments, so that fast path is reserved for layouts
where every process has degree ≥ 1 (any connected network with
``n ≥ 2``).  Layouts with isolated processes — the zero-edge network,
or any graph after crash/drop-edge churn (:meth:`apply_delta`) — take a
``ufunc.at`` scatter path instead, which hands every quantifier its
vacuous value on empty neighborhoods (count 0, ∀ true, ∃ false, fold
default).
"""

from __future__ import annotations

import numpy as np

__all__ = ["CSRAdjacency"]


class CSRAdjacency:
    """Flattened neighborhoods of a :class:`~repro.core.graph.Network`.

    Attributes
    ----------
    indptr, indices:
        CSR layout; ``indices[indptr[u]:indptr[u+1]]`` = ``N(u)`` ascending.
    edge_src:
        For each edge slot, the process whose neighborhood it belongs to
        (``indices[i]`` is a neighbor of ``edge_src[i]``).
    deg:
        Per-process degree vector.
    """

    __slots__ = (
        "n", "indptr", "indices", "edge_src", "deg", "_starts", "_no_edges",
        "_has_empty", "_stride",
    )

    def __init__(self, network):
        indptr, indices = network.csr()
        self._init_from(indptr, indices, network.n)

    def _init_from(self, indptr, indices, n: int) -> None:
        self.n: int = n
        self.indptr = indptr
        self.indices = indices
        self.deg = np.diff(indptr)
        self.edge_src = np.repeat(np.arange(self.n, dtype=np.int64), self.deg)
        self._starts = indptr[:-1]
        self._no_edges = indices.shape[0] == 0  # zero edges at all
        #: Any degree-0 process present → ``reduceat`` is off the table
        #: (it mis-handles empty segments); reductions scatter with
        #: ``ufunc.at`` instead.
        self._has_empty = bool(self._no_edges or not self.deg.all())
        #: Constant degree of a regular graph (0 = irregular).  For small
        #: constant degrees the segmented reductions specialize to strided
        #: element-wise chains (``flags[0::d] op flags[1::d] op …``), which
        #: beat ``reduceat``'s generic segment loop several-fold — rings
        #: and tori, the benchmark workhorses, live on this path.
        self._stride = 0
        if not self._no_edges:
            d = int(self.deg[0])
            if 2 <= d <= 4 and bool((self.deg == d).all()):
                self._stride = d

    @classmethod
    def from_arrays(cls, indptr, indices, n: int) -> "CSRAdjacency":
        """Build directly from CSR arrays (tiled batch layouts)."""
        csr = cls.__new__(cls)
        csr._init_from(indptr, indices, n)
        return csr

    def tile(self, copies: int) -> "CSRAdjacency":
        """Block-diagonal replication: ``copies`` disjoint copies.

        Trial ``t`` of a batch owns processes ``[t·n, (t+1)·n)``; its
        adjacency is this graph's shifted by ``t·n``.  Per-block
        connectivity is preserved, so every degree (and the ``reduceat``
        non-empty-segment requirement) carries over.
        """
        if copies == 1:
            return self
        n = self.n
        offsets = np.arange(copies, dtype=np.int64)
        indices = (self.indices[None, :] + (offsets * n)[:, None]).ravel()
        block = np.diff(self.indptr)
        indptr = np.zeros(copies * n + 1, dtype=np.int64)
        np.cumsum(np.tile(block, copies), out=indptr[1:])
        return CSRAdjacency.from_arrays(indptr, indices, copies * n)

    def apply_delta(self, drops, adds) -> None:
        """Patch the adjacency in place: remove ``drops``, insert ``adds``.

        Both are iterables of undirected ``(u, v)`` index pairs; callers
        (the churn scheduler) guarantee drops exist and adds don't.  The
        edit stays in array space — edges are encoded as directed keys
        ``u·n + v``, filtered/merged, and the CSR layout re-derived —
        so the result is exactly a from-scratch rebuild of the mutated
        edge set, including ``_stride`` and the empty-segment guards.
        """
        n = self.n
        keys = self.edge_src * n + self.indices
        if drops:
            dead = np.fromiter(
                (p * n + q for u, v in drops for p, q in ((u, v), (v, u))),
                dtype=np.int64,
            )
            keys = keys[np.isin(keys, dead, invert=True)]
        if adds:
            born = np.fromiter(
                (p * n + q for u, v in adds for p, q in ((u, v), (v, u))),
                dtype=np.int64,
            )
            keys = np.concatenate((keys, born))
            keys.sort()
        src, dst = np.divmod(keys, n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(src, minlength=n), out=indptr[1:])
        self._init_from(indptr, dst, n)

    # ------------------------------------------------------------------
    # Gathers
    # ------------------------------------------------------------------
    def pull(self, column: np.ndarray) -> np.ndarray:
        """Per edge slot: the *neighbor's* value of ``column``."""
        return column[self.indices]

    def own(self, column: np.ndarray) -> np.ndarray:
        """Per edge slot: the *owner's* value of ``column``."""
        return column[self.edge_src]

    # ------------------------------------------------------------------
    # Segmented reductions (edge space → process space)
    # ------------------------------------------------------------------
    def count_neigh(self, edge_flags: np.ndarray) -> np.ndarray:
        """``#{v ∈ N(u) | flag}`` for every ``u`` (int64 vector)."""
        if self._no_edges:
            return np.zeros(self.n, dtype=np.int64)
        d = self._stride
        if d:
            out = edge_flags[0::d].astype(np.int64)
            for lane in range(1, d):
                out += edge_flags[lane::d]
            return out
        if self._has_empty:
            out = np.zeros(self.n, dtype=np.int64)
            np.add.at(out, self.edge_src, edge_flags.astype(np.int64, copy=False))
            return out
        return np.add.reduceat(edge_flags.astype(np.int64, copy=False), self._starts)

    def all_neigh(self, edge_flags: np.ndarray) -> np.ndarray:
        """``∀v ∈ N(u): flag`` (vacuously true for isolated processes)."""
        if self._no_edges:
            return np.ones(self.n, dtype=np.bool_)
        d = self._stride
        if d:
            out = edge_flags[0::d] & edge_flags[1::d]
            for lane in range(2, d):
                out &= edge_flags[lane::d]
            return out
        if self._has_empty:
            out = np.ones(self.n, dtype=np.bool_)
            np.logical_and.at(out, self.edge_src, edge_flags)
            return out
        return np.logical_and.reduceat(edge_flags, self._starts)

    def any_neigh(self, edge_flags: np.ndarray) -> np.ndarray:
        """``∃v ∈ N(u): flag``."""
        if self._no_edges:
            return np.zeros(self.n, dtype=np.bool_)
        d = self._stride
        if d:
            out = edge_flags[0::d] | edge_flags[1::d]
            for lane in range(2, d):
                out |= edge_flags[lane::d]
            return out
        if self._has_empty:
            out = np.zeros(self.n, dtype=np.bool_)
            np.logical_or.at(out, self.edge_src, edge_flags)
            return out
        return np.logical_or.reduceat(edge_flags, self._starts)

    def min_neigh(
        self, edge_values: np.ndarray, edge_mask: np.ndarray, default
    ) -> np.ndarray:
        """``min{value(v) | v ∈ N(u), mask}`` with ``default`` when empty.

        ``default`` applies exactly where no neighbor passes the mask —
        it never competes with real candidates, so it may lie *below*
        them (matching ``min(candidates, default=...)``).
        """
        return self._fold_neigh(np.minimum, edge_values, edge_mask, default)

    def max_neigh(
        self, edge_values: np.ndarray, edge_mask: np.ndarray, default
    ) -> np.ndarray:
        """``max{value(v) | v ∈ N(u), mask}`` with ``default`` when empty.

        Like :meth:`min_neigh`, ``default`` never competes with real
        candidates and may lie above them.
        """
        return self._fold_neigh(np.maximum, edge_values, edge_mask, default)

    def _fold_neigh(self, fold, edge_values, edge_mask, default):
        # Fold with the dtype's identity element, then substitute the
        # caller's default where the mask admitted no neighbor at all.
        values = np.asarray(edge_values)
        dtype = values.dtype if values.dtype != np.bool_ else np.dtype(np.int64)
        bound = np.iinfo(dtype)
        identity = bound.max if fold is np.minimum else bound.min
        masked = np.where(edge_mask, values, identity)
        d = self._stride
        if d:
            out = fold(masked[0::d], masked[1::d])
            for lane in range(2, d):
                fold(out, masked[lane::d], out=out)
        else:
            out = np.full(self.n, identity, dtype=masked.dtype)
            fold.at(out, self.edge_src, masked)
        return np.where(self.any_neigh(edge_mask), out, default)
