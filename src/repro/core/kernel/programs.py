"""Program interfaces of the array-backed execution kernel.

A :class:`KernelProgram` is the flattened counterpart of an
:class:`~repro.core.algorithm.Algorithm`: instead of per-process
``guard``/``execute`` calls over state dicts, it evaluates every rule's
guard as a boolean mask over *all* processes at once and applies a rule's
action to a whole index vector of selected processes, reading the frozen
pre-step columns and writing the next-step columns (the engine's double
buffer realizes composite atomicity).

:class:`InputKernelProgram` extends the contract with the SDR input
interface (vectorized ``P_ICorrect``/``P_reset`` masks and the ``reset``
macro) so SDR's kernel program can compose with a ported input algorithm
exactly like :class:`~repro.reset.sdr.SDR` composes with an
:class:`~repro.reset.interface.InputAlgorithm`.
"""

from __future__ import annotations

import abc
from typing import Mapping

import numpy as np

from .schema import Schema

__all__ = ["KernelProgram", "InputKernelProgram", "StandaloneInputProgram"]

Columns = Mapping[str, np.ndarray]


class KernelProgram(abc.ABC):
    """Vectorized guards and actions over typed columns.

    Attributes
    ----------
    schema:
        The :class:`~repro.core.kernel.schema.Schema` describing the
        columns this program reads and writes.
    rules:
        Rule labels, in the same fixed order as the dict-backend
        algorithm (`Algorithm.rule_names`) — label-for-label equal, so
        the two backends are interchangeable in traces and accounting.
    """

    schema: Schema
    rules: tuple[str, ...]

    @abc.abstractmethod
    def guard_masks(self, cols: Columns) -> dict[str, np.ndarray]:
        """Boolean enabled-mask per rule, evaluated on every process.

        A rule whose guard is everywhere false *may* be omitted from the
        dict — consumers treat a missing key as an all-false mask.  Fast
        paths use this to skip materializing constant masks (e.g. SDR's
        four reset rules in a normal configuration).
        """

    @abc.abstractmethod
    def apply(self, rule: str, idx: np.ndarray, read: Columns, write: Columns) -> None:
        """Execute ``rule`` at the processes in ``idx``.

        Reads come from ``read`` (the frozen pre-step columns), writes go
        to ``write``; a process's action may only write its own slots.
        """

    def tiled(self, copies: int) -> "KernelProgram | None":
        """This program over ``copies`` disjoint copies of its network.

        Batched multi-trial execution runs a whole campaign cell as one
        simulation: trial ``t`` owns the process block ``[t·n, (t+1)·n)``
        of a block-diagonal adjacency, so the *same* guard/action code
        serves every trial in one numpy pass.  Per-process constants
        (identifiers, thresholds) are tiled; ``schema`` and ``rules`` are
        shared.  ``None`` (the default) means the program does not
        support tiling and the cell falls back to serial trials.
        """
        return None


class InputKernelProgram(KernelProgram):
    """Kernel port of an SDR input algorithm (the paper's ``I``).

    ``guard_masks`` here takes the host's ``P_Clean`` mask explicitly —
    standalone execution passes all-true (see
    :class:`StandaloneInputProgram`), SDR passes its computed mask.
    """

    @abc.abstractmethod
    def icorrect_mask(self, cols: Columns) -> np.ndarray:
        """Vectorized ``P_ICorrect``."""

    @abc.abstractmethod
    def reset_mask(self, cols: Columns) -> np.ndarray:
        """Vectorized ``P_reset``."""

    @abc.abstractmethod
    def guard_masks(  # type: ignore[override]
        self, cols: Columns, clean: np.ndarray | None = None
    ) -> dict[str, np.ndarray]:
        """Rule masks given the host's ``P_Clean`` mask (``None`` = all true)."""

    @abc.abstractmethod
    def apply_reset(self, idx: np.ndarray, read: Columns, write: Columns) -> None:
        """The macro ``reset(u)`` on a vector of processes."""

    def host_masks(
        self, cols: Columns, clean: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, dict[str, np.ndarray]]:
        """``(P_ICorrect, P_reset, rule masks)`` in one evaluation.

        The host (SDR) needs all three every step; ports override this to
        share intermediate arrays instead of recomputing them per mask.
        """
        return (
            self.icorrect_mask(cols),
            self.reset_mask(cols),
            self.guard_masks(cols, clean),
        )

    def as_standalone(self) -> "StandaloneInputProgram":
        """This input program run without SDR (``P_Clean ≡ true``)."""
        return StandaloneInputProgram(self)


class StandaloneInputProgram(KernelProgram):
    """Adapter: an input program executed under the trivial host."""

    __slots__ = ("inner", "schema", "rules")

    def __init__(self, inner: InputKernelProgram):
        self.inner = inner
        self.schema = inner.schema
        self.rules = inner.rules

    def guard_masks(self, cols: Columns) -> dict[str, np.ndarray]:
        return self.inner.guard_masks(cols, None)

    def apply(self, rule: str, idx: np.ndarray, read: Columns, write: Columns) -> None:
        self.inner.apply(rule, idx, read, write)

    def tiled(self, copies: int) -> "StandaloneInputProgram | None":
        inner = self.inner.tiled(copies)
        return None if inner is None else StandaloneInputProgram(inner)
