"""Batched multi-trial execution: a trial axis on the state columns.

A campaign cell — one ``(algorithm, topology, n, scenario, daemon)``
combination — differs across its replicate trials only in the seed.  This
module runs all ``T`` replicates as *one* simulation over tiled columns:
trial ``t`` owns the process block ``[t·n, (t+1)·n)`` of a block-diagonal
adjacency (:meth:`~repro.core.kernel.csr.CSRAdjacency.tile`), so one
guard evaluation, one rule application, and one accounting pass serve
every trial per step.  Only the daemons stay per-trial: each trial draws
from its *own* seeded ``Random`` stream in exactly the serial order, so
every trial's trajectory — selections, moves, rounds, stopping step — is
identical to its serial run, record for record.

Trials stop independently (convergence mask, terminal block, or budget)
and freeze: a frozen block receives no further selections, so its columns
and accounting stay exactly at the stopping configuration while the rest
of the batch runs on.  Rounds follow the neutralization definition per
block, mirroring :class:`~repro.core.rounds.ArrayRoundCounter`.
"""

from __future__ import annotations

from random import Random
from typing import Callable, Mapping, Sequence

import numpy as np

from ...telemetry import phases as telemetry
from ..exceptions import ModelViolation, UnbatchableError
from .daemons import open_stream, vectorize
from .engine import MoveAccumulator, dispatch_rules, exclusion_offender
from .programs import KernelProgram

__all__ = ["TrialOutcome", "BatchResult", "run_batch"]

Columns = Mapping[str, np.ndarray]
UntilFn = Callable[[KernelProgram, Columns], np.ndarray]


class TrialOutcome:
    """Accounting of one trial of a batch, frozen at its stopping step."""

    __slots__ = ("steps", "moves", "rounds", "moves_per_process",
                 "moves_per_rule", "stop_reason", "hit")

    def __init__(self, steps, moves, rounds, moves_per_process,
                 moves_per_rule, stop_reason, hit):
        self.steps = steps
        self.moves = moves
        self.rounds = rounds
        self.moves_per_process = moves_per_process
        self.moves_per_rule = moves_per_rule
        self.stop_reason = stop_reason
        self.hit = hit

    def __repr__(self) -> str:
        return (
            f"TrialOutcome(steps={self.steps}, moves={self.moves}, "
            f"rounds={self.rounds}, stop_reason={self.stop_reason!r})"
        )


class BatchResult:
    """Per-trial outcomes plus access to the final configurations."""

    __slots__ = ("outcomes", "_schema", "_columns", "_n")

    def __init__(self, outcomes, schema, columns, n):
        self.outcomes: list[TrialOutcome] = outcomes
        self._schema = schema
        self._columns = columns
        self._n = n

    def configuration(self, trial: int):
        """Trial's final configuration (decoded, trial-local indices)."""
        return self._schema.decode_block(self._columns, trial, self._n)


def run_batch(
    program: KernelProgram,
    cfgs: Sequence,
    daemons: Sequence,
    rngs: Sequence[Random],
    network,
    *,
    max_steps: int,
    until: UntilFn | None = None,
    exclusion_name: str | None = None,
    probes: Sequence[Sequence] | None = None,
    faults: Sequence | None = None,
) -> BatchResult:
    """Run ``len(cfgs)`` trials of one cell as a single tiled simulation.

    ``cfgs``/``daemons``/``rngs`` are per-trial: the initial
    configuration, a fresh dict daemon instance (state bridged into its
    vector twin), and the trial's seeded generator.  ``until`` is an
    optional per-process convergence mask ``until(tiled_program, cols)``;
    a trial freezes with ``stop_reason="predicate"`` the first time its
    block satisfies it everywhere (initial configuration included).
    ``probes`` (optional) carries one sequence of vector-tier
    :class:`repro.probes.Probe` instances *per trial*; each trial's
    probes see its block of the tiled buffers as a
    :class:`repro.probes.ColumnView` (base program + block-sliced
    columns, so per-trial semantics match a single run) once at the
    start and after every step the trial executes, and a probe's
    ``done()`` freezes its trial with ``stop_reason="probe"``.
    ``faults`` (optional) carries one bound
    :class:`~repro.faults.schedule.BoundFaultSchedule` (or ``None``) per
    trial: at the top of every iteration, a trial's due occurrences
    corrupt its block in place (``opt_index`` values globalized by the
    block offset, exactly like :meth:`Schema.encode_tiled`), guards are
    recomputed, the trial's round bookkeeping is rebased, and its probes
    get ``on_fault`` — byte-identical to the same schedule on a single
    run.  Bound schedules are stateful: pass a fresh binding per trial.
    Raises :class:`~repro.core.exceptions.UnbatchableError` when the
    program or a daemon cannot be vectorized — callers catch exactly
    that and fall back to serial trials.

    Heavy-tailed cells are *compacted*: once the trailing trials of the
    batch have all frozen, their blocks are dropped from the working
    buffers (the tiled program is re-tiled to the surviving prefix), so
    guard evaluation stops paying for finished trials.  Frozen blocks
    keep their stopping configuration — compaction is invisible in the
    results.
    """
    trials = len(cfgs)
    n = len(cfgs[0])
    total = trials * n
    prog = program.tiled(trials)
    if prog is None:
        raise UnbatchableError(
            "program does not support tiled (batched) execution"
        )
    vecs = [vectorize(daemon, network) for daemon in daemons]
    if any(vec is None for vec in vecs):
        raise UnbatchableError(
            "daemon cannot be vectorized for batched execution"
        )
    for vec, daemon in zip(vecs, daemons):
        vec.load_state(daemon)
    streams = [
        open_stream(rng, scalar=vec.scalar_stream) if vec.uses_rng else None
        for vec, rng in zip(vecs, rngs)
    ]

    schema, rules = program.schema, program.rules
    nrules = len(rules)
    # ``full_read``/``full_write`` are the complete tiled buffers (what
    # BatchResult decodes from); ``read``/``write`` are the *working*
    # buffers — the same dicts until compaction, prefix views afterwards.
    # The pairs swap in tandem every step so they always correspond.
    full_read = schema.encode_tiled(cfgs)
    full_write = {name: col.copy() for name, col in full_read.items()}
    read, write = full_read, full_write
    column_pairs = (
        [(read[name], write[name]) for name in read],
        [(write[name], read[name]) for name in read],
    )
    flip = 0

    #: Leading blocks still in the working buffers (compaction shrinks it).
    blocks = trials
    block_starts = np.arange(trials, dtype=np.int64) * n
    block_bounds = np.arange(trials + 1, dtype=np.int64) * n

    rule_idx = np.empty(total, dtype=np.int8)
    rule_counts = [0] * nrules
    only_rule = [0 if nrules == 1 else -1]

    def compute_enabled() -> np.ndarray:
        masks = prog.guard_masks(read)
        enabled, only, grand = dispatch_rules(masks, rules, rule_idx, rule_counts)
        only_rule[0] = only
        if (
            exclusion_name is not None
            and only == -2
            and grand != int(np.count_nonzero(enabled))
        ):
            offender, offending = exclusion_offender(
                masks, rules, rule_idx.shape[0]
            )
            raise ModelViolation(
                f"{exclusion_name}: rules {offending} simultaneously enabled "
                f"at process {offender % n} (trial {offender // n}), but the "
                "algorithm declares mutual exclusion"
            )
        return enabled

    # Per-trial accounting ------------------------------------------------
    steps = [0] * trials
    moves = [0] * trials
    completed = [0] * trials
    stop_reason = [""] * trials
    hit = [False] * trials
    rule_hist = np.zeros((trials, nrules), dtype=np.int64)
    acc = MoveAccumulator(total)
    active = list(range(trials))

    pending = np.zeros(total, dtype=np.bool_)
    scratch = np.empty(total, dtype=np.bool_)
    round_open = [False] * trials

    def freeze(trial: int, reason: str, converged: bool = False) -> None:
        stop_reason[trial] = reason
        hit[trial] = converged

    # Per-trial probe views (base program + block-sliced columns, so a
    # probe observes its trial exactly as it would a single run).
    views = None
    if probes is not None:
        if len(probes) != trials:
            raise ValueError(
                f"probes must align with cfgs: {len(probes)} != {trials}"
            )
        if any(probes):
            from ...probes.view import ColumnView

            views = [
                ColumnView(program, trial=t) if probes[t] else None
                for t in range(trials)
            ]

    #: ``opt_index`` columns hold *globalized* indices in a tiled layout;
    #: block views re-localize them so probes see trial-local process
    #: indices, exactly as in a single run.
    opt_index_cols = tuple(
        var.name for var in schema.vars if var.kind == "opt_index"
    )

    scheds = None
    if faults is not None and any(sched is not None for sched in faults):
        if len(faults) != trials:
            raise ValueError(
                f"faults must align with cfgs: {len(faults)} != {trials}"
            )
        scheds = list(faults)
    schema_vars = {var.name: var for var in schema.vars}

    def inject(t: int, due) -> None:
        """Apply trial ``t``'s fired occurrences to its block in place."""
        lo = int(block_bounds[t])
        for occ in due:
            for u, name, value in occ.assignments:
                code = schema_vars[name].encode_value(value)
                if lo and name in opt_index_cols and code >= 0:
                    code += lo
                read[name][lo + u] = code

    def rebase_rounds(t: int) -> None:
        """Per-block twin of :meth:`ArrayRoundCounter.rebase`."""
        lo, hi = block_bounds[t], block_bounds[t + 1]
        block = enabled_mask[lo:hi]
        pend_block = pending[lo:hi]
        if not round_open[t]:
            pend_block[:] = block
            round_open[t] = bool(block.any())
            return
        pend_block &= block
        if pend_block.any():
            return
        completed[t] += 1
        pend_block[:] = block
        round_open[t] = bool(block.any())

    def observe(t: int, phase: str, chosen_local, chosen_kinds=None) -> bool:
        """Show trial ``t``'s block to its probes; ``True`` = freeze it."""
        view = views[t]
        if view is None:
            return False
        lo = t * n
        hi = lo + n
        view.phase = phase
        cols = {name: col[lo:hi] for name, col in read.items()}
        if lo:
            for name in opt_index_cols:
                block = cols[name]
                cols[name] = np.where(block >= 0, block - lo, block)
        view.cols = cols
        view.chosen = chosen_local
        view.enabled_mask = enabled_mask[lo:hi]
        view.chosen_rules = chosen_kinds
        # dispatch_rules only materializes rule_idx in the multi-rule
        # case; the single-rule fast path leaves it stale.
        view.rule_idx = rule_idx[lo:hi] if only_rule[0] == -2 else None
        view.steps = steps[t]
        view.moves = moves[t]
        view.rounds = completed[t]
        stop = False
        for probe in probes[t]:
            probe.on_columns(view)
            stop = probe.done() or stop
        return stop

    # Telemetry: resolved once per batch, never per step.  Disabled costs
    # one boolean test per iteration; enabled, one iteration in every
    # ``stats.stride`` is timed phase by phase.  Compaction is rare, so
    # it is timed exactly on every occurrence instead of sampled.
    stats = telemetry.collector()
    tel = stats is not None
    if tel:
        smask, ttimes, tcounts = stats.mask, stats.times, stats.counts
        T_DAEMON, T_APPLY, T_GUARD, T_ROUNDS, T_PROBE, T_COMPACT = (
            telemetry.DAEMON, telemetry.APPLY, telemetry.GUARD,
            telemetry.ROUNDS, telemetry.PROBE, telemetry.COMPACT,
        )
    iteration = 0

    try:
        enabled_mask = compute_enabled()
        pending[:] = enabled_mask
        pend_any = np.logical_or.reduceat(pending, block_starts)
        for t in range(trials):
            round_open[t] = bool(pend_any[t])
        if views is not None:
            for t in list(active):
                if observe(t, "start", None):
                    freeze(t, "probe")
                    active.remove(t)
        if until is not None:
            hit_all = np.logical_and.reduceat(until(prog, read), block_starts)
            for t in list(active):
                if hit_all[t]:
                    freeze(t, "predicate", True)
                    active.remove(t)

        while active:
            enabled_any = np.logical_or.reduceat(enabled_mask, block_starts)
            if scheds is not None:
                injected: list[tuple[int, list]] = []
                for t in active:
                    sched = scheds[t]
                    if sched is None or sched.exhausted:
                        continue
                    due = sched.pop_due(steps[t], idle=not enabled_any[t])
                    if due:
                        inject(t, due)
                        injected.append((t, due))
                if injected:
                    enabled_mask = compute_enabled()
                    enabled_any = np.logical_or.reduceat(
                        enabled_mask, block_starts
                    )
                    for t, due in injected:
                        rebase_rounds(t)
                        if probes is not None and probes[t]:
                            for occ in due:
                                info = scheds[t].info(
                                    occ, step=steps[t], moves=moves[t],
                                    rounds=completed[t],
                                )
                                for probe in probes[t]:
                                    probe.on_fault(info)
            for t in list(active):
                if not enabled_any[t]:
                    freeze(t, "terminal")
                    active.remove(t)
                elif steps[t] >= max_steps:
                    freeze(t, "budget")
                    active.remove(t)
            if not active:
                break

            # Compaction: once the trailing quarter (at least) of the
            # working blocks is frozen, drop those blocks — guard masks,
            # selections, and round bookkeeping then stop paying for
            # finished trials.  ``active`` is kept in ascending order, so
            # its last element bounds the surviving prefix.
            lim = active[-1] + 1
            if lim <= blocks - max(1, blocks >> 2):
                if tel:
                    t_compact = telemetry.timer()
                cut = lim * n
                # Land the dropped blocks' frozen state in *both* buffer
                # parities: neither is ever written beyond ``cut`` again,
                # so the final decode is parity-independent.
                for name in full_read:
                    full_write[name][cut:] = full_read[name][cut:]
                read = {name: col[:cut] for name, col in full_read.items()}
                write = {name: col[:cut] for name, col in full_write.items()}
                column_pairs = (
                    [(read[name], write[name]) for name in read],
                    [(write[name], read[name]) for name in read],
                )
                flip = 0
                blocks = lim
                block_starts = np.arange(blocks, dtype=np.int64) * n
                block_bounds = np.arange(blocks + 1, dtype=np.int64) * n
                retiled = program.tiled(blocks)
                if retiled is not None:  # tiled(trials) succeeded above
                    prog = retiled
                rule_idx = rule_idx[:cut]
                pending = pending[:cut]
                scratch = scratch[:cut]
                enabled_mask = enabled_mask[:cut]
                if tel:
                    ttimes[T_COMPACT] += telemetry.timer() - t_compact
                    tcounts[T_COMPACT] += 1

            sampling = tel and (iteration & smask) == 0
            iteration += 1
            if sampling:
                t_mark = telemetry.timer()
            enabled_idx = enabled_mask.nonzero()[0]
            bounds = np.searchsorted(enabled_idx, block_bounds)
            parts = []
            stepped = list(active) if views is not None else None
            local_parts = [] if views is not None else None
            kinds_parts = [] if views is not None else None
            k0 = only_rule[0]
            for t in active:
                local = enabled_idx[bounds[t] : bounds[t + 1]] - block_starts[t]
                chosen_local = vecs[t].select(local, streams[t])
                parts.append(chosen_local + block_starts[t])
                if local_parts is not None:
                    local_parts.append(chosen_local)
                    # Captured pre-apply, while rule_idx still holds the
                    # dispatch this step executes (fancy indexing copies).
                    kinds_parts.append(
                        rule_idx[chosen_local + block_starts[t]]
                        if k0 == -2
                        else np.full(chosen_local.shape[0], k0, dtype=np.int8)
                    )
                steps[t] += 1
                moves[t] += chosen_local.shape[0]
            chosen = parts[0] if len(parts) == 1 else np.concatenate(parts)
            acc.add(chosen)
            if sampling:
                t_now = telemetry.timer()
                ttimes[T_DAEMON] += t_now - t_mark
                tcounts[T_DAEMON] += 1
                t_mark = t_now

            for src, dst in column_pairs[flip]:
                dst[:] = src
            k = only_rule[0]
            if k >= 0:
                prog.apply(rules[k], chosen, read, write)
                rule_hist[:, k] += np.bincount(chosen // n, minlength=trials)
            else:
                kinds = rule_idx[chosen]
                for k in range(nrules):
                    if rule_counts[k] == 0:
                        continue
                    idx = chosen[kinds == k]
                    if idx.shape[0]:
                        prog.apply(rules[k], idx, read, write)
                        rule_hist[:, k] += np.bincount(
                            idx // n, minlength=trials
                        )
            read, write = write, read
            full_read, full_write = full_write, full_read
            flip ^= 1
            if sampling:
                t_now = telemetry.timer()
                ttimes[T_APPLY] += t_now - t_mark
                tcounts[T_APPLY] += 1
                t_mark = t_now

            prev_mask = enabled_mask
            enabled_mask = compute_enabled()
            if sampling:
                t_now = telemetry.timer()
                ttimes[T_GUARD] += t_now - t_mark
                tcounts[T_GUARD] += 1
                t_mark = t_now

            # Rounds: one neutralization update per block.  Frozen blocks
            # are untouched (no selection, enabled set unchanged).
            pending[chosen] = False
            np.logical_not(enabled_mask, out=scratch)
            scratch &= prev_mask
            np.logical_not(scratch, out=scratch)
            pending &= scratch
            pend_any = np.logical_or.reduceat(pending, block_starts)
            for t in active:
                if round_open[t] and not pend_any[t]:
                    completed[t] += 1
                    lo, hi = block_bounds[t], block_bounds[t + 1]
                    block = enabled_mask[lo:hi]
                    pending[lo:hi] = block
                    round_open[t] = bool(block.any())
            if sampling:
                t_now = telemetry.timer()
                ttimes[T_ROUNDS] += t_now - t_mark
                tcounts[T_ROUNDS] += 1
                t_mark = t_now

            if views is not None:
                for t, chosen_local, chosen_kinds in zip(
                    stepped, local_parts, kinds_parts
                ):
                    if observe(t, "step", chosen_local, chosen_kinds):
                        freeze(t, "probe")
                        active.remove(t)
                if sampling:
                    ttimes[T_PROBE] += telemetry.timer() - t_mark
                    tcounts[T_PROBE] += 1

            if until is not None:
                hit_all = np.logical_and.reduceat(
                    until(prog, read), block_starts
                )
                for t in list(active):
                    if hit_all[t]:
                        freeze(t, "predicate", True)
                        active.remove(t)
    finally:
        for stream in streams:
            if stream is not None:
                stream.close()
    for vec, daemon in zip(vecs, daemons):
        vec.store_state(daemon)

    acc.flush()
    moves_per_process = acc.counts.reshape(trials, n)
    outcomes = [
        TrialOutcome(
            steps=steps[t],
            moves=moves[t],
            rounds=completed[t],
            moves_per_process=tuple(int(c) for c in moves_per_process[t]),
            moves_per_rule={
                rules[k]: int(rule_hist[t, k])
                for k in range(nrules)
                if rule_hist[t, k]
            },
            stop_reason=stop_reason[t],
            hit=hit[t],
        )
        for t in range(trials)
    ]
    return BatchResult(outcomes, schema, full_read, n)
