"""Struct-of-arrays execution runtime driven by the simulator.

:class:`KernelRuntime` owns the flat per-variable columns of one
execution and advances them step by step: guard masks are recomputed
vectorized after every step (full recomputation is cheap in array form —
no incremental bookkeeping needed), and actions mutate a double buffer
(write columns rebased from the read columns, then swapped) so every
activated process reads the same frozen pre-step configuration —
composite atomicity by construction.

The runtime speaks the simulator's language at the boundary: it produces
the enabled map as a ``{process: (rules…)}`` dict in ascending process
order (the order contract daemons observe on both backends) and decodes
columns back into a :class:`~repro.core.configuration.Configuration` on
demand (for observers, traces, daemon callbacks, and the paranoid
lockstep cross-check).
"""

from __future__ import annotations

from random import Random
from typing import Callable, Mapping

import numpy as np

from ...telemetry import phases as telemetry
from ..configuration import Configuration
from ..exceptions import ModelViolation
from .daemons import VectorDaemon, open_stream
from .programs import KernelProgram

__all__ = ["KernelRuntime", "KernelSnapshot", "FusedResult"]

#: Deferred per-process move accounting flushes into a bincount once this
#: many buffered moves accumulate — keeps fused-loop memory O(n) on
#: multi-million-step budget runs while amortizing the flush cost away.
FLUSH_MOVES = 1 << 16


class FusedResult:
    """Accounting delta of one :meth:`KernelRuntime.run` invocation.

    Counters are *deltas* over the fused stretch, not execution totals —
    the simulator merges them into its own cumulative accounting.
    """

    __slots__ = ("steps", "moves", "moves_per_process", "moves_per_rule",
                 "stop_reason", "hit")

    def __init__(self, steps, moves, moves_per_process, moves_per_rule,
                 stop_reason, hit):
        self.steps = steps
        self.moves = moves
        self.moves_per_process = moves_per_process
        self.moves_per_rule = moves_per_rule
        self.stop_reason = stop_reason
        self.hit = hit

    def __repr__(self) -> str:
        return (
            f"FusedResult(steps={self.steps}, moves={self.moves}, "
            f"stop_reason={self.stop_reason!r}, hit={self.hit})"
        )


class MoveAccumulator:
    """Deferred per-process move accounting shared by the fused drivers.

    Selection vectors buffer and flush into one ``bincount`` per
    :data:`FLUSH_MOVES` buffered moves — cheaper than a per-step scatter,
    O(size) memory on multi-million-step budget runs.  ``counts`` holds
    the totals after a final :meth:`flush`.
    """

    __slots__ = ("counts", "_selections", "_buffered")

    def __init__(self, size: int):
        self.counts = np.zeros(size, dtype=np.int64)
        self._selections: list[np.ndarray] = []
        self._buffered = 0

    def add(self, chosen: np.ndarray) -> None:
        self._selections.append(chosen)
        self._buffered += chosen.shape[0]
        if self._buffered >= FLUSH_MOVES:
            self.flush()

    def flush(self) -> None:
        if self._selections:
            self.counts[:] += np.bincount(
                np.concatenate(self._selections),
                minlength=self.counts.shape[0],
            )
            self._selections.clear()
            self._buffered = 0


def dispatch_rules(masks, rules, rule_idx, rule_counts):
    """Shared guard-mask → enabled-mask dispatch for the fused drivers.

    Both fused loops (:meth:`KernelRuntime.run` and
    :func:`repro.core.kernel.batch.run_batch`) turn the guard-mask dict
    into an enabled mask plus dispatch state through this one routine so
    the ``rule_choice="first"`` semantics cannot diverge between them.

    Returns ``(enabled_mask, only_rule, total)``: ``only_rule`` is the
    index of the single rule with enabled processes (its mask *is* the
    enabled mask — the common case), ``-1`` when nothing is enabled, or
    ``-2`` when several rules are active and per-process dispatch was
    written into ``rule_idx`` (descending writes, so the lowest enabled
    rule index wins a slot).  ``total`` is the summed per-rule guard
    count (left 0 in the single-rule fast path, where it is unused);
    ``rule_counts`` is filled in place.  An omitted mask means everywhere
    false.
    """
    size = rule_idx.shape[0]
    nrules = len(rules)
    if nrules == 1:
        mask = masks.get(rules[0])
        if mask is None:
            return np.zeros(size, dtype=np.bool_), 0, 0
        return mask, 0, 0
    total = 0
    active = -1
    for k in range(nrules):
        mask = masks.get(rules[k])
        count = 0 if mask is None else int(np.count_nonzero(mask))
        rule_counts[k] = count
        if count:
            active = k if total == 0 else -2
            total += count
    if active != -2:
        if active >= 0:
            return masks[rules[active]], active, total
        return np.zeros(size, dtype=np.bool_), -1, total
    rule_idx.fill(-1)
    for k in range(nrules - 1, -1, -1):
        if rule_counts[k]:
            rule_idx[masks[rules[k]]] = k
    return rule_idx >= 0, -2, total


def exclusion_offender(masks, rules, size):
    """Locate one process where declared-exclusive rules overlap.

    Mutual exclusion is verified by counting — with pairwise exclusive
    rules the per-rule guard counts must sum to the enabled-process
    count; any overlap makes the sum larger — and this reports a concrete
    offender for the error message.  Returns ``(index, offending_rules)``.
    """
    count = np.zeros(size, dtype=np.int64)
    for rule in rules:
        mask = masks.get(rule)
        if mask is not None:
            count += mask
    u = int(np.argmax(count))
    offending = tuple(
        r for r in rules if (mask := masks.get(r)) is not None and mask[u]
    )
    return u, offending


class KernelSnapshot:
    """Frozen copy of a :class:`KernelRuntime`'s mutable state.

    Captures both buffer parities (read *and* write column contents),
    the liveness column, and — when the caller passes them to
    :meth:`KernelRuntime.snapshot` — the round-counter state and the
    daemon RNG state, so a restore rewinds everything an adversarial
    rollout could have disturbed.  Snapshots are plain value objects:
    they never alias the runtime's buffers and survive any number of
    interleaved ``apply``/``restore`` calls.
    """

    __slots__ = ("read", "write", "live", "max_enabled_rules", "rng_state",
                 "rounds_state")

    def __init__(self, read, write, live, max_enabled_rules, rng_state,
                 rounds_state):
        self.read = read
        self.write = write
        self.live = live
        self.max_enabled_rules = max_enabled_rules
        self.rng_state = rng_state
        self.rounds_state = rounds_state


class KernelRuntime:
    """Columnar state + transition function for one execution."""

    __slots__ = (
        "program",
        "rules",
        "read",
        "write",
        "live",
        "max_enabled_rules",
        "_masks",
        "_singles",
        "_rule_idx",
        "_rule_idx_prev",
        "_prev_valid",
        "_prev_map",
    )

    def __init__(self, program: KernelProgram, cfg: Configuration):
        self.program = program
        self.rules = program.rules
        self.read: dict[str, np.ndarray] = program.schema.encode(cfg)
        self.write: dict[str, np.ndarray] = {
            name: col.copy() for name, col in self.read.items()
        }
        n = len(cfg)
        #: Liveness column — ``None`` until topology churn crashes a
        #: process (the common no-churn case pays nothing), then a bool
        #: vector ANDed into every guard mask: a crashed process is never
        #: enabled, never selected, never counted.
        self.live: np.ndarray | None = None
        self._masks: dict[str, np.ndarray] | None = None
        self._singles = [(rule,) for rule in self.rules]
        #: Per process: index of its single enabled rule, -1 if disabled
        #: (-2 marks the multi-rule case, resolved in the slow path).
        self._rule_idx = np.full(n, -1, dtype=np.int8)
        self._rule_idx_prev = np.full(n, -1, dtype=np.int8)
        self._prev_valid = False
        self._prev_map: dict[int, tuple[str, ...]] = {}
        #: Max number of simultaneously enabled rules at one process in the
        #: last computed enabled set (the simulator's exclusion check).
        self.max_enabled_rules = 0

    # ------------------------------------------------------------------
    # Enabled set
    # ------------------------------------------------------------------
    def guard_masks(self) -> dict[str, np.ndarray]:
        if self._masks is None:
            masks = self.program.guard_masks(self.read)
            if self.live is not None:
                masks = {
                    rule: mask & self.live
                    for rule, mask in masks.items()
                    if mask is not None
                }
            self._masks = masks
        return self._masks

    def enabled_map(self) -> dict[int, tuple[str, ...]]:
        """``{u: enabled rules}`` in ascending process order.

        The returned dict is cached and *reused* while the enabled set
        stays unchanged between steps (steady-state executions), so
        callers must honor the simulator's do-not-mutate contract.
        """
        masks = self.guard_masks()
        rules = self.rules
        rule_idx = self._rule_idx
        if len(rules) == 1:
            mask = masks.get(rules[0])
            rule_idx.fill(-1)
            if mask is None:  # omitted = everywhere false
                self.max_enabled_rules = 0
            else:
                rule_idx[mask] = 0
                self.max_enabled_rules = 1 if mask.any() else 0
        else:
            # Descending write order: the lowest enabled rule index wins a
            # slot, matching rule declaration order.
            rule_idx.fill(-1)
            count = np.zeros(rule_idx.shape[0], dtype=np.int8)
            for k in range(len(rules) - 1, -1, -1):
                mask = masks.get(rules[k])
                if mask is None:  # omitted = everywhere false
                    continue
                rule_idx[mask] = k
                count += mask
            self.max_enabled_rules = int(count.max()) if count.size else 0
            if self.max_enabled_rules > 1:
                rule_idx[count > 1] = -2

        # The -2 sentinel erases *which* rules are enabled, so the
        # unchanged-state cache is only sound without multi-rule slots.
        if (
            self._prev_valid
            and self.max_enabled_rules <= 1
            and np.array_equal(rule_idx, self._rule_idx_prev)
        ):
            return self._prev_map

        if self.max_enabled_rules > 1:
            enabled: dict[int, tuple[str, ...]] = {}
            for u, k in enumerate(rule_idx.tolist()):
                if k == -1:
                    continue
                if k == -2:
                    enabled[u] = tuple(
                        rule
                        for rule in rules
                        if (mask := masks.get(rule)) is not None and mask[u]
                    )
                else:
                    enabled[u] = self._singles[k]
        else:
            idx = np.nonzero(rule_idx >= 0)[0]
            singles = self._singles
            enabled = {
                u: singles[k]
                for u, k in zip(idx.tolist(), rule_idx[idx].tolist())
            }
        self._rule_idx, self._rule_idx_prev = self._rule_idx_prev, rule_idx
        self._prev_valid = True
        self._prev_map = enabled
        return enabled

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def apply(self, selection: Mapping[int, str]) -> None:
        """One atomic step: execute ``selection`` against the read buffer."""
        by_rule: dict[str, list[int]] = {}
        for u, rule in selection.items():
            by_rule.setdefault(rule, []).append(u)
        read, write = self.read, self.write
        for name, col in read.items():
            write[name][:] = col
        for rule, processes in by_rule.items():
            processes.sort()
            idx = np.asarray(processes, dtype=np.int64)
            self.program.apply(rule, idx, read, write)
        self.read, self.write = write, read
        self._masks = None

    def snapshot(self, rng: Random | None = None, rounds=None) -> KernelSnapshot:
        """Copy the runtime's mutable state into a :class:`KernelSnapshot`.

        ``rng`` (a :class:`random.Random`) and ``rounds`` (a started
        :class:`~repro.core.rounds.RoundCounter`) are optional: when
        given, their state is captured too and :meth:`restore` rewinds
        them alongside the columns.  Used by the adversarial beam search
        (:mod:`repro.adversary.search`) to branch rollouts off the live
        runtime without cloning it.
        """
        return KernelSnapshot(
            {name: col.copy() for name, col in self.read.items()},
            {name: col.copy() for name, col in self.write.items()},
            None if self.live is None else self.live.copy(),
            self.max_enabled_rules,
            None if rng is None else rng.getstate(),
            None if rounds is None else (rounds.completed, rounds.pending),
        )

    def restore(self, snap: KernelSnapshot, rng: Random | None = None,
                rounds=None) -> None:
        """Rewind the runtime to ``snap`` (inverse of :meth:`snapshot`).

        Column contents are copied back *in place* into whichever buffer
        currently holds each parity — buffer identity is irrelevant, only
        contents matter — and the guard-mask/enabled-map caches are
        invalidated so the next query sees the restored configuration.
        """
        for name, col in snap.read.items():
            self.read[name][:] = col
        for name, col in snap.write.items():
            self.write[name][:] = col
        if snap.live is None:
            self.live = None
        elif self.live is None:
            self.live = snap.live.copy()
        else:
            self.live[:] = snap.live
        self.max_enabled_rules = snap.max_enabled_rules
        self._masks = None
        self._prev_valid = False
        self._prev_map = {}
        if rng is not None and snap.rng_state is not None:
            rng.setstate(snap.rng_state)
        if rounds is not None and snap.rounds_state is not None:
            rounds.resume(*snap.rounds_state)

    def inject(self, assignments) -> None:
        """Corrupt registers in place: ``(process, variable, value)`` triples.

        Values are *decoded* (the same plain-Python values the dict
        backend writes via ``Configuration.set``); each is encoded
        through the schema's declared domain, so a fault can never
        smuggle an out-of-domain value into a column.  Invalidates the
        guard-mask and enabled-map caches — the next ``enabled_map`` /
        ``guard_masks`` call sees the corrupted configuration.
        """
        schema_vars = {var.name: var for var in self.program.schema.vars}
        for u, name, value in assignments:
            self.read[name][u] = schema_vars[name].encode_value(value)
        self._masks = None
        self._prev_valid = False

    def apply_churn(self, occ) -> None:
        """Mirror one churn occurrence into the columnar engine.

        Patches the program's CSR adjacency in place
        (:meth:`~repro.core.kernel.csr.CSRAdjacency.apply_delta`),
        invalidates its edge-space caches, maintains the liveness
        column, and injects join state through :meth:`inject` (schema
        encoding, same as faults).  A crashed process's registers stay
        frozen in the columns — neighbors can no longer read them
        because its edges are gone, and the liveness mask keeps it out
        of every enabled set.
        """
        if occ.drops or occ.adds:
            program = self.program
            program.csr.apply_delta(occ.drops, occ.adds)
            # Edge-space caches (e.g. the IR programs' ``edge_true``)
            # are sized by the edge count, which just changed.
            if getattr(program, "_edge_true", None) is not None:
                program._edge_true = None
        if occ.victims:
            if occ.action == "crash":
                if self.live is None:
                    self.live = np.ones(self._rule_idx.shape[0], dtype=np.bool_)
                self.live[list(occ.victims)] = False
            elif occ.action == "join" and self.live is not None:
                self.live[list(occ.victims)] = True
        if occ.assignments:
            self.inject(occ.assignments)
        self._masks = None
        self._prev_valid = False

    # ------------------------------------------------------------------
    # Fused driving loop
    # ------------------------------------------------------------------
    def run(
        self,
        daemon: VectorDaemon,
        rng: Random,
        max_steps: int,
        *,
        until: Callable[[Mapping[str, np.ndarray]], np.ndarray] | None = None,
        rounds=None,
        exclusion_name: str | None = None,
        probes=(),
        view=None,
        faults=None,
        churn=None,
    ) -> FusedResult:
        """Drive guard-eval → daemon-mask → apply entirely over columns.

        One iteration never leaves numpy: guards become rule-index
        vectors, the vectorized ``daemon`` picks the activated index
        vector (consuming ``rng``'s stream exactly like its dict twin),
        actions mutate the double buffer, and accounting lands in flat
        counters.  Stops at a terminal configuration, when the optional
        ``until`` mask (a per-process predicate over the read columns)
        holds everywhere — checked on the initial configuration too, like
        the simulator's ``stop_when`` — when an attached probe requests
        it, or when ``max_steps`` runs out.

        ``rounds`` is an optional
        :class:`~repro.core.rounds.ArrayRoundCounter`, already started,
        updated in place.  ``exclusion_name`` enables the per-step
        mutual-exclusion check (the value names the algorithm in the
        error).  ``probes`` are vector-tier
        :class:`repro.probes.Probe` instances served inline: their
        ``on_columns`` hook sees ``view`` (a
        :class:`repro.probes.ColumnView` prepared by the caller, with
        ``steps``/``moves`` preset to the execution's running totals)
        once on the initial configuration and once per step, and any
        probe whose ``done()`` turns true stops the run with
        ``stop_reason="probe"``.  The caller decodes at the boundary;
        nothing here builds a dict or a
        :class:`~repro.core.configuration.Configuration`.

        ``faults`` is an optional bound
        :class:`~repro.faults.schedule.BoundFaultSchedule`: at the top of
        every iteration, due occurrences corrupt the read columns in
        place (no step, no move), guards are recomputed, the round
        counter is rebased, and probes get ``on_fault``.  A terminal
        configuration with occurrences still pending pulls the next one
        forward (self-stabilization is recovery from faults striking
        legitimate configurations); if even that enables nothing, the
        run ends terminal.

        ``churn`` is an optional bound
        :class:`~repro.faults.churn.BoundChurnSchedule`, handled with
        the same hoisted one-int-comparison hot path as ``faults``
        (checked right after them, both at the loop top and in the
        terminal pull-forward): due occurrences patch the CSR adjacency
        and the liveness column via :meth:`apply_churn`, refresh the
        vectorized daemon's topology snapshot, recompute guards, rebase
        the round counter, and hand probes ``on_churn``.
        """
        program, rules = self.program, self.rules
        nrules = len(rules)
        check_exclusion = exclusion_name is not None and nrules > 1
        n = self._rule_idx.shape[0]
        rule_idx = np.empty(n, dtype=np.int8)
        rule_counts: list[int] = [0] * nrules
        acc = MoveAccumulator(n)
        moves_per_rule = [0] * nrules
        steps = moves = 0
        stop_reason = "budget"
        hit = False

        # When every enabled process has the same single rule enabled,
        # rule dispatch is trivial; ``only_rule[0]`` holds its index then.
        only_rule = [0 if nrules == 1 else -1]

        def compute_enabled() -> np.ndarray:
            """Refresh rule dispatch state and return the enabled mask."""
            masks = self.guard_masks()
            enabled, only, total = dispatch_rules(
                masks, rules, rule_idx, rule_counts
            )
            only_rule[0] = only
            if (
                check_exclusion
                and only == -2
                and total != int(np.count_nonzero(enabled))
            ):
                u, offending = exclusion_offender(masks, rules, n)
                raise ModelViolation(
                    f"{exclusion_name}: rules {offending} simultaneously "
                    f"enabled at process {u}, but the algorithm declares "
                    "mutual exclusion"
                )
            return enabled

        steps0 = view.steps if view is not None else 0
        moves0 = view.moves if view is not None else 0

        def observe(phase: str, chosen, mask, chosen_kinds=None) -> bool:
            """Show the current configuration to every probe; True = stop."""
            view.phase = phase
            view.cols = self.read
            view.chosen = chosen
            view.enabled_mask = mask
            view.chosen_rules = chosen_kinds
            # dispatch_rules only materializes rule_idx in the multi-rule
            # case; the single-rule fast path leaves it stale.
            view.rule_idx = rule_idx if only_rule[0] == -2 else None
            view.live = self.live
            view.steps = steps0 + steps
            view.moves = moves0 + moves
            view.rounds = rounds.completed if rounds is not None else 0
            stop = False
            for probe in probes:
                probe.on_columns(view)
                stop = probe.done() or stop
            return stop

        stream = (
            open_stream(rng, scalar=daemon.scalar_stream)
            if daemon.uses_rng
            else None
        )
        # Read→write column copies for both buffer parities, precomputed
        # so the per-step copy loop touches no dicts.
        column_pairs = (
            [(self.read[name], self.write[name]) for name in self.read],
            [(self.write[name], self.read[name]) for name in self.read],
        )
        flip = 0
        # Telemetry: resolved once per run, never per step.  Disabled
        # costs one boolean test per iteration (no timer calls at all);
        # enabled, one step in every ``stats.stride`` is timed phase by
        # phase into flat slots (see repro.telemetry.phases).
        stats = telemetry.collector()
        tel = stats is not None
        if tel:
            smask, ttimes, tcounts = stats.mask, stats.times, stats.counts
            T_DAEMON, T_APPLY, T_GUARD, T_ROUNDS, T_PROBE = (
                telemetry.DAEMON, telemetry.APPLY, telemetry.GUARD,
                telemetry.ROUNDS, telemetry.PROBE,
            )
        try:
            enabled_mask = compute_enabled()
            if probes and observe("start", None, enabled_mask):
                return FusedResult(0, 0, acc.counts,
                                   self._rule_totals(moves_per_rule),
                                   "probe", False)
            if until is not None and bool(until(self.read).all()):
                return FusedResult(0, 0, acc.counts,
                                   self._rule_totals(moves_per_rule),
                                   "predicate", True)
            fault_sched = faults if faults is not None and not faults.exhausted else None
            # The hot loop compares the step counter against the next
            # pending nominal step — one int comparison per iteration —
            # and only calls into the schedule when something is due (or
            # the configuration went terminal with occurrences pending).
            fault_next = (
                fault_sched.peek_next() if fault_sched is not None else None
            )
            churn_sched = churn if churn is not None and not churn.exhausted else None
            churn_next = (
                churn_sched.peek_next() if churn_sched is not None else None
            )

            def inject_due(due) -> "np.ndarray":
                """Apply popped occurrences; return the new enabled mask."""
                for occ in due:
                    self.inject(occ.assignments)
                mask = compute_enabled()
                if rounds is not None:
                    rounds.rebase(mask)
                if probes:
                    for occ in due:
                        info = fault_sched.info(
                            occ, step=steps0 + steps,
                            moves=moves0 + moves,
                            rounds=rounds.completed if rounds is not None else 0,
                        )
                        for probe in probes:
                            probe.on_fault(info)
                return mask

            def churn_due(due) -> "np.ndarray":
                """Apply popped churn occurrences; return the enabled mask."""
                for occ in due:
                    self.apply_churn(occ)
                    daemon.refresh_topology(self.program.csr)
                mask = compute_enabled()
                if rounds is not None:
                    rounds.rebase(mask)
                if probes:
                    for occ in due:
                        info = churn_sched.info(
                            occ, step=steps0 + steps,
                            moves=moves0 + moves,
                            rounds=rounds.completed if rounds is not None else 0,
                        )
                        for probe in probes:
                            probe.on_churn(info)
                return mask

            while True:
                if fault_next is not None and steps0 + steps >= fault_next:
                    due = fault_sched.pop_due(steps0 + steps)
                    if due:
                        enabled_mask = inject_due(due)
                    fault_next = fault_sched.peek_next()
                    if fault_next is None:
                        fault_sched = None
                if churn_next is not None and steps0 + steps >= churn_next:
                    due = churn_sched.pop_due(steps0 + steps)
                    if due:
                        enabled_mask = churn_due(due)
                    churn_next = churn_sched.peek_next()
                    if churn_next is None:
                        churn_sched = None
                enabled_idx = enabled_mask.nonzero()[0]
                if enabled_idx.shape[0] == 0:
                    if fault_sched is not None:
                        # Terminal with occurrences pending: pop anything
                        # due, else pull exactly one forward — recovery
                        # from faults is the workload, so the run only
                        # ends when the schedule cannot disturb it again.
                        # A finite schedule re-polls even when the pull
                        # woke nobody (it must play out in full); an
                        # infinite one falls through and the run ends.
                        due = fault_sched.pop_due(steps0 + steps, idle=True)
                        if due:
                            enabled_mask = inject_due(due)
                        finite = fault_sched.schedule.finite
                        fault_next = fault_sched.peek_next()
                        if fault_next is None:
                            fault_sched = None
                        if due and (enabled_mask.any() or finite):
                            continue
                    if churn_sched is not None:
                        # Same pull-forward contract for churn: a silent
                        # system still experiences its topology events
                        # (an add_edge at a silent fixpoint commonly
                        # wakes nobody but must not strand later ones).
                        due = churn_sched.pop_due(steps0 + steps, idle=True)
                        if due:
                            enabled_mask = churn_due(due)
                        finite = churn_sched.schedule.finite
                        churn_next = churn_sched.peek_next()
                        if churn_next is None:
                            churn_sched = None
                        if due and (enabled_mask.any() or finite):
                            continue
                    stop_reason = "terminal"
                    break
                if steps >= max_steps:
                    stop_reason = "budget"
                    break
                sampling = tel and (steps & smask) == 0
                if sampling:
                    t_mark = telemetry.timer()
                chosen = daemon.select(enabled_idx, stream)
                if sampling:
                    t_now = telemetry.timer()
                    ttimes[T_DAEMON] += t_now - t_mark
                    tcounts[T_DAEMON] += 1
                    t_mark = t_now

                read, write = self.read, self.write
                for src, dst in column_pairs[flip]:
                    dst[:] = src
                k0 = only_rule[0]
                chosen_kinds = None
                if k0 >= 0:
                    program.apply(rules[k0], chosen, read, write)
                    moves_per_rule[k0] += chosen.shape[0]
                    if probes:
                        chosen_kinds = np.full(
                            chosen.shape[0], k0, dtype=np.int8
                        )
                else:
                    # Fancy indexing copies, so ``chosen_kinds`` survives
                    # the post-step guard recomputation overwriting
                    # ``rule_idx`` below.
                    kinds = rule_idx[chosen]
                    for k in range(nrules):
                        if rule_counts[k] == 0:
                            continue  # no process had this rule enabled
                        idx = chosen[kinds == k]
                        if idx.shape[0]:
                            program.apply(rules[k], idx, read, write)
                            moves_per_rule[k] += idx.shape[0]
                    chosen_kinds = kinds
                self.read, self.write = write, read
                self._masks = None
                self._prev_valid = False
                flip ^= 1

                steps += 1
                moves += chosen.shape[0]
                acc.add(chosen)
                if sampling:
                    t_now = telemetry.timer()
                    ttimes[T_APPLY] += t_now - t_mark
                    tcounts[T_APPLY] += 1
                    t_mark = t_now
                prev_mask = enabled_mask
                enabled_mask = compute_enabled()
                if sampling:
                    t_now = telemetry.timer()
                    ttimes[T_GUARD] += t_now - t_mark
                    tcounts[T_GUARD] += 1
                    t_mark = t_now
                if rounds is not None:
                    rounds.observe_step(chosen, prev_mask, enabled_mask)
                    if sampling:
                        t_now = telemetry.timer()
                        ttimes[T_ROUNDS] += t_now - t_mark
                        tcounts[T_ROUNDS] += 1
                        t_mark = t_now
                if probes:
                    stop = observe("step", chosen, enabled_mask, chosen_kinds)
                    if sampling:
                        ttimes[T_PROBE] += telemetry.timer() - t_mark
                        tcounts[T_PROBE] += 1
                    if stop:
                        stop_reason = "probe"
                        break
                if until is not None and bool(until(self.read).all()):
                    stop_reason = "predicate"
                    hit = True
                    break
        finally:
            if stream is not None:
                stream.close()
        acc.flush()
        return FusedResult(steps, moves, acc.counts,
                           self._rule_totals(moves_per_rule), stop_reason, hit)

    def _rule_totals(self, counts: list[int]) -> dict[str, int]:
        """Executed-rule counters as ``{label: count}`` (zeros omitted)."""
        return {
            rule: count for rule, count in zip(self.rules, counts) if count
        }

    # ------------------------------------------------------------------
    # Boundary conversions
    # ------------------------------------------------------------------
    def decode(self) -> Configuration:
        """Current columns as a plain-value :class:`Configuration`."""
        return self.program.schema.decode(self.read)
