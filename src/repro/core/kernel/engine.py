"""Struct-of-arrays execution runtime driven by the simulator.

:class:`KernelRuntime` owns the flat per-variable columns of one
execution and advances them step by step: guard masks are recomputed
vectorized after every step (full recomputation is cheap in array form —
no incremental bookkeeping needed), and actions mutate a double buffer
(write columns rebased from the read columns, then swapped) so every
activated process reads the same frozen pre-step configuration —
composite atomicity by construction.

The runtime speaks the simulator's language at the boundary: it produces
the enabled map as a ``{process: (rules…)}`` dict in ascending process
order (the order contract daemons observe on both backends) and decodes
columns back into a :class:`~repro.core.configuration.Configuration` on
demand (for observers, traces, daemon callbacks, and the paranoid
lockstep cross-check).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..configuration import Configuration
from .programs import KernelProgram

__all__ = ["KernelRuntime"]


class KernelRuntime:
    """Columnar state + transition function for one execution."""

    __slots__ = (
        "program",
        "rules",
        "read",
        "write",
        "max_enabled_rules",
        "_masks",
        "_singles",
        "_rule_idx",
        "_rule_idx_prev",
        "_prev_valid",
        "_prev_map",
    )

    def __init__(self, program: KernelProgram, cfg: Configuration):
        self.program = program
        self.rules = program.rules
        self.read: dict[str, np.ndarray] = program.schema.encode(cfg)
        self.write: dict[str, np.ndarray] = {
            name: col.copy() for name, col in self.read.items()
        }
        n = len(cfg)
        self._masks: dict[str, np.ndarray] | None = None
        self._singles = [(rule,) for rule in self.rules]
        #: Per process: index of its single enabled rule, -1 if disabled
        #: (-2 marks the multi-rule case, resolved in the slow path).
        self._rule_idx = np.full(n, -1, dtype=np.int8)
        self._rule_idx_prev = np.full(n, -1, dtype=np.int8)
        self._prev_valid = False
        self._prev_map: dict[int, tuple[str, ...]] = {}
        #: Max number of simultaneously enabled rules at one process in the
        #: last computed enabled set (the simulator's exclusion check).
        self.max_enabled_rules = 0

    # ------------------------------------------------------------------
    # Enabled set
    # ------------------------------------------------------------------
    def guard_masks(self) -> dict[str, np.ndarray]:
        if self._masks is None:
            self._masks = self.program.guard_masks(self.read)
        return self._masks

    def enabled_map(self) -> dict[int, tuple[str, ...]]:
        """``{u: enabled rules}`` in ascending process order.

        The returned dict is cached and *reused* while the enabled set
        stays unchanged between steps (steady-state executions), so
        callers must honor the simulator's do-not-mutate contract.
        """
        masks = self.guard_masks()
        rules = self.rules
        rule_idx = self._rule_idx
        if len(rules) == 1:
            mask = masks[rules[0]]
            rule_idx.fill(-1)
            rule_idx[mask] = 0
            self.max_enabled_rules = 1 if mask.any() else 0
        else:
            # Descending write order: the lowest enabled rule index wins a
            # slot, matching rule declaration order.
            rule_idx.fill(-1)
            count = np.zeros(rule_idx.shape[0], dtype=np.int8)
            for k in range(len(rules) - 1, -1, -1):
                mask = masks[rules[k]]
                rule_idx[mask] = k
                count += mask
            self.max_enabled_rules = int(count.max()) if count.size else 0
            if self.max_enabled_rules > 1:
                rule_idx[count > 1] = -2

        # The -2 sentinel erases *which* rules are enabled, so the
        # unchanged-state cache is only sound without multi-rule slots.
        if (
            self._prev_valid
            and self.max_enabled_rules <= 1
            and np.array_equal(rule_idx, self._rule_idx_prev)
        ):
            return self._prev_map

        if self.max_enabled_rules > 1:
            enabled: dict[int, tuple[str, ...]] = {}
            for u, k in enumerate(rule_idx.tolist()):
                if k == -1:
                    continue
                if k == -2:
                    enabled[u] = tuple(
                        rule for rule in rules if masks[rule][u]
                    )
                else:
                    enabled[u] = self._singles[k]
        else:
            idx = np.nonzero(rule_idx >= 0)[0]
            singles = self._singles
            enabled = {
                u: singles[k]
                for u, k in zip(idx.tolist(), rule_idx[idx].tolist())
            }
        self._rule_idx, self._rule_idx_prev = self._rule_idx_prev, rule_idx
        self._prev_valid = True
        self._prev_map = enabled
        return enabled

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def apply(self, selection: Mapping[int, str]) -> None:
        """One atomic step: execute ``selection`` against the read buffer."""
        by_rule: dict[str, list[int]] = {}
        for u, rule in selection.items():
            by_rule.setdefault(rule, []).append(u)
        read, write = self.read, self.write
        for name, col in read.items():
            write[name][:] = col
        for rule, processes in by_rule.items():
            processes.sort()
            idx = np.asarray(processes, dtype=np.int64)
            self.program.apply(rule, idx, read, write)
        self.read, self.write = write, read
        self._masks = None

    # ------------------------------------------------------------------
    # Boundary conversions
    # ------------------------------------------------------------------
    def decode(self) -> Configuration:
        """Current columns as a plain-value :class:`Configuration`."""
        return self.program.schema.decode(self.read)
