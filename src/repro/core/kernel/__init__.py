"""Array-backed fast execution kernel for the step/round hot loop.

The dict backend (:class:`~repro.core.simulator.Simulator`'s reference
engine) evaluates guards process by process over per-process state dicts.
This subpackage is the flattened alternative: algorithms declare a typed
variable :class:`~repro.core.kernel.schema.Schema`, states live in one
numpy column per variable indexed by process id, adjacency is CSR, and a
step is a handful of vectorized gathers/segmented reductions plus a
double-buffer swap.  Model semantics — composite atomicity, enabled-set
contents and ordering, move/round accounting — are identical by
construction and machine-checked by the simulator's paranoid lockstep
mode (see ``Simulator(backend="kernel", paranoid=True)``).

Import of this package requires numpy; callers that must degrade
gracefully should go through :func:`kernel_available` or the lazily
imported ``Algorithm.kernel_program`` hooks.
"""

from __future__ import annotations

__all__ = [
    "BatchResult",
    "CSRAdjacency",
    "FusedResult",
    "InputKernelProgram",
    "KernelProgram",
    "KernelRuntime",
    "Schema",
    "StandaloneInputProgram",
    "TrialOutcome",
    "Var",
    "kernel_available",
    "run_batch",
    "vectorize",
]


def kernel_available() -> bool:
    """Whether the array backend's only external dependency (numpy) exists."""
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


from .batch import BatchResult, TrialOutcome, run_batch  # noqa: E402
from .csr import CSRAdjacency  # noqa: E402
from .daemons import vectorize  # noqa: E402
from .engine import FusedResult, KernelRuntime  # noqa: E402
from .programs import (  # noqa: E402
    InputKernelProgram,
    KernelProgram,
    StandaloneInputProgram,
)
from .schema import Schema, Var  # noqa: E402
