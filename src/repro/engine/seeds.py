"""Deterministic per-trial seed derivation.

Every trial in a campaign gets its own PRNG seed derived from the campaign
master seed and the trial's canonical key via SHA-256.  Because the hash is
cryptographic and keyed on the *descriptor* (not on execution order, worker
id, or wall clock), the same campaign produces bit-identical trials whether
it runs serially, across N processes, or resumed in three installments.

This mirrors the DEVS separation of initialization information from the
stepping kernel: the seed is part of the experiment description, never of
the execution machinery.
"""

from __future__ import annotations

import hashlib

__all__ = ["derive_seed", "spread_seed"]

#: Derived seeds are confined to 63 bits so they survive any signed-int64
#: boundary (JSON readers, numpy RNGs, databases) without sign surprises.
_SEED_BITS = 63
_SEED_MASK = (1 << _SEED_BITS) - 1

#: Unit separator — cannot appear in campaign seeds (ints) and is never
#: produced by :meth:`TrialSpec.key`, so the pair encoding is injective.
_SEP = "\x1f"


def derive_seed(campaign_seed: int, key: str) -> int:
    """Derive the PRNG seed for one trial.

    The mapping depends only on ``(campaign_seed, key)``; it is stable
    across processes, Python invocations, and platforms (unlike the
    builtin ``hash``, which is salted per interpreter).
    """
    payload = f"{campaign_seed}{_SEP}{key}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") & _SEED_MASK


def spread_seed(campaign_seed: int, key: str, stream: int) -> int:
    """Derive one of several independent seed streams for the same trial.

    Useful when a single trial needs separate generators (e.g. one for the
    initial configuration, one for the daemon) that must not be correlated.
    """
    return derive_seed(campaign_seed, f"{key}{_SEP}stream={stream}")
