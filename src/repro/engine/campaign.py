"""Declarative experiment campaigns and trial descriptors.

A :class:`Campaign` is a parameter grid — (algorithm × topology × size ×
scenario × daemon × trial-replicate) — plus a master seed.  Expanding it
yields :class:`TrialSpec` descriptors: small, picklable, hashable value
objects that fully determine one stabilization measurement.  The canonical
string key of a descriptor names its result record in the store and feeds
the deterministic seed derivation (:mod:`repro.engine.seeds`), so the same
grid always maps to the same trials regardless of execution order or
worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Any, Iterable, Iterator, Mapping, Sequence

from .seeds import derive_seed

__all__ = ["KNOWN_ALGORITHMS", "TrialSpec", "Campaign"]

#: Algorithms the descriptor-driven runner knows how to dispatch
#: (see :func:`repro.harness.runner.run_trial`).
KNOWN_ALGORITHMS = ("unison", "boulinier", "fga")

#: Params that select *how* a trial executes, not *what* it measures —
#: excluded from the canonical key (and hence from seed derivation), so
#: e.g. ``backend=kernel`` and ``backend=dict`` runs of one grid (or
#: ``probe=auto`` and ``probe=decode`` measurement tiers) produce
#: identical records and deduplicate against each other on resume.
EXECUTION_OPTIONS = frozenset({"backend", "probe"})


def _freeze_params(params: Mapping[str, Any] | Iterable[tuple[str, Any]] | None) -> tuple[tuple[str, Any], ...]:
    if params is None:
        return ()
    items = params.items() if isinstance(params, Mapping) else params
    frozen = tuple(sorted((str(k), v) for k, v in items))
    for key, value in frozen:
        if not isinstance(value, (int, float, str, bool, type(None))):
            raise TypeError(
                f"campaign param {key!r} must be a JSON scalar, got {type(value).__name__}"
            )
    return frozen


@dataclass(frozen=True)
class TrialSpec:
    """Descriptor of one trial: everything needed to reproduce it.

    ``trial`` is the replicate index within a grid cell; the actual PRNG
    seed is *derived*, never stored here, so a spec is pure description.
    ``params`` carries algorithm-specific extras (``period``, ``alpha``,
    ``instance`` …) as a sorted tuple of pairs to stay hashable.
    """

    algorithm: str
    topology: str
    n: int
    scenario: str = "random"
    daemon: str = "distributed-random"
    trial: int = 0
    topology_seed: int = 0
    params: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", _freeze_params(self.params))

    # ------------------------------------------------------------------
    def _identity(self, include_trial: bool) -> str:
        """One renderer for both identity strings, so they cannot drift:
        a field added to the identity joins every key (or deliberately
        only one, here, in a single visible place)."""
        parts = [
            f"algorithm={self.algorithm}",
            f"topology={self.topology}",
            f"n={self.n}",
            f"scenario={self.scenario}",
            f"daemon={self.daemon}",
        ]
        if include_trial:
            parts.append(f"trial={self.trial}")
        parts.append(f"topology_seed={self.topology_seed}")
        measured = [(k, v) for k, v in self.params if k not in EXECUTION_OPTIONS]
        if measured:
            rendered = ",".join(f"{k}:{v}" for k, v in measured)
            parts.append(f"params={rendered}")
        return "|".join(parts)

    def key(self) -> str:
        """Canonical identity string — the store key and seed-hash input.

        Execution options (:data:`EXECUTION_OPTIONS`) are not part of the
        identity: they change wall time, never the measurement.
        """
        return self._identity(include_trial=True)

    def cell_key(self) -> str:
        """Identity of the grid *cell* — the key minus the replicate index.

        Trials sharing a cell key differ only in their seed, which is what
        makes them batchable: the executor runs a whole cell as one
        vectorized multi-trial simulation (see :mod:`repro.engine.pool`)
        with results record-identical to serial execution.
        """
        return self._identity(include_trial=False)

    def kwargs(self) -> dict[str, Any]:
        """The extra params as a plain dict (for ``**`` expansion)."""
        return dict(self.params)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "algorithm": self.algorithm,
            "topology": self.topology,
            "n": self.n,
            "scenario": self.scenario,
            "daemon": self.daemon,
            "trial": self.trial,
            "topology_seed": self.topology_seed,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TrialSpec":
        return cls(
            algorithm=data["algorithm"],
            topology=data["topology"],
            n=int(data["n"]),
            scenario=data.get("scenario", "random"),
            daemon=data.get("daemon", "distributed-random"),
            trial=int(data.get("trial", 0)),
            topology_seed=int(data.get("topology_seed", 0)),
            params=_freeze_params(data.get("params")),
        )


def _tuple_of(values: Any, kind: type) -> tuple:
    if isinstance(values, (str, int)):
        values = (values,)
    return tuple(kind(v) for v in values)


@dataclass(frozen=True)
class Campaign:
    """A named parameter grid with a master seed.

    Expansion order is the deterministic cross product
    ``algorithms × topologies × sizes × scenarios × daemons × trials`` —
    but nothing downstream depends on that order: identity and seeds come
    from each spec's canonical key.
    """

    name: str
    seed: int
    algorithms: Sequence[str] = ("unison",)
    topologies: Sequence[str] = ("ring",)
    sizes: Sequence[int] = (8,)
    scenarios: Sequence[str] = ("random",)
    daemons: Sequence[str] = ("distributed-random",)
    trials: int = 1
    topology_seed: int = 0
    params: tuple[tuple[str, Any], ...] = field(default=())

    def __post_init__(self) -> None:
        object.__setattr__(self, "algorithms", _tuple_of(self.algorithms, str))
        object.__setattr__(self, "topologies", _tuple_of(self.topologies, str))
        object.__setattr__(self, "sizes", _tuple_of(self.sizes, int))
        object.__setattr__(self, "scenarios", _tuple_of(self.scenarios, str))
        object.__setattr__(self, "daemons", _tuple_of(self.daemons, str))
        object.__setattr__(self, "params", _freeze_params(self.params))
        if self.trials < 1:
            raise ValueError("a campaign needs at least one trial per cell")
        for axis in ("algorithms", "topologies", "sizes", "scenarios", "daemons"):
            if not getattr(self, axis):
                raise ValueError(f"campaign axis {axis!r} is empty")
        unknown = [a for a in self.algorithms if a not in KNOWN_ALGORITHMS]
        if unknown:
            raise ValueError(
                f"unknown algorithm(s) {unknown}; choose from {list(KNOWN_ALGORITHMS)}"
            )

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of trials in the grid."""
        return (
            len(self.algorithms) * len(self.topologies) * len(self.sizes)
            * len(self.scenarios) * len(self.daemons) * self.trials
        )

    def specs(self) -> list[TrialSpec]:
        """Expand the grid into trial descriptors (deterministic order)."""
        return list(self.iter_specs())

    def iter_specs(self) -> Iterator[TrialSpec]:
        for algorithm, topology, n, scenario, daemon, trial in product(
            self.algorithms, self.topologies, self.sizes,
            self.scenarios, self.daemons, range(self.trials),
        ):
            yield TrialSpec(
                algorithm=algorithm,
                topology=topology,
                n=n,
                scenario=scenario,
                daemon=daemon,
                trial=trial,
                topology_seed=self.topology_seed,
                params=self.params,
            )

    def seed_for(self, spec: TrialSpec) -> int:
        """The derived PRNG seed one trial runs with."""
        return derive_seed(self.seed, spec.key())

    def keys(self) -> set[str]:
        return {spec.key() for spec in self.iter_specs()}
