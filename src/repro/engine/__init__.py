"""Parallel experiment-campaign engine with deterministic seed-splitting,
a persistent result store, and resume.

The paper's evaluation is a grid — (topology × scenario × daemon × size ×
seed) — and this package is the orchestration layer that runs such grids
at full hardware speed without giving up reproducibility:

* :mod:`~repro.engine.campaign` — declarative grids (:class:`Campaign`)
  that expand to picklable :class:`TrialSpec` descriptors with canonical
  string keys;
* :mod:`~repro.engine.seeds` — per-trial seeds derived by hashing the
  campaign master seed with the trial key, so results are identical for
  any execution order or worker count;
* :mod:`~repro.engine.pool` — a ``multiprocessing`` executor with chunked
  fan-out, progress callbacks, an in-process serial fallback, and — under
  a :class:`FailurePolicy` — a supervised mode with per-trial deadlines,
  bounded retries, a batch → serial → dict degradation ladder, and
  poison-trial quarantine;
* :mod:`~repro.engine.store` — an append-only JSONL store with atomic
  writes, schema versioning, and query helpers;
* :mod:`~repro.engine.resume` — diff a grid against the store and run only
  the missing trials;
* :mod:`~repro.engine.reports` — aggregate stored records into the
  harness ``Table``/``Figure`` machinery.

Typical use::

    from repro.engine import Campaign, ResultStore, run_campaign

    campaign = Campaign("unison-scaling", seed=7, algorithms=("unison",),
                        topologies=("ring", "random"), sizes=(8, 16, 32),
                        scenarios=("gradient",), trials=10)
    store = ResultStore("results.jsonl")
    outcome = run_campaign(campaign, store=store, workers=8, resume=True)

Import-cycle contract: the harness imports this package at module scope,
so engine modules must import ``repro.harness.*`` either from leaf modules
that do not import the engine (``tables``, ``figures``) or lazily inside
functions (``runner``).
"""

from .campaign import KNOWN_ALGORITHMS, Campaign, TrialSpec
from .pool import FailurePolicy, default_chunksize, execute_trial, run_specs
from .reports import (
    aggregate,
    scaling_figure,
    summary_table,
    trials_from_records,
)
from .resume import CampaignOutcome, completed_records, missing_specs, run_campaign
from .seeds import derive_seed, spread_seed
from .store import (
    SCHEMA_VERSION,
    ResultStore,
    StoreError,
    trial_from_record,
    trial_to_dict,
)

__all__ = [
    "KNOWN_ALGORITHMS",
    "Campaign",
    "TrialSpec",
    "derive_seed",
    "spread_seed",
    "execute_trial",
    "run_specs",
    "FailurePolicy",
    "default_chunksize",
    "SCHEMA_VERSION",
    "ResultStore",
    "StoreError",
    "trial_to_dict",
    "trial_from_record",
    "CampaignOutcome",
    "completed_records",
    "missing_specs",
    "run_campaign",
    "aggregate",
    "summary_table",
    "scaling_figure",
    "trials_from_records",
]
