"""Append-only JSONL result store keyed by trial descriptor.

One record per line, one line per trial; ``schema`` stamps every record so
future layouts can migrate old stores instead of guessing.  Appends flush
and fsync a whole line at a time, so a crash mid-campaign loses at most the
trailing partial line — which :meth:`ResultStore.load` tolerates and
:meth:`ResultStore.compact` trims away.  Whole-file rewrites go through a
temp file + ``os.replace`` so readers never observe a half-written store.

Records are deliberately deterministic: no timestamps, hostnames, or pids.
The same campaign therefore produces byte-identical stores no matter how
many workers ran it or how often it was resumed.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import warnings
from typing import Any, Callable, Iterable, Iterator, Mapping

__all__ = [
    "SCHEMA_VERSION",
    "StoreError",
    "ResultStore",
    "trial_to_dict",
    "trial_from_record",
]

#: Bump when the record layout changes; ``load`` refuses newer schemas.
SCHEMA_VERSION = 1


class StoreError(Exception):
    """Raised for unreadable or incompatible result stores."""


def _json_default(value: Any) -> Any:
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    if isinstance(value, tuple):
        return list(value)
    raise TypeError(f"unserializable value of type {type(value).__name__}")


def _dump_line(record: Mapping[str, Any]) -> str:
    return json.dumps(
        record, sort_keys=True, separators=(",", ":"), default=_json_default
    ) + "\n"


class ResultStore:
    """Durable trial results at ``path`` (created lazily on first append)."""

    def __init__(self, path: str | os.PathLike):
        self.path = pathlib.Path(path)

    def exists(self) -> bool:
        return self.path.exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_records())

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def _heal_tail(self) -> None:
        """Truncate a crash-torn partial final line before appending.

        Readers already skip a torn tail, but appending *after* one would
        hide the new lines behind it forever (``iter_records`` stops at
        the first unparseable line).  Trimming back to the last newline
        restores the invariant that the file is a clean prefix of intact
        lines, so a resumed campaign's appends land exactly where an
        uninterrupted run would have put them — byte-identical stores
        either way.
        """
        try:
            fh = self.path.open("rb+")
        except FileNotFoundError:
            return
        with fh:
            size = fh.seek(0, os.SEEK_END)
            if size == 0:
                return
            fh.seek(size - 1)
            if fh.read(1) == b"\n":
                return
            pos = size - 1
            while pos > 0:
                start = max(0, pos - 4096)
                fh.seek(start)
                data = fh.read(pos - start)
                cut = data.rfind(b"\n")
                if cut != -1:
                    fh.truncate(start + cut + 1)
                    return
                pos = start
            fh.truncate(0)

    def append(self, record: Mapping[str, Any]) -> None:
        """Durably append one record (whole line, flushed and fsynced)."""
        record = dict(record)
        record.setdefault("schema", SCHEMA_VERSION)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._heal_tail()
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(_dump_line(record))
            fh.flush()
            os.fsync(fh.fileno())

    def append_many(self, records: Iterable[Mapping[str, Any]]) -> int:
        """Append several records with a single flush; returns the count."""
        lines = []
        for record in records:
            record = dict(record)
            record.setdefault("schema", SCHEMA_VERSION)
            lines.append(_dump_line(record))
        if not lines:
            return 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._heal_tail()
        with self.path.open("a", encoding="utf-8") as fh:
            fh.writelines(lines)
            fh.flush()
            os.fsync(fh.fileno())
        return len(lines)

    def rewrite(self, records: Iterable[Mapping[str, Any]]) -> int:
        """Atomically replace the whole store (temp file + ``os.replace``)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        count = 0
        fd, tmp_name = tempfile.mkstemp(
            dir=self.path.parent, prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                for record in records:
                    record = dict(record)
                    record.setdefault("schema", SCHEMA_VERSION)
                    fh.write(_dump_line(record))
                    count += 1
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return count

    def compact(self) -> int:
        """Drop corrupt tail lines and duplicate keys (last write wins)."""
        by_key: dict[str, dict] = {}
        extras: list[dict] = []
        for record in self.iter_records():
            key = record.get("key")
            if key is None:
                extras.append(record)
            else:
                by_key[key] = record
        return self.rewrite(extras + list(by_key.values()))

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def iter_records(self, strict: bool = False) -> Iterator[dict]:
        """Yield records in file order.

        A line that fails to parse is treated as a crash-truncated tail:
        iteration stops there with a warning (or raises, under
        ``strict=True``), so every preceding intact record survives and a
        resumed campaign re-runs exactly the trials the torn line lost.  A
        parsed record with a schema newer than this code always raises.
        """
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                stripped = line.strip()
                if not stripped:
                    continue
                try:
                    record = json.loads(stripped)
                except json.JSONDecodeError as exc:
                    if strict:
                        raise StoreError(
                            f"{self.path}:{lineno}: corrupt record: {exc}"
                        ) from exc
                    # Tolerate a truncated tail from a crashed run: stop
                    # here so the intact prefix is kept and the lost
                    # trials simply re-run on resume.
                    warnings.warn(
                        f"{self.path}:{lineno}: skipping corrupt record "
                        f"(crash-truncated tail?): {exc}",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    return
                schema = record.get("schema", 0)
                if schema > SCHEMA_VERSION:
                    raise StoreError(
                        f"{self.path}:{lineno}: record schema {schema} is newer "
                        f"than supported version {SCHEMA_VERSION}; upgrade repro"
                    )
                yield record

    def load(self, strict: bool = False) -> list[dict]:
        return list(self.iter_records(strict=strict))

    def keys(self) -> set[str]:
        """All trial keys present in the store."""
        return {r["key"] for r in self.iter_records() if "key" in r}

    def query(
        self,
        predicate: Callable[[dict], bool] | None = None,
        **equals: Any,
    ) -> list[dict]:
        """Records matching ``predicate`` and all ``field=value`` filters.

        Equality filters look a field up in the record itself, then in its
        ``spec``, then in its ``result`` — so ``query(algorithm="unison",
        n=8)`` works without spelling out the nesting.
        """

        def value_of(record: dict, field: str) -> Any:
            for layer in (record, record.get("spec", {}), record.get("result", {})):
                if field in layer:
                    return layer[field]
            return None

        out = []
        for record in self.iter_records():
            if predicate is not None and not predicate(record):
                continue
            if all(value_of(record, f) == v for f, v in equals.items()):
                out.append(record)
        return out


# ----------------------------------------------------------------------
# Trial (de)serialization
# ----------------------------------------------------------------------
def trial_to_dict(trial: Any) -> dict[str, Any]:
    """Flatten a :class:`repro.harness.runner.Trial` into JSON-safe data.

    Duck-typed (no import of the harness) so the store stays import-cycle
    free; ``extra`` values that are sets become sorted lists.
    """
    metrics = trial.metrics
    extra = {}
    for key, value in trial.extra.items():
        if isinstance(value, (set, frozenset)):
            value = sorted(value)
        extra[key] = value
    return {
        "algorithm": trial.algorithm,
        "scenario": trial.scenario,
        "daemon": trial.daemon,
        "seed": trial.seed,
        "n": trial.n,
        "m": trial.m,
        "diameter": trial.diameter,
        "max_degree": trial.max_degree,
        "rounds": trial.rounds,
        "moves": trial.moves,
        "steps": trial.steps,
        "metrics": {
            "steps": metrics.steps,
            "moves": metrics.moves,
            "rounds": metrics.rounds,
            "moves_per_process": list(metrics.moves_per_process),
            "moves_per_rule": dict(metrics.moves_per_rule),
        },
        "extra": extra,
    }


def trial_from_record(record: Mapping[str, Any]) -> Any:
    """Rebuild a :class:`~repro.harness.runner.Trial` from a store record.

    Inverse of :func:`trial_to_dict` up to container types normalized by
    JSON (the FGA ``alliance`` set comes back as a ``frozenset``).
    """
    # Imported lazily: the harness imports the engine at module scope, so a
    # top-level import here would close an import cycle.
    from ..analysis.metrics import RunMetrics
    from ..harness.runner import Trial

    result = record["result"] if "result" in record else record
    metrics = result["metrics"]
    extra = dict(result.get("extra", {}))
    if "alliance" in extra and isinstance(extra["alliance"], list):
        extra["alliance"] = frozenset(extra["alliance"])
    return Trial(
        algorithm=result["algorithm"],
        scenario=result["scenario"],
        daemon=result["daemon"],
        seed=result["seed"],
        n=result["n"],
        m=result["m"],
        diameter=result["diameter"],
        max_degree=result["max_degree"],
        rounds=result["rounds"],
        moves=result["moves"],
        steps=result["steps"],
        metrics=RunMetrics(
            steps=metrics["steps"],
            moves=metrics["moves"],
            rounds=metrics["rounds"],
            moves_per_process=tuple(metrics["moves_per_process"]),
            moves_per_rule=dict(metrics["moves_per_rule"]),
        ),
        extra=extra,
    )
